//! Integration test of the command-line artifact: run the real
//! `dnnd-construct` → `dnnd-optimize` → `dnnd-query` binaries end to end,
//! including file-based dataset input, exactly as a user would.

use std::process::Command;

use testutil::TmpDir;

fn tmpdir(tag: &str) -> TmpDir {
    TmpDir::new(tag)
}

fn run_ok(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn preset_pipeline_runs_and_reports_recall() {
    let dir = tmpdir("preset");
    let store = dir.join("store");
    let store = store.to_str().unwrap();

    let out = run_ok(
        env!("CARGO_BIN_EXE_dnnd-construct"),
        &[
            "--input",
            "preset:deep1b",
            "--n",
            "500",
            "--k",
            "8",
            "--ranks",
            "4",
            "--store",
            store,
            "--seed",
            "3",
        ],
    );
    assert!(out.contains("constructed k=8"), "construct output: {out}");
    assert!(out.contains("virtual time"), "missing profile line: {out}");

    let out = run_ok(
        env!("CARGO_BIN_EXE_dnnd-optimize"),
        &["--store", store, "--m", "1.5"],
    );
    assert!(
        out.contains("search graph written"),
        "optimize output: {out}"
    );

    let out = run_ok(
        env!("CARGO_BIN_EXE_dnnd-query"),
        &[
            "--store",
            store,
            "--self-queries",
            "40",
            "--l",
            "8",
            "--epsilon",
            "0.2",
        ],
    );
    assert!(out.contains("recall@8"), "query output: {out}");
    // Member self-queries on an optimized graph must be near-perfect; the
    // printed value is "recall@8 = 0.9xxx" — parse and assert a floor.
    let recall: f64 = out
        .lines()
        .find(|l| l.contains("recall@8"))
        .and_then(|l| l.split('=').nth(1))
        .and_then(|v| v.trim().split(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("recall value parse");
    assert!(recall > 0.9, "CLI pipeline recall {recall}");
}

#[test]
fn file_based_pipeline_with_u8_data() {
    let dir = tmpdir("file-u8");
    let store = dir.join("store");
    let input = dir.join("base.u8bin");
    let set = dataset::presets::bigann_like(400, 7);
    dataset::io::write_u8bin(&input, &set).unwrap();

    run_ok(
        env!("CARGO_BIN_EXE_dnnd-construct"),
        &[
            "--input",
            input.to_str().unwrap(),
            "--elem",
            "u8",
            "--k",
            "6",
            "--ranks",
            "3",
            "--store",
            store.to_str().unwrap(),
        ],
    );
    run_ok(
        env!("CARGO_BIN_EXE_dnnd-optimize"),
        &[
            "--store",
            store.to_str().unwrap(),
            "--m",
            "1.5",
            "--diversify",
            "0.5",
        ],
    );
    let out = run_ok(
        env!("CARGO_BIN_EXE_dnnd-query"),
        &[
            "--store",
            store.to_str().unwrap(),
            "--self-queries",
            "30",
            "--l",
            "6",
        ],
    );
    assert!(out.contains("recall@6"), "query output: {out}");
}

#[test]
fn query_with_explicit_query_and_gt_files() {
    let dir = tmpdir("gtfile");
    let store = dir.join("store");
    let full = dataset::presets::deep1b_like(450, 9);
    let (base, queries) = dataset::synth::split_queries(full, 50);
    let base_file = dir.join("base.fvecs");
    let query_file = dir.join("queries.fvecs");
    let gt_file = dir.join("gt.ivecs");
    dataset::io::write_fvecs(&base_file, &base).unwrap();
    dataset::io::write_fvecs(&query_file, &queries).unwrap();
    let truth = dataset::brute_force_queries(&base, &queries, &dataset::L2, 5);
    dataset::io::write_ivecs(&gt_file, &truth.ids).unwrap();

    run_ok(
        env!("CARGO_BIN_EXE_dnnd-construct"),
        &[
            "--input",
            base_file.to_str().unwrap(),
            "--k",
            "8",
            "--ranks",
            "2",
            "--store",
            store.to_str().unwrap(),
        ],
    );
    run_ok(
        env!("CARGO_BIN_EXE_dnnd-optimize"),
        &["--store", store.to_str().unwrap()],
    );
    let out = run_ok(
        env!("CARGO_BIN_EXE_dnnd-query"),
        &[
            "--store",
            store.to_str().unwrap(),
            "--queries",
            query_file.to_str().unwrap(),
            "--gt",
            gt_file.to_str().unwrap(),
            "--l",
            "5",
            "--epsilon",
            "0.3",
            "--entries",
            "48",
        ],
    );
    assert!(out.contains("recall@5"), "query output: {out}");
}

#[test]
fn construct_rejects_missing_args() {
    let out = Command::new(env!("CARGO_BIN_EXE_dnnd-construct"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));
}
