//! Cross-crate integration: the full paper workflow — distributed
//! construction (dnnd + ygm) → persistence (metall) → reopen → graph
//! optimization → ANN search (nnd) — plus store durability properties.

use dataset::synth::{gaussian_mixture, split_queries, MixtureParams};
use dataset::{brute_force_queries, mean_recall, PointSet, L2};
use dnnd::{build, CommOpts, DnndConfig};
use metall::Store;
use nnd::KnnGraph as DigestGraph;
use nnd::{search_batch, KnnGraph, SearchParams};
use std::sync::Arc;
use ygm::World;

use testutil::TmpDir;

fn tmpdir(tag: &str) -> TmpDir {
    TmpDir::new(tag)
}

#[test]
fn construct_persist_reopen_optimize_query() {
    let dir = tmpdir("full");
    let full = gaussian_mixture(MixtureParams::embedding_like(900, 16), 2);
    let (base, queries) = split_queries(full, 60);

    // Stage 1: distributed construction + persist.
    let graph_edges;
    {
        let base = Arc::new(base.clone());
        let out = build(&World::new(4), &base, &L2, DnndConfig::new(8).seed(1));
        let mut store = Store::create(&dir).unwrap();
        base.save(&mut store, "dataset").unwrap();
        out.graph.save(&mut store, "knng").unwrap();
        graph_edges = out.graph.edge_count();
    }

    // Stage 2: separate "executable" — reopen, optimize, persist.
    {
        let mut store = Store::open(&dir).unwrap();
        let graph = KnnGraph::load(&store, "knng").unwrap();
        assert_eq!(
            graph.edge_count(),
            graph_edges,
            "graph round-trip changed edges"
        );
        let optimized = graph.optimize(8, 1.5);
        assert!(optimized.max_degree() <= 12);
        optimized.save(&mut store, "opt").unwrap();
    }

    // Stage 3: query program.
    {
        let store = Store::open(&dir).unwrap();
        let base2 = PointSet::<Vec<f32>>::load(&store, "dataset").unwrap();
        assert_eq!(base2, base, "dataset round-trip must be exact");
        let graph = KnnGraph::load(&store, "opt").unwrap();
        let truth = brute_force_queries(&base2, &queries, &L2, 8);
        let batch = search_batch(
            &graph,
            &base2,
            &L2,
            &queries,
            SearchParams::new(8).epsilon(0.2).entry_candidates(48),
        );
        let recall = mean_recall(&batch.ids, &truth);
        assert!(recall > 0.85, "end-to-end recall {recall}");
    }
    Store::destroy(&dir).unwrap();
}

#[test]
fn snapshot_preserves_a_queryable_index() {
    let dir = tmpdir("snap");
    let snap_dir = tmpdir("snap-dst");
    let base = Arc::new(gaussian_mixture(MixtureParams::embedding_like(400, 8), 3));
    let out = build(&World::new(2), &base, &L2, DnndConfig::new(5).seed(9));

    let mut store = Store::create(&dir).unwrap();
    base.save(&mut store, "ds").unwrap();
    out.graph.save(&mut store, "g").unwrap();
    let snap = store.snapshot(&snap_dir).unwrap();
    drop(store);
    Store::destroy(&dir).unwrap(); // original gone; snapshot must suffice

    let base2 = PointSet::<Vec<f32>>::load(&snap, "ds").unwrap();
    let graph = KnnGraph::load(&snap, "g").unwrap();
    let r = nnd::search(
        &graph,
        &base2,
        &L2,
        base2.point(7),
        SearchParams::new(3).entry_candidates(64),
    );
    assert_eq!(r.neighbors[0].0, 7);
    Store::destroy(&snap_dir).unwrap();
}

#[test]
fn u8_dataset_full_pipeline() {
    let dir = tmpdir("u8");
    let base = Arc::new(dataset::presets::bigann_like(500, 7));
    let out = build(
        &World::new(3),
        &base,
        &L2,
        DnndConfig::new(6).seed(5).graph_opt(1.5),
    );

    let mut store = Store::create(&dir).unwrap();
    base.save(&mut store, "ds").unwrap();
    out.graph.save(&mut store, "g").unwrap();
    drop(store);

    let store = Store::open(&dir).unwrap();
    let base2 = PointSet::<Vec<u8>>::load(&store, "ds").unwrap();
    let graph = KnnGraph::load(&store, "g").unwrap();
    let r = nnd::search(
        &graph,
        &base2,
        &L2,
        base2.point(123),
        SearchParams::new(5).entry_candidates(32),
    );
    assert_eq!(r.neighbors[0].0, 123, "member query must find itself");
    Store::destroy(&dir).unwrap();
}

#[test]
fn sparse_jaccard_full_pipeline() {
    let dir = tmpdir("sparse");
    let base = Arc::new(dataset::presets::kosarak_like(300, 11));
    let out = build(
        &World::new(2),
        &base,
        &dataset::Jaccard,
        DnndConfig::new(5).seed(13),
    );
    let mut store = Store::create(&dir).unwrap();
    base.save(&mut store, "ds").unwrap();
    out.graph.save(&mut store, "g").unwrap();
    drop(store);

    let store = Store::open(&dir).unwrap();
    let base2 = PointSet::<dataset::SparseVec>::load(&store, "ds").unwrap();
    assert_eq!(&base2, base.as_ref());
    let graph = KnnGraph::load(&store, "g").unwrap();
    assert_eq!(graph.len(), 300);
    Store::destroy(&dir).unwrap();
}

/// FNV-1a over every row: id, then the raw bit pattern of each neighbor
/// edge. Any single changed bit anywhere in the graph changes the digest.
fn graph_digest(g: &DigestGraph) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for v in 0..g.len() as u32 {
        mix(g.neighbors(v).len() as u64);
        for &(u, d) in g.neighbors(v) {
            mix(u as u64);
            mix(d.to_bits() as u64);
        }
    }
    h
}

/// Bit-identity oracle for the batched kernel rework (paper Sec. 4.2's
/// unoptimized exchange): with the unoptimized protocol the delivered
/// pair multiset — and therefore the final graph and the distance-eval
/// count — is a pure function of (dataset, k, seed). Batching only
/// regroups pairs into rows, and every batched evaluation is bit-identical
/// to the scalar reference, so the graph must not change by a single bit
/// across rank counts or kernel dispatch paths. The hardcoded golden
/// digest pins the result across future refactors: any accidental change
/// to accumulation order, message grouping, or tie-breaking fails here.
///
/// (The *optimized* protocol is excluded on purpose: skip_redundant and
/// distance pruning consult heap state at message-arrival time, and ygm
/// ranks are real OS threads, so its eval counts are schedule-dependent.)
#[test]
fn unoptimized_construction_bit_identical_across_ranks_and_dispatch() {
    const GOLDEN_DIGEST: u64 = 0x8188_d886_1334_5170;
    const GOLDEN_DIST_EVALS: u64 = 234_452;

    let base = Arc::new(dataset::presets::deep1b_like(600, 7));
    let cfg = || {
        DnndConfig::new(8)
            .seed(7)
            .comm_opts(CommOpts::unoptimized())
    };

    for n_ranks in [1usize, 2, 4] {
        let out = build(&World::new(n_ranks), &base, &L2, cfg());
        assert_eq!(
            graph_digest(&out.graph),
            GOLDEN_DIGEST,
            "graph diverged from golden at n_ranks={n_ranks}"
        );
        assert_eq!(
            out.report.distance_evals, GOLDEN_DIST_EVALS,
            "distance-eval count diverged at n_ranks={n_ranks}"
        );
    }

    // Forcing the scalar kernel path must reproduce the same bits (the
    // SIMD paths share the scalar accumulation order by construction).
    let before = dataset::kernel::dispatch();
    dataset::kernel::force_dispatch(Some(dataset::kernel::Dispatch::Scalar));
    let out = build(&World::new(2), &base, &L2, cfg());
    dataset::kernel::force_dispatch(Some(before));
    assert_eq!(
        graph_digest(&out.graph),
        GOLDEN_DIGEST,
        "forced-scalar dispatch changed the graph"
    );
    assert_eq!(out.report.distance_evals, GOLDEN_DIST_EVALS);
}

/// The same oracle for the RNN-Descent optimization mode: every pruning
/// decision consults canonical `(dist, id)` row state only, flagged pairs
/// are a pure function of that state, and inserts/reverse edges are
/// applied in canonical order after each synchronous round — so the
/// optimized graph *and* the exact distance-eval count (construction +
/// RNN pass) are pinned across rank counts and kernel dispatch. The
/// constants were generated by this very configuration; any drift in the
/// occlusion rule, round schedule, or connectivity repair fails here.
#[test]
fn rnn_mode_bit_identical_across_ranks_and_dispatch() {
    const RNN_GOLDEN_DIGEST: u64 = 0x0067_62d4_0e10_2fe5;
    const RNN_GOLDEN_DIST_EVALS: u64 = 342_928;

    let base = Arc::new(dataset::presets::deep1b_like(600, 7));
    let cfg = || {
        DnndConfig::new(8)
            .seed(7)
            .comm_opts(CommOpts::unoptimized())
            .rnn_opt(nnd::rnn::RnnParams::new(10))
    };

    for n_ranks in [1usize, 2, 4] {
        let out = build(&World::new(n_ranks), &base, &L2, cfg());
        assert_eq!(
            graph_digest(&out.graph),
            RNN_GOLDEN_DIGEST,
            "rnn graph diverged from golden at n_ranks={n_ranks}"
        );
        assert_eq!(
            out.report.distance_evals, RNN_GOLDEN_DIST_EVALS,
            "distance-eval count diverged at n_ranks={n_ranks}"
        );
        let stats = out.report.rnn.as_ref().expect("rnn stats in report");
        assert_eq!(stats.reverse_added.len(), 3, "t1=3 reverse exchanges");
        assert!(out.graph.max_degree() <= 10, "k0 cap violated");
    }

    let before = dataset::kernel::dispatch();
    dataset::kernel::force_dispatch(Some(dataset::kernel::Dispatch::Scalar));
    let out = build(&World::new(2), &base, &L2, cfg());
    dataset::kernel::force_dispatch(Some(before));
    assert_eq!(
        graph_digest(&out.graph),
        RNN_GOLDEN_DIGEST,
        "forced-scalar dispatch changed the rnn graph"
    );
    assert_eq!(out.report.distance_evals, RNN_GOLDEN_DIST_EVALS);
}

#[test]
fn presets_are_reproducible_across_processes() {
    // Seeds fully determine every preset, so a persisted dataset can be
    // regenerated instead of shipped.
    let a = dataset::presets::deep1b_like(256, 99);
    let b = dataset::presets::deep1b_like(256, 99);
    assert_eq!(a, b);
    let ka = dataset::presets::kosarak_like(128, 7);
    let kb = dataset::presets::kosarak_like(128, 7);
    assert_eq!(ka, kb);
}
