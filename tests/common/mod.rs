//! Shared helpers for the integration tests.

use std::path::{Path, PathBuf};

/// RAII temp directory: created unique per test, removed on drop — also
/// when the test panics, so failed runs don't leak shard directories into
/// the system temp dir.
pub struct TmpDir {
    path: PathBuf,
}

// Each integration-test binary compiles this module separately and uses a
// different subset of the API.
#[allow(dead_code)]
impl TmpDir {
    /// Create a fresh directory namespaced by `tag`, process, and thread.
    pub fn new(tag: &str) -> TmpDir {
        let path = std::env::temp_dir().join(format!(
            "dnnd-it-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TmpDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Path of `name` inside the directory.
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl AsRef<Path> for TmpDir {
    fn as_ref(&self) -> &Path {
        &self.path
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
