//! Integration tests of the online serving layer (`crates/serve`): the
//! determinism contract (same seed => bit-identical serving runs across
//! reruns *and* rank counts) and the overload behavior (shedding keeps
//! tail latency bounded while answered-query quality holds).

use dataset::set::{PointId, PointSet};
use dataset::synth::{gaussian_mixture, split_queries, MixtureParams};
use dataset::{brute_force_queries, L2};
use dnnd::{build, DnndConfig};
use nnd::graph::KnnGraph;
use nnd::RnnParams;
use proptest::prelude::*;
use serve::forensics::WHY_DEADLINE_MISS;
use serve::{run_serve, ServeOutcome, ServeParams, Verdict};
use std::sync::Arc;
use ygm::World;

type Setup = (
    Arc<PointSet<Vec<f32>>>,
    Arc<KnnGraph>,
    Arc<PointSet<Vec<f32>>>,
);

/// One shared base/graph/query-pool fixture (building the graph dominates
/// test cost; serving runs against it are cheap).
fn setup(n: usize, pool: usize, seed: u64) -> Setup {
    let full = gaussian_mixture(MixtureParams::embedding_like(n, 12), seed);
    let (base, queries) = split_queries(full, pool);
    let base = Arc::new(base);
    let out = build(
        &World::new(2),
        &base,
        &L2,
        DnndConfig::new(10).seed(7).graph_opt(1.5),
    );
    (base, Arc::new(out.graph), Arc::new(queries))
}

/// Mean recall of the *answered* queries against brute-force truth.
fn answered_recall(outcome: &ServeOutcome, truth: &[Vec<PointId>], k: usize) -> f64 {
    let mut total = 0.0;
    for (_, pool_id, ids) in &outcome.answers {
        let hits = ids.iter().filter(|id| truth[*pool_id].contains(id)).count();
        total += hits as f64 / k as f64;
    }
    total / outcome.answers.len() as f64
}

#[test]
fn same_seed_is_bit_identical_across_reruns_and_rank_counts() {
    let (base, graph, pool) = setup(600, 48, 3);
    let params = ServeParams::new(10)
        .serve_seed(0xC0FFEE)
        .n_arrivals(150)
        .offered_qps(3_000.0);

    let (reference, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &params);
    assert!(reference.stats.total_answered() > 0, "nothing answered");

    // Rerun at the same rank count: every replicated field must match.
    let (rerun, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &params);
    assert_eq!(rerun, reference, "rerun diverged");

    // The serving section is measured on the slot clock, so it is also
    // identical across rank counts — admitted/shed/cache-hit sets,
    // latencies, and the result digest included.
    for ranks in [1usize, 4] {
        let (other, _) = run_serve(&World::new(ranks), &base, &graph, &pool, &L2, &params);
        assert_eq!(
            other, reference,
            "serving outcome changed between 2 and {ranks} ranks"
        );
    }
}

#[test]
fn different_seeds_produce_different_schedules() {
    let (base, graph, pool) = setup(400, 32, 5);
    let params = ServeParams::new(10).n_arrivals(80).offered_qps(2_000.0);
    let (a, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &params);
    let (b, _) = run_serve(
        &World::new(2),
        &base,
        &graph,
        &pool,
        &L2,
        &params.clone().serve_seed(0xBEEF),
    );
    assert_ne!(
        a.stats.fingerprint(),
        b.stats.fingerprint(),
        "two seeds produced identical serving runs"
    );
}

#[test]
fn overload_sheds_but_keeps_tail_latency_bounded_and_quality_high() {
    let (base, graph, pool) = setup(600, 48, 9);
    let truth = brute_force_queries(&base, &pool, &L2, 10);

    // Unloaded baseline: gentle trickle, nothing shed.
    let unloaded = ServeParams::new(10)
        .n_arrivals(100)
        .offered_qps(500.0)
        .batch(4);
    let (calm, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &unloaded);
    assert_eq!(calm.stats.shed_overload, 0, "trickle load shed queries");
    let calm_recall = answered_recall(&calm, &truth.ids, 10);
    assert!(calm_recall > 0.8, "unloaded recall {calm_recall}");

    // Overload: ~2x the arrival rate the frontend can drain. Shedding and
    // degradation must engage, the deadline must cap answered latency,
    // and the queries that *are* answered must stay close to baseline
    // quality (degrade shrinks epsilon/beam, it does not break search).
    let slam = ServeParams::new(10)
        .n_arrivals(300)
        .offered_qps(20_000.0)
        .batch(4)
        .watermarks(12, 32)
        .deadline_slots(6);
    let (hot, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &slam);
    let s = &hot.stats;
    assert!(
        s.shed_overload + s.shed_deadline > 0,
        "overload engaged no shedding: {s:?}"
    );
    assert!(s.max_queue_depth <= 32, "queue blew past shed watermark");
    // A query older than deadline_slots is shed, so answered latency is
    // capped at deadline_slots + 1 slots (fault-free run: no penalties).
    let bound_ns = (slam.deadline_slots + 1) * slam.slot_ns;
    assert!(
        s.percentile_ns(0.99) <= bound_ns,
        "p99 {} ns exceeds deadline bound {} ns",
        s.percentile_ns(0.99),
        bound_ns
    );
    let hot_recall = answered_recall(&hot, &truth.ids, 10);
    assert!(
        hot_recall >= calm_recall - 0.05,
        "answered-query recall collapsed under load: {hot_recall} vs {calm_recall}"
    );
}

#[test]
fn faults_surface_as_latency_penalties_not_different_answers() {
    let (base, graph, pool) = setup(400, 32, 13);
    let params = ServeParams::new(10).n_arrivals(60).offered_qps(1_500.0);
    let (clean, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &params);
    let world = World::new(2).fault_plan(ygm::FaultPlan::new(ygm::FaultProfile::lossy(), 42));
    let (faulty, _) = run_serve(&world, &base, &graph, &pool, &L2, &params);
    // Same answers (reliable delivery + replicated control plane) ...
    assert_eq!(faulty.answers, clean.answers);
    assert_eq!(faulty.stats.result_digest, clean.stats.result_digest);
    // ... but retransmits are charged against query latency.
    assert!(
        faulty.stats.fault_penalty_slots >= clean.stats.fault_penalty_slots,
        "faulty run reported less penalty than clean"
    );
}

#[test]
fn forensics_stage_sums_are_exact_and_deadline_misses_hit_the_slow_log() {
    let (base, graph, pool) = setup(600, 48, 9);
    // Overload hard enough that both shed paths and deadline misses fire.
    let params = ServeParams::new(10)
        .serve_seed(0xF04E_51C5)
        .n_arrivals(300)
        .offered_qps(20_000.0)
        .batch(4)
        .watermarks(12, 32)
        .deadline_slots(6)
        .forensics(8, 4);
    let (out, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &params);
    let f = &out.forensics;

    // Every arrival got a record, and the sampler kept something.
    assert_eq!(f.considered, out.stats.offered, "considered != offered");
    assert!(!f.sampled.is_empty(), "nothing retained under overload");
    assert_ne!(f.digest, 0, "forensics digest is zero");

    // The five-stage waterfall sums exactly to end-to-end latency and the
    // done slot is arrival + latency, for every retained record.
    for (r, why) in &f.sampled {
        assert_eq!(r.stage_sum(), r.latency_slots, "stage sum drifted: {r:?}");
        assert_eq!(r.done_slot - r.arrived_slot, r.latency_slots, "{r:?}");
        assert_ne!(*why, 0, "retained record with empty why mask: {r:?}");
    }

    // Deadline misses are retained *unconditionally*: every deadline-shed
    // query has a record, and each shows up in the slow-query log.
    let deadline_shed = f
        .sampled
        .iter()
        .filter(|(r, _)| r.verdict == Verdict::ShedDeadline)
        .count() as u64;
    assert_eq!(
        deadline_shed, out.stats.shed_deadline,
        "deadline-shed query missing"
    );
    let log = f.slow_query_log(2);
    for (r, why) in &f.sampled {
        if r.deadline_miss {
            assert_ne!(why & WHY_DEADLINE_MISS, 0, "{r:?}");
            assert!(
                log.contains(&format!("\"idx\":{},", r.idx)),
                "deadline miss idx {} absent from slow-query log",
                r.idx
            );
        }
    }
    // Each log line is `pool_id % n_ranks` at the *writing* rank count.
    for line in log.lines() {
        assert!(line.contains("\"home_rank\":"), "log line lost home rank");
    }

    // The forensics block — sampler decisions, histograms, digest — is a
    // pure function of the slot clock: bit-identical across reruns and
    // rank counts.
    let (rerun, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &params);
    assert_eq!(
        rerun.forensics, out.forensics,
        "forensics diverged on rerun"
    );
    for ranks in [1usize, 4] {
        let (other, _) = run_serve(&World::new(ranks), &base, &graph, &pool, &L2, &params);
        assert_eq!(
            other.forensics, out.forensics,
            "forensics changed between 2 and {ranks} ranks"
        );
    }
}

#[test]
fn rnn_graph_serving_pins_fingerprint_and_forensics_digest_across_ranks() {
    // `--graph rnn` interplay: serve the same workload over the raw
    // NN-Descent graph and over its RNN-Descent optimization. Both must
    // be rank-count-invariant; the two graphs must disagree (different
    // topology => different beam behavior => different forensics).
    let (base, graph, pool) = setup(600, 48, 3);
    let (rnn_graph, _) =
        dnnd::rnn_optimize_distributed(&World::new(2), &base, &L2, &graph, RnnParams::new(10));
    let rnn_graph = Arc::new(rnn_graph);
    let params = ServeParams::new(10)
        .serve_seed(0xC0FFEE)
        .n_arrivals(150)
        .offered_qps(3_000.0)
        .forensics(8, 4);

    let (on_knng, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &params);
    let (on_rnn, _) = run_serve(&World::new(2), &base, &rnn_graph, &pool, &L2, &params);
    assert!(
        on_rnn.stats.total_answered() > 0,
        "rnn graph answered nothing"
    );

    // Same fingerprint and digest at 1, 2, and 4 ranks over the rnn graph.
    for ranks in [1usize, 4] {
        let (other, _) = run_serve(&World::new(ranks), &base, &rnn_graph, &pool, &L2, &params);
        assert_eq!(
            other.stats.fingerprint(),
            on_rnn.stats.fingerprint(),
            "rnn-mode serving fingerprint changed at {ranks} ranks"
        );
        assert_eq!(
            other.forensics.digest, on_rnn.forensics.digest,
            "rnn-mode forensics digest changed at {ranks} ranks"
        );
    }

    // The workload plan (arrivals, admission) is graph-independent, but
    // the search telemetry inside the records is not: the sparser rnn
    // graph must leave a different forensics digest than the raw knng.
    assert_eq!(on_rnn.stats.offered, on_knng.stats.offered);
    assert_ne!(
        on_rnn.forensics.digest, on_knng.forensics.digest,
        "forensics digest blind to the graph being served"
    );
}

/// The ISSUE-9 acceptance scenario, pinned: a closed-loop Zipfian
/// flash-crowd workload with two tenant classes is bit-identical — the
/// minted arrival log, every admission verdict, the per-tenant SLO
/// counters, and the forensics digest — across reruns and rank counts
/// {1, 2, 4}.
#[test]
fn closed_loop_flash_crowd_with_tenants_is_bit_identical_across_ranks() {
    let (base, graph, pool) = setup(600, 48, 3);
    let params = ServeParams::new(10)
        .serve_seed(0xF1A5_4C20)
        .slot_ns(1_000_000)
        .n_arrivals(160)
        .batch(4)
        .flush_age_slots(2)
        .deadline_slots(6)
        .watermarks(8, 20)
        .cache(8, 1e-3)
        .forensics(8, 4)
        .workload_str(
            "closed:n=48,think=3ms;zipf:s=1.1;burst:at=8ms,x=16,dur=40ms;\
             tenants=gold:50%,free:50%",
        );
    let (reference, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &params);
    let s = &reference.stats;

    // The scenario genuinely exercises every DSL axis before we pin it.
    assert_eq!(s.tenants.len(), 2, "two tenant classes expected");
    assert_eq!(s.tenants[0].name, "gold");
    assert_eq!(s.tenants[1].name, "free");
    assert!(
        s.shed_overload > 0,
        "flash crowd engaged no overload shedding: {s:?}"
    );
    assert!(s.cache_hits > 0, "zipf workload produced no cache hits");
    // Tenant counters partition the run's totals exactly.
    assert_eq!(s.tenants.iter().map(|t| t.offered).sum::<u64>(), s.offered);
    assert_eq!(
        s.tenants.iter().map(|t| t.shed_overload).sum::<u64>(),
        s.shed_overload
    );
    assert_eq!(
        s.tenants.iter().map(|t| t.total_answered()).sum::<u64>(),
        s.total_answered()
    );
    // Both classes carry real traffic and get real answers (the
    // gold-vs-free SLO *ordering* under priority drain is asserted by the
    // bench flash-crowd smoke, where the sample is large enough for the
    // quota split to dominate draw noise).
    for t in &s.tenants {
        assert!(t.offered > 0, "tenant {} was offered nothing", t.name);
        assert!(t.total_answered() > 0, "tenant {} answered nothing", t.name);
        assert_eq!(
            t.latency_hist.iter().map(|&(_, c)| c).sum::<u64>(),
            t.total_answered(),
            "tenant {} histogram mass != answered",
            t.name
        );
    }
    // Closed-loop retries exist: some minted arrival re-issues an earlier
    // first attempt, so client-perceived latency can accumulate.
    assert!(
        reference
            .arrivals
            .iter()
            .any(|a| a.first_issue_slot < a.slot),
        "no shed query was ever retried"
    );
    assert!(reference.arrivals.len() as u64 >= s.offered);

    // Pin: the full outcome — stats (tenant counters included), answers,
    // the minted arrival log, and forensics — is replicated exactly.
    let (rerun, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &params);
    assert_eq!(rerun, reference, "flash-crowd scenario diverged on rerun");
    for ranks in [1usize, 4] {
        let (other, _) = run_serve(&World::new(ranks), &base, &graph, &pool, &L2, &params);
        assert_eq!(
            other, reference,
            "flash-crowd outcome changed between 2 and {ranks} ranks"
        );
    }
}

/// Coordinated omission, made visible: the same Zipfian flash-crowd shape
/// driven open-loop vs closed-loop sheds in both modes, but only the
/// closed loop's *client-perceived* p99 diverges upward from the answered
/// p99 — open-loop measurement never sees shed-and-retry wait.
#[test]
fn coordinated_omission_closed_loop_client_p99_diverges_from_open_loop() {
    let (base, graph, pool) = setup(600, 48, 3);
    let shape = "zipf:s=1.1;burst:at=5ms,x=16,dur=60ms";
    let common = |spec: String| {
        ServeParams::new(10)
            .serve_seed(0xC0_0111)
            .slot_ns(1_000_000)
            .n_arrivals(200)
            .offered_qps(6_000.0)
            .batch(4)
            .flush_age_slots(2)
            .deadline_slots(6)
            .watermarks(6, 12)
            .cache(8, 1e-3)
            .workload_str(&spec)
    };
    let open_params = common(format!("open;{shape}"));
    let closed_params = common(format!("closed:n=64,think=1ms;{shape}"));
    let (open, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &open_params);
    let (closed, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &closed_params);

    // Both modes saturate the same admission ladder.
    assert!(open.stats.shed_overload > 0, "open-loop burst never shed");
    assert!(
        closed.stats.shed_overload > 0,
        "closed-loop burst never shed"
    );

    // Open loop: a shed query is simply lost; what remains is measured
    // from its only issue, so the client view *is* the server view.
    assert_eq!(
        open.stats.client_hist, open.stats.latency_hist,
        "open-loop client histogram must equal the answered histogram"
    );

    // Closed loop: shed queries are re-issued with their first-issue slot
    // preserved, so retry wait accumulates into the client view and the
    // client p99 is strictly higher than the answered p99.
    let answered_p99 = closed.stats.percentile_ns(0.99);
    let client_p99 = closed.stats.client_percentile_ns(0.99);
    assert!(
        client_p99 > answered_p99,
        "closed-loop client p99 {client_p99} ns did not diverge above \
         answered p99 {answered_p99} ns under saturation"
    );
}

/// A Zipfian pool concentrates traffic on a few hot keys, so the
/// quantized-key LRU cache hits far more often than under a uniform pool
/// of the same size — and both hit counts are exact replicated integers.
#[test]
fn zipf_pool_beats_uniform_on_cache_hits_with_exact_replicated_counts() {
    let (base, graph, pool) = setup(600, 48, 3);
    let common = |spec: &str| {
        ServeParams::new(10)
            .serve_seed(0x2F01)
            .n_arrivals(200)
            .offered_qps(2_000.0)
            .cache(8, 1e-3)
            .workload_str(spec)
    };
    // `zipf:s=0` is the uniform distribution over the same pool.
    let (uniform, _) = run_serve(
        &World::new(2),
        &base,
        &graph,
        &pool,
        &L2,
        &common("zipf:s=0"),
    );
    let (zipf, _) = run_serve(
        &World::new(2),
        &base,
        &graph,
        &pool,
        &L2,
        &common("zipf:s=1.1"),
    );
    assert!(
        zipf.stats.cache_hits > uniform.stats.cache_hits,
        "zipf hit the cache {} times, uniform {} — skew should win",
        zipf.stats.cache_hits,
        uniform.stats.cache_hits
    );
    assert!(zipf.stats.cache_hits > 0);

    // "Exact" means exact: reruns and other rank counts reproduce the
    // same integer hit counts (and the whole stats block with them).
    for (params, first) in [
        (common("zipf:s=0"), &uniform),
        (common("zipf:s=1.1"), &zipf),
    ] {
        let (rerun, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &params);
        assert_eq!(rerun.stats, first.stats, "stats diverged on rerun");
        let (one, _) = run_serve(&World::new(1), &base, &graph, &pool, &L2, &params);
        assert_eq!(
            one.stats.cache_hits, first.stats.cache_hits,
            "cache hit count changed at 1 rank"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Property: for any serve seed, a 1-rank and a 2-rank run agree on
    /// every replicated serving field.
    #[test]
    fn any_seed_agrees_across_rank_counts(seed in 0u64..1_000_000) {
        let (base, graph, pool) = setup(300, 24, 1);
        let params = ServeParams::new(8)
            .serve_seed(seed)
            .n_arrivals(60)
            .offered_qps(4_000.0);
        let (one, _) = run_serve(&World::new(1), &base, &graph, &pool, &L2, &params);
        let (two, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &params);
        prop_assert_eq!(one, two);
    }
}
