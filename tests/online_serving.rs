//! Integration tests of the online serving layer (`crates/serve`): the
//! determinism contract (same seed => bit-identical serving runs across
//! reruns *and* rank counts) and the overload behavior (shedding keeps
//! tail latency bounded while answered-query quality holds).

use dataset::set::{PointId, PointSet};
use dataset::synth::{gaussian_mixture, split_queries, MixtureParams};
use dataset::{brute_force_queries, L2};
use dnnd::{build, DnndConfig};
use nnd::graph::KnnGraph;
use proptest::prelude::*;
use serve::{run_serve, ServeOutcome, ServeParams};
use std::sync::Arc;
use ygm::World;

type Setup = (
    Arc<PointSet<Vec<f32>>>,
    Arc<KnnGraph>,
    Arc<PointSet<Vec<f32>>>,
);

/// One shared base/graph/query-pool fixture (building the graph dominates
/// test cost; serving runs against it are cheap).
fn setup(n: usize, pool: usize, seed: u64) -> Setup {
    let full = gaussian_mixture(MixtureParams::embedding_like(n, 12), seed);
    let (base, queries) = split_queries(full, pool);
    let base = Arc::new(base);
    let out = build(
        &World::new(2),
        &base,
        &L2,
        DnndConfig::new(10).seed(7).graph_opt(1.5),
    );
    (base, Arc::new(out.graph), Arc::new(queries))
}

/// Mean recall of the *answered* queries against brute-force truth.
fn answered_recall(outcome: &ServeOutcome, truth: &[Vec<PointId>], k: usize) -> f64 {
    let mut total = 0.0;
    for (_, pool_id, ids) in &outcome.answers {
        let hits = ids.iter().filter(|id| truth[*pool_id].contains(id)).count();
        total += hits as f64 / k as f64;
    }
    total / outcome.answers.len() as f64
}

#[test]
fn same_seed_is_bit_identical_across_reruns_and_rank_counts() {
    let (base, graph, pool) = setup(600, 48, 3);
    let params = ServeParams::new(10)
        .serve_seed(0xC0FFEE)
        .n_arrivals(150)
        .offered_qps(3_000.0);

    let (reference, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &params);
    assert!(reference.stats.total_answered() > 0, "nothing answered");

    // Rerun at the same rank count: every replicated field must match.
    let (rerun, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &params);
    assert_eq!(rerun, reference, "rerun diverged");

    // The serving section is measured on the slot clock, so it is also
    // identical across rank counts — admitted/shed/cache-hit sets,
    // latencies, and the result digest included.
    for ranks in [1usize, 4] {
        let (other, _) = run_serve(&World::new(ranks), &base, &graph, &pool, &L2, &params);
        assert_eq!(
            other, reference,
            "serving outcome changed between 2 and {ranks} ranks"
        );
    }
}

#[test]
fn different_seeds_produce_different_schedules() {
    let (base, graph, pool) = setup(400, 32, 5);
    let params = ServeParams::new(10).n_arrivals(80).offered_qps(2_000.0);
    let (a, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &params);
    let (b, _) = run_serve(
        &World::new(2),
        &base,
        &graph,
        &pool,
        &L2,
        &params.clone().serve_seed(0xBEEF),
    );
    assert_ne!(
        a.stats.fingerprint(),
        b.stats.fingerprint(),
        "two seeds produced identical serving runs"
    );
}

#[test]
fn overload_sheds_but_keeps_tail_latency_bounded_and_quality_high() {
    let (base, graph, pool) = setup(600, 48, 9);
    let truth = brute_force_queries(&base, &pool, &L2, 10);

    // Unloaded baseline: gentle trickle, nothing shed.
    let unloaded = ServeParams::new(10)
        .n_arrivals(100)
        .offered_qps(500.0)
        .batch(4);
    let (calm, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &unloaded);
    assert_eq!(calm.stats.shed_overload, 0, "trickle load shed queries");
    let calm_recall = answered_recall(&calm, &truth.ids, 10);
    assert!(calm_recall > 0.8, "unloaded recall {calm_recall}");

    // Overload: ~2x the arrival rate the frontend can drain. Shedding and
    // degradation must engage, the deadline must cap answered latency,
    // and the queries that *are* answered must stay close to baseline
    // quality (degrade shrinks epsilon/beam, it does not break search).
    let slam = ServeParams::new(10)
        .n_arrivals(300)
        .offered_qps(20_000.0)
        .batch(4)
        .watermarks(12, 32)
        .deadline_slots(6);
    let (hot, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &slam);
    let s = &hot.stats;
    assert!(
        s.shed_overload + s.shed_deadline > 0,
        "overload engaged no shedding: {s:?}"
    );
    assert!(s.max_queue_depth <= 32, "queue blew past shed watermark");
    // A query older than deadline_slots is shed, so answered latency is
    // capped at deadline_slots + 1 slots (fault-free run: no penalties).
    let bound_ns = (slam.deadline_slots + 1) * slam.slot_ns;
    assert!(
        s.percentile_ns(0.99) <= bound_ns,
        "p99 {} ns exceeds deadline bound {} ns",
        s.percentile_ns(0.99),
        bound_ns
    );
    let hot_recall = answered_recall(&hot, &truth.ids, 10);
    assert!(
        hot_recall >= calm_recall - 0.05,
        "answered-query recall collapsed under load: {hot_recall} vs {calm_recall}"
    );
}

#[test]
fn faults_surface_as_latency_penalties_not_different_answers() {
    let (base, graph, pool) = setup(400, 32, 13);
    let params = ServeParams::new(10).n_arrivals(60).offered_qps(1_500.0);
    let (clean, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &params);
    let world = World::new(2).fault_plan(ygm::FaultPlan::new(ygm::FaultProfile::lossy(), 42));
    let (faulty, _) = run_serve(&world, &base, &graph, &pool, &L2, &params);
    // Same answers (reliable delivery + replicated control plane) ...
    assert_eq!(faulty.answers, clean.answers);
    assert_eq!(faulty.stats.result_digest, clean.stats.result_digest);
    // ... but retransmits are charged against query latency.
    assert!(
        faulty.stats.fault_penalty_slots >= clean.stats.fault_penalty_slots,
        "faulty run reported less penalty than clean"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Property: for any serve seed, a 1-rank and a 2-rank run agree on
    /// every replicated serving field.
    #[test]
    fn any_seed_agrees_across_rank_counts(seed in 0u64..1_000_000) {
        let (base, graph, pool) = setup(300, 24, 1);
        let params = ServeParams::new(8)
            .serve_seed(seed)
            .n_arrivals(60)
            .offered_qps(4_000.0);
        let (one, _) = run_serve(&World::new(1), &base, &graph, &pool, &L2, &params);
        let (two, _) = run_serve(&World::new(2), &base, &graph, &pool, &L2, &params);
        prop_assert_eq!(one, two);
    }
}
