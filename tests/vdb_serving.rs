//! Integration tests of the vector-DB product layer under distributed
//! serving (`crates/vdb` + `serve::run_serve_vdb`):
//!
//! * the tombstone-visibility contract — once an id is deleted, it never
//!   appears in any result set again, before *or* after compaction;
//! * filter-pushed search is bit-identical across reruns, rank counts
//!   {1, 2, 4}, and kernel dispatch (cached-norm batched kernels vs the
//!   scalar pair-by-pair path);
//! * online inserts/deletes with watermark-triggered compaction replay
//!   bit-identically and keep the liveness classes partitioning the id
//!   space.

use dataset::batch::BatchMetric;
use dataset::metric::Metric;
use dataset::set::{PointId, PointSet};
use dataset::synth::{gaussian_mixture, split_queries, MixtureParams};
use dataset::L2;
use metall::Store;
use serve::{run_serve_vdb, ServeParams, VdbServeConfig};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use testutil::TmpDir;
use vdb::Collection;
use ygm::World;

const NS: &str = "it";

/// One collection + query-pool fixture: the collection indexes the base
/// split with deterministic per-id `bucket` metadata.
fn fixture(n: usize, pool_n: usize, k: usize, seed: u64) -> (Collection, Arc<PointSet<Vec<f32>>>) {
    let full = gaussian_mixture(MixtureParams::embedding_like(n, 12), seed);
    let (base, queries) = split_queries(full, pool_n);
    let meta = (0..base.len() as u64)
        .map(|id| vdb::MetaRecord::bucket_record(seed, id))
        .collect();
    let collection = Collection::create(NS, base, meta, "l2", k, seed).expect("create");
    (collection, Arc::new(queries))
}

/// (Re-)persist `c` as the only namespace of a fresh store at `dir`.
fn persist(dir: &Path, c: &Collection) {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).unwrap();
    let mut store = Store::create(dir).expect("store");
    c.save(&mut store).expect("save");
}

fn base_params(arrivals: usize) -> ServeParams {
    ServeParams::new(8)
        .serve_seed(0xBD8)
        .n_arrivals(arrivals)
        .offered_qps(3_000.0)
}

/// A deleted id must never be served again: not from the graph, not from
/// the cache, not before compaction, not after it.
#[test]
fn tombstoned_ids_never_returned_before_or_after_compaction() {
    let (collection, pool) = fixture(240, 24, 8, 11);
    let dir = TmpDir::new("vdb-tombstone");
    let params = base_params(160);
    let cfg = VdbServeConfig::default();

    persist(dir.path(), &collection);
    let (before, _, _) = run_serve_vdb(&World::new(2), dir.path(), NS, &pool, &L2, &params, &cfg);
    assert!(before.stats.total_answered() > 0, "nothing answered");

    // Delete the three ids the unfiltered run returned most often — the
    // worst case for both the beam search and the result cache.
    let mut freq: BTreeMap<PointId, usize> = BTreeMap::new();
    for (_, _, ids) in &before.answers {
        for &id in ids {
            *freq.entry(id).or_default() += 1;
        }
    }
    let mut by_freq: Vec<(usize, PointId)> = freq.iter().map(|(&id, &n)| (n, id)).collect();
    by_freq.sort_unstable_by(|a, b| b.cmp(a));
    let victims: Vec<PointId> = by_freq.iter().take(3).map(|&(_, id)| id).collect();
    assert_eq!(victims.len(), 3, "fixture too small to pick victims");

    let mut deleted = collection.clone();
    assert_eq!(deleted.delete(&victims).expect("delete"), 3);

    // Pre-compaction: tombstones are masked out at the home rank and
    // filtered from cache hits.
    persist(dir.path(), &deleted);
    let (masked, _, _) = run_serve_vdb(&World::new(2), dir.path(), NS, &pool, &L2, &params, &cfg);
    assert!(
        masked.stats.total_answered() > 0,
        "masked run answered none"
    );
    for (idx, _, ids) in &masked.answers {
        for v in &victims {
            assert!(
                !ids.contains(v),
                "tombstoned id {v} returned pre-compaction for arrival {idx}"
            );
        }
    }

    // Post-compaction: the ids are now dead (adjacency rewritten, epoch
    // bumped) and must stay invisible.
    let report = deleted.compact().expect("compact");
    assert_eq!(report.tombstones_cleared, 3);
    persist(dir.path(), &deleted);
    let (compacted, stat, _) =
        run_serve_vdb(&World::new(2), dir.path(), NS, &pool, &L2, &params, &cfg);
    assert!(compacted.stats.total_answered() > 0);
    assert_eq!(stat.dead, 3);
    assert_eq!(stat.tombstones, 0);
    for (idx, _, ids) in &compacted.answers {
        for v in &victims {
            assert!(
                !ids.contains(v),
                "dead id {v} returned post-compaction for arrival {idx}"
            );
        }
    }
}

/// The scalar pair-by-pair fallback path of [`BatchMetric`]: same metric
/// bits as [`L2`], no cached-norm kernels.
#[derive(Debug, Clone, Copy)]
struct ScalarL2;

impl Metric<Vec<f32>> for ScalarL2 {
    fn distance(&self, a: &Vec<f32>, b: &Vec<f32>) -> f32 {
        L2.distance(a, b)
    }
    fn name(&self) -> &'static str {
        "l2"
    }
}

// All default methods: empty norm cache, pair-by-pair evaluation.
impl BatchMetric<Vec<f32>> for ScalarL2 {}

/// Filter-pushed distributed search is a pure function of the serve seed:
/// bit-identical across reruns, across rank counts, and across kernel
/// dispatch (batched cached-norm vs scalar evaluation).
#[test]
fn filtered_search_is_bit_identical_across_reruns_ranks_and_kernels() {
    let (collection, pool) = fixture(240, 24, 8, 13);
    let dir = TmpDir::new("vdb-identity");
    persist(dir.path(), &collection);

    // Static predicate AND-ed with per-query filter: traffic.
    let cfg = VdbServeConfig {
        filter: Some("bucket in [0 .. 59]".parse().expect("predicate")),
        ..VdbServeConfig::default()
    };
    let params = base_params(140).workload_str("filter:pct=60,sel=0.4");

    let (reference, _, _) =
        run_serve_vdb(&World::new(2), dir.path(), NS, &pool, &L2, &params, &cfg);
    let v = reference.stats.vdb.as_ref().expect("vdb stats");
    assert!(v.filtered > 0, "no query carried a predicate");
    assert!(
        !v.selectivity_hist.is_empty(),
        "filtered dispatches recorded no selectivity"
    );

    // Rerun: the store is unmutated, so the same dir replays exactly.
    let (rerun, _, _) = run_serve_vdb(&World::new(2), dir.path(), NS, &pool, &L2, &params, &cfg);
    assert_eq!(rerun, reference, "rerun diverged");

    // Rank counts: the mask is evaluated at each query's home rank, but
    // the outcome is replicated and slot-clocked.
    for ranks in [1usize, 4] {
        let (other, _, _) = run_serve_vdb(
            &World::new(ranks),
            dir.path(),
            NS,
            &pool,
            &L2,
            &params,
            &cfg,
        );
        assert_eq!(
            other, reference,
            "filtered outcome changed between 2 and {ranks} ranks"
        );
    }

    // Kernel dispatch: the scalar path must reproduce the batched path
    // bit for bit (the BatchMetric contract, now under masking).
    let (scalar, _, _) = run_serve_vdb(
        &World::new(2),
        dir.path(),
        NS,
        &pool,
        &ScalarL2,
        &params,
        &cfg,
    );
    assert_eq!(
        scalar, reference,
        "scalar kernel dispatch diverged from batched"
    );
}

/// Online inserts/deletes and the watermark-triggered compaction replay
/// bit-identically from a pristine store, keep the liveness classes
/// partitioning the id space, and persist the mutated namespace.
#[test]
fn online_mutations_replay_bit_identically_and_persist() {
    let (collection, pool) = fixture(240, 24, 8, 17);
    let dir = TmpDir::new("vdb-mutate");
    let initial_points = collection.stat().points;
    let cfg = VdbServeConfig {
        compact_watermark: 0.01,
        ..VdbServeConfig::default()
    };
    let params = base_params(200).workload_str("filter:pct=50,sel=0.3;mutate:ins=9,del=6");

    persist(dir.path(), &collection);
    let (reference, stat, _) =
        run_serve_vdb(&World::new(2), dir.path(), NS, &pool, &L2, &params, &cfg);
    let v = reference.stats.vdb.as_ref().expect("vdb stats");
    assert!(v.inserts > 0, "schedule applied no inserts");
    assert!(v.deletes > 0, "schedule applied no deletes");
    assert!(v.compactions > 0, "watermark never triggered compaction");
    assert_eq!(
        stat.live + stat.tombstones + stat.dead,
        stat.points,
        "liveness classes must partition the id space"
    );
    assert_eq!(stat.points, initial_points + v.inserts);
    assert!(stat.epoch > 0, "ingest/compact must bump the epoch");

    // The mutated namespace was saved back: reopening shows the final
    // counters the run reported.
    let store = Store::open(dir.path()).expect("reopen");
    let persisted = Collection::open(&store, NS).expect("open");
    assert_eq!(persisted.stat(), stat);
    drop(store);

    // Pristine store -> the whole mutation schedule replays exactly.
    persist(dir.path(), &collection);
    let (replay, replay_stat, _) =
        run_serve_vdb(&World::new(2), dir.path(), NS, &pool, &L2, &params, &cfg);
    assert_eq!(replay, reference, "mutating run diverged on replay");
    assert_eq!(replay_stat, stat);
}
