//! Integration tests pinned to the paper's quantitative claims, at reduced
//! scale: Section 5.2 recall floors, Figure 4's ~50% traffic reduction,
//! Figure 3's strong-scaling mechanism, and the Figure 2 quality ordering
//! between DNND and the HNSW baseline.

use dataset::metric::{Cosine, Jaccard, L2};
use dataset::synth::split_queries;
use dataset::{brute_force_knng, brute_force_queries, mean_recall, presets};
use dnnd::{build, CommOpts, DnndConfig};
use hnsw::{HnswIndex, HnswParams};
use nnd::{search_batch, SearchParams};
use std::sync::Arc;
use ygm::World;

/// Section 5.2: DNND builds high-recall graphs on all small-dataset
/// metrics. The paper reports 0.93-0.99+ at k=100 on the full datasets;
/// at toy scale with k=10 we pin a floor per metric family.
#[test]
fn section_5_2_recall_floors() {
    let n = 600;
    let k = 10;
    let seed = 3;

    let deep = Arc::new(presets::glove25_like(n, seed));
    let out = build(
        &World::new(4),
        &deep,
        &Cosine,
        DnndConfig::new(k).seed(seed),
    );
    let truth = brute_force_knng(&deep, &Cosine, k);
    let r = mean_recall(&out.graph.neighbor_ids(), &truth);
    assert!(r > 0.9, "glove-like cosine recall {r}");

    let ny = Arc::new(presets::nytimes_like(n, seed));
    let out = build(&World::new(4), &ny, &Cosine, DnndConfig::new(k).seed(seed));
    let truth = brute_force_knng(&ny, &Cosine, k);
    let r = mean_recall(&out.graph.neighbor_ids(), &truth);
    assert!(r > 0.85, "nytimes-like cosine recall {r}");

    let kos = Arc::new(presets::kosarak_like(400, seed));
    let out = build(
        &World::new(4),
        &kos,
        &Jaccard,
        DnndConfig::new(k).seed(seed),
    );
    let truth = brute_force_knng(&kos, &Jaccard, k);
    let r = mean_recall(&out.graph.neighbor_ids(), &truth);
    assert!(r > 0.55, "kosarak-like jaccard recall {r}");
}

/// Figure 4: the optimized protocol cuts neighbor-check messages and bytes
/// by roughly half on both the f32 and the u8 billion-scale stand-ins, and
/// the u8 dataset moves fewer bytes than the f32 one.
#[test]
fn figure_4_traffic_reduction_and_u8_asymmetry() {
    let k = 10;
    let seed = 17;
    let ranks = 8;
    let deep = Arc::new(presets::deep1b_like(700, seed));
    let big = Arc::new(presets::bigann_like(700, seed));

    let mut volumes = Vec::new();
    for (label, opts) in [
        ("unopt", CommOpts::unoptimized()),
        ("opt", CommOpts::optimized()),
    ] {
        let d = build(
            &World::new(ranks),
            &deep,
            &L2,
            DnndConfig::new(k).seed(seed).comm_opts(opts),
        );
        let b = build(
            &World::new(ranks),
            &big,
            &L2,
            DnndConfig::new(k).seed(seed).comm_opts(opts),
        );
        let dt = d.report.check_traffic();
        let bt = b.report.check_traffic();
        // Figure 4b asymmetry: u8 vectors (128d) are lighter on the wire
        // than f32 vectors (96d): 128 B vs 384 B per vector.
        assert!(
            bt.bytes < dt.bytes,
            "{label}: BigANN bytes {} !< DEEP bytes {}",
            bt.bytes,
            dt.bytes
        );
        volumes.push((dt, bt));
    }
    let (deep_unopt, big_unopt) = volumes[0];
    let (deep_opt, big_opt) = volumes[1];
    for (label, unopt, opt) in [
        ("deep", deep_unopt, deep_opt),
        ("bigann", big_unopt, big_opt),
    ] {
        let count_ratio = opt.count as f64 / unopt.count as f64;
        let byte_ratio = opt.bytes as f64 / unopt.bytes as f64;
        assert!(
            (0.3..=0.7).contains(&count_ratio),
            "{label}: message reduction {count_ratio} outside ~50% band"
        );
        assert!(
            (0.3..=0.7).contains(&byte_ratio),
            "{label}: volume reduction {byte_ratio} outside ~50% band"
        );
    }
}

/// Figure 3 mechanism: virtual construction time falls monotonically with
/// rank count over the paper's 4 -> 32 range, with strongly sublinear
/// (diminishing-returns) aggregate speedup. Per-octave speedup ratios are
/// no longer compared: the row-batched check protocol ships each vector
/// once per destination rank, so small worlds start from a much lower
/// traffic baseline than per-pair messaging did, and the optimized
/// protocol's arrival-order-dependent filtering adds scheduling noise of
/// the same magnitude as an octave-to-octave ratio difference.
#[test]
fn figure_3_strong_scaling_shape() {
    let set = Arc::new(presets::deep1b_like(700, 23));
    let mut times = Vec::new();
    for ranks in [4usize, 8, 16, 32] {
        let out = build(&World::new(ranks), &set, &L2, DnndConfig::new(10).seed(23));
        times.push(out.report.sim_secs);
    }
    for w in times.windows(2) {
        assert!(w[1] < w[0], "virtual time must fall with ranks: {times:?}");
    }
    // 8x the ranks buys a real speedup, but well under 8x: communication
    // and barrier overheads eat the rest (the Figure 3 flattening).
    let total_speedup = times[0] / times[3];
    assert!(
        (1.4..=4.0).contains(&total_speedup),
        "4->32 speedup {total_speedup} outside the diminishing-returns band: {times:?}"
    );
}

/// Figure 2 ordering: on the same dataset, a DNND k30 graph answers
/// queries at least as accurately as a DNND k10 graph, and reaches the
/// recall band of a strong HNSW index.
#[test]
fn figure_2_quality_ordering() {
    let (base, queries) = split_queries(presets::deep1b_like(900, 31), 80);
    let base = Arc::new(base);
    let truth = brute_force_queries(&base, &queries, &L2, 10);

    let mut recalls = Vec::new();
    for k in [10usize, 30] {
        let out = build(
            &World::new(4),
            &base,
            &L2,
            DnndConfig::new(k).seed(31).graph_opt(1.5),
        );
        let batch = search_batch(
            &out.graph,
            &base,
            &L2,
            &queries,
            SearchParams::new(10)
                .epsilon(0.2)
                .entry_candidates(32)
                .seed(1),
        );
        recalls.push(mean_recall(&batch.ids, &truth));
    }
    let (r10, r30) = (recalls[0], recalls[1]);
    assert!(r30 >= r10 - 0.01, "k30 ({r30}) must not trail k10 ({r10})");

    let idx = HnswIndex::build(&base, L2, HnswParams::new(16, 100).seed(31));
    let (ids, _) = idx.search_batch(&queries, 10, 100);
    let r_hnsw = mean_recall(&ids, &truth);
    assert!(
        r30 >= r_hnsw - 0.05,
        "DNND k30 ({r30}) should reach the HNSW band ({r_hnsw})"
    );
}

/// The RNN-Descent extension's claim (after GRNND): occlusion pruning
/// yields a graph that matches or beats the Section 4.5 reverse-prune pass
/// on search recall *at equal beam width* while carrying strictly fewer
/// edges. Fixture mirrors the pipeline golden preset (DEEP-like 600 base
/// points, k=8, seed 7, unoptimized protocol) and the serving layer's
/// default search parameters.
#[test]
fn rnn_mode_recall_parity_with_fewer_edges() {
    let (n, pool_n, k, seed) = (600usize, 32usize, 8u32, 7u64);
    let (base, queries) = split_queries(presets::deep1b_like(n + pool_n, seed), pool_n);
    let base = Arc::new(base);

    let out = build(
        &World::new(2),
        &base,
        &L2,
        DnndConfig::new(k as usize)
            .seed(seed)
            .comm_opts(CommOpts::unoptimized()),
    );
    let raw = out.graph;

    // Section 4.5 pass at its dnnd-optimize default (prune to ceil(k*1.5)).
    let rp = raw.merge_reverse().prune((k as f64 * 1.5).ceil() as usize);
    // RNN-Descent at its default schedule, k0 = 10.
    let (rnn, _) = dnnd::rnn_optimize_distributed(
        &World::new(2),
        &base,
        &L2,
        &raw,
        nnd::rnn::RnnParams::new(10),
    );

    assert!(
        rnn.edge_count() < rp.edge_count(),
        "rnn graph not sparser: {} vs {} edges",
        rnn.edge_count(),
        rp.edge_count()
    );

    // Equal beam width (the serving layer's defaults): only the graph
    // differs between the two searches.
    let truth = brute_force_queries(&base, &queries, &L2, k as usize);
    let search = |g: &nnd::KnnGraph| {
        let batch = search_batch(
            g,
            &base,
            &L2,
            &queries,
            SearchParams::new(12).epsilon(0.1).entry_candidates(24),
        );
        let ids: Vec<Vec<u32>> = batch
            .ids
            .iter()
            .map(|row| row.iter().take(k as usize).copied().collect())
            .collect();
        mean_recall(&ids, &truth)
    };
    let rp_recall = search(&rp);
    let rnn_recall = search(&rnn);
    assert!(
        rnn_recall >= rp_recall,
        "rnn recall {rnn_recall:.4} below reverse-prune {rp_recall:.4} at equal beam width"
    );
    assert!(
        rnn_recall > 0.9,
        "rnn absolute recall floor: {rnn_recall:.4}"
    );
}

/// The paper's Section 4.4 rationale: batched barriers do not change the
/// result, only the communication schedule.
#[test]
fn batching_is_schedule_only() {
    let set = Arc::new(presets::deep1b_like(400, 37));
    let truth = brute_force_knng(&set, &L2, 6);
    let mut recalls = Vec::new();
    for batch in [1u64 << 8, 1 << 14, 1 << 20] {
        let out = build(
            &World::new(4),
            &set,
            &L2,
            DnndConfig::new(6).seed(37).batch_size(batch),
        );
        recalls.push(mean_recall(&out.graph.neighbor_ids(), &truth));
    }
    let spread = recalls.iter().cloned().fold(f64::MIN, f64::max)
        - recalls.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 0.08, "batch size changed quality: {recalls:?}");
}
