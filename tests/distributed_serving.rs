//! Integration: the "massive-scale framework" path — build distributed,
//! persist the graph *sharded per rank* (never gathered), reload the
//! shards, and serve queries with the fully distributed search engine.

use dataset::synth::{gaussian_mixture, split_queries, MixtureParams};
use dataset::{brute_force_queries, mean_recall, L2};
use dnnd::{
    build, destroy_sharded, distributed_search_batch, load_sharded, save_sharded, DistSearchParams,
    DnndConfig, Partitioner,
};
use std::sync::Arc;
use ygm::World;

use testutil::TmpDir;

#[test]
fn build_shard_reload_serve() {
    // The guard removes the shard directory even when an assert fails;
    // destroy_sharded below additionally exercises the explicit teardown.
    let dir = TmpDir::new("e2e");
    let ranks = 4;
    let full = gaussian_mixture(MixtureParams::embedding_like(800, 12), 3);
    let (base, queries) = split_queries(full, 60);
    let base = Arc::new(base);
    let queries = Arc::new(queries);

    // Build + optimize distributed, then persist sharded by the same
    // partitioner the ranks used.
    let out = build(
        &World::new(ranks),
        &base,
        &L2,
        DnndConfig::new(10).seed(7).graph_opt(1.5),
    );
    save_sharded(&out.graph, &dir, ranks).unwrap();

    // Reload from the shards alone and serve distributed queries.
    let graph = Arc::new(load_sharded(&dir).unwrap());
    assert_eq!(&graph.as_ref().clone(), &out.graph);
    let truth = brute_force_queries(&base, &queries, &L2, 10);
    let (ids, report) = distributed_search_batch(
        &World::new(ranks),
        &base,
        &graph,
        &queries,
        &L2,
        DistSearchParams::new(10).epsilon(0.2).entry_candidates(48),
    );
    let recall = mean_recall(&ids, &truth);
    assert!(recall > 0.85, "served recall {recall}");
    assert!(report.sim_secs > 0.0);
    destroy_sharded(&dir, ranks).unwrap();
}

#[test]
fn shard_count_is_independent_of_build_ranks() {
    // The graph built on 4 ranks can be re-sharded for a 2-rank serving
    // fleet; the partitioner is a pure function of (id, n_ranks).
    let dir = TmpDir::new("reshard");
    let base = Arc::new(gaussian_mixture(MixtureParams::embedding_like(300, 8), 5));
    let out = build(&World::new(4), &base, &L2, DnndConfig::new(6).seed(9));
    save_sharded(&out.graph, &dir, 2).unwrap();
    let part = Partitioner::new(2);
    for rank in 0..2 {
        for v in dnnd::persist::shard_vertices(&dir, rank).unwrap() {
            assert_eq!(part.owner(v), rank);
        }
    }
    let back = load_sharded(&dir).unwrap();
    assert_eq!(back, out.graph);
    destroy_sharded(&dir, 2).unwrap();
}

#[test]
fn distributed_queries_amortize_rounds() {
    // The engine advances all live queries one expansion per global round,
    // so rounds (and their barrier cost) are *shared* across the batch:
    // 4x the queries must cost far less than 4x the virtual time.
    let full = gaussian_mixture(MixtureParams::embedding_like(700, 12), 11);
    let (base, queries) = split_queries(full, 120);
    let base = Arc::new(base);
    let out = build(
        &World::new(4),
        &base,
        &L2,
        DnndConfig::new(8).seed(3).graph_opt(1.5),
    );
    let graph = Arc::new(out.graph);
    let small = Arc::new(dataset::PointSet::new(queries.points()[..30].to_vec()));
    let large = Arc::new(queries);
    let params = DistSearchParams::new(8).epsilon(0.2).entry_candidates(32);
    let (_, r_small) = distributed_search_batch(&World::new(4), &base, &graph, &small, &L2, params);
    let (_, r_large) = distributed_search_batch(&World::new(4), &base, &graph, &large, &L2, params);
    assert!(
        r_large.sim_secs < r_small.sim_secs * 3.0,
        "4x queries should cost << 4x time: {} -> {}",
        r_small.sim_secs,
        r_large.sim_secs
    );
}
