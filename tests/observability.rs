//! Integration tests for the tracing/metrics subsystem: deterministic span
//! timelines across same-seed runs, RunReport counters matching the runtime
//! `Stats` exactly, Chrome-trace structural validity, and the
//! `--trace-out` / `--report-out` CLI flags end to end.

use dataset::{synth, L2};
use dnnd::{build, BuildReport, CommOpts, DnndConfig};
use obs::{EventKind, JsonValue, RunReport, Tracer};

use std::process::Command;
use std::sync::Arc;
use testutil::TmpDir;
use ygm::World;

fn traced_build(seed: u64) -> (Arc<Tracer>, BuildReport) {
    let set = Arc::new(synth::uniform(400, 8, 7));
    let tracer = Arc::new(Tracer::new(4));
    let world = World::new(4).tracer(Arc::clone(&tracer));
    let out = build(
        &world,
        &set,
        &L2,
        DnndConfig::new(6).seed(seed).graph_opt(1.5),
    );
    (tracer, out.report)
}

/// The span log minus the events that legitimately vary between same-seed
/// runs:
///
/// * "dispatch" / "flush" — when a rank drains its inbox (and when inbox
///   pressure forces a flush) depends on OS message-arrival order.
/// * "flow" / "query" — causal flow-arrow halves ride the flush/dispatch
///   boundaries above, so their count and placement vary the same way
///   (their *pairing* is exact and tested separately).
///
/// "iter_updates" used to be filtered too: the accepted-update counter `c`
/// once tallied transient heap insertions, so its value depended on
/// arrival order. `c` now counts end-of-iteration heap survivors — a pure
/// function of the delivered message multiset — so it stays in the
/// deterministic log and this test doubles as its regression test.
///
/// Everything else is engine control flow keyed to the virtual clock,
/// which only advances while every rank sits inside a collective — so the
/// filtered log must be identical run to run, timestamps included.
fn deterministic_log(t: &Tracer) -> Vec<Vec<(EventKind, &'static str, u64, u64)>> {
    t.span_log()
        .into_iter()
        .map(|rank| {
            rank.into_iter()
                .filter(|(_, name, _, _)| {
                    *name != "dispatch" && *name != "flush" && *name != "flow" && *name != "query"
                })
                .collect()
        })
        .collect()
}

#[test]
fn same_seed_runs_emit_identical_span_sequences() {
    // Determinism is asserted on the unoptimized (Type 1 + Type 2)
    // protocol with a pinned iteration count. The optimized protocol's
    // pruning reads the live heap mid-phase (paper Section 4.3: the
    // distance bound and redundancy skip are racy by design), so its
    // message counts — and with them the virtual clock — vary with
    // arrival order. The unoptimized protocol sends exactly one Type 2
    // per Type 1, making every span and virtual timestamp reproducible.
    let run = || {
        let set = Arc::new(synth::uniform(400, 8, 7));
        let tracer = Arc::new(Tracer::new(4));
        let world = World::new(4).tracer(Arc::clone(&tracer));
        build(
            &world,
            &set,
            &L2,
            DnndConfig::new(6)
                .seed(11)
                .comm_opts(CommOpts::unoptimized())
                .max_iters(4)
                .graph_opt(1.5),
        );
        tracer
    };
    let (t1, t2) = (run(), run());
    let (a, b) = (deterministic_log(&t1), deterministic_log(&t2));
    assert_eq!(a.len(), 4);
    for (rank, (ra, rb)) in a.iter().zip(&b).enumerate() {
        assert!(
            ra.len() > 20,
            "rank {rank} recorded only {} events",
            ra.len()
        );
        assert_eq!(ra, rb, "rank {rank} span log diverged between runs");
    }
}

#[test]
fn run_report_counters_match_runtime_stats_exactly() {
    let (t, report) = traced_build(5);
    let mut rr = dnnd::obs_report::report_from_build("it", &report);
    dnnd::obs_report::attach_histograms(&mut rr, Some(&t));

    // Per-tag counts and bytes carry over from the Stats aggregation
    // untouched, under the registration-time names.
    assert_eq!(rr.tags.len(), report.tags.len());
    for (tag, name, s) in &report.tags {
        let tr = rr
            .tags
            .iter()
            .find(|x| x.tag == *tag as u64)
            .unwrap_or_else(|| panic!("tag {tag} missing from report"));
        assert_eq!(&tr.name, name);
        assert_eq!(tr.count, s.count);
        assert_eq!(tr.bytes, s.bytes);
        assert_eq!(tr.remote_count, s.remote_count);
        assert_eq!(tr.remote_bytes, s.remote_bytes);
    }
    assert_eq!(rr.total_count, report.total.count);
    assert_eq!(rr.total_bytes, report.total.bytes);
    assert_eq!(rr.total_remote_bytes, report.total.remote_bytes);

    // The optimized protocol's Figure 4 names are the paper's.
    for name in ["Type 1", "Type 2+", "Type 3"] {
        assert!(
            rr.tags.iter().any(|t| t.name == name),
            "missing paper tag name {name:?}"
        );
    }

    // Convergence trajectory and phase records came along.
    assert_eq!(rr.convergence.len(), report.updates_per_iter.len());
    assert_eq!(rr.phases.len(), report.phases.len());
    assert!(rr
        .histograms
        .iter()
        .any(|h| h.name == "dist_evals_per_item" && h.count > 0));

    // And the whole thing survives a JSON round trip bit for bit.
    let back = RunReport::parse(&rr.to_json_string()).expect("report JSON parses");
    assert_eq!(back, rr);
}

#[test]
fn chrome_trace_has_per_rank_tracks_and_all_engine_phases() {
    let (t, report) = traced_build(3);
    let doc = JsonValue::parse(&obs::chrome::chrome_trace_json(&t)).expect("trace parses");
    let events = doc
        .get("traceEvents")
        .expect("traceEvents key")
        .as_arr()
        .expect("traceEvents array");

    // One named, sort-indexed track per rank.
    let track_names: Vec<String> = events
        .iter()
        .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("thread_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str().map(String::from))
        .collect();
    assert_eq!(track_names, vec!["rank 0", "rank 1", "rank 2", "rank 3"]);

    // Every barrier-to-barrier engine phase shows up as a complete span,
    // and none of them were left unterminated.
    let span_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
        .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
        .collect();
    for phase in [
        "init",
        "iteration",
        "sample",
        "reverse_exchange",
        "union_sample",
        "gen_pairs",
        "neighbor_check",
        "graph_optimize",
        "barrier",
        "all_reduce",
        "dispatch",
    ] {
        assert!(span_names.contains(&phase), "missing engine span {phase:?}");
    }
    let unterminated = events
        .iter()
        .filter(|e| e.get("args").and_then(|a| a.get("unterminated")).is_some())
        .count();
    assert_eq!(unterminated, 0, "all instrumented spans must close");

    // One "iteration" span per rank per descent iteration.
    let iter_spans = span_names.iter().filter(|n| **n == "iteration").count();
    assert_eq!(iter_spans, report.iterations * report.n_ranks);
}

/// One traced, fault-free, *unoptimized* build — the protocol whose
/// delivered-message multiset (and thus telemetry) is a pure function of
/// the seed.
fn unopt_traced_run(n_ranks: usize) -> (Arc<Tracer>, BuildReport) {
    let set = Arc::new(synth::uniform(300, 8, 7));
    let tracer = Arc::new(Tracer::new(n_ranks));
    let world = World::new(n_ranks).tracer(Arc::clone(&tracer));
    let out = build(
        &world,
        &set,
        &L2,
        DnndConfig::new(6)
            .seed(11)
            .comm_opts(CommOpts::unoptimized())
            .max_iters(4),
    );
    (tracer, out.report)
}

#[test]
fn telemetry_series_and_matrix_replay_bit_identically() {
    // Gauges are sampled at barrier entry on the virtual clock, and
    // message dispatch only happens inside barriers — so under the
    // unoptimized protocol both the sample timestamps and the sampled
    // values must be bit-identical across same-seed runs, at every rank
    // count.
    for ranks in [1usize, 2, 4] {
        let (t1, r1) = unopt_traced_run(ranks);
        let (t2, r2) = unopt_traced_run(ranks);
        let (s1, s2) = (t1.series().snapshot(), t2.series().snapshot());
        assert!(!s1.is_empty(), "no series recorded at n_ranks={ranks}");
        assert_eq!(s1, s2, "series diverged between runs at n_ranks={ranks}");
        assert_eq!(
            r1.matrix, r2.matrix,
            "traffic matrix diverged between runs at n_ranks={ranks}"
        );
        for name in [
            "send_buf_bytes",
            "heap_updates",
            "dist_evals",
            "termination_c",
        ] {
            assert!(
                s1.iter().any(|s| s.name == name),
                "gauge {name:?} missing at n_ranks={ranks}"
            );
        }
        // Every rank contributes a send-buffer track; the termination
        // counter is global, so rank 0 alone carries it.
        let buf_ranks: Vec<u64> = s1
            .iter()
            .filter(|s| s.name == "send_buf_bytes")
            .map(|s| s.rank)
            .collect();
        assert_eq!(buf_ranks, (0..ranks as u64).collect::<Vec<_>>());
        let term_ranks: Vec<u64> = s1
            .iter()
            .filter(|s| s.name == "termination_c")
            .map(|s| s.rank)
            .collect();
        assert_eq!(term_ranks, vec![0]);
    }
}

#[test]
fn matrix_sums_equal_reported_tag_totals() {
    // The rank×rank matrix includes the diagonal (rank-local sends), so
    // each tag's cells must sum to the per-tag totals exactly, and the
    // off-diagonal part to the remote totals — for the optimized protocol
    // too, whose per-edge traffic is arrival-order dependent.
    let (_, report) = traced_build(5);
    let n = report.matrix.n_ranks;
    assert_eq!(n, report.n_ranks);
    assert_eq!(report.matrix.tags.len(), report.tags.len());
    for (tag, _, s) in &report.tags {
        let m = report
            .matrix
            .tags
            .iter()
            .find(|mt| mt.tag == *tag)
            .unwrap_or_else(|| panic!("tag {tag} missing from matrix"));
        assert_eq!(m.counts.iter().sum::<u64>(), s.count, "tag {tag} counts");
        assert_eq!(m.bytes.iter().sum::<u64>(), s.bytes, "tag {tag} bytes");
        let off_diag = |cells: &[u64]| -> u64 {
            cells
                .iter()
                .enumerate()
                .filter(|(i, _)| i / n != i % n)
                .map(|(_, v)| v)
                .sum()
        };
        assert_eq!(off_diag(&m.counts), s.remote_count, "tag {tag} remote");
        assert_eq!(off_diag(&m.bytes), s.remote_bytes, "tag {tag} remote bytes");
    }

    // The invariant carries through the RunReport translation.
    let rr = dnnd::obs_report::report_from_build("it", &report);
    let ms = rr
        .matrix
        .as_ref()
        .expect("construct reports carry a matrix");
    assert_eq!(ms.total_counts().iter().sum::<u64>(), rr.total_count);
    assert_eq!(ms.total_bytes().iter().sum::<u64>(), rr.total_bytes);
}

/// Pull the `(id, name, tid)` triples of one flow-arrow half out of an
/// exported Chrome trace.
fn flow_halves(events: &[JsonValue], ph: &str) -> Vec<(String, String, u64)> {
    events
        .iter()
        .filter(|e| {
            e.get("cat").and_then(JsonValue::as_str) == Some("flow")
                && e.get("ph").and_then(JsonValue::as_str) == Some(ph)
        })
        .map(|e| {
            (
                e.get("id").unwrap().as_str().unwrap().to_string(),
                e.get("name").unwrap().as_str().unwrap().to_string(),
                e.get("tid").unwrap().as_u64().unwrap(),
            )
        })
        .collect()
}

#[test]
fn flow_event_halves_pair_exactly() {
    // Reliable delivery means every flushed frame's tagged payload is
    // dispatched exactly once — so the exported trace must contain a
    // bijection between flow sends and flow recvs on id: no orphan recv
    // (a message from nowhere) and no orphan send (a lost message).
    let (t, _) = traced_build(3);
    let doc = JsonValue::parse(&obs::chrome::chrome_trace_json(&t)).expect("trace parses");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let sends = flow_halves(events, "s");
    let recvs = flow_halves(events, "f");
    assert!(!sends.is_empty(), "no flow arrows recorded");

    let mut send_ids: Vec<&str> = sends.iter().map(|(id, _, _)| id.as_str()).collect();
    let mut recv_ids: Vec<&str> = recvs.iter().map(|(id, _, _)| id.as_str()).collect();
    send_ids.sort_unstable();
    recv_ids.sort_unstable();
    let unique = send_ids.windows(2).all(|w| w[0] != w[1]);
    assert!(unique, "flow ids must be minted once per arrow");
    assert_eq!(send_ids, recv_ids, "flow sends and recvs must pair 1:1");

    // The optimized protocol's paper tags all draw arrows; the plain
    // Type 2 arrow is covered by the unoptimized run below.
    for tag in ["Type 1", "Type 2+", "Type 3"] {
        assert!(
            sends.iter().any(|(_, n, _)| n == tag),
            "no flow arrows for {tag:?}"
        );
    }
    // Cross-rank arrows exist (tid differs between the two halves).
    let send_rank: std::collections::HashMap<&str, u64> = sends
        .iter()
        .map(|(id, _, tid)| (id.as_str(), *tid))
        .collect();
    assert!(
        recvs
            .iter()
            .any(|(id, _, tid)| send_rank.get(id.as_str()) != Some(tid)),
        "expected at least one cross-rank arrow"
    );

    // The unoptimized protocol draws the plain Type 2 arrows, and its
    // pairing is exact too.
    let (t, _) = unopt_traced_run(4);
    let doc = JsonValue::parse(&obs::chrome::chrome_trace_json(&t)).expect("trace parses");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let sends = flow_halves(events, "s");
    let recvs = flow_halves(events, "f");
    for tag in ["Type 1", "Type 2"] {
        assert!(
            sends.iter().any(|(_, n, _)| n == tag),
            "no flow arrows for {tag:?}"
        );
    }
    let mut send_ids: Vec<&str> = sends.iter().map(|(id, _, _)| id.as_str()).collect();
    let mut recv_ids: Vec<&str> = recvs.iter().map(|(id, _, _)| id.as_str()).collect();
    send_ids.sort_unstable();
    recv_ids.sort_unstable();
    assert_eq!(send_ids, recv_ids);
}

#[test]
fn trace_flows_can_be_disabled() {
    let set = Arc::new(synth::uniform(300, 8, 7));
    let tracer = Arc::new(Tracer::new(2));
    tracer.set_flows_enabled(false);
    let world = World::new(2).tracer(Arc::clone(&tracer));
    build(
        &world,
        &set,
        &L2,
        DnndConfig::new(6)
            .seed(11)
            .comm_opts(CommOpts::unoptimized())
            .max_iters(2),
    );
    let doc = JsonValue::parse(&obs::chrome::chrome_trace_json(&tracer)).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(flow_halves(events, "s").is_empty());
    assert!(flow_halves(events, "f").is_empty());
    // Spans still record normally.
    assert!(events
        .iter()
        .any(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X")));
}

/// An untraced unoptimized build, optionally under a fault plan — the
/// configuration whose critical-path report must replay bit-identically.
fn unopt_report(n_ranks: usize, profile: Option<&str>) -> BuildReport {
    let set = Arc::new(synth::uniform(300, 8, 7));
    let mut world = World::new(n_ranks);
    if let Some(p) = profile {
        let prof = ygm::FaultProfile::by_name(p).expect("known profile");
        world = world.fault_plan(ygm::FaultPlan::new(prof, 5));
    }
    build(
        &world,
        &set,
        &L2,
        DnndConfig::new(6)
            .seed(11)
            .comm_opts(CommOpts::unoptimized())
            .max_iters(4),
    )
    .report
}

#[test]
fn critical_path_report_is_bit_identical_and_sums_exactly() {
    // Without a fault plan (or on a single rank) the *entire* section is a
    // pure function of the seed: rerunning reproduces it bit for bit. Under
    // a hostile profile only the phase structure is rerun-stable: fault
    // decisions are a PRF of (src, dest, frame seq, attempt), but frame
    // sequence numbers and poll epochs ride OS-timing-dependent
    // flush/dispatch boundaries, so transport charges (and with them the
    // per-phase critical rank, hence every bucket and sim_ns itself)
    // legitimately vary between reruns — the same contract the
    // fault-injection suite tests (results replay exactly; the transport
    // clock does not). In *every* configuration the attribution must sum
    // to the run's own virtual clock with zero error, per phase and
    // overall.
    for ranks in [1usize, 2, 4] {
        for profile in [None, Some("lossy")] {
            let r1 = unopt_report(ranks, profile);
            let r2 = unopt_report(ranks, profile);
            let a = dnnd::obs_report::report_from_build("it", &r1);
            let b = dnnd::obs_report::report_from_build("it", &r2);
            let ca = a.critical_path.as_ref().expect("section present");
            let cb = b.critical_path.as_ref().expect("section present");
            if profile.is_none() || ranks == 1 {
                assert_eq!(
                    ca, cb,
                    "critical path diverged at n_ranks={ranks} profile={profile:?}"
                );
            } else {
                // Transport charges may shift which rank is critical in a
                // phase, so even per-bucket totals can move between reruns;
                // the phase structure itself is app-driven and replays.
                assert_eq!(
                    ca.phase_attribution.len(),
                    cb.phase_attribution.len(),
                    "phase count at n_ranks={ranks}"
                );
                assert_eq!(ca.n_ranks, cb.n_ranks);
            }

            assert_eq!(ca.n_ranks as usize, ranks);
            assert_eq!(ca.critical_path_ns, r1.sim_ns, "path length = clock");
            assert_eq!(
                ca.attribution_sum_ns(),
                ca.critical_path_ns,
                "attribution must sum exactly at n_ranks={ranks} profile={profile:?}"
            );
            for p in &ca.phase_attribution {
                assert_eq!(
                    p.compute_ns + p.comm_ns + p.stall_ns + p.retransmit_ns,
                    p.total_ns,
                    "phase {} buckets must sum to its clock increment",
                    p.index
                );
            }
            // Under faults the transport charge shows up on the path.
            if profile.is_some() && ranks > 1 {
                assert!(
                    r1.faults.as_ref().is_some_and(|f| f.retransmits > 0),
                    "lossy profile should retransmit at n_ranks={ranks}"
                );
            }
            // The section survives the JSON round trip bit for bit.
            let back = RunReport::parse(&a.to_json_string()).unwrap();
            assert_eq!(back.critical_path.as_ref(), Some(ca));
        }
    }
}

fn tmpdir(tag: &str) -> TmpDir {
    TmpDir::new(tag)
}

#[test]
fn cli_trace_and_report_flags_emit_valid_json() {
    let dir = tmpdir("cli");
    let store = dir.join("store");
    let trace = dir.join("trace.json");
    let report = dir.join("report.json");

    let out = Command::new(env!("CARGO_BIN_EXE_dnnd-construct"))
        .args([
            "--input",
            "preset:deep1b",
            "--n",
            "400",
            "--k",
            "6",
            "--ranks",
            "4",
            "--seed",
            "9",
            "--store",
            store.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
            "--report-out",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("spawn dnnd-construct");
    assert!(
        out.status.success(),
        "construct failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let doc = JsonValue::parse(&std::fs::read_to_string(&trace).unwrap()).expect("trace JSON");
    let n_ranks = doc
        .get("otherData")
        .and_then(|o| o.get("n_ranks"))
        .and_then(|v| v.as_u64());
    assert_eq!(n_ranks, Some(4));

    let rr = RunReport::parse(&std::fs::read_to_string(&report).unwrap()).expect("report JSON");
    assert_eq!(rr.binary, "dnnd-construct");
    assert_eq!(rr.n_ranks, 4);
    assert!(rr.total_bytes > 0);
    assert!(rr.tags.iter().any(|t| t.name == "Type 2+"));
    assert!(rr.iterations >= 1);
    assert!(!rr.histograms.is_empty());
}

#[test]
fn cli_dashboard_is_self_contained_with_all_sections() {
    let dir = tmpdir("dash");
    let store = dir.join("store");
    let dash = dir.join("dash.html");
    let report = dir.join("report.json");

    let out = Command::new(env!("CARGO_BIN_EXE_dnnd-construct"))
        .args([
            "--input",
            "preset:deep1b",
            "--n",
            "400",
            "--k",
            "6",
            "--ranks",
            "4",
            "--seed",
            "9",
            "--store",
            store.to_str().unwrap(),
            "--dashboard-out",
            dash.to_str().unwrap(),
            "--report-out",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("spawn dnnd-construct");
    assert!(
        out.status.success(),
        "construct failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let html = std::fs::read_to_string(&dash).expect("dashboard written");
    // Self-contained: renders offline with no network fetches or scripts.
    for forbidden in ["http://", "https://", "<script", "src=", "@import", "url("] {
        assert!(
            !html.contains(forbidden),
            "dashboard must not contain {forbidden:?}"
        );
    }
    // The three headline views plus the telemetry series.
    for section in [
        "id=\"timeline\"",
        "id=\"traffic-heatmap\"",
        "id=\"convergence\"",
        "id=\"telemetry\"",
    ] {
        assert!(html.contains(section), "dashboard missing {section}");
    }
    assert!(html.contains("send_buf_bytes"), "telemetry series missing");

    // The JSON report next to it is schema v2 and carries the telemetry
    // the dashboard rendered, plus the store's allocation high-water.
    let rr = RunReport::parse(&std::fs::read_to_string(&report).unwrap()).expect("report JSON");
    assert!(!rr.series.is_empty(), "report missing series");
    assert!(rr.matrix.is_some(), "report missing traffic matrix");
    assert!(
        rr.extra
            .iter()
            .any(|(k, v)| k == "store_high_water_bytes" && *v > 0.0),
        "report missing store_high_water_bytes"
    );
}
