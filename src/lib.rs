//! # dnnd-repro — facade crate
//!
//! Reproduction of *"Towards A Massive-Scale Distributed Neighborhood Graph
//! Construction"* (Iwabuchi, Steil, Priest, Pearce, Sanders — SC-W 2023).
//!
//! This root crate re-exports the workspace members and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`). See
//! `README.md` for the tour, `DESIGN.md` for the system inventory and the
//! simulation substitutions, and `EXPERIMENTS.md` for paper-vs-measured
//! results for every table and figure.
//!
//! * [`ygm`] — simulated asynchronous communication runtime (YGM stand-in)
//! * [`metall`] — persistent named-object datastore (Metall stand-in)
//! * [`dataset`] — points, metrics, synthetic Table 1 presets, ground truth
//! * [`nnd`] — shared-memory NN-Descent, k-NNG type, ANN search
//! * [`hnsw`] — HNSW baseline (Hnswlib stand-in)
//! * [`dnnd`] — the paper's contribution: distributed NN-Descent

pub mod cli;

pub use dataset;
pub use dnnd;
pub use hnsw;
pub use metall;
pub use nnd;
pub use ygm;
