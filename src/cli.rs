//! Shared plumbing for the command-line executables (`dnnd-construct`,
//! `dnnd-optimize`, `dnnd-query`) — the paper's Section 5.1.3 artifact
//! shape: separate construction and optimization programs communicating
//! through a persistent store, plus a query program.
//!
//! A store produced by `dnnd-construct` holds:
//!
//! ```text
//! meta/k         u64           construction k
//! meta/elem      string        "f32" | "u8"
//! meta/metric    string        "l2" | "sql2" | "cosine" | "l1"
//! dataset/...    PointSet      (element-type specific layout)
//! knng/...       KnnGraph      raw NN-Descent output
//! opt/...        KnnGraph      written by dnnd-optimize (reverse-prune)
//! rnn/...        KnnGraph      written by dnnd-optimize --opt-mode rnn
//! ```

use dataset::io;
use dataset::metric::Metric;
use dataset::set::PointSet;
use dataset::synth::split_queries;
use metall::Store;
use std::path::Path;
use std::process::exit;

/// Which dense element type a store holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Elem {
    /// 32-bit float vectors (fvecs/fbin inputs).
    F32,
    /// Byte vectors (bvecs/u8bin inputs).
    U8,
}

impl Elem {
    /// Parse the `meta/elem` value.
    pub fn from_name(s: &str) -> Option<Elem> {
        match s {
            "f32" => Some(Elem::F32),
            "u8" => Some(Elem::U8),
            _ => None,
        }
    }

    /// The `meta/elem` value.
    pub fn name(self) -> &'static str {
        match self {
            Elem::F32 => "f32",
            Elem::U8 => "u8",
        }
    }
}

/// Supported metric names for dense data on the CLI.
pub const METRIC_NAMES: &[&str] = &["l2", "sql2", "cosine", "l1"];

/// The observability output paths every executable accepts
/// (`--trace-out`, `--report-out`, `--dashboard-out`); empty = not asked
/// for. Any one of them requires a tracer on the run.
#[derive(Debug, Clone, Default)]
pub struct ObsOuts {
    /// Chrome-trace / Perfetto span timeline destination.
    pub trace: String,
    /// Unified JSON run-report destination.
    pub report: String,
    /// Self-contained HTML dashboard destination.
    pub dashboard: String,
    /// Whether cross-rank flow events are recorded (`--trace-flows`,
    /// `on` by default; `off` drops the `ph:"s"/"f"` arrow pairs from the
    /// exported trace, shrinking it when only spans are wanted).
    pub flows: bool,
}

impl ObsOuts {
    /// Read the observability flags from parsed CLI arguments.
    pub fn parse(args: &bench::Args) -> ObsOuts {
        let flows = args.get("trace-flows", "on".to_string());
        match flows.as_str() {
            "on" | "off" => {}
            other => die(&format!(
                "invalid --trace-flows value {other:?} (expected \"on\" or \"off\")"
            )),
        }
        ObsOuts {
            trace: args.get("trace-out", String::new()),
            report: args.get("report-out", String::new()),
            dashboard: args.get("dashboard-out", String::new()),
            flows: flows != "off",
        }
    }

    /// Whether any output was requested (i.e. the run needs a tracer).
    pub fn any(&self) -> bool {
        !self.trace.is_empty() || !self.report.is_empty() || !self.dashboard.is_empty()
    }

    /// Whether a `RunReport` must be assembled (report or dashboard).
    pub fn wants_report(&self) -> bool {
        !self.report.is_empty() || !self.dashboard.is_empty()
    }
}

/// Abort with a message (CLI-style).
pub fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(2)
}

/// Dispatch a dense-f32 metric name to a monomorphized call.
pub fn with_f32_metric<R>(name: &str, f: impl FnOnce(&dyn DynMetricF32) -> R) -> R {
    match name {
        "l2" => f(&dataset::L2),
        "sql2" => f(&dataset::SquaredL2),
        "cosine" => f(&dataset::Cosine),
        "l1" => f(&dataset::L1),
        other => die(&format!(
            "unknown metric {other:?} (expected one of {METRIC_NAMES:?})"
        )),
    }
}

/// Object-safe shim over `Metric<Vec<f32>>` — the CLI only needs dispatch,
/// not generic performance, at its boundaries; inner loops re-monomorphize.
pub trait DynMetricF32 {
    /// Metric name (matches the constructor name).
    fn name(&self) -> &'static str;
}

impl<M: Metric<Vec<f32>>> DynMetricF32 for M {
    fn name(&self) -> &'static str {
        Metric::<Vec<f32>>::name(self)
    }
}

/// Load a dense f32 dataset from a file by extension, or a synthetic
/// preset by `preset:NAME` syntax.
pub fn load_f32(input: &str, n: usize, seed: u64) -> PointSet<Vec<f32>> {
    if let Some(preset) = input.strip_prefix("preset:") {
        return match preset {
            "deep1b" => dataset::presets::deep1b_like(n, seed),
            "glove25" => dataset::presets::glove25_like(n, seed),
            "nytimes" => dataset::presets::nytimes_like(n, seed),
            "lastfm" => dataset::presets::lastfm_like(n, seed),
            "fashion-mnist" => dataset::presets::fashion_mnist_like(n, seed),
            "mnist" => dataset::presets::mnist_like(n, seed),
            other => die(&format!("unknown f32 preset {other:?}")),
        };
    }
    let path = Path::new(input);
    let result = match path.extension().and_then(|e| e.to_str()) {
        Some("fvecs") => io::read_fvecs(path),
        Some("fbin") => io::read_fbin(path),
        other => die(&format!("unsupported f32 input extension {other:?}")),
    };
    result.unwrap_or_else(|e| die(&format!("failed to read {input}: {e}")))
}

/// Load a dense u8 dataset from a file by extension, or `preset:bigann`.
pub fn load_u8(input: &str, n: usize, seed: u64) -> PointSet<Vec<u8>> {
    if let Some(preset) = input.strip_prefix("preset:") {
        return match preset {
            "bigann" => dataset::presets::bigann_like(n, seed),
            other => die(&format!("unknown u8 preset {other:?}")),
        };
    }
    let path = Path::new(input);
    let result = match path.extension().and_then(|e| e.to_str()) {
        Some("bvecs") => io::read_bvecs(path),
        Some("u8bin") => io::read_u8bin(path),
        other => die(&format!("unsupported u8 input extension {other:?}")),
    };
    result.unwrap_or_else(|e| die(&format!("failed to read {input}: {e}")))
}

/// Read the store's metadata triple `(k, elem, metric)`.
pub fn read_meta(store: &Store) -> (usize, Elem, String) {
    let k: u64 = store
        .get("meta/k")
        .unwrap_or_else(|e| die(&format!("store missing meta/k: {e}")));
    let elem: String = store
        .get("meta/elem")
        .unwrap_or_else(|e| die(&format!("store missing meta/elem: {e}")));
    let metric: String = store
        .get("meta/metric")
        .unwrap_or_else(|e| die(&format!("store missing meta/metric: {e}")));
    let elem = Elem::from_name(&elem).unwrap_or_else(|| die(&format!("bad meta/elem {elem:?}")));
    (k as usize, elem, metric)
}

/// Resolve the `--fault-profile` / `--sim-seed` pair into a fault plan.
/// An empty or `"none"` profile means fault-free; unknown names abort with
/// the list of valid profiles. Used by `dnnd-construct` both to test runs
/// under adversarial transport and to replay a failing `simtest` seed.
pub fn parse_fault_plan(profile: &str, sim_seed: u64) -> Option<ygm::FaultPlan> {
    if profile.is_empty() || profile == "none" {
        return None;
    }
    let p = ygm::FaultProfile::by_name(profile).unwrap_or_else(|| {
        die(&format!(
            "unknown fault profile {profile:?} (expected one of {:?} or \"none\")",
            ygm::FaultProfile::NAMES
        ))
    });
    Some(ygm::FaultPlan::new(p, sim_seed))
}

/// Hold out `n_queries` random-suffix points when the user asks the CLI to
/// self-evaluate (no query file).
pub fn self_split<P: dataset::Point>(
    set: PointSet<P>,
    n_queries: usize,
) -> (PointSet<P>, PointSet<P>) {
    if n_queries == 0 || n_queries >= set.len() {
        die("need 0 < queries < N for self-evaluation");
    }
    split_queries(set, n_queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_round_trip() {
        assert_eq!(Elem::from_name("f32"), Some(Elem::F32));
        assert_eq!(Elem::from_name("u8"), Some(Elem::U8));
        assert_eq!(Elem::from_name("f64"), None);
        assert_eq!(Elem::F32.name(), "f32");
    }

    #[test]
    fn metric_dispatch_names() {
        for &name in METRIC_NAMES {
            let resolved = with_f32_metric(name, |m| m.name().to_lowercase());
            // Display names differ in case/abbreviation but must resolve.
            assert!(!resolved.is_empty(), "{name} resolved to nothing");
        }
    }

    #[test]
    fn fault_plan_parsing() {
        assert!(parse_fault_plan("", 7).is_none());
        assert!(parse_fault_plan("none", 7).is_none());
        let plan = parse_fault_plan("stormy", 7).expect("stormy is a profile");
        assert_eq!(plan.sim_seed, 7);
        assert_eq!(plan.profile.name(), "stormy");
    }

    #[test]
    fn presets_load_via_cli_path() {
        let s = load_f32("preset:deep1b", 100, 3);
        assert_eq!(s.len(), 100);
        assert_eq!(s.dim(), 96);
        let b = load_u8("preset:bigann", 50, 3);
        assert_eq!(b.dim(), 128);
    }

    #[test]
    fn file_load_round_trips() {
        let dir = std::env::temp_dir();
        let p = dir.join(format!("cli-io-{}.fvecs", std::process::id()));
        let set = dataset::synth::uniform(20, 4, 1);
        io::write_fvecs(&p, &set).unwrap();
        let back = load_f32(p.to_str().unwrap(), 0, 0);
        assert_eq!(back, set);
        std::fs::remove_file(p).unwrap();
    }
}
