//! `dnnd-optimize` — the paper's graph-optimization executable (Sections
//! 4.5 / 5.1.3): reopens the store written by `dnnd-construct`, merges
//! reverse edges, prunes neighborhoods to `ceil(k * m)`, optionally
//! diversifies, and writes the search graph back.
//!
//! ```text
//! dnnd-optimize --store /tmp/deep-store --m 1.5
//! dnnd-optimize --store ./store --m 1.5 --diversify 0.3
//! ```
//!
//! `--trace-out trace.json` emits a Chrome-trace span timeline of the
//! optimization passes; `--report-out report.json` a unified run report;
//! `--dashboard-out dash.html` a self-contained HTML dashboard.

use bench::Args;
use dnnd_repro::cli::{die, read_meta, Elem, ObsOuts};
use metall::Store;
use nnd::{diversify, KnnGraph};

fn main() {
    let args = Args::parse();
    let store_dir: String = args.get("store", String::new());
    if store_dir.is_empty() {
        die("--store <dir> is required");
    }
    let m: f64 = args.get("m", 1.5);
    let keep: f64 = args.get("diversify", 1.0);
    let outs = ObsOuts::parse(&args);
    // Graph optimization is a driver-side (single-process) pass, so the
    // trace has one track.
    let tracer = if outs.any() {
        let t = obs::Tracer::new(1);
        t.set_flows_enabled(outs.flows);
        Some(t)
    } else {
        None
    };
    let span = |name: &'static str, f: &mut dyn FnMut() -> KnnGraph| {
        if let Some(t) = &tracer {
            t.begin(0, name, t.wall_ns());
            let g = f();
            t.end(0, name, t.wall_ns());
            g
        } else {
            f()
        }
    };

    let mut store =
        Store::open(&store_dir).unwrap_or_else(|e| die(&format!("cannot open store: {e}")));
    let (k, elem, metric_name) = read_meta(&store);
    let graph = KnnGraph::load(&store, "knng").unwrap_or_else(|e| die(&e.to_string()));
    println!(
        "loaded k-NNG: {} vertices, {} edges (k={k}, {}, {metric_name})",
        graph.len(),
        graph.edge_count(),
        elem.name()
    );

    let start = std::time::Instant::now();
    let merged = span("merge_reverse", &mut || graph.merge_reverse());
    let diversified = if keep < 1.0 {
        match elem {
            Elem::F32 => {
                let base = dataset::PointSet::<Vec<f32>>::load(&store, "dataset")
                    .unwrap_or_else(|e| die(&e.to_string()));
                match metric_name.as_str() {
                    "l2" => span("diversify", &mut || {
                        diversify(&merged, &base, &dataset::L2, keep)
                    }),
                    "sql2" => span("diversify", &mut || {
                        diversify(&merged, &base, &dataset::SquaredL2, keep)
                    }),
                    "cosine" => span("diversify", &mut || {
                        diversify(&merged, &base, &dataset::Cosine, keep)
                    }),
                    "l1" => span("diversify", &mut || {
                        diversify(&merged, &base, &dataset::L1, keep)
                    }),
                    other => die(&format!("unknown metric {other:?}")),
                }
            }
            Elem::U8 => {
                let base = dataset::PointSet::<Vec<u8>>::load(&store, "dataset")
                    .unwrap_or_else(|e| die(&e.to_string()));
                span("diversify", &mut || {
                    diversify(&merged, &base, &dataset::L2, keep)
                })
            }
        }
    } else {
        merged
    };
    let optimized = span("prune", &mut || {
        diversified.prune((k as f64 * m).ceil() as usize)
    });
    let secs = start.elapsed().as_secs_f64();

    optimized
        .save(&mut store, "opt")
        .unwrap_or_else(|e| die(&e.to_string()));
    println!(
        "optimized in {secs:.2}s: {} edges (max degree {}), m={m}, diversify keep={keep}",
        optimized.edge_count(),
        optimized.max_degree()
    );
    println!("search graph written to {store_dir}/opt");

    if let Some(t) = &tracer {
        if !outs.trace.is_empty() {
            std::fs::write(&outs.trace, obs::chrome::chrome_trace_json(t))
                .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", outs.trace)));
            println!("trace written to {}", outs.trace);
        }
        if outs.wants_report() {
            let mut rr = obs::RunReport::new("dnnd-optimize");
            rr.n_ranks = 1;
            rr.wall_secs = secs;
            rr.param("store", &store_dir)
                .param("m", m)
                .param("diversify", keep)
                .param("metric", &metric_name);
            rr.extra
                .push(("edges".into(), optimized.edge_count() as f64));
            rr.extra
                .push(("max_degree".into(), optimized.max_degree() as f64));
            rr.metric("store_high_water_bytes", store.high_water_bytes() as f64);
            rr.add_histograms(&t.hist_snapshots());
            rr.set_dropped_spans(t.dropped_events() as u64);
            if !outs.report.is_empty() {
                std::fs::write(&outs.report, rr.to_json_string())
                    .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", outs.report)));
                println!("run report written to {}", outs.report);
            }
            if !outs.dashboard.is_empty() {
                std::fs::write(&outs.dashboard, obs::dashboard::dashboard_html(&rr))
                    .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", outs.dashboard)));
                println!("dashboard written to {}", outs.dashboard);
            }
        }
    }
}
