//! `dnnd-optimize` — the paper's graph-optimization executable (Sections
//! 4.5 / 5.1.3): reopens the store written by `dnnd-construct`, merges
//! reverse edges, prunes neighborhoods to `ceil(k * m)`, optionally
//! diversifies, and writes the search graph back.
//!
//! ```text
//! dnnd-optimize --store /tmp/deep-store --m 1.5
//! dnnd-optimize --store ./store --m 1.5 --diversify 0.3
//! ```

use bench::Args;
use dnnd_repro::cli::{die, read_meta, Elem};
use metall::Store;
use nnd::{diversify, KnnGraph};

fn main() {
    let args = Args::parse();
    let store_dir: String = args.get("store", String::new());
    if store_dir.is_empty() {
        die("--store <dir> is required");
    }
    let m: f64 = args.get("m", 1.5);
    let keep: f64 = args.get("diversify", 1.0);

    let mut store =
        Store::open(&store_dir).unwrap_or_else(|e| die(&format!("cannot open store: {e}")));
    let (k, elem, metric_name) = read_meta(&store);
    let graph = KnnGraph::load(&store, "knng").unwrap_or_else(|e| die(&e.to_string()));
    println!(
        "loaded k-NNG: {} vertices, {} edges (k={k}, {}, {metric_name})",
        graph.len(),
        graph.edge_count(),
        elem.name()
    );

    let start = std::time::Instant::now();
    let merged = graph.merge_reverse();
    let diversified = if keep < 1.0 {
        match elem {
            Elem::F32 => {
                let base = dataset::PointSet::<Vec<f32>>::load(&store, "dataset")
                    .unwrap_or_else(|e| die(&e.to_string()));
                match metric_name.as_str() {
                    "l2" => diversify(&merged, &base, &dataset::L2, keep),
                    "sql2" => diversify(&merged, &base, &dataset::SquaredL2, keep),
                    "cosine" => diversify(&merged, &base, &dataset::Cosine, keep),
                    "l1" => diversify(&merged, &base, &dataset::L1, keep),
                    other => die(&format!("unknown metric {other:?}")),
                }
            }
            Elem::U8 => {
                let base = dataset::PointSet::<Vec<u8>>::load(&store, "dataset")
                    .unwrap_or_else(|e| die(&e.to_string()));
                diversify(&merged, &base, &dataset::L2, keep)
            }
        }
    } else {
        merged
    };
    let optimized = diversified.prune((k as f64 * m).ceil() as usize);
    let secs = start.elapsed().as_secs_f64();

    optimized
        .save(&mut store, "opt")
        .unwrap_or_else(|e| die(&e.to_string()));
    println!(
        "optimized in {secs:.2}s: {} edges (max degree {}), m={m}, diversify keep={keep}",
        optimized.edge_count(),
        optimized.max_degree()
    );
    println!("search graph written to {store_dir}/opt");
}
