//! `dnnd-optimize` — the paper's graph-optimization executable (Sections
//! 4.5 / 5.1.3): reopens the store written by `dnnd-construct` and runs
//! one of two optimization modes selected by `--opt-mode`:
//!
//! * `reverse-prune` (default) — merge reverse edges, prune neighborhoods
//!   to `ceil(k * m)`, optionally diversify; written back under `opt/`.
//! * `rnn` — distributed RNN-Descent: `--t1` outer rounds of up to `--t2`
//!   inner neighbor-update rounds with relative-neighborhood (occlusion)
//!   pruning, reverse-edge adds at outer-round boundaries, and a final
//!   `--k0` out-degree cap, run over `--ranks` simulated ranks; written
//!   back under `rnn/`. The result is bit-identical across reruns and
//!   rank counts.
//!
//! ```text
//! dnnd-optimize --store /tmp/deep-store --m 1.5
//! dnnd-optimize --store ./store --m 1.5 --diversify 0.3
//! dnnd-optimize --store ./store --opt-mode rnn --k0 10 --ranks 4
//! ```
//!
//! `--trace-out trace.json` emits a Chrome-trace span timeline of the
//! optimization passes; `--report-out report.json` a unified run report;
//! `--dashboard-out dash.html` a self-contained HTML dashboard.

use bench::Args;
use dnnd::obs_report::{fill_rnn, report_from_rnn_dist};
use dnnd::rnn_optimize_distributed;
use dnnd_repro::cli::{die, read_meta, Elem, ObsOuts};
use metall::Store;
use nnd::rnn::RnnParams;
use nnd::{diversify, KnnGraph};
use std::sync::Arc;
use ygm::World;

fn main() {
    let args = Args::parse();
    let store_dir: String = args.get("store", String::new());
    if store_dir.is_empty() {
        die("--store <dir> is required");
    }
    let mode: String = args.get("opt-mode", "reverse-prune".to_string());
    match mode.as_str() {
        "reverse-prune" | "rnn" => {}
        other => die(&format!(
            "unknown --opt-mode {other:?} (expected \"reverse-prune\" or \"rnn\")"
        )),
    }
    let outs = ObsOuts::parse(&args);

    let mut store =
        Store::open(&store_dir).unwrap_or_else(|e| die(&format!("cannot open store: {e}")));
    let (k, elem, metric_name) = read_meta(&store);
    let graph = KnnGraph::load(&store, "knng").unwrap_or_else(|e| die(&e.to_string()));
    println!(
        "loaded k-NNG: {} vertices, {} edges (k={k}, {}, {metric_name})",
        graph.len(),
        graph.edge_count(),
        elem.name()
    );

    if mode == "rnn" {
        rnn_mode(
            &args,
            &mut store,
            &store_dir,
            k,
            elem,
            &metric_name,
            &graph,
            &outs,
        );
    } else {
        reverse_prune_mode(
            &args,
            &mut store,
            &store_dir,
            k,
            elem,
            &metric_name,
            graph,
            &outs,
        );
    }
}

/// The default Section 4.5 pass: reverse merge + optional diversify +
/// degree prune, written to `opt/`.
#[allow(clippy::too_many_arguments)]
fn reverse_prune_mode(
    args: &Args,
    store: &mut Store,
    store_dir: &str,
    k: usize,
    elem: Elem,
    metric_name: &str,
    graph: KnnGraph,
    outs: &ObsOuts,
) {
    let m: f64 = args.get("m", 1.5);
    let keep: f64 = args.get("diversify", 1.0);
    // Graph optimization is a driver-side (single-process) pass, so the
    // trace has one track.
    let tracer = if outs.any() {
        let t = obs::Tracer::new(1);
        t.set_flows_enabled(outs.flows);
        Some(t)
    } else {
        None
    };
    let span = |name: &'static str, f: &mut dyn FnMut() -> KnnGraph| {
        if let Some(t) = &tracer {
            t.begin(0, name, t.wall_ns());
            let g = f();
            t.end(0, name, t.wall_ns());
            g
        } else {
            f()
        }
    };

    let start = std::time::Instant::now();
    let merged = span("merge_reverse", &mut || graph.merge_reverse());
    let diversified = if keep < 1.0 {
        match elem {
            Elem::F32 => {
                let base = dataset::PointSet::<Vec<f32>>::load(store, "dataset")
                    .unwrap_or_else(|e| die(&e.to_string()));
                match metric_name {
                    "l2" => span("diversify", &mut || {
                        diversify(&merged, &base, &dataset::L2, keep)
                    }),
                    "sql2" => span("diversify", &mut || {
                        diversify(&merged, &base, &dataset::SquaredL2, keep)
                    }),
                    "cosine" => span("diversify", &mut || {
                        diversify(&merged, &base, &dataset::Cosine, keep)
                    }),
                    "l1" => span("diversify", &mut || {
                        diversify(&merged, &base, &dataset::L1, keep)
                    }),
                    other => die(&format!("unknown metric {other:?}")),
                }
            }
            Elem::U8 => {
                let base = dataset::PointSet::<Vec<u8>>::load(store, "dataset")
                    .unwrap_or_else(|e| die(&e.to_string()));
                span("diversify", &mut || {
                    diversify(&merged, &base, &dataset::L2, keep)
                })
            }
        }
    } else {
        merged
    };
    let optimized = span("prune", &mut || {
        diversified.prune((k as f64 * m).ceil() as usize)
    });
    let secs = start.elapsed().as_secs_f64();

    optimized
        .save(store, "opt")
        .unwrap_or_else(|e| die(&e.to_string()));
    println!(
        "optimized in {secs:.2}s: {} edges (max degree {}), m={m}, diversify keep={keep}",
        optimized.edge_count(),
        optimized.max_degree()
    );
    println!("search graph written to {store_dir}/opt");

    if let Some(t) = &tracer {
        if !outs.trace.is_empty() {
            std::fs::write(&outs.trace, obs::chrome::chrome_trace_json(t))
                .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", outs.trace)));
            println!("trace written to {}", outs.trace);
        }
        if outs.wants_report() {
            let mut rr = obs::RunReport::new("dnnd-optimize");
            rr.n_ranks = 1;
            rr.wall_secs = secs;
            rr.param("store", store_dir)
                .param("opt_mode", "reverse-prune")
                .param("m", m)
                .param("diversify", keep)
                .param("metric", metric_name);
            rr.extra
                .push(("edges".into(), optimized.edge_count() as f64));
            rr.extra
                .push(("max_degree".into(), optimized.max_degree() as f64));
            rr.metric("store_high_water_bytes", store.high_water_bytes() as f64);
            rr.add_histograms(&t.hist_snapshots());
            rr.set_dropped_spans(t.dropped_events() as u64);
            write_outs(outs, &rr);
        }
    }
}

/// The RNN-Descent mode: distributed occlusion pruning over `--ranks`
/// simulated ranks, written to `rnn/`.
#[allow(clippy::too_many_arguments)]
fn rnn_mode(
    args: &Args,
    store: &mut Store,
    store_dir: &str,
    k: usize,
    elem: Elem,
    metric_name: &str,
    graph: &KnnGraph,
    outs: &ObsOuts,
) {
    let k0: usize = args.get("k0", k);
    let mut params = RnnParams::new(k0)
        .t1(args.get("t1", 3usize))
        .t2(args.get("t2", 8usize));
    let r: usize = args.get("r", params.r);
    params = params.r(r);
    let ranks: usize = args.get("ranks", 4usize);
    if ranks == 0 {
        die("--ranks must be >= 1");
    }
    let world = World::new(ranks);

    let start = std::time::Instant::now();
    let (optimized, report) = match elem {
        Elem::F32 => {
            let base = Arc::new(
                dataset::PointSet::<Vec<f32>>::load(store, "dataset")
                    .unwrap_or_else(|e| die(&e.to_string())),
            );
            match metric_name {
                "l2" => rnn_optimize_distributed(&world, &base, &dataset::L2, graph, params),
                "sql2" => {
                    rnn_optimize_distributed(&world, &base, &dataset::SquaredL2, graph, params)
                }
                "cosine" => {
                    rnn_optimize_distributed(&world, &base, &dataset::Cosine, graph, params)
                }
                "l1" => rnn_optimize_distributed(&world, &base, &dataset::L1, graph, params),
                other => die(&format!("unknown metric {other:?}")),
            }
        }
        Elem::U8 => {
            let base = Arc::new(
                dataset::PointSet::<Vec<u8>>::load(store, "dataset")
                    .unwrap_or_else(|e| die(&e.to_string())),
            );
            rnn_optimize_distributed(&world, &base, &dataset::L2, graph, params)
        }
    };
    let secs = start.elapsed().as_secs_f64();

    optimized
        .save(store, "rnn")
        .unwrap_or_else(|e| die(&e.to_string()));
    let rounds = report.stats.rounds.len();
    println!(
        "rnn-optimized in {secs:.2}s over {ranks} ranks: {} edges (max degree {}), \
         t1={} t2={} k0={} r={}, {rounds} rounds, {} distance evals",
        optimized.edge_count(),
        optimized.max_degree(),
        params.t1,
        params.t2,
        params.k0,
        params.r,
        report.stats.dist_evals,
    );
    println!("search graph written to {store_dir}/rnn");

    if outs.wants_report() {
        let mut rr = report_from_rnn_dist("dnnd-optimize", params, &report);
        rr.wall_secs = secs;
        rr.param("store", store_dir)
            .param("opt_mode", "rnn")
            .param("metric", metric_name)
            .param("ranks", ranks);
        rr.extra
            .push(("edges".into(), optimized.edge_count() as f64));
        rr.extra
            .push(("max_degree".into(), optimized.max_degree() as f64));
        rr.metric("store_high_water_bytes", store.high_water_bytes() as f64);
        // Keep the section filled even if a future report path drops it.
        if rr.rnn.is_none() {
            fill_rnn(&mut rr, params, &report.stats);
        }
        write_outs(outs, &rr);
    }
    if !outs.trace.is_empty() {
        eprintln!("note: --trace-out is not supported by --opt-mode rnn (simulated world)");
    }
}

fn write_outs(outs: &ObsOuts, rr: &obs::RunReport) {
    if !outs.report.is_empty() {
        std::fs::write(&outs.report, rr.to_json_string())
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", outs.report)));
        println!("run report written to {}", outs.report);
    }
    if !outs.dashboard.is_empty() {
        std::fs::write(&outs.dashboard, obs::dashboard::dashboard_html(rr))
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", outs.dashboard)));
        println!("dashboard written to {}", outs.dashboard);
    }
}
