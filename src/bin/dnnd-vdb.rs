//! `dnnd-vdb` — admin CLI for the vector-DB product layer: namespaced
//! collections (vectors + graph + typed metadata + tombstones) persisted
//! in one `metall::Store` and served by `dnnd-serve --namespace`.
//!
//! ```text
//! dnnd-vdb create  --store ./db --namespace prod --synthetic 256 --dim 32 --k 8
//! dnnd-vdb ingest  --store ./db --namespace prod --vectors more.fvecs
//! dnnd-vdb delete  --store ./db --namespace prod --ids 3,17,42
//! dnnd-vdb compact --store ./db --namespace prod
//! dnnd-vdb stat    --store ./db [--namespace prod] [--filter "bucket in {1, 2}"]
//! ```
//!
//! Vectors come from an fvecs file (`--vectors`) or a seeded synthetic
//! mixture (`--synthetic N --dim D`). Metadata is either one `--meta
//! "field=value,..."` record replicated across the batch, or (default)
//! the deterministic per-id `bucket` record the serving layer's online
//! mutation path uses — so CLI-built collections and serve-time inserts
//! draw from the same metadata distribution.

use bench::Args;
use dataset::synth::MixtureParams;
use dataset::{io, PointId, PointSet};
use dnnd_repro::cli::die;
use metall::Store;
use vdb::{Collection, MetaRecord, Predicate};

const USAGE: &str = "usage: dnnd-vdb <create|ingest|delete|compact|stat> --store <dir> ...";

/// The vector batch for `create`/`ingest`: an fvecs file or a seeded
/// synthetic mixture, never both.
fn load_vectors(args: &Args, seed: u64) -> PointSet<Vec<f32>> {
    let file: String = args.get("vectors", String::new());
    let synth_n: usize = args.get("synthetic", 0);
    match (file.is_empty(), synth_n) {
        (false, 0) => {
            io::read_fvecs(&file).unwrap_or_else(|e| die(&format!("bad --vectors file: {e}")))
        }
        (true, n) if n > 0 => {
            let dim: usize = args.get("dim", 32);
            dataset::synth::gaussian_mixture(MixtureParams::embedding_like(n, dim), seed)
        }
        _ => die("need exactly one of --vectors <fvecs> or --synthetic <n> [--dim <d>]"),
    }
}

/// One metadata record per id in `ids`: the shared `--meta` record when
/// given, else the per-id deterministic bucket record.
fn meta_for(args: &Args, seed: u64, ids: std::ops::Range<u64>) -> Vec<MetaRecord> {
    let kv: String = args.get("meta", String::new());
    if kv.is_empty() {
        ids.map(|id| MetaRecord::bucket_record(seed, id)).collect()
    } else {
        let rec =
            MetaRecord::parse_kv(&kv).unwrap_or_else(|e| die(&format!("invalid --meta: {e}")));
        ids.map(|_| rec.clone()).collect()
    }
}

fn print_stat(c: &Collection, filter: &str) {
    let s = c.stat();
    println!(
        "namespace {:?}: {} points ({} live, {} tombstones, {} dead), \
         epoch {}, dim {}, k {}, metric {}",
        s.name, s.points, s.live, s.tombstones, s.dead, s.epoch, s.dim, s.k, s.metric
    );
    if !filter.is_empty() {
        let pred: Predicate = filter
            .parse()
            .unwrap_or_else(|e| die(&format!("invalid --filter predicate: {e}")));
        let mask = c.compile_mask(Some(&pred));
        println!(
            "  filter {} matches {} of {} live ids ({:.1}% selective)",
            pred,
            mask.allowed(),
            s.live,
            mask.selectivity() * 100.0
        );
    }
}

fn main() {
    let cmd = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| die(USAGE));
    let args = Args::parse();
    let store_dir: String = args.get("store", String::new());
    if store_dir.is_empty() {
        die("--store <dir> is required");
    }
    let ns: String = args.get("namespace", String::new());
    let need_ns = || {
        if ns.is_empty() {
            die(&format!("--namespace is required for {cmd}"));
        }
        ns.as_str()
    };
    let seed: u64 = args.get("seed", 42);

    match cmd.as_str() {
        "create" => {
            let ns = need_ns();
            let mut store = Store::open_or_create(&store_dir)
                .unwrap_or_else(|e| die(&format!("cannot open store: {e}")));
            if Collection::exists(&store, ns) {
                die(&format!("namespace {ns:?} already exists"));
            }
            let points = load_vectors(&args, seed);
            let meta = meta_for(&args, seed, 0..points.len() as u64);
            let metric: String = args.get("metric", "l2".to_string());
            let k: usize = args.get("k", 10);
            let c =
                Collection::create(ns, points, meta, &metric, k, seed).unwrap_or_else(|e| die(&e));
            c.save(&mut store).unwrap_or_else(|e| die(&e));
            print_stat(&c, "");
        }
        "ingest" => {
            let ns = need_ns();
            let mut store =
                Store::open(&store_dir).unwrap_or_else(|e| die(&format!("cannot open store: {e}")));
            let mut c = Collection::open(&store, ns).unwrap_or_else(|e| die(&e));
            let points = load_vectors(&args, seed);
            let start = c.stat().points;
            let meta = meta_for(&args, seed, start..start + points.len() as u64);
            let refine: usize = args.get("refine-iters", 1);
            let range = c
                .ingest(points.points().to_vec(), meta, refine)
                .unwrap_or_else(|e| die(&e));
            c.save(&mut store).unwrap_or_else(|e| die(&e));
            println!("ingested ids {}..{}", range.start, range.end);
            print_stat(&c, "");
        }
        "delete" => {
            let ns = need_ns();
            let mut store =
                Store::open(&store_dir).unwrap_or_else(|e| die(&format!("cannot open store: {e}")));
            let mut c = Collection::open(&store, ns).unwrap_or_else(|e| die(&e));
            let ids_text: String = args.get("ids", String::new());
            let ids: Vec<PointId> = ids_text
                .split(',')
                .filter(|t| !t.trim().is_empty())
                .map(|t| {
                    t.trim()
                        .parse()
                        .unwrap_or_else(|_| die(&format!("bad id in --ids: {t:?}")))
                })
                .collect();
            if ids.is_empty() {
                die("--ids <id,id,...> is required for delete");
            }
            let n = c.delete(&ids).unwrap_or_else(|e| die(&e));
            c.save(&mut store).unwrap_or_else(|e| die(&e));
            println!("tombstoned {n} ids");
            print_stat(&c, "");
        }
        "compact" => {
            let ns = need_ns();
            let mut store =
                Store::open(&store_dir).unwrap_or_else(|e| die(&format!("cannot open store: {e}")));
            let mut c = Collection::open(&store, ns).unwrap_or_else(|e| die(&e));
            let rep = c.compact().unwrap_or_else(|e| die(&e));
            c.save(&mut store).unwrap_or_else(|e| die(&e));
            println!(
                "compacted: {} tombstones cleared, {} rows repaired, epoch now {}",
                rep.tombstones_cleared, rep.rows_repaired, rep.epoch
            );
            print_stat(&c, "");
        }
        "stat" => {
            let store =
                Store::open(&store_dir).unwrap_or_else(|e| die(&format!("cannot open store: {e}")));
            let filter: String = args.get("filter", String::new());
            let names = if ns.is_empty() {
                let all = Collection::list(&store);
                if all.is_empty() {
                    die("store holds no namespaces");
                }
                all
            } else {
                vec![ns.clone()]
            };
            for name in names {
                let c = Collection::open(&store, &name).unwrap_or_else(|e| die(&e));
                print_stat(&c, &filter);
            }
        }
        other => die(&format!("unknown subcommand {other:?}\n{USAGE}")),
    }
}
