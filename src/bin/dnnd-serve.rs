//! `dnnd-serve` — online query serving over a constructed store: a
//! deterministic open-loop workload (Poisson arrivals at `--qps`, seeded
//! by `--serve-seed`) is played against the optimized graph through the
//! distributed serving layer (`crates/serve`): adaptive micro-batching,
//! deadline and overload shedding, a quantized-key result cache, and SLO
//! telemetry into the schema-v3 run report.
//!
//! The run is a pure function of its flags: replaying with the same
//! `--serve-seed` (any `--ranks`) reproduces every admission decision,
//! latency, and result bit-identically — the printed digest is the proof.
//!
//! ```text
//! dnnd-serve --store ./store --pool 32 --qps 4000 --arrivals 500
//! dnnd-serve --store ./store --serve-seed 7 --fault-profile lossy --report-out run.json
//! dnnd-serve --store ./db --namespace prod --filter "bucket in {1, 2}" \
//!            --workload "filter:pct=50,sel=0.3;mutate:ins=10,del=15"
//! ```
//!
//! `--namespace` serves a `dnnd-vdb` collection instead of the bare
//! `dataset`/graph pair: `--filter` pushes a metadata predicate into the
//! distributed beam search, `mutate:` workload clauses apply online
//! inserts/deletes (with watermark-triggered deterministic compaction),
//! and the run report grows the schema-v8 `vdb` section.
//!
//! `--trace-out`, `--report-out`, and `--dashboard-out` emit the Chrome
//! trace, unified run report (with the `serving` section), and the HTML
//! dashboard (with the serving SLO panel).

use bench::Args;
use dataset::batch::BatchMetric;
use dataset::io;
use dataset::point::Point;
use dataset::PointSet;
use dnnd_repro::cli::{die, parse_fault_plan, read_meta, Elem, ObsOuts};
use metall::Store;
use nnd::KnnGraph;
use serve::cache::QuantizeKey;
use serve::{
    attach_forensics, attach_serving, attach_vdb, run_serve, run_serve_vdb, GraphMode,
    ServeOutcome, ServeParams, VdbServeConfig,
};
use std::path::Path;
use std::sync::Arc;
use ygm::{World, WorldReport};

fn serve_generic<P, M>(
    world: &World,
    base: PointSet<P>,
    graph: KnnGraph,
    pool: PointSet<P>,
    metric: M,
    params: &ServeParams,
) -> (ServeOutcome, WorldReport<()>)
where
    P: Point + QuantizeKey,
    M: BatchMetric<P>,
{
    run_serve(
        world,
        &Arc::new(base),
        &Arc::new(graph),
        &Arc::new(pool),
        &metric,
        params,
    )
}

fn main() {
    let args = Args::parse();
    let store_dir: String = args.get("store", String::new());
    if store_dir.is_empty() {
        die("--store <dir> is required");
    }
    let ranks: usize = args.get("ranks", 2);
    let pool_n: usize = args.get("pool", 32);
    let query_file: String = args.get("queries", String::new());

    // Serving parameters: filled directly from flags, then validated in
    // one place so a bad flag dies with the invariant it broke.
    let mut params = ServeParams::new(args.get("l", 10));
    params.search.epsilon = args.get("epsilon", 0.1f32);
    params.search.entry_candidates = args.get("entries", 24);
    params.serve_seed = args.get("serve-seed", 0x5E27Eu64);
    params.slot_ns = args.get("slot-ns", 1_000_000u64);
    params.offered_qps = args.get("qps", 2_000.0f64);
    params.n_arrivals = args.get("arrivals", 200);
    params.hot_fraction = args.get("hot-fraction", 0.3f64);
    params.hot_pool = args.get("hot-pool", 8);
    params.batch = args.get("batch", 8);
    params.flush_age_slots = args.get("flush-age", 2u64);
    params.deadline_slots = args.get("deadline", 8u64);
    params.degrade_watermark = args.get("degrade", 24);
    params.shed_watermark = args.get("shed", 64);
    params.cache_capacity = args.get("cache", 32);
    params.quant_step = args.get("quant-step", 1e-3f32);
    params.forensics_window_slots = args.get("forensics-window", 8u64);
    params.forensics_slow_n = args.get("forensics-slow-n", 4u64);
    // Composable workload DSL, e.g.
    // `closed:n=64,think=5ms;zipf:s=1.1;burst:at=2s,x=8;tenants=gold:50%,free:50%`.
    // Empty (the default) keeps the legacy open-loop hot/cold workload.
    let workload_spec: String = args.get("workload", String::new());
    if !workload_spec.is_empty() {
        params.workload = workload_spec
            .parse()
            .unwrap_or_else(|e| die(&format!("invalid --workload spec: {e}")));
    }
    params
        .validate()
        .unwrap_or_else(|e| die(&format!("invalid serving parameters: {e}")));

    let fault_profile: String = args.get("fault-profile", String::new());
    let sim_seed: u64 = args.get("sim-seed", 0);
    let outs = ObsOuts::parse(&args);
    let tracer = if outs.any() {
        let t = Arc::new(obs::Tracer::new(ranks));
        t.set_flows_enabled(outs.flows);
        Some(t)
    } else {
        None
    };
    let mut world = World::new(ranks);
    if let Some(plan) = parse_fault_plan(&fault_profile, sim_seed) {
        world = world.fault_plan(plan);
    }
    if let Some(t) = &tracer {
        world = world.tracer(Arc::clone(t));
    }

    // --namespace routes serving through the vector-DB product layer: the
    // store holds a named `vdb::Collection` (own graph, vectors, metadata,
    // tombstones) instead of the bare `dataset`/graph pair, and --filter /
    // `filter:`+`mutate:` workload clauses become meaningful.
    let namespace: String = args.get("namespace", String::new());
    let filter_text: String = args.get("filter", String::new());
    if namespace.is_empty() && !filter_text.is_empty() {
        die("--filter requires --namespace (predicates apply to collection metadata)");
    }

    let (outcome, wr, metric_name, graph_key) = if !namespace.is_empty() {
        let mut cfg = VdbServeConfig::default();
        if !filter_text.is_empty() {
            cfg.filter = Some(
                filter_text
                    .parse()
                    .unwrap_or_else(|e| die(&format!("invalid --filter predicate: {e}"))),
            );
        }
        cfg.compact_watermark = args.get("compact-watermark", cfg.compact_watermark);
        cfg.refine_iters = args.get("refine-iters", cfg.refine_iters);

        // One metadata-only open on the driver: metric dispatch and the
        // query pool come from here; `run_serve_vdb` re-opens per rank.
        let store =
            Store::open(&store_dir).unwrap_or_else(|e| die(&format!("cannot open store: {e}")));
        let collection = vdb::Collection::open(&store, &namespace)
            .unwrap_or_else(|e| die(&format!("cannot open namespace {namespace:?}: {e}")));
        let metric_name = collection.metric().to_string();
        let pool = if query_file.is_empty() {
            if pool_n == 0 || pool_n >= collection.base.len() {
                die("need 0 < --pool < N");
            }
            let tail = collection.base.len() - pool_n;
            PointSet::new(collection.base.points()[tail..].to_vec())
        } else {
            io::read_fvecs(&query_file).unwrap_or_else(|e| die(&format!("bad --queries file: {e}")))
        };
        println!(
            "serving namespace {:?} online: {} points ({} live), epoch {}, k={} ({metric_name}, {ranks} ranks)",
            namespace,
            collection.stat().points,
            collection.stat().live,
            collection.epoch(),
            collection.k(),
        );
        drop(collection);
        drop(store);

        let pool = Arc::new(pool);
        let dir = Path::new(&store_dir);
        let (outcome, cstat, wr) = match metric_name.as_str() {
            "l2" => run_serve_vdb(&world, dir, &namespace, &pool, &dataset::L2, &params, &cfg),
            "sql2" => run_serve_vdb(
                &world,
                dir,
                &namespace,
                &pool,
                &dataset::SquaredL2,
                &params,
                &cfg,
            ),
            "cosine" => run_serve_vdb(
                &world,
                dir,
                &namespace,
                &pool,
                &dataset::Cosine,
                &params,
                &cfg,
            ),
            "l1" => run_serve_vdb(&world, dir, &namespace, &pool, &dataset::L1, &params, &cfg),
            other => die(&format!("unknown metric {other:?}")),
        };
        println!(
            "namespace after run: {} points ({} live, {} tombstones, {} dead), epoch {}",
            cstat.points, cstat.live, cstat.tombstones, cstat.dead, cstat.epoch
        );
        (outcome, wr, metric_name, "vdb")
    } else {
        let store =
            Store::open(&store_dir).unwrap_or_else(|e| die(&format!("cannot open store: {e}")));
        let (_, elem, metric_name) = read_meta(&store);
        // Per-deployment graph-mode selection: --graph {auto,rnn,opt,knng};
        // auto prefers the sparsest traversal-ready graph (rnn > opt > knng).
        let mode_name: String = args.get("graph", "auto".to_string());
        let mode = GraphMode::from_name(&mode_name).unwrap_or_else(|| {
            die(&format!(
                "unknown --graph {mode_name:?} (expected one of {:?})",
                GraphMode::NAMES
            ))
        });
        let graph_key = mode
            .resolve(|prefix| store.contains(&format!("{prefix}/offsets")))
            .unwrap_or_else(|e| die(&e));
        let graph = KnnGraph::load(&store, graph_key).unwrap_or_else(|e| die(&e.to_string()));
        println!(
            "serving {} graph online: {} vertices, {} edges ({}, {metric_name}, {ranks} ranks)",
            graph_key,
            graph.len(),
            graph.edge_count(),
            elem.name()
        );

        let (outcome, wr) = match elem {
            Elem::F32 => {
                let base = PointSet::<Vec<f32>>::load(&store, "dataset")
                    .unwrap_or_else(|e| die(&e.to_string()));
                let pool = if query_file.is_empty() {
                    // Re-query member points from the tail of the dataset (the
                    // graph indexes all of base, so ids stay valid).
                    if pool_n == 0 || pool_n >= base.len() {
                        die("need 0 < --pool < N");
                    }
                    PointSet::new(base.points()[base.len() - pool_n..].to_vec())
                } else {
                    io::read_fvecs(&query_file)
                        .unwrap_or_else(|e| die(&format!("bad --queries file: {e}")))
                };
                match metric_name.as_str() {
                    "l2" => serve_generic(&world, base, graph, pool, dataset::L2, &params),
                    "sql2" => serve_generic(&world, base, graph, pool, dataset::SquaredL2, &params),
                    "cosine" => serve_generic(&world, base, graph, pool, dataset::Cosine, &params),
                    "l1" => serve_generic(&world, base, graph, pool, dataset::L1, &params),
                    other => die(&format!("unknown metric {other:?}")),
                }
            }
            Elem::U8 => {
                let base = PointSet::<Vec<u8>>::load(&store, "dataset")
                    .unwrap_or_else(|e| die(&e.to_string()));
                let pool = if query_file.is_empty() {
                    if pool_n == 0 || pool_n >= base.len() {
                        die("need 0 < --pool < N");
                    }
                    PointSet::new(base.points()[base.len() - pool_n..].to_vec())
                } else {
                    io::read_bvecs(&query_file)
                        .unwrap_or_else(|e| die(&format!("bad --queries file: {e}")))
                };
                serve_generic(&world, base, graph, pool, dataset::L2, &params)
            }
        };
        (outcome, wr, metric_name, graph_key)
    };

    let s = &outcome.stats;
    println!(
        "offered {} queries over {} slots of {} ms: {} answered ({} cache hits), \
         {} shed on deadline, {} shed on overload, {} degraded",
        s.offered,
        s.slots,
        s.slot_ns as f64 / 1e6,
        s.total_answered(),
        s.cache_hits,
        s.shed_deadline,
        s.shed_overload,
        s.degraded
    );
    println!(
        "latency p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms (mean {:.2} ms); max queue depth {}",
        s.percentile_ns(0.50) as f64 / 1e6,
        s.percentile_ns(0.95) as f64 / 1e6,
        s.percentile_ns(0.99) as f64 / 1e6,
        s.mean_latency_ns() / 1e6,
        s.max_queue_depth
    );
    println!(
        "client-perceived p50 {:.2} ms, p99 {:.2} ms (includes shed-retry time under closed loops)",
        s.client_percentile_ns(0.50) as f64 / 1e6,
        s.client_percentile_ns(0.99) as f64 / 1e6,
    );
    for t in &s.tenants {
        println!(
            "tenant {} ({}%): {} offered, {} answered ({} cache hits), \
             {} shed overload, {} shed deadline, SLO {:.1}%, p99 {:.2} ms",
            t.name,
            t.share_pct,
            t.offered,
            t.total_answered(),
            t.cache_hits,
            t.shed_overload,
            t.shed_deadline,
            t.slo_attainment() * 100.0,
            t.percentile_ns(0.99, s.slot_ns) as f64 / 1e6,
        );
    }
    if let Some(v) = &s.vdb {
        println!(
            "vdb {:?}: {} inserts, {} deletes, {} compactions; {} filtered queries, \
             {} cache ids suppressed by tombstones",
            v.namespace, v.inserts, v.deletes, v.compactions, v.filtered, v.cache_suppressed
        );
    }
    println!(
        "result digest {:016x} (serve seed {}, bit-identical on replay)",
        s.result_digest, s.serve_seed
    );
    let f = &outcome.forensics;
    println!(
        "forensics: {} queries profiled, {} retained ({} slowest-per-window, {} exemplars), \
         digest {:016x}",
        f.considered,
        f.sampled.len(),
        f.retained_slow,
        f.retained_exemplar,
        f.digest
    );

    // Tail-sampled slow-query log: one JSON object per retained record,
    // with the home rank derived for *this* run's rank count.
    let slow_log: String = args.get("slow-query-log", String::new());
    if !slow_log.is_empty() {
        std::fs::write(&slow_log, f.slow_query_log(ranks))
            .unwrap_or_else(|e| die(&format!("cannot write {slow_log}: {e}")));
        println!("slow-query log written to {slow_log}");
    }

    if outs.any() {
        if let Some(t) = &tracer {
            if !outs.trace.is_empty() {
                dnnd::obs_report::write_trace(&outs.trace, t)
                    .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", outs.trace)));
                println!("trace written to {}", outs.trace);
            }
        }
        if outs.wants_report() {
            let mut rr = dnnd::obs_report::report_from_world("dnnd-serve", ranks, &wr);
            attach_serving(&mut rr, s);
            attach_forensics(&mut rr, f);
            attach_vdb(&mut rr, s);
            dnnd::obs_report::attach_histograms(&mut rr, tracer.as_deref());
            dnnd::obs_report::attach_series(&mut rr, tracer.as_deref());
            rr.param("store", &store_dir)
                .param("l", params.search.l)
                .param("epsilon", params.search.epsilon)
                .param("serve_seed", params.serve_seed)
                .param("qps", params.offered_qps)
                .param("arrivals", params.n_arrivals)
                .param("batch", params.batch)
                .param("deadline_slots", params.deadline_slots)
                .param("metric", &metric_name)
                .param("graph", graph_key);
            if !workload_spec.is_empty() {
                rr.param("workload", params.workload.to_string());
            }
            if !namespace.is_empty() {
                rr.param("namespace", &namespace);
            }
            if !filter_text.is_empty() {
                rr.param("filter", &filter_text);
            }
            if !fault_profile.is_empty() && fault_profile != "none" {
                rr.param("fault_profile", &fault_profile);
            }
            if !outs.report.is_empty() {
                dnnd::obs_report::write_report(&outs.report, &rr)
                    .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", outs.report)));
                println!("run report written to {}", outs.report);
            }
            if !outs.dashboard.is_empty() {
                dnnd::obs_report::write_dashboard(&outs.dashboard, &rr)
                    .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", outs.dashboard)));
                println!("dashboard written to {}", outs.dashboard);
            }
        }
    }
}
