//! `dnnd-query` — the query program (paper Section 5.3.1): loads the
//! dataset and the optimized graph from a store, answers queries in
//! parallel, and reports recall@l versus exact ground truth plus the qps
//! throughput the paper's Figure 2 plots.
//!
//! Queries come from a file (`--queries q.fvecs`, with optional
//! `--gt truth.ivecs`) or by self-evaluation (`--self-queries 100` holds
//! out dataset members re-queried as unseen points; exact ground truth is
//! computed by brute force).
//!
//! ```text
//! dnnd-query --store /tmp/deep-store --self-queries 100 --l 10 --epsilon 0.2
//! dnnd-query --store ./store --queries q.fvecs --gt gt.ivecs --l 10
//! ```
//!
//! `--trace-out`, `--report-out`, and `--dashboard-out` emit the Chrome
//! trace, unified run report, and self-contained HTML dashboard.

use bench::Args;
use dataset::batch::BatchMetric;
use dataset::io;
use dataset::point::Point;
use dataset::{brute_force_queries, mean_recall, PointSet};
use dnnd_repro::cli::{die, read_meta, Elem, ObsOuts};
use metall::Store;
use nnd::{search_batch_traced, KnnGraph, SearchParams};

/// Numbers main needs back from the generic query run for the run report.
struct QuerySummary {
    n_queries: usize,
    qps: f64,
    secs: f64,
    distance_evals: u64,
    recall: f64,
}

#[allow(clippy::too_many_arguments)]
fn run<P: Point, M: BatchMetric<P>>(
    base: PointSet<P>,
    graph: &KnnGraph,
    metric: M,
    queries: PointSet<P>,
    gt_ids: Option<Vec<Vec<u32>>>,
    l: usize,
    epsilon: f32,
    entries: usize,
    tracer: Option<&obs::Tracer>,
) -> QuerySummary {
    let params = SearchParams::new(l)
        .epsilon(epsilon)
        .entry_candidates(entries);
    let batch = search_batch_traced(graph, &base, &metric, &queries, params, tracer);
    println!(
        "answered {} queries at {:.0} qps ({} distance evals total)",
        queries.len(),
        batch.qps,
        batch.distance_evals
    );
    let truth_ids: Vec<Vec<u32>> = match gt_ids {
        Some(ids) => ids,
        None => {
            println!("computing exact ground truth by brute force...");
            if let Some(t) = tracer {
                t.begin(0, "ground_truth", t.wall_ns());
            }
            let ids = brute_force_queries(&base, &queries, &metric, l).ids;
            if let Some(t) = tracer {
                t.end(0, "ground_truth", t.wall_ns());
            }
            ids
        }
    };
    let truth = dataset::GroundTruth {
        dists: truth_ids.iter().map(|r| vec![0.0; r.len()]).collect(),
        ids: truth_ids,
    };
    let recall = mean_recall(&batch.ids, &truth);
    println!("recall@{l} = {recall:.4} (epsilon {epsilon})");
    QuerySummary {
        n_queries: queries.len(),
        qps: batch.qps,
        secs: batch.secs,
        distance_evals: batch.distance_evals,
        recall,
    }
}

fn main() {
    let args = Args::parse();
    let store_dir: String = args.get("store", String::new());
    if store_dir.is_empty() {
        die("--store <dir> is required");
    }
    let l: usize = args.get("l", 10);
    let epsilon: f32 = args.get("epsilon", 0.2);
    let entries: usize = args.get("entries", 32);
    let self_queries: usize = args.get("self-queries", 0);
    let query_file: String = args.get("queries", String::new());
    let outs = ObsOuts::parse(&args);
    // The query program is shared-memory (the paper runs it on one fat
    // node), so the trace has a single track.
    let tracer = if outs.any() {
        let t = obs::Tracer::new(1);
        t.set_flows_enabled(outs.flows);
        Some(t)
    } else {
        None
    };

    let store = Store::open(&store_dir).unwrap_or_else(|e| die(&format!("cannot open store: {e}")));
    let (_, elem, metric_name) = read_meta(&store);
    let graph_key = if store.contains("opt/offsets") {
        "opt"
    } else {
        "knng"
    };
    let graph = KnnGraph::load(&store, graph_key).unwrap_or_else(|e| die(&e.to_string()));
    println!(
        "serving {} graph: {} vertices, {} edges ({}, {metric_name})",
        graph_key,
        graph.len(),
        graph.edge_count(),
        elem.name()
    );

    let gt_ids = {
        let gt_file: String = args.get("gt", String::new());
        if gt_file.is_empty() {
            None
        } else {
            Some(io::read_ivecs(&gt_file).unwrap_or_else(|e| die(&format!("bad --gt file: {e}"))))
        }
    };

    let summary = match elem {
        Elem::F32 => {
            let base = PointSet::<Vec<f32>>::load(&store, "dataset")
                .unwrap_or_else(|e| die(&e.to_string()));
            let (base, queries, graph) = if self_queries > 0 {
                // Hold out the tail of the dataset as queries; trim the
                // graph rows accordingly is NOT valid (ids shift), so for
                // self-evaluation we re-query *member* points instead.
                let queries = PointSet::new(base.points()[base.len() - self_queries..].to_vec());
                (base, queries, graph)
            } else if query_file.is_empty() {
                die("provide --queries <file> or --self-queries <n>")
            } else {
                let queries = io::read_fvecs(&query_file)
                    .unwrap_or_else(|e| die(&format!("bad --queries file: {e}")));
                (base, queries, graph)
            };
            match metric_name.as_str() {
                "l2" => run(
                    base,
                    &graph,
                    dataset::L2,
                    queries,
                    gt_ids,
                    l,
                    epsilon,
                    entries,
                    tracer.as_ref(),
                ),
                "sql2" => run(
                    base,
                    &graph,
                    dataset::SquaredL2,
                    queries,
                    gt_ids,
                    l,
                    epsilon,
                    entries,
                    tracer.as_ref(),
                ),
                "cosine" => run(
                    base,
                    &graph,
                    dataset::Cosine,
                    queries,
                    gt_ids,
                    l,
                    epsilon,
                    entries,
                    tracer.as_ref(),
                ),
                "l1" => run(
                    base,
                    &graph,
                    dataset::L1,
                    queries,
                    gt_ids,
                    l,
                    epsilon,
                    entries,
                    tracer.as_ref(),
                ),
                other => die(&format!("unknown metric {other:?}")),
            }
        }
        Elem::U8 => {
            let base = PointSet::<Vec<u8>>::load(&store, "dataset")
                .unwrap_or_else(|e| die(&e.to_string()));
            let queries = if self_queries > 0 {
                PointSet::new(base.points()[base.len() - self_queries..].to_vec())
            } else if query_file.is_empty() {
                die("provide --queries <file> or --self-queries <n>")
            } else {
                io::read_bvecs(&query_file)
                    .unwrap_or_else(|e| die(&format!("bad --queries file: {e}")))
            };
            run(
                base,
                &graph,
                dataset::L2,
                queries,
                gt_ids,
                l,
                epsilon,
                entries,
                tracer.as_ref(),
            )
        }
    };

    if let Some(t) = &tracer {
        if !outs.trace.is_empty() {
            std::fs::write(&outs.trace, obs::chrome::chrome_trace_json(t))
                .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", outs.trace)));
            println!("trace written to {}", outs.trace);
        }
        if outs.wants_report() {
            let mut rr = obs::RunReport::new("dnnd-query");
            rr.n_ranks = 1;
            rr.wall_secs = summary.secs;
            rr.distance_evals = summary.distance_evals;
            rr.recall = Some(summary.recall);
            rr.param("store", &store_dir)
                .param("l", l)
                .param("epsilon", epsilon)
                .param("entries", entries)
                .param("metric", &metric_name)
                .param("graph", graph_key);
            rr.extra.push(("qps".into(), summary.qps));
            rr.extra
                .push(("n_queries".into(), summary.n_queries as f64));
            rr.add_histograms(&t.hist_snapshots());
            rr.set_dropped_spans(t.dropped_events() as u64);
            if !outs.report.is_empty() {
                std::fs::write(&outs.report, rr.to_json_string())
                    .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", outs.report)));
                println!("run report written to {}", outs.report);
            }
            if !outs.dashboard.is_empty() {
                std::fs::write(&outs.dashboard, obs::dashboard::dashboard_html(&rr))
                    .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", outs.dashboard)));
                println!("dashboard written to {}", outs.dashboard);
            }
        }
    }
}
