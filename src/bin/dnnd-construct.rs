//! `dnnd-construct` — the paper's k-NNG construction executable
//! (Section 5.1.3): builds a k-NNG with distributed NN-Descent and stores
//! the graph and the dataset in a persistent store for `dnnd-optimize` /
//! `dnnd-query` to pick up.
//!
//! ```text
//! dnnd-construct --input preset:deep1b --n 2000 --k 10 --ranks 8 \
//!                --metric l2 --store /tmp/deep-store
//! dnnd-construct --input base.fvecs --k 20 --store ./store
//! dnnd-construct --input base.u8bin --elem u8 --k 10 --store ./store
//! ```
//!
//! Flags: `--rho --delta --seed --batch-size --unoptimized` (protocol),
//! `--no-shuffle` (reverse exchange), `--elem f32|u8`, and the
//! observability outputs `--trace-out trace.json` (Chrome-trace /
//! Perfetto span timeline, one track per rank), `--report-out
//! report.json` (unified machine-readable run report), and
//! `--dashboard-out dash.html` (self-contained HTML dashboard: phase
//! timeline, critical-path lane, rank×rank traffic heatmap, convergence
//! curve, telemetry series — no external assets). `--trace-flows off`
//! drops the cross-rank flow arrows (`ph:"s"/"f"`) from the trace when
//! only per-rank spans are wanted.
//!
//! Fault injection: `--fault-profile clean|lossy|stormy` runs the build
//! under the simulated-transport fault layer, and `--sim-seed <u64>`
//! (default 0) pins the deterministic fault schedule — pass the seed a
//! failing `simtest` sweep printed to replay that exact failure here.

use bench::Args;
use dnnd::{build, CommOpts, DnndConfig};
use dnnd_repro::cli::{die, load_f32, load_u8, parse_fault_plan, read_meta, Elem, ObsOuts};
use metall::Store;
use std::sync::Arc;
use ygm::World;

fn main() {
    let args = Args::parse();
    let input: String = args.get("input", String::new());
    if input.is_empty() {
        die("--input <file|preset:NAME> is required");
    }
    let store_dir: String = args.get("store", String::new());
    if store_dir.is_empty() {
        die("--store <dir> is required");
    }
    let k: usize = args.get("k", 10);
    let ranks: usize = args.get("ranks", 8);
    let n: usize = args.get("n", 2_000);
    let seed: u64 = args.get("seed", 0xD00D);
    let metric_name: String = args.get("metric", "l2".to_string());
    let elem = if args.get::<String>("elem", "f32".into()) == "u8" {
        Elem::U8
    } else {
        Elem::F32
    };

    let mut cfg = DnndConfig::new(k)
        .seed(seed)
        .rho(args.get("rho", 0.8))
        .delta(args.get("delta", 0.001))
        .batch_size(args.get("batch-size", 1u64 << 16));
    if args.flag("unoptimized") {
        cfg = cfg.comm_opts(CommOpts::unoptimized());
    }
    if args.flag("no-shuffle") {
        cfg = cfg.shuffle_reverse(false);
    }

    let outs = ObsOuts::parse(&args);
    let tracer = if outs.any() {
        let t = Arc::new(obs::Tracer::new(ranks));
        t.set_flows_enabled(outs.flows);
        Some(t)
    } else {
        None
    };

    let mut store = Store::open_or_create(&store_dir)
        .unwrap_or_else(|e| die(&format!("cannot open store {store_dir}: {e}")));
    let fault_profile: String = args.get("fault-profile", String::new());
    let sim_seed: u64 = args.get("sim-seed", 0);
    let plan = parse_fault_plan(&fault_profile, sim_seed);

    let mut world = World::new(ranks);
    if let Some(t) = &tracer {
        world = world.tracer(Arc::clone(t));
    }
    if let Some(p) = plan {
        println!(
            "fault injection: profile {} with --sim-seed {sim_seed}",
            p.profile.name()
        );
        world = world.fault_plan(p);
    }

    let report = match elem {
        Elem::F32 => {
            let set = Arc::new(load_f32(&input, n, seed));
            println!(
                "dataset: {} points x {} dims (f32), metric {metric_name}",
                set.len(),
                set.dim()
            );
            let out = match metric_name.as_str() {
                "l2" => build(&world, &set, &dataset::L2, cfg),
                "sql2" => build(&world, &set, &dataset::SquaredL2, cfg),
                "cosine" => build(&world, &set, &dataset::Cosine, cfg),
                "l1" => build(&world, &set, &dataset::L1, cfg),
                other => die(&format!("unknown metric {other:?}")),
            };
            set.save(&mut store, "dataset")
                .unwrap_or_else(|e| die(&e.to_string()));
            out.graph
                .save(&mut store, "knng")
                .unwrap_or_else(|e| die(&e.to_string()));
            out.report
        }
        Elem::U8 => {
            let set = Arc::new(load_u8(&input, n, seed));
            println!(
                "dataset: {} points x {} dims (u8), metric l2",
                set.len(),
                set.dim()
            );
            if metric_name != "l2" {
                die("u8 datasets support --metric l2 only");
            }
            let out = build(&world, &set, &dataset::L2, cfg);
            set.save(&mut store, "dataset")
                .unwrap_or_else(|e| die(&e.to_string()));
            out.graph
                .save(&mut store, "knng")
                .unwrap_or_else(|e| die(&e.to_string()));
            out.report
        }
    };

    store
        .put("meta/k", &(k as u64))
        .unwrap_or_else(|e| die(&e.to_string()));
    store
        .put("meta/elem", &elem.name().to_string())
        .unwrap_or_else(|e| die(&e.to_string()));
    store
        .put("meta/metric", &metric_name)
        .unwrap_or_else(|e| die(&e.to_string()));

    let (mk, me, mm) = read_meta(&store);
    println!(
        "constructed k={mk} ({me:?}, {mm}) on {ranks} simulated ranks: \
         {} iterations, {} distance evals",
        report.iterations, report.distance_evals
    );
    println!(
        "virtual time {:.4}s (compute {:.4}s / comm {:.4}s / barrier {:.4}s); wall {:.2}s",
        report.sim_secs,
        report.breakdown.compute_secs,
        report.breakdown.comm_secs,
        report.breakdown.barrier_secs,
        report.wall_secs
    );
    println!(
        "traffic: {} messages, {:.1} MB ({} objects, {} bytes persisted to {store_dir})",
        report.total.count,
        report.total.bytes as f64 / 1e6,
        store.len(),
        store.total_bytes()
    );
    if let Some(f) = &report.faults {
        println!(
            "faults ({} / sim-seed {}): {} dropped, {} duplicated, {} delayed, {} stalls, \
             {} retransmits, {} dedup discards (replay: --fault-profile {} --sim-seed {})",
            f.profile,
            f.sim_seed,
            f.dropped,
            f.duplicated,
            f.delayed,
            f.stalls,
            f.retransmits,
            f.dedup_discards,
            f.profile,
            f.sim_seed
        );
    }

    if let Some(t) = &tracer {
        if !outs.trace.is_empty() {
            dnnd::obs_report::write_trace(&outs.trace, t)
                .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", outs.trace)));
            println!(
                "trace written to {} ({} spans dropped)",
                outs.trace,
                t.dropped_events()
            );
        }
        if outs.wants_report() {
            let mut rr = dnnd::obs_report::report_from_build("dnnd-construct", &report);
            rr.param("input", &input)
                .param("k", k)
                .param("metric", &metric_name)
                .param("seed", seed)
                .param("elem", elem.name());
            if !fault_profile.is_empty() && fault_profile != "none" {
                rr.param("fault_profile", &fault_profile)
                    .param("sim_seed", sim_seed);
            }
            rr.metric("store_high_water_bytes", store.high_water_bytes() as f64);
            dnnd::obs_report::attach_histograms(&mut rr, Some(t));
            dnnd::obs_report::attach_series(&mut rr, Some(t));
            if !outs.report.is_empty() {
                dnnd::obs_report::write_report(&outs.report, &rr)
                    .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", outs.report)));
                println!("run report written to {}", outs.report);
            }
            if !outs.dashboard.is_empty() {
                dnnd::obs_report::write_dashboard(&outs.dashboard, &rr)
                    .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", outs.dashboard)));
                println!("dashboard written to {}", outs.dashboard);
            }
        }
    }
}
