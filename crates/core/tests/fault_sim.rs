//! Engine-level fault-simulation tests: rank-count invariance of the
//! unoptimized protocol, schedule-independence of the termination counter,
//! construction quality under injected transport faults, and deterministic
//! replay of failing sim seeds.

use dataset::ground_truth::brute_force_knng;
use dataset::metric::L2;
use dataset::recall::mean_recall;
use dataset::set::PointId;
use dataset::synth::{gaussian_mixture, MixtureParams};
use dnnd::{build, CommOpts, DnndConfig, DnndOutput};
use std::sync::Arc;
use ygm::{FaultPlan, FaultProfile, World};

fn unopt_cfg(k: usize) -> DnndConfig {
    DnndConfig::new(k)
        .seed(11)
        .comm_opts(CommOpts::unoptimized())
}

/// Render the first divergent node of two neighbor-list graphs.
fn first_divergence(a: &[Vec<PointId>], b: &[Vec<PointId>]) -> Option<String> {
    a.iter().zip(b.iter()).enumerate().find_map(|(v, (x, y))| {
        (x != y).then(|| format!("first divergent node {v}:\n  left:  {x:?}\n  right: {y:?}"))
    })
}

/// The unoptimized (Figure 1a) protocol is a pure function of the delivered
/// message multiset, so the graph must be bit-identical for any rank count.
#[test]
fn unoptimized_graph_is_rank_count_invariant() {
    let set = Arc::new(gaussian_mixture(MixtureParams::embedding_like(300, 8), 2));
    let reference = build(&World::new(1), &set, &L2, unopt_cfg(6))
        .graph
        .neighbor_ids();
    for ranks in [2usize, 4, 8] {
        let got = build(&World::new(ranks), &set, &L2, unopt_cfg(6))
            .graph
            .neighbor_ids();
        if let Some(diff) = first_divergence(&got, &reference) {
            panic!("n_ranks={ranks} diverged from n_ranks=1: {diff}");
        }
    }
}

/// Regression for the schedule-dependent termination counter the fault
/// harness surfaced: `c` used to count transient `checked_insert`
/// successes, whose total depends on message-arrival order (two identical
/// fault-free runs reported e.g. 7913 vs 8004 first-iteration updates).
/// Near the `delta * K * N` threshold that could flip the termination
/// decision and diverge the graph. `c` now counts end-of-iteration heap
/// survivors, a pure function of the delivered message multiset.
#[test]
fn termination_counter_is_schedule_independent() {
    let set = Arc::new(gaussian_mixture(MixtureParams::embedding_like(300, 8), 4));
    let a = build(&World::new(4), &set, &L2, unopt_cfg(6));
    let b = build(&World::new(4), &set, &L2, unopt_cfg(6));
    assert_eq!(
        a.report.updates_per_iter, b.report.updates_per_iter,
        "updates_per_iter must not depend on thread scheduling"
    );
    assert_eq!(a.report.iterations, b.report.iterations);
    assert!(first_divergence(&a.graph.neighbor_ids(), &b.graph.neighbor_ids()).is_none());
}

/// Acceptance: with up to 10% drop plus duplication, delay, stalls, and
/// flush jitter (the stormy profile), construction terminates and recall
/// stays within 0.05 of the fault-free same-seed run on two small presets.
/// Under the unoptimized protocol the reliable-delivery layer must do even
/// better: the graph is bit-identical to fault-free.
#[test]
fn stormy_faults_preserve_recall_on_two_presets() {
    let presets = [
        ("clustered", MixtureParams::embedding_like(300, 8)),
        (
            "spread",
            MixtureParams {
                n: 300,
                dim: 10,
                n_clusters: 3,
                center_spread: 2.0,
                cluster_std: 4.0,
            },
        ),
    ];
    for (name, params) in presets {
        let set = Arc::new(gaussian_mixture(params, 6));
        let truth = brute_force_knng(&set, &L2, 6);
        for opts in [CommOpts::optimized(), CommOpts::unoptimized()] {
            let cfg = DnndConfig::new(6).seed(11).comm_opts(opts);
            let clean = build(&World::new(4), &set, &L2, cfg);
            let plan = FaultPlan::new(FaultProfile::stormy(), 0xF00D);
            let faulted = build(&World::new(4).fault_plan(plan), &set, &L2, cfg);
            let injected = faulted.report.faults.as_ref().unwrap().injected();
            assert!(injected > 0, "{name}: stormy profile injected nothing");
            assert!(faulted.report.iterations >= 1);

            let r_clean = mean_recall(&clean.graph.neighbor_ids(), &truth);
            let r_fault = mean_recall(&faulted.graph.neighbor_ids(), &truth);
            let drift = (r_clean - r_fault).abs();
            assert!(
                drift <= 0.05,
                "{name}: recall drifted {drift:.4} under faults ({r_fault:.4} vs {r_clean:.4})"
            );
            if !opts.one_sided {
                if let Some(diff) =
                    first_divergence(&faulted.graph.neighbor_ids(), &clean.graph.neighbor_ids())
                {
                    panic!("{name}: unoptimized graph changed under stormy faults: {diff}");
                }
            }
        }
    }
}

/// Acceptance: a failing sim seed deterministically reproduces. A total
/// drop storm with no forced-delivery cap hangs the termination barrier;
/// the runtime's storm guard converts that into a panic naming the seed,
/// and replaying the same seed twice yields the identical failure.
#[test]
fn known_bad_seed_reproduces_identically_on_replay() {
    let run = || {
        let set = Arc::new(gaussian_mixture(MixtureParams::embedding_like(120, 6), 3));
        let profile = FaultProfile {
            drop: 1.0,
            max_faulty_attempts: u32::MAX,
            ..FaultProfile::stormy()
        };
        let plan = FaultPlan::new(profile, 0xBAD_0001);
        std::panic::catch_unwind(|| build(&World::new(3).fault_plan(plan), &set, &L2, unopt_cfg(4)))
    };
    let extract = |r: std::thread::Result<DnndOutput>| -> String {
        let payload = r.expect_err("total drop storm must not terminate");
        payload
            .downcast_ref::<String>()
            .cloned()
            .expect("storm guard panics with a String message")
    };
    let first = extract(run());
    let second = extract(run());
    assert!(
        first.contains(&format!("--sim-seed {}", 0xBAD_0001)),
        "failure must name the replay seed: {first}"
    );
    assert_eq!(first, second, "replayed failure diverged");
}

/// Replaying a hostile-but-survivable seed twice produces identical traces:
/// same graph, same per-iteration update counts, same logical message
/// totals, same deterministic fault decisions.
#[test]
fn hostile_seed_replays_with_identical_traces() {
    let set = Arc::new(gaussian_mixture(MixtureParams::embedding_like(250, 8), 8));
    let run = || {
        let plan = FaultPlan::new(FaultProfile::stormy(), 0xCAFE);
        build(&World::new(4).fault_plan(plan), &set, &L2, unopt_cfg(5))
    };
    let a = run();
    let b = run();
    assert_eq!(a.graph.neighbor_ids(), b.graph.neighbor_ids());
    assert_eq!(a.report.updates_per_iter, b.report.updates_per_iter);
    assert_eq!(a.report.total.count, b.report.total.count);
    assert_eq!(a.report.total.bytes, b.report.total.bytes);
    let (fa, fb) = (
        a.report.faults.as_ref().unwrap(),
        b.report.faults.as_ref().unwrap(),
    );
    // Flush jitter is a pure function of per-edge send counts, which the
    // deterministic engine makes identical across replays.
    assert_eq!(fa.jittered_flushes, fb.jittered_flushes);
    assert_eq!(fa.sim_seed, fb.sim_seed);
}
