//! Randomized stress test of the distributed engine: arbitrary small
//! configurations must always produce structurally valid graphs with
//! conserved message accounting, under both protocols.

use dataset::set::PointId;
use dataset::synth::{gaussian_mixture, MixtureParams};
use dataset::L2;
use dnnd::{build, CommOpts, DnndConfig};
use proptest::prelude::*;
use std::sync::Arc;
use ygm::World;

proptest! {
    // Each case spins up a world; keep the count tight but the coverage
    // diverse (ranks, k, rho, batch size, protocol all vary).
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn any_config_builds_a_valid_graph(
        n in 60usize..220,
        ranks in 1usize..7,
        k in 2usize..12,
        rho in 0.3f64..1.0,
        batch_shift in 6u32..18,
        optimized in any::<bool>(),
        graph_opt in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let set = Arc::new(gaussian_mixture(
            MixtureParams::embedding_like(n, 6),
            seed,
        ));
        let mut cfg = DnndConfig::new(k)
            .seed(seed)
            .rho(rho)
            .batch_size(1 << batch_shift)
            .max_iters(6)
            .comm_opts(if optimized {
                CommOpts::optimized()
            } else {
                CommOpts::unoptimized()
            });
        if graph_opt {
            cfg = cfg.graph_opt(1.5);
        }
        let out = build(&World::new(ranks), &set, &L2, cfg);

        // Structural invariants.
        prop_assert_eq!(out.graph.len(), n);
        let limit = if graph_opt {
            ((k as f64) * 1.5).ceil() as usize
        } else {
            k
        };
        for v in 0..n as PointId {
            let row = out.graph.neighbors(v);
            prop_assert!(!row.is_empty(), "vertex {} has no neighbors", v);
            prop_assert!(row.len() <= limit, "vertex {} degree {} > {}", v, row.len(), limit);
            let ids: Vec<PointId> = row.iter().map(|&(id, _)| id).collect();
            prop_assert!(!ids.contains(&v), "self edge at {}", v);
            let mut dedup = ids.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), ids.len(), "duplicates at {}", v);
            prop_assert!(row.windows(2).all(|w| w[0].1 <= w[1].1), "unsorted at {}", v);
            prop_assert!(row.iter().all(|&(u, d)| (u as usize) < n && d >= 0.0));
        }

        // Accounting invariants.
        prop_assert_eq!(out.report.iterations, out.report.updates_per_iter.len());
        prop_assert!(out.report.iterations >= 1);
        prop_assert!(out.report.distance_evals > 0);
        prop_assert!(out.report.sim_secs >= 0.0);
        let b = out.report.breakdown;
        prop_assert!((b.total_secs() - out.report.sim_secs).abs() < 1e-6);
        if ranks == 1 {
            prop_assert_eq!(out.report.total.remote_count, 0);
        }
        // Protocol tag discipline.
        use dnnd::msgs::{TAG_TYPE2, TAG_TYPE2_PLUS, TAG_TYPE3};
        if optimized {
            prop_assert_eq!(out.report.tag(TAG_TYPE2).count, 0);
        } else {
            prop_assert_eq!(out.report.tag(TAG_TYPE2_PLUS).count, 0);
            prop_assert_eq!(out.report.tag(TAG_TYPE3).count, 0);
        }
    }
}
