//! Behavioral tests of the distributed engine: graph validity, quality
//! parity with brute force and with the shared-memory implementation, the
//! paper's rank-count-invariance claim (Section 5.3.3), and the Figure 4
//! communication-saving effects.

use dataset::ground_truth::brute_force_knng;
use dataset::metric::{Jaccard, L2};
use dataset::recall::mean_recall;
use dataset::set::{PointId, PointSet};
use dataset::synth::{gaussian_mixture, MixtureParams};
use dnnd::msgs::{TAG_TYPE1, TAG_TYPE2, TAG_TYPE2_PLUS, TAG_TYPE3};
use dnnd::{build, CommOpts, DnndConfig};
use std::sync::Arc;
use ygm::World;

fn clustered(n: usize, dim: usize, seed: u64) -> Arc<PointSet<Vec<f32>>> {
    Arc::new(gaussian_mixture(
        MixtureParams::embedding_like(n, dim),
        seed,
    ))
}

#[test]
fn every_vertex_gets_k_valid_neighbors() {
    let set = clustered(250, 8, 1);
    let out = build(&World::new(3), &set, &L2, DnndConfig::new(6).seed(2));
    assert_eq!(out.graph.len(), 250);
    for v in 0..250u32 {
        let row = out.graph.neighbors(v);
        assert_eq!(row.len(), 6, "vertex {v}");
        let ids: Vec<PointId> = row.iter().map(|&(id, _)| id).collect();
        assert!(!ids.contains(&v), "self edge at {v}");
        let mut d = ids.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), ids.len(), "duplicate at {v}");
        assert!(row.windows(2).all(|w| w[0].1 <= w[1].1), "unsorted at {v}");
    }
}

#[test]
fn distances_match_metric() {
    let set = clustered(150, 4, 3);
    let out = build(&World::new(2), &set, &L2, DnndConfig::new(4));
    for v in 0..150u32 {
        for &(u, d) in out.graph.neighbors(v) {
            let expect = dataset::Metric::<Vec<f32>>::distance(&L2, set.point(v), set.point(u));
            assert!((d - expect).abs() < 1e-5);
        }
    }
}

#[test]
fn reaches_high_recall_vs_brute_force() {
    let set = clustered(500, 12, 5);
    let out = build(&World::new(4), &set, &L2, DnndConfig::new(10).seed(7));
    let truth = brute_force_knng(&set, &L2, 10);
    let recall = mean_recall(&out.graph.neighbor_ids(), &truth);
    assert!(recall > 0.93, "distributed recall {recall}");
}

#[test]
fn quality_is_rank_count_invariant() {
    // Section 5.3.3: "DNND was able to produce the same quality graphs
    // regardless of the number of compute nodes used."
    let set = clustered(400, 10, 9);
    let truth = brute_force_knng(&set, &L2, 8);
    let mut recalls = Vec::new();
    for ranks in [1, 2, 4, 8] {
        let out = build(&World::new(ranks), &set, &L2, DnndConfig::new(8).seed(11));
        recalls.push(mean_recall(&out.graph.neighbor_ids(), &truth));
    }
    for (i, r) in recalls.iter().enumerate() {
        assert!(*r > 0.9, "ranks config {i} recall {r}");
    }
    let spread = recalls.iter().cloned().fold(f64::MIN, f64::max)
        - recalls.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        spread < 0.05,
        "recall spread {spread} across ranks: {recalls:?}"
    );
}

#[test]
fn optimized_protocol_halves_check_traffic_at_equal_quality() {
    // The Figure 4 claim: ~50% fewer messages and bytes in the neighbor
    // check phase, with no quality loss.
    let set = clustered(400, 16, 13);
    let truth = brute_force_knng(&set, &L2, 8);

    let unopt = build(
        &World::new(4),
        &set,
        &L2,
        DnndConfig::new(8)
            .seed(3)
            .comm_opts(CommOpts::unoptimized()),
    );
    let opt = build(
        &World::new(4),
        &set,
        &L2,
        DnndConfig::new(8).seed(3).comm_opts(CommOpts::optimized()),
    );

    let r_unopt = mean_recall(&unopt.graph.neighbor_ids(), &truth);
    let r_opt = mean_recall(&opt.graph.neighbor_ids(), &truth);
    assert!(r_unopt > 0.9 && r_opt > 0.9, "recalls {r_unopt} {r_opt}");
    assert!(
        (r_unopt - r_opt).abs() < 0.05,
        "protocols disagree on quality: {r_unopt} vs {r_opt}"
    );

    let t_unopt = unopt.report.check_traffic();
    let t_opt = opt.report.check_traffic();
    assert!(
        (t_opt.count as f64) < 0.7 * t_unopt.count as f64,
        "message count not reduced: {} -> {}",
        t_unopt.count,
        t_opt.count
    );
    assert!(
        (t_opt.bytes as f64) < 0.7 * t_unopt.bytes as f64,
        "byte volume not reduced: {} -> {}",
        t_unopt.bytes,
        t_opt.bytes
    );

    // Tag usage matches Figure 1: unoptimized never sends 2+/3, optimized
    // never sends plain Type 2.
    assert_eq!(unopt.report.tag(TAG_TYPE2_PLUS).count, 0);
    assert_eq!(unopt.report.tag(TAG_TYPE3).count, 0);
    assert!(unopt.report.tag(TAG_TYPE2).count > 0);
    assert_eq!(opt.report.tag(TAG_TYPE2).count, 0);
    assert!(opt.report.tag(TAG_TYPE2_PLUS).count > 0);
    assert!(opt.report.tag(TAG_TYPE3).count > 0);
    // One-sided: optimized sends half the Type 1 messages.
    assert!(opt.report.tag(TAG_TYPE1).count <= unopt.report.tag(TAG_TYPE1).count);
}

#[test]
fn type3_pruning_cuts_replies() {
    let set = clustered(300, 8, 17);
    let no_prune = CommOpts {
        one_sided: true,
        skip_redundant: true,
        prune_distance: false,
    };
    let with_prune = CommOpts::optimized();
    let a = build(
        &World::new(3),
        &set,
        &L2,
        DnndConfig::new(6).seed(5).comm_opts(no_prune),
    );
    let b = build(
        &World::new(3),
        &set,
        &L2,
        DnndConfig::new(6).seed(5).comm_opts(with_prune),
    );
    assert!(
        b.report.tag(TAG_TYPE3).count < a.report.tag(TAG_TYPE3).count,
        "pruning did not reduce Type 3: {} vs {}",
        a.report.tag(TAG_TYPE3).count,
        b.report.tag(TAG_TYPE3).count
    );
}

#[test]
fn graph_opt_bounds_degree_and_adds_reverse_edges() {
    let set = clustered(300, 8, 19);
    let k = 6;
    let out = build(
        &World::new(3),
        &set,
        &L2,
        DnndConfig::new(k).seed(23).graph_opt(1.5),
    );
    let limit = (k as f64 * 1.5).ceil() as usize;
    assert!(out.graph.max_degree() <= limit);
    // Reverse-merge should give some vertices more than k neighbors.
    assert!(
        out.graph.edge_count() > 300 * k,
        "optimization added no edges"
    );
}

#[test]
fn distributed_matches_shared_memory_quality() {
    let set = clustered(400, 12, 29);
    let truth = brute_force_knng(&set, &L2, 8);
    let (shared_graph, _) = nnd::build(&set, &L2, nnd::NnDescentParams::new(8).seed(4));
    let dist = build(&World::new(4), &set, &L2, DnndConfig::new(8).seed(4));
    let r_shared = mean_recall(&shared_graph.neighbor_ids(), &truth);
    let r_dist = mean_recall(&dist.graph.neighbor_ids(), &truth);
    assert!(
        (r_shared - r_dist).abs() < 0.05,
        "shared {r_shared} vs distributed {r_dist}"
    );
}

#[test]
fn works_with_jaccard_sparse_data() {
    let set = Arc::new(dataset::presets::kosarak_like(200, 31));
    let out = build(&World::new(3), &set, &Jaccard, DnndConfig::new(5).seed(37));
    let truth = brute_force_knng(&set, &Jaccard, 5);
    let recall = mean_recall(&out.graph.neighbor_ids(), &truth);
    assert!(recall > 0.5, "jaccard distributed recall {recall}");
}

#[test]
fn works_with_u8_vectors() {
    let set = Arc::new(dataset::presets::bigann_like(250, 41));
    let out = build(&World::new(3), &set, &L2, DnndConfig::new(6).seed(43));
    let truth = brute_force_knng(&set, &L2, 6);
    let recall = mean_recall(&out.graph.neighbor_ids(), &truth);
    assert!(recall > 0.85, "u8 distributed recall {recall}");
}

#[test]
fn single_rank_works() {
    let set = clustered(120, 4, 47);
    let out = build(&World::new(1), &set, &L2, DnndConfig::new(4));
    assert_eq!(out.graph.len(), 120);
    // Single rank: all traffic is rank-local.
    assert_eq!(out.report.total.remote_count, 0);
}

#[test]
fn small_batch_size_only_adds_barriers() {
    let set = clustered(200, 6, 53);
    let truth = brute_force_knng(&set, &L2, 5);
    let big = build(
        &World::new(2),
        &set,
        &L2,
        DnndConfig::new(5).seed(6).batch_size(1 << 20),
    );
    let tiny = build(
        &World::new(2),
        &set,
        &L2,
        DnndConfig::new(5).seed(6).batch_size(64),
    );
    let r_big = mean_recall(&big.graph.neighbor_ids(), &truth);
    let r_tiny = mean_recall(&tiny.graph.neighbor_ids(), &truth);
    assert!(
        (r_big - r_tiny).abs() < 0.06,
        "batching changed quality: {r_big} vs {r_tiny}"
    );
    // Smaller batches mean more barriers, which cost virtual time.
    assert!(tiny.report.sim_secs >= big.report.sim_secs);
}

#[test]
fn sim_time_shows_strong_scaling() {
    // The Figure 3 mechanism in miniature: more ranks, less virtual time.
    let set = clustered(400, 24, 59);
    let t2 = build(&World::new(2), &set, &L2, DnndConfig::new(8).seed(8))
        .report
        .sim_secs;
    let t8 = build(&World::new(8), &set, &L2, DnndConfig::new(8).seed(8))
        .report
        .sim_secs;
    assert!(
        t8 < t2,
        "virtual construction time must shrink with ranks: t2={t2} t8={t8}"
    );
}

#[test]
fn updates_counter_terminates_descent() {
    let set = clustered(200, 6, 61);
    let out = build(&World::new(2), &set, &L2, DnndConfig::new(5).delta(0.5));
    // A huge delta should stop after very few iterations.
    assert!(
        out.report.iterations <= 3,
        "iterations {}",
        out.report.iterations
    );
    assert_eq!(out.report.iterations, out.report.updates_per_iter.len());
}
