//! Wire messages and tags for the DNND protocol.
//!
//! Tag names follow the paper's Figure 1 terminology:
//!
//! * **Type 1** — neighbor-check request from the center vertex `v` to (the
//!   owner of) `u1`, naming the join row `(u1, [u2...])`. Small: ids only.
//! * **Type 2** — unoptimized full feature-vector exchange (Figure 1a):
//!   both endpoints ship their vectors to each other.
//! * **Type 2+** — optimized vector message (Figure 1b): `u1`'s vector plus
//!   the distance to `u1`'s current farthest neighbor (the pruning bound of
//!   Section 4.3.3). The bound is "negligible in size" next to the vector.
//! * **Type 3** — distance-return message from `u2`'s owner back to `u1`.
//!
//! Since the batched-kernel rework every check message carries a *row* of
//! partner ids rather than a single pair: one Type 1 per join head, one
//! Type 2/2+ per `(head, destination-rank)` group — shipping the head's
//! vector once per destination instead of once per pair — and one Type 3
//! per answered Type 2+. Receivers evaluate each row as a single 1xN
//! batched distance call.
//!
//! Init and reverse-exchange messages round out the protocol; the tag
//! constants index the [`ygm::Stats`] counters behind Figure 4.

use bytes::{Bytes, BytesMut};
use dataset::set::PointId;
use ygm::Wire;

/// k-NNG random initialization: carry `v`'s vector to `owner(u)`.
pub const TAG_INIT_REQ: u16 = 10;
/// Initialization reply: distance from `v` to `u`.
pub const TAG_INIT_RESP: u16 = 11;
/// Reverse-neighbor exchange entry (Section 4.2), `new` lists.
pub const TAG_REV_NEW: u16 = 12;
/// Reverse-neighbor exchange entry (Section 4.2), `old` lists.
pub const TAG_REV_OLD: u16 = 13;
/// Neighbor-check request (both protocols).
pub const TAG_TYPE1: u16 = 14;
/// Unoptimized full-vector exchange.
pub const TAG_TYPE2: u16 = 15;
/// Optimized vector + pruning-bound message.
pub const TAG_TYPE2_PLUS: u16 = 16;
/// Distance return.
pub const TAG_TYPE3: u16 = 17;
/// Graph-optimization reverse-edge shipment (Section 4.5).
pub const TAG_OPT_EDGE: u16 = 18;
/// RNN-Descent pair-distance request `(v, a, [b...])` to `owner(a)`: `v`'s
/// occlusion scan needs `theta(a, b)` for every tail. Ids only.
pub const TAG_RNN_REQ: u16 = 19;
/// RNN-Descent vector forward: `owner(a)` ships `a`'s vector once per
/// destination rank holding tails (the Type 2+ analogue of the 3-hop
/// chain).
pub const TAG_RNN_VEC: u16 = 20;
/// RNN-Descent distance return `(v, a, [(b, theta(a, b))...])` back to
/// `owner(v)` (the Type 3 analogue).
pub const TAG_RNN_DIST: u16 = 21;
/// RNN-Descent redirected-edge insert `(u, [(w, theta(u, w))...])`: `v`'s
/// scan occluded `v -> w` behind `u`, so `w` joins `u`'s row.
pub const TAG_RNN_INS: u16 = 22;
/// RNN-Descent reverse edge `(w, v, d)`: `v` holds `v -> w` at `d`; ship
/// `w -> v` to `owner(w)` at an outer-round boundary.
pub const TAG_RNN_REV: u16 = 23;

/// All protocol tags with their display names. The four neighbor-check
/// messages carry the paper's exact Figure 4 labels.
pub const TAG_NAMES: [(u16, &str); 14] = [
    (TAG_INIT_REQ, "init_req"),
    (TAG_INIT_RESP, "init_resp"),
    (TAG_REV_NEW, "rev_new"),
    (TAG_REV_OLD, "rev_old"),
    (TAG_TYPE1, "Type 1"),
    (TAG_TYPE2, "Type 2"),
    (TAG_TYPE2_PLUS, "Type 2+"),
    (TAG_TYPE3, "Type 3"),
    (TAG_OPT_EDGE, "opt_edge"),
    (TAG_RNN_REQ, "rnn_req"),
    (TAG_RNN_VEC, "rnn_vec"),
    (TAG_RNN_DIST, "rnn_dist"),
    (TAG_RNN_INS, "rnn_ins"),
    (TAG_RNN_REV, "rnn_rev"),
];

/// Display name for one DNND tag.
pub fn tag_display(tag: u16) -> &'static str {
    TAG_NAMES
        .iter()
        .find(|(t, _)| *t == tag)
        .map(|(_, n)| *n)
        .unwrap_or("unknown")
}

/// Attach human-readable names to all DNND tags on a comm's stats.
pub fn name_tags(comm: &ygm::Comm) {
    for (tag, name) in TAG_NAMES {
        comm.name_tag(tag, name);
    }
}

/// Init request: compute `theta(v, u)` for every `u` in `us` at their
/// owner (all `us` share one destination rank) using the attached vector
/// of `v`, as one batched distance call.
#[derive(Debug, Clone, PartialEq)]
pub struct InitReq<P> {
    /// The vertex being initialized (reply goes to its owner).
    pub v: PointId,
    /// The randomly drawn candidate neighbors owned by the destination.
    pub us: Vec<PointId>,
    /// Feature vector of `v`.
    pub vec: P,
}

impl<P: Wire> Wire for InitReq<P> {
    fn encode(&self, buf: &mut BytesMut) {
        self.v.encode(buf);
        self.us.encode(buf);
        self.vec.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Self {
        InitReq {
            v: PointId::decode(buf),
            us: Vec::<PointId>::decode(buf),
            vec: P::decode(buf),
        }
    }
    fn wire_size(&self) -> usize {
        self.v.wire_size() + self.us.wire_size() + self.vec.wire_size()
    }
}

/// Init reply: `(v, [(u, theta(v, u))...])` back to `owner(v)`.
pub type InitResp = (PointId, Vec<(PointId, f32)>);

/// Reverse-exchange entry `(u, v)`: "v listed u in its new/old list", sent
/// to `owner(u)`.
pub type RevEntry = (PointId, PointId);

/// Type 1: check the join row `(u1, [u2...])`, delivered to `owner(u1)`.
pub type Type1 = (PointId, Vec<PointId>);

/// Type 2 (unoptimized): `u1`'s vector shipped once to the rank owning
/// every endpoint in `u2s`; each `u2` computes its distance (one batched
/// 1xN call) and updates only its own neighbor list.
#[derive(Debug, Clone, PartialEq)]
pub struct Type2<P> {
    /// Source endpoint (vector attached).
    pub u1: PointId,
    /// Destination endpoints (all owned by the receiving rank).
    pub u2s: Vec<PointId>,
    /// Feature vector of `u1`.
    pub vec: P,
}

impl<P: Wire> Wire for Type2<P> {
    fn encode(&self, buf: &mut BytesMut) {
        self.u1.encode(buf);
        self.u2s.encode(buf);
        self.vec.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Self {
        Type2 {
            u1: PointId::decode(buf),
            u2s: Vec::<PointId>::decode(buf),
            vec: P::decode(buf),
        }
    }
    fn wire_size(&self) -> usize {
        self.u1.wire_size() + self.u2s.wire_size() + self.vec.wire_size()
    }
}

/// Type 2+ (optimized): like [`Type2`] plus the pruning bound
/// `theta(u1, G[u1][k])`.
#[derive(Debug, Clone, PartialEq)]
pub struct Type2Plus<P> {
    /// Endpoint that forwarded its vector.
    pub u1: PointId,
    /// Endpoints owned by the receiving rank.
    pub u2s: Vec<PointId>,
    /// `u1`'s current farthest-neighbor distance (`f32::INFINITY` while
    /// `u1`'s heap is not full, or when pruning is disabled).
    pub bound: f32,
    /// Feature vector of `u1`.
    pub vec: P,
}

impl<P: Wire> Wire for Type2Plus<P> {
    fn encode(&self, buf: &mut BytesMut) {
        self.u1.encode(buf);
        self.u2s.encode(buf);
        self.bound.encode(buf);
        self.vec.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Self {
        Type2Plus {
            u1: PointId::decode(buf),
            u2s: Vec::<PointId>::decode(buf),
            bound: f32::decode(buf),
            vec: P::decode(buf),
        }
    }
    fn wire_size(&self) -> usize {
        self.u1.wire_size() + self.u2s.wire_size() + self.bound.wire_size() + self.vec.wire_size()
    }
}

/// Type 3: `(u1, [(u2, theta(u1, u2))...])` returned to `owner(u1)` — one
/// message per answered Type 2+, carrying every non-pruned distance.
pub type Type3 = (PointId, Vec<(PointId, f32)>);

/// Graph-optimization reverse edge `(u, v, d)`: v holds edge `v -> u` at
/// distance `d`; ship `u <- v` to `owner(u)` (Section 4.5).
pub type OptEdge = (PointId, PointId, f32);

/// RNN-Descent pair-distance request `(v, a, [b...])`, delivered to
/// `owner(a)`.
pub type RnnReq = (PointId, PointId, Vec<PointId>);

/// RNN-Descent vector forward: `a`'s vector shipped once to the rank
/// owning every tail in `bs`; the receiver answers `owner(v)` with one
/// batched distance row.
#[derive(Debug, Clone, PartialEq)]
pub struct RnnVec<P> {
    /// The scanning vertex the distances are for.
    pub v: PointId,
    /// Head of the pair row (vector attached).
    pub a: PointId,
    /// Tails owned by the receiving rank.
    pub bs: Vec<PointId>,
    /// Feature vector of `a`.
    pub vec: P,
}

impl<P: Wire> Wire for RnnVec<P> {
    fn encode(&self, buf: &mut BytesMut) {
        self.v.encode(buf);
        self.a.encode(buf);
        self.bs.encode(buf);
        self.vec.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Self {
        RnnVec {
            v: PointId::decode(buf),
            a: PointId::decode(buf),
            bs: Vec::<PointId>::decode(buf),
            vec: P::decode(buf),
        }
    }
    fn wire_size(&self) -> usize {
        self.v.wire_size() + self.a.wire_size() + self.bs.wire_size() + self.vec.wire_size()
    }
}

/// RNN-Descent distance return `(v, a, [(b, theta(a, b))...])`.
pub type RnnDist = (PointId, PointId, Vec<(PointId, f32)>);

/// RNN-Descent redirected insert `(u, [(w, theta(u, w))...])`, delivered
/// to `owner(u)`.
pub type RnnIns = (PointId, Vec<(PointId, f32)>);

/// RNN-Descent reverse edge `(w, v, d)`, delivered to `owner(w)`.
pub type RnnRev = (PointId, PointId, f32);

#[cfg(test)]
mod tests {
    use super::*;
    use ygm::codec::{decode_from_bytes, encode_to_bytes};

    #[test]
    fn init_req_round_trip() {
        let m = InitReq {
            v: 3,
            us: vec![9, 12, 40],
            vec: vec![1.0f32, -2.0],
        };
        let enc = encode_to_bytes(&m);
        assert_eq!(enc.len(), m.wire_size());
        let back: InitReq<Vec<f32>> = decode_from_bytes(enc);
        assert_eq!(back, m);
    }

    #[test]
    fn type2_round_trip_u8() {
        let m = Type2 {
            u1: 1,
            u2s: vec![2, 6],
            vec: vec![9u8, 8, 7],
        };
        let back: Type2<Vec<u8>> = decode_from_bytes(encode_to_bytes(&m));
        assert_eq!(back, m);
    }

    #[test]
    fn type2plus_round_trip_and_bound() {
        let m = Type2Plus {
            u1: 4,
            u2s: vec![5, 11, 19],
            bound: 2.5,
            vec: vec![0.5f32; 8],
        };
        let back: Type2Plus<Vec<f32>> = decode_from_bytes(encode_to_bytes(&m));
        assert_eq!(back, m);
        // The bound adds exactly 4 bytes over Type 2 — "negligible" next to
        // the vector, as the paper argues.
        let t2 = Type2 {
            u1: 4,
            u2s: vec![5, 11, 19],
            vec: vec![0.5f32; 8],
        };
        assert_eq!(m.wire_size(), t2.wire_size() + 4);
    }

    #[test]
    fn sparse_vectors_travel_in_checks() {
        let m = Type2Plus {
            u1: 0,
            u2s: vec![1],
            bound: f32::INFINITY,
            vec: dataset::SparseVec::new(vec![5, 1, 12]),
        };
        let back: Type2Plus<dataset::SparseVec> = decode_from_bytes(encode_to_bytes(&m));
        assert_eq!(back, m);
        assert!(back.bound.is_infinite());
    }

    #[test]
    fn tags_are_distinct() {
        let mut sorted: Vec<u16> = TAG_NAMES.iter().map(|&(t, _)| t).collect();
        let len = sorted.len();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), len);
        assert!(sorted.iter().all(|&t| (t as usize) < ygm::MAX_TAGS));
    }

    #[test]
    fn rnn_vec_round_trip() {
        let m = RnnVec {
            v: 7,
            a: 3,
            bs: vec![1, 4, 9],
            vec: vec![0.25f32; 6],
        };
        let enc = encode_to_bytes(&m);
        assert_eq!(enc.len(), m.wire_size());
        let back: RnnVec<Vec<f32>> = decode_from_bytes(enc);
        assert_eq!(back, m);
    }
}
