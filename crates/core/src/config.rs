//! DNND configuration: Algorithm 1 hyper-parameters plus the paper's
//! distributed-specific knobs (communication-saving switches, batch size,
//! reverse-exchange shuffling) and the post-descent optimization-mode
//! selection (Section 4.5 reverse-prune vs the RNN-Descent extension).

use nnd::rnn::RnnParams;

/// Which of the Section 4.3 communication-saving techniques are active.
/// Separately switchable for the ablation benches; the paper evaluates only
/// all-off ("unoptimized") vs all-on ("optimized").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommOpts {
    /// 4.3.1 One-sided communication: the center vertex contacts only
    /// `u1`, which forwards its vector to `u2`; `u2` answers with a Type 3
    /// distance message instead of a second full-vector exchange.
    pub one_sided: bool,
    /// 4.3.2 Redundant-check reduction: drop the check when the partner is
    /// already a neighbor (applied at `u1` before Type 2+, and at `u2`
    /// before Type 3).
    pub skip_redundant: bool,
    /// 4.3.3 Long-distance pruning: Type 2+ carries `u1`'s current
    /// farthest-neighbor distance; `u2` replies only if the computed
    /// distance beats it.
    pub prune_distance: bool,
}

impl CommOpts {
    /// The paper's optimized protocol (Figure 1b): all three techniques.
    pub fn optimized() -> Self {
        CommOpts {
            one_sided: true,
            skip_redundant: true,
            prune_distance: true,
        }
    }

    /// The unoptimized baseline (Figure 1a): Type 1 to both endpoints,
    /// full feature vectors both ways.
    pub fn unoptimized() -> Self {
        CommOpts {
            one_sided: false,
            skip_redundant: false,
            prune_distance: false,
        }
    }
}

/// Full DNND configuration. Defaults follow Section 5.1.3.
#[derive(Debug, Clone, Copy)]
pub struct DnndConfig {
    /// Neighbors per vertex in the output graph (`K`).
    pub k: usize,
    /// Sample rate `rho` (paper: 0.8).
    pub rho: f64,
    /// Early-termination threshold `delta` (paper: 0.001).
    pub delta: f64,
    /// Hard iteration cap.
    pub max_iters: usize,
    /// RNG seed; runs are deterministic in seed up to message-arrival ties.
    pub seed: u64,
    /// Global number of neighbor-check requests issued between barriers
    /// (Section 4.4; the paper uses 2^25–2^30 at billion scale — scale this
    /// with your dataset).
    pub batch_size: u64,
    /// Communication-saving switches (Section 4.3).
    pub opts: CommOpts,
    /// Shuffle destination order in the reverse-neighbor exchange to avoid
    /// congestion (Section 4.2).
    pub shuffle_reverse: bool,
    /// When `Some(m)`, run the Section 4.5 distributed graph optimization
    /// (reverse-edge merge, dedup, prune to `ceil(k * m)`) after the
    /// descent. The paper's evaluation uses `m = 1.5`.
    pub graph_opt_m: Option<f64>,
    /// When `Some`, run the distributed RNN-Descent optimization (occlusion
    /// pruning with T1/T2 rounds and the K0 out-degree cap) after the
    /// descent *instead of* the reverse-prune pass — `rnn_opt` takes
    /// precedence over `graph_opt_m`.
    pub rnn_opt: Option<RnnParams>,
}

impl DnndConfig {
    /// Paper defaults for a given `k`, optimized protocol.
    pub fn new(k: usize) -> Self {
        DnndConfig {
            k,
            rho: 0.8,
            delta: 0.001,
            max_iters: 60,
            seed: 0xD00D,
            batch_size: 1 << 16,
            opts: CommOpts::optimized(),
            shuffle_reverse: true,
            graph_opt_m: None,
            rnn_opt: None,
        }
    }

    /// Set the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set `rho`.
    pub fn rho(mut self, rho: f64) -> Self {
        assert!(rho > 0.0 && rho <= 1.0);
        self.rho = rho;
        self
    }

    /// Set `delta`.
    pub fn delta(mut self, delta: f64) -> Self {
        assert!(delta >= 0.0);
        self.delta = delta;
        self
    }

    /// Set the iteration cap.
    pub fn max_iters(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.max_iters = n;
        self
    }

    /// Set the global per-batch request budget.
    pub fn batch_size(mut self, b: u64) -> Self {
        assert!(b >= 1);
        self.batch_size = b;
        self
    }

    /// Set the communication options.
    pub fn comm_opts(mut self, opts: CommOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Enable/disable reverse-exchange destination shuffling.
    pub fn shuffle_reverse(mut self, on: bool) -> Self {
        self.shuffle_reverse = on;
        self
    }

    /// Enable the post-descent graph optimization with prune factor `m`.
    pub fn graph_opt(mut self, m: f64) -> Self {
        assert!(m >= 1.0, "paper requires m >= 1");
        self.graph_opt_m = Some(m);
        self
    }

    /// Run RNN-Descent as the post-descent optimization (takes precedence
    /// over [`DnndConfig::graph_opt`]).
    pub fn rnn_opt(mut self, params: RnnParams) -> Self {
        self.rnn_opt = Some(params);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DnndConfig::new(10);
        assert_eq!(c.k, 10);
        assert_eq!(c.rho, 0.8);
        assert_eq!(c.delta, 0.001);
        assert!(c.shuffle_reverse);
        assert_eq!(c.opts, CommOpts::optimized());
    }

    #[test]
    fn builder_chain() {
        let c = DnndConfig::new(5)
            .seed(1)
            .rho(0.5)
            .delta(0.01)
            .max_iters(3)
            .batch_size(128)
            .comm_opts(CommOpts::unoptimized())
            .shuffle_reverse(false);
        assert_eq!(c.seed, 1);
        assert_eq!(c.rho, 0.5);
        assert_eq!(c.delta, 0.01);
        assert_eq!(c.max_iters, 3);
        assert_eq!(c.batch_size, 128);
        assert!(!c.opts.one_sided);
        assert!(!c.shuffle_reverse);
    }

    #[test]
    #[should_panic]
    fn zero_rho_rejected() {
        let _ = DnndConfig::new(5).rho(0.0);
    }
}
