//! Distributed index facade: one type wrapping the full DNND lifecycle —
//! distributed construction, the Section 4.5 optimization, sharded
//! persistence, and distributed query serving. The `dnnd` counterpart of
//! `nnd::index::NnIndex`, for users who want "a distributed ANN index"
//! rather than the individual phases.

use crate::config::DnndConfig;
use crate::engine::{build, BuildReport};
use crate::persist::{load_sharded, save_sharded};
use crate::query::{distributed_search_batch, DistSearchParams};
use dataset::batch::BatchMetric;
use dataset::point::Point;
use dataset::set::{PointId, PointSet};
use metall::Result as StoreResult;
use nnd::graph::KnnGraph;
use std::path::Path;
use std::sync::Arc;
use ygm::World;

/// A built distributed index: the partitioned search graph plus its base
/// data, ready to serve queries on any rank count.
pub struct DistIndex<P, M> {
    base: Arc<PointSet<P>>,
    metric: M,
    graph: Arc<KnnGraph>,
    /// Construction metrics from the build that produced `graph`.
    pub report: BuildReport,
    k: usize,
}

impl<P: Point, M: BatchMetric<P>> DistIndex<P, M> {
    /// Build on `world`, always applying the Section 4.5 optimization
    /// (`m = 1.5` unless the config overrides it) so the graph is
    /// traversal-ready: the raw directed k-NNG can leave vertices with
    /// in-degree zero, unreachable by greedy search.
    pub fn build(world: &World, base: Arc<PointSet<P>>, metric: M, mut cfg: DnndConfig) -> Self {
        if cfg.graph_opt_m.is_none() && cfg.rnn_opt.is_none() {
            cfg = cfg.graph_opt(1.5);
        }
        let k = cfg.k;
        let out = build(world, &base, &metric, cfg);
        DistIndex {
            base,
            metric,
            graph: Arc::new(out.graph),
            report: out.report,
            k,
        }
    }

    /// The optimized, partitionable search graph.
    pub fn graph(&self) -> &KnnGraph {
        &self.graph
    }

    /// The indexed base data.
    pub fn base(&self) -> &PointSet<P> {
        &self.base
    }

    /// Construction `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Serve a query batch on `world.n_ranks()` ranks with the distributed
    /// engine. Returns per-query neighbor ids.
    pub fn query_batch(
        &self,
        world: &World,
        queries: &Arc<PointSet<P>>,
        params: DistSearchParams,
    ) -> Vec<Vec<PointId>> {
        let (ids, _) = distributed_search_batch(
            world,
            &self.base,
            &self.graph,
            queries,
            &self.metric,
            params,
        );
        ids
    }

    /// Persist the graph sharded across `n_ranks` per-rank stores under
    /// `dir` (the Section 5.1.3 layout). The base set persists separately
    /// via its element-type-specific `save`.
    pub fn save_sharded(&self, dir: impl AsRef<Path>, n_ranks: usize) -> StoreResult<()> {
        save_sharded(&self.graph, dir, n_ranks)
    }

    /// Reattach a sharded graph to its base data.
    pub fn load_sharded(
        dir: impl AsRef<Path>,
        base: Arc<PointSet<P>>,
        metric: M,
        k: usize,
    ) -> StoreResult<Self> {
        let graph = load_sharded(dir)?;
        Ok(DistIndex {
            base,
            metric,
            graph: Arc::new(graph),
            report: BuildReport {
                n_ranks: 0,
                iterations: 0,
                updates_per_iter: Vec::new(),
                distance_evals: 0,
                sim_secs: 0.0,
                sim_ns: 0,
                breakdown: ygm::ClockBreakdown::default(),
                phases: Vec::new(),
                wall_secs: 0.0,
                tags: Vec::new(),
                total: ygm::TagStats::default(),
                matrix: ygm::TrafficMatrix::default(),
                faults: None,
                rnn: None,
            },
            k,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::ground_truth::brute_force_queries;
    use dataset::metric::L2;
    use dataset::recall::mean_recall;
    use dataset::synth::{gaussian_mixture, split_queries, MixtureParams};

    #[test]
    fn build_and_serve() {
        let full = gaussian_mixture(MixtureParams::embedding_like(600, 10), 3);
        let (base, queries) = split_queries(full, 50);
        let base = Arc::new(base);
        let queries = Arc::new(queries);
        let index = DistIndex::build(
            &World::new(4),
            Arc::clone(&base),
            L2,
            DnndConfig::new(8).seed(1),
        );
        assert_eq!(index.k(), 8);
        assert!(index.report.iterations >= 1);
        let truth = brute_force_queries(&base, &queries, &L2, 8);
        let ids = index.query_batch(
            &World::new(3),
            &queries,
            DistSearchParams::new(8).epsilon(0.2).entry_candidates(48),
        );
        let recall = mean_recall(&ids, &truth);
        assert!(recall > 0.85, "dist index recall {recall}");
    }

    #[test]
    fn sharded_round_trip_preserves_serving() {
        let dir = std::env::temp_dir().join(format!(
            "dist-index-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let base = Arc::new(gaussian_mixture(MixtureParams::embedding_like(300, 8), 7));
        let index = DistIndex::build(
            &World::new(3),
            Arc::clone(&base),
            L2,
            DnndConfig::new(6).seed(2),
        );
        index.save_sharded(&dir, 3).unwrap();

        let restored = DistIndex::load_sharded(&dir, Arc::clone(&base), L2, 6).unwrap();
        assert_eq!(restored.graph(), index.graph());
        let queries = Arc::new(PointSet::new(vec![base.point(42).clone()]));
        let ids = restored.query_batch(
            &World::new(2),
            &queries,
            DistSearchParams::new(3).entry_candidates(64),
        );
        assert_eq!(ids[0][0], 42);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn build_always_optimizes_graph() {
        let base = Arc::new(gaussian_mixture(MixtureParams::embedding_like(250, 6), 9));
        let index = DistIndex::build(&World::new(2), base, L2, DnndConfig::new(5).seed(3));
        // Reverse-merge makes the graph denser than the raw k-NNG, bounded
        // by ceil(1.5 * k).
        assert!(index.graph().edge_count() > 250 * 5);
        assert!(index.graph().max_degree() <= 8);
    }
}
