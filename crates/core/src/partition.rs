//! Vertex ownership: DNND "distributes a k-NNG G and an input dataset V
//! equally among all MPI ranks based on the hash values of the vertex IDs"
//! (Section 4). Each vertex's feature vector and its neighbor list live on
//! the same rank.

use dataset::set::PointId;

/// Finalizer from splitmix64 — a cheap, well-mixed integer hash so that
/// consecutive ids spread across ranks (the paper hashes vertex ids rather
/// than block-partitioning them).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps vertex ids to owning ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    n_ranks: usize,
}

impl Partitioner {
    /// A partitioner over `n_ranks` ranks.
    pub fn new(n_ranks: usize) -> Self {
        assert!(n_ranks >= 1);
        Partitioner { n_ranks }
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// The rank owning vertex `id`.
    #[inline]
    pub fn owner(&self, id: PointId) -> usize {
        (mix64(u64::from(id)) % self.n_ranks as u64) as usize
    }

    /// All ids in `0..n` owned by `rank`, ascending.
    pub fn owned_ids(&self, n: usize, rank: usize) -> Vec<PointId> {
        (0..n as PointId)
            .filter(|&id| self.owner(id) == rank)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_has_exactly_one_owner() {
        let p = Partitioner::new(7);
        let n = 1000;
        let mut seen = vec![0u32; n];
        for rank in 0..7 {
            for id in p.owned_ids(n, rank) {
                seen[id as usize] += 1;
                assert_eq!(p.owner(id), rank);
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn single_rank_owns_everything() {
        let p = Partitioner::new(1);
        assert_eq!(p.owned_ids(10, 0).len(), 10);
    }

    #[test]
    fn partition_is_roughly_balanced() {
        let p = Partitioner::new(8);
        let n = 16_000;
        let sizes: Vec<usize> = (0..8).map(|r| p.owned_ids(n, r).len()).collect();
        let expect = n / 8;
        for (r, &s) in sizes.iter().enumerate() {
            assert!(
                (s as i64 - expect as i64).unsigned_abs() < (expect / 5) as u64,
                "rank {r} owns {s}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn hashing_scatters_consecutive_ids() {
        // Consecutive ids should not all land on the same rank.
        let p = Partitioner::new(4);
        let owners: Vec<usize> = (0..16).map(|id| p.owner(id)).collect();
        let distinct: std::collections::HashSet<usize> = owners.iter().copied().collect();
        assert!(distinct.len() >= 3, "owners of 0..16 were {owners:?}");
    }

    #[test]
    fn mix64_is_bijective_sampling() {
        // Not a proof of bijectivity, but distinct inputs must map to
        // distinct outputs on a large sample (collision would be a bug).
        let mut outs: Vec<u64> = (0..10_000u64).map(mix64).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 10_000);
    }
}
