//! Distributed ANN search over a partitioned k-NNG.
//!
//! The paper queries its graphs with a *shared-memory* program after
//! gathering them (Section 5.3.1); its conclusion points at "massive-scale
//! NNG frameworks" where that gather is impossible. This module provides
//! that next step: the graph and dataset stay hash-partitioned exactly as
//! DNND built them, and queries run as asynchronous RPC cascades:
//!
//! * each query is *homed* on one rank (round-robin), which owns its
//!   result heap, frontier, and visited set;
//! * expanding a frontier vertex `v` sends an `Expand` to `owner(v)`,
//!   which replies with `G[v]`'s ids;
//! * scoring candidates sends the query vector **once per destination
//!   rank** with the whole list of that rank's candidates; the owner
//!   computes the distances locally as one batched 1xN kernel call
//!   against its cached norms (owner-computes, exactly like the Type 2+
//!   rows of construction) and replies with the scored list;
//! * the home rank advances the standard Section 3.3 greedy loop with the
//!   `epsilon` relaxation; a global all-reduce detects when every query
//!   has converged.
//!
//! The engine processes all queries concurrently, so per-round traffic
//! aggregates into large buffered messages — the same batching philosophy
//! as construction.
//!
//! ## Determinism contract
//!
//! The greedy loop is **schedule-independent**: scored replies arriving
//! within a round are buffered and folded at the round boundary in the
//! total `(distance, id)` order, so heap and frontier contents are a pure
//! function of the delivered message *multiset* — never of thread timing,
//! rank count, or batching. Combined with the bit-identical batched
//! kernels, the result ids for a given `(graph, params, seed)` are
//! identical across reruns and across `n_ranks`. The online serving layer
//! (`crates/serve`) builds its replay guarantee on this.
//!
//! [`SearchEngine`] is the reusable comm-level entry point: register once
//! inside a running SPMD program, then run any number of query batches
//! (the serving frontend dispatches one micro-batch per slot).
//! [`distributed_search_batch`] wraps it for the one-shot offline case.

use crate::partition::Partitioner;
use bytes::{Bytes, BytesMut};
use dataset::batch::BatchMetric;
use dataset::order::OrdF32;
use dataset::point::Point;
use dataset::set::{PointId, PointSet};
use nnd::graph::KnnGraph;
use rand::seq::index::sample as index_sample;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::rc::Rc;
use std::sync::Arc;
use ygm::{Comm, Wire, World};

/// Tags for the query protocol (disjoint from the construction tags).
pub const TAG_EXPAND: u16 = 30;
/// Neighbor-list reply to an `Expand`.
pub const TAG_NEIGHBORS: u16 = 31;
/// Distance-scoring request carrying the query vector.
pub const TAG_SCORE: u16 = 32;
/// Scored distance reply.
pub const TAG_SCORED: u16 = 33;

/// Parameters for distributed search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistSearchParams {
    /// Neighbors to return per query.
    pub l: usize,
    /// Frontier relaxation (Section 3.3 / PyNNDescent `epsilon`).
    pub epsilon: f32,
    /// Random entry points per query (0 = default to `l`).
    pub entry_candidates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DistSearchParams {
    /// Defaults: pure greedy, `l` entries.
    pub fn new(l: usize) -> Self {
        assert!(
            l >= 1,
            "DistSearchParams: l (results per query) must be >= 1"
        );
        DistSearchParams {
            l,
            epsilon: 0.0,
            entry_candidates: 0,
            seed: 0xD15C,
        }
    }

    /// Set epsilon. Rejects NaN and negative values — both would silently
    /// corrupt the frontier-relaxation comparison.
    pub fn epsilon(mut self, e: f32) -> Self {
        assert!(
            e.is_finite() && e >= 0.0,
            "DistSearchParams: epsilon must be finite and >= 0 (got {e})"
        );
        self.epsilon = e;
        self
    }

    /// Set the number of random entry points (>= 1; the default of `l`
    /// entries is selected by not calling this).
    pub fn entry_candidates(mut self, n: usize) -> Self {
        assert!(
            n >= 1,
            "DistSearchParams: entry_candidates must be >= 1 \
             (omit the call to default to l entries)"
        );
        self.entry_candidates = n;
        self
    }

    /// Set the seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Check the invariants the builders enforce (useful when fields were
    /// filled directly, e.g. from CLI flags).
    pub fn validate(&self) -> Result<(), String> {
        if self.l < 1 {
            return Err("l (results per query) must be >= 1".into());
        }
        if !self.epsilon.is_finite() || self.epsilon < 0.0 {
            return Err(format!(
                "epsilon must be finite and >= 0 (got {})",
                self.epsilon
            ));
        }
        Ok(())
    }
}

impl Default for DistSearchParams {
    /// `l = 10`, pure greedy — the paper's common query shape.
    fn default() -> Self {
        DistSearchParams::new(10)
    }
}

/// Allow-list bitset over base point ids, used for *filter-pushed*
/// distributed search (the vector-DB layer compiles metadata predicates
/// and tombstone sets into one of these per query).
///
/// The mask lives entirely at the query's home rank: it gates admission
/// into the best-`l` heap inside [`QueryState::fold_round`], while the
/// traversal itself — seeding, scoring, frontier relaxation — still sees
/// every vertex. Disallowed vertices therefore keep acting as navigation
/// waypoints and keep being counted in `dist_evals`, so shed/degrade
/// decisions and eval accounting stay exact: this is pre-filtering pushed
/// into the beam, never post-filtering of a finished result list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdMask {
    bits: Vec<u64>,
    n: usize,
    allowed: usize,
}

impl IdMask {
    /// A mask over `n` ids with nothing allowed yet.
    pub fn none(n: usize) -> IdMask {
        IdMask {
            bits: vec![0u64; n.div_ceil(64)],
            n,
            allowed: 0,
        }
    }

    /// A mask over `n` ids with everything allowed.
    pub fn all(n: usize) -> IdMask {
        let mut m = IdMask::none(n);
        for id in 0..n {
            m.allow(id as PointId);
        }
        m
    }

    /// Build from a predicate evaluated on every id in `0..n`.
    pub fn from_fn(n: usize, mut pred: impl FnMut(PointId) -> bool) -> IdMask {
        let mut m = IdMask::none(n);
        for id in 0..n {
            if pred(id as PointId) {
                m.allow(id as PointId);
            }
        }
        m
    }

    /// Allow `id`.
    pub fn allow(&mut self, id: PointId) {
        let i = id as usize;
        assert!(i < self.n, "IdMask::allow: id {id} out of range {}", self.n);
        let (w, b) = (i / 64, i % 64);
        if self.bits[w] & (1u64 << b) == 0 {
            self.bits[w] |= 1u64 << b;
            self.allowed += 1;
        }
    }

    /// Disallow `id` (tombstones call this).
    pub fn deny(&mut self, id: PointId) {
        let i = id as usize;
        assert!(i < self.n, "IdMask::deny: id {id} out of range {}", self.n);
        let (w, b) = (i / 64, i % 64);
        if self.bits[w] & (1u64 << b) != 0 {
            self.bits[w] &= !(1u64 << b);
            self.allowed -= 1;
        }
    }

    /// Is `id` allowed? Ids beyond the mask's range are disallowed.
    pub fn allows(&self, id: PointId) -> bool {
        let i = id as usize;
        i < self.n && self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of allowed ids.
    pub fn allowed(&self) -> usize {
        self.allowed
    }

    /// Total ids the mask ranges over.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no id is allowed.
    pub fn is_empty(&self) -> bool {
        self.allowed == 0
    }

    /// Fraction of ids allowed, in `[0, 1]` (1.0 for an empty range).
    pub fn selectivity(&self) -> f64 {
        if self.n == 0 {
            1.0
        } else {
            self.allowed as f64 / self.n as f64
        }
    }

    /// Intersect with `other` in place (predicate mask ∧ live-set mask).
    pub fn intersect(&mut self, other: &IdMask) {
        assert_eq!(self.n, other.n, "IdMask::intersect: range mismatch");
        self.allowed = 0;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= b;
            self.allowed += a.count_ones() as usize;
        }
    }
}

/// Expand request: `(query id, home rank, vertex)`.
type Expand = (u32, u32, PointId);
/// Neighbor reply: `(query id, vertex, neighbor ids)`.
type NeighborsMsg = (u32, PointId, Vec<PointId>);
/// Scored reply: `(query id, [(candidate, distance)...])`.
type Scored = (u32, Vec<(PointId, f32)>);

/// Score request: the query vector travels once to the owner of every
/// candidate in `ws`, which answers with one batched evaluation.
struct Score<P> {
    qid: u32,
    home: u32,
    ws: Vec<PointId>,
    query: P,
}

impl<P: Wire> Wire for Score<P> {
    fn encode(&self, buf: &mut BytesMut) {
        self.qid.encode(buf);
        self.home.encode(buf);
        self.ws.encode(buf);
        self.query.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Self {
        Score {
            qid: u32::decode(buf),
            home: u32::decode(buf),
            ws: Vec::<PointId>::decode(buf),
            query: P::decode(buf),
        }
    }
    fn wire_size(&self) -> usize {
        self.qid.wire_size() + self.home.wire_size() + self.ws.wire_size() + self.query.wire_size()
    }
}

/// Group candidate ids by owning rank, preserving first-seen destination
/// order (same shape as the construction engine's row grouping).
fn group_by_owner(
    part: Partitioner,
    ws: impl IntoIterator<Item = PointId>,
) -> Vec<(usize, Vec<PointId>)> {
    let mut groups: Vec<(usize, Vec<PointId>)> = Vec::new();
    for w in ws {
        let dest = part.owner(w);
        match groups.iter_mut().find(|(r, _)| *r == dest) {
            Some((_, g)) => g.push(w),
            None => groups.push((dest, vec![w])),
        }
    }
    groups
}

/// Per-query search cost, counted home-rank-side where the greedy loop
/// runs. All three counters are pure functions of the `(graph, params,
/// seed key)` tuple — the visited-set admission and the round-boundary
/// fold are schedule-independent (see the determinism contract above), and
/// owner-grouping only changes how the candidate list is *split* across
/// Score messages, never its total length — so profiles are bit-identical
/// across reruns and rank counts. The serving layer's per-query forensics
/// records build on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryProfile {
    /// Frontier vertices expanded (Expand requests issued).
    pub expansions: u64,
    /// Candidate distances requested (sum of Score batch lengths,
    /// seed entries included).
    pub dist_evals: u64,
    /// Greedy rounds this query stayed live.
    pub rounds: u64,
}

impl Wire for QueryProfile {
    fn encode(&self, buf: &mut BytesMut) {
        self.expansions.encode(buf);
        self.dist_evals.encode(buf);
        self.rounds.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Self {
        QueryProfile {
            expansions: u64::decode(buf),
            dist_evals: u64::decode(buf),
            rounds: u64::decode(buf),
        }
    }
    fn wire_size(&self) -> usize {
        self.expansions.wire_size() + self.dist_evals.wire_size() + self.rounds.wire_size()
    }
}

/// Per-query state at its home rank.
struct QueryState {
    /// Best-`l` max-heap.
    best: BinaryHeap<(OrdF32, PointId)>,
    /// Frontier min-heap of scored, unexpanded vertices.
    frontier: BinaryHeap<Reverse<(OrdF32, PointId)>>,
    visited: HashSet<PointId>,
    /// Scored replies of the current round, folded in canonical order at
    /// the round boundary (the determinism contract).
    round_scored: Vec<(PointId, f32)>,
    /// Filter-pushed allow-list: gates best-heap admission only (see
    /// [`IdMask`]). `None` is the unfiltered legacy path, byte-identical
    /// to pre-filter behavior.
    mask: Option<Arc<IdMask>>,
    done: bool,
    profile: QueryProfile,
}

impl QueryState {
    fn new(mask: Option<Arc<IdMask>>) -> Self {
        QueryState {
            best: BinaryHeap::new(),
            frontier: BinaryHeap::new(),
            visited: HashSet::new(),
            round_scored: Vec::new(),
            mask,
            done: false,
            profile: QueryProfile::default(),
        }
    }

    fn d_max(&self, l: usize) -> f32 {
        if self.best.len() < l {
            f32::INFINITY
        } else {
            self.best.peek().map_or(f32::INFINITY, |&(OrdF32(m), _)| m)
        }
    }

    /// Fold this round's scored replies in the total `(distance, id)`
    /// order: first settle the best-`l` heap, then admit frontier entries
    /// against the *settled* bound — a pure function of the reply multiset.
    fn fold_round(&mut self, l: usize, relax: f32) {
        if self.round_scored.is_empty() {
            return;
        }
        let mut scored = std::mem::take(&mut self.round_scored);
        scored.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        for &(w, d) in &scored {
            if let Some(mask) = &self.mask {
                if !mask.allows(w) {
                    continue; // navigation-only vertex: scored, never returned
                }
            }
            if self.best.len() < l || d < self.d_max(l) {
                self.best.push((OrdF32(d), w));
                if self.best.len() > l {
                    self.best.pop();
                }
            }
        }
        let bound = relax * self.d_max(l);
        for &(w, d) in &scored {
            if d < bound {
                self.frontier.push(Reverse((OrdF32(d), w)));
            }
        }
    }
}

struct EngineState<P> {
    /// Queries of the batch currently in flight (empty between batches).
    queries: Vec<QueryState>,
    /// The in-flight batch's query vectors, indexed like `queries` (the
    /// Neighbors handler needs them for the Score fan-out).
    vectors: Vec<P>,
}

/// Per-rank result rows: `(global query index, neighbor ids)`.
pub type RankQueryRows = Vec<(usize, Vec<PointId>)>;

/// Reusable comm-level distributed search: registers the query protocol
/// handlers once, then answers any number of batches via
/// [`SearchEngine::run_batch`] — each one a full Expand/Score cascade with
/// its own convergence loop. This is the entry point the online serving
/// frontend flushes its micro-batches into; [`distributed_search_batch`]
/// uses it for the offline all-at-once case.
///
/// SPMD contract: construct and call on every rank at the same points.
/// `run_batch` participates in barriers/all-reduces even with zero local
/// queries.
pub struct SearchEngine<P, M> {
    base: Arc<PointSet<P>>,
    metric: M,
    st: Rc<RefCell<EngineState<P>>>,
}

impl<P, M> SearchEngine<P, M>
where
    P: Point,
    M: BatchMetric<P>,
{
    /// Register the query protocol on `comm` and preprocess the metric's
    /// norm cache (charged to the virtual clock once per rank).
    pub fn new(
        comm: &Comm,
        base: Arc<PointSet<P>>,
        graph: Arc<KnnGraph>,
        metric: M,
    ) -> SearchEngine<P, M> {
        assert_eq!(graph.len(), base.len(), "graph and base disagree on N");
        let dim = base.dim().max(1);
        let n = base.len();
        let cache = Arc::new(metric.preprocess(&base));
        comm.charge_compute(comm.cost().distance_cost_ns(dim) * (n / comm.n_ranks().max(1)) as u64);
        let st: Rc<RefCell<EngineState<P>>> = Rc::new(RefCell::new(EngineState {
            queries: Vec::new(),
            vectors: Vec::new(),
        }));

        {
            // Expand: we own vertex v; reply with its neighbor ids.
            let graph = Arc::clone(&graph);
            comm.register_named::<Expand, _>(TAG_EXPAND, "q_expand", move |c, (qid, home, v)| {
                let ids: Vec<PointId> = graph.neighbors(v).iter().map(|&(id, _)| id).collect();
                c.async_send(home as usize, TAG_NEIGHBORS, &(qid, v, ids));
            });
        }
        {
            // Score: we own every candidate in ws; one batched evaluation,
            // one scored-list reply.
            let base = Arc::clone(&base);
            let metric = metric.clone();
            let cache = Arc::clone(&cache);
            comm.register_named::<Score<P>, _>(TAG_SCORE, "q_score", move |c, msg| {
                let mut dbuf = Vec::with_capacity(msg.ws.len());
                metric.distance_one_to_many(&msg.query, &base, &cache, &msg.ws, &mut dbuf);
                c.charge_compute(c.cost().distance_cost_ns(dim) * msg.ws.len() as u64);
                c.trace_hist("kernel_batch_len", msg.ws.len() as u64);
                let scored: Vec<(PointId, f32)> =
                    msg.ws.iter().copied().zip(dbuf.iter().copied()).collect();
                c.async_send(msg.home as usize, TAG_SCORED, &(msg.qid, scored));
            });
        }
        {
            // Neighbors arrived at the home rank: request scores for
            // unvisited candidates, shipping the query vector once per
            // destination rank.
            let st = Rc::clone(&st);
            comm.register_named::<NeighborsMsg, _>(
                TAG_NEIGHBORS,
                "q_neighbors",
                move |c, (qid, _v, ids)| {
                    let mut s = st.borrow_mut();
                    let home = c.rank() as u32;
                    let part = Partitioner::new(c.n_ranks());
                    let query_vec = s.vectors[qid as usize].clone();
                    let q = &mut s.queries[qid as usize];
                    let unvisited: Vec<PointId> =
                        ids.into_iter().filter(|&w| q.visited.insert(w)).collect();
                    q.profile.dist_evals += unvisited.len() as u64;
                    for (dest, ws) in group_by_owner(part, unvisited) {
                        c.async_send(
                            dest,
                            TAG_SCORE,
                            &Score {
                                qid,
                                home,
                                ws,
                                query: query_vec.clone(),
                            },
                        );
                    }
                },
            );
        }
        {
            // Scored distances arrived: buffer for the round-boundary fold.
            let st = Rc::clone(&st);
            comm.register_named::<Scored, _>(TAG_SCORED, "q_scored", move |_, (qid, scored)| {
                let mut s = st.borrow_mut();
                s.queries[qid as usize].round_scored.extend(scored);
            });
        }

        SearchEngine { base, metric, st }
    }

    /// Answer one batch of locally-homed queries. `requests` pairs a
    /// per-query seed key (any stable id — the offline path uses the global
    /// query index, serving uses the arrival index) with the query vector.
    /// Returns the best-`params.l` ids per request, in request order.
    ///
    /// Collective: all ranks must call together (possibly with empty
    /// `requests`).
    pub fn run_batch(
        &self,
        comm: &Comm,
        requests: &[(u64, P)],
        params: DistSearchParams,
    ) -> Vec<Vec<PointId>> {
        self.run_batch_profiled(comm, requests, params).0
    }

    /// [`Self::run_batch`] plus a per-request [`QueryProfile`] (expansions,
    /// distance evals, rounds), in request order. The profiles inherit the
    /// result determinism contract: bit-identical across reruns and rank
    /// counts for a given `(graph, params, seed key)`.
    pub fn run_batch_profiled(
        &self,
        comm: &Comm,
        requests: &[(u64, P)],
        params: DistSearchParams,
    ) -> (Vec<Vec<PointId>>, Vec<QueryProfile>) {
        self.run_batch_masked(comm, requests, &[], params)
    }

    /// Filter-pushed variant: `masks[i]`, when present, is the allow-list
    /// for `requests[i]` — evaluated at the home rank inside the beam
    /// expansion (best-heap admission), never as a post-filter. An empty
    /// `masks` slice means no query is filtered; otherwise it must be
    /// request-aligned. `None`/absent masks take the byte-identical legacy
    /// path. A query whose mask admits fewer than `params.l` reachable ids
    /// returns fewer than `l` results (and an all-deny mask returns none).
    ///
    /// Collective: all ranks must call together (possibly with empty
    /// `requests`).
    pub fn run_batch_masked(
        &self,
        comm: &Comm,
        requests: &[(u64, P)],
        masks: &[Option<Arc<IdMask>>],
        params: DistSearchParams,
    ) -> (Vec<Vec<PointId>>, Vec<QueryProfile>) {
        params
            .validate()
            .unwrap_or_else(|e| panic!("invalid DistSearchParams: {e}"));
        assert!(
            masks.is_empty() || masks.len() == requests.len(),
            "run_batch_masked: masks must be empty or request-aligned \
             ({} masks, {} requests)",
            masks.len(),
            requests.len()
        );
        let part = Partitioner::new(comm.n_ranks());
        let me = comm.rank() as u32;
        let n = self.base.len();
        let relax = 1.0 + params.epsilon;
        assert!(params.l <= n, "l exceeds dataset size");

        {
            let mut s = self.st.borrow_mut();
            s.queries = requests
                .iter()
                .enumerate()
                .map(|(i, _)| QueryState::new(masks.get(i).cloned().flatten()))
                .collect();
            s.vectors = requests.iter().map(|(_, q)| q.clone()).collect();
        }

        // --- seed entry points -------------------------------------------
        comm.trace_begin("query_seed");
        {
            let mut s = self.st.borrow_mut();
            for (qid, (key, query)) in requests.iter().enumerate() {
                let q = &mut s.queries[qid];
                let mut rng = ChaCha8Rng::seed_from_u64(params.seed ^ (key << 16));
                let starts = params.l.max(params.entry_candidates).min(n);
                let fresh: Vec<PointId> = index_sample(&mut rng, n, starts)
                    .into_iter()
                    .map(|idx| idx as PointId)
                    .filter(|&w| q.visited.insert(w))
                    .collect();
                q.profile.dist_evals += fresh.len() as u64;
                for (dest, ws) in group_by_owner(part, fresh) {
                    comm.async_send(
                        dest,
                        TAG_SCORE,
                        &Score {
                            qid: qid as u32,
                            home: me,
                            ws,
                            query: query.clone(),
                        },
                    );
                }
            }
        }
        comm.barrier();
        comm.trace_end("query_seed");

        // --- round loop --------------------------------------------------
        // Each round: fold the previous cascade's scores in canonical
        // order, then every live query expands its best frontier vertex
        // (the Section 3.3 pop); the barrier retires the Expand/Score
        // cascades and an all-reduce decides global convergence.
        let mut round = 0u64;
        loop {
            comm.trace_begin_arg("query_round", round);
            round += 1;
            {
                let mut s = self.st.borrow_mut();
                for qid in 0..s.queries.len() {
                    let q = &mut s.queries[qid];
                    if q.done {
                        continue;
                    }
                    q.profile.rounds += 1;
                    q.fold_round(params.l, relax);
                    let d_max = q.d_max(params.l);
                    match q.frontier.pop() {
                        None => q.done = true,
                        Some(Reverse((OrdF32(d), v))) => {
                            if d > relax * d_max && q.best.len() >= params.l {
                                q.done = true;
                            } else {
                                q.profile.expansions += 1;
                                comm.async_send(part.owner(v), TAG_EXPAND, &(qid as u32, me, v));
                            }
                        }
                    }
                }
            }
            comm.barrier();
            let live = {
                let s = self.st.borrow();
                s.queries.iter().filter(|q| !q.done).count() as u64
            };
            let live_global = comm.all_reduce_sum_u64(live);
            comm.trace_instant("live_queries", live_global);
            comm.trace_end("query_round");
            if live_global == 0 {
                break;
            }
        }

        // --- extract -----------------------------------------------------
        let mut s = self.st.borrow_mut();
        s.vectors.clear();
        std::mem::take(&mut s.queries)
            .into_iter()
            .map(|q| {
                let mut pairs: Vec<(f32, PointId)> =
                    q.best.iter().map(|&(OrdF32(d), id)| (d, id)).collect();
                pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
                let ids: Vec<PointId> = pairs.into_iter().map(|(_, id)| id).collect();
                (ids, q.profile)
            })
            .unzip()
    }

    /// The metric this engine scores with.
    pub fn metric(&self) -> &M {
        &self.metric
    }
}

/// Run a batch of queries against the partitioned `(graph, base)` on
/// `world.n_ranks()` ranks. Returns per-query neighbor ids (query order)
/// and the world report (virtual time, traffic).
pub fn distributed_search_batch<P, M>(
    world: &World,
    base: &Arc<PointSet<P>>,
    graph: &Arc<KnnGraph>,
    queries: &Arc<PointSet<P>>,
    metric: &M,
    params: DistSearchParams,
) -> (Vec<Vec<PointId>>, ygm::WorldReport<RankQueryRows>)
where
    P: Point,
    M: BatchMetric<P>,
{
    assert_eq!(graph.len(), base.len(), "graph and base disagree on N");
    assert!(params.l >= 1 && params.l <= base.len());
    params
        .validate()
        .unwrap_or_else(|e| panic!("invalid DistSearchParams: {e}"));
    let report = world.run(|comm| {
        let engine = SearchEngine::new(comm, Arc::clone(base), Arc::clone(graph), metric.clone());
        // Home queries round-robin.
        let mine: Vec<usize> = (0..queries.len())
            .filter(|q| q % comm.n_ranks() == comm.rank())
            .collect();
        let requests: Vec<(u64, P)> = mine
            .iter()
            .map(|&idx| (idx as u64, queries.point(idx as PointId).clone()))
            .collect();
        let ids = engine.run_batch(comm, &requests, params);
        mine.into_iter().zip(ids).collect::<RankQueryRows>()
    });
    let mut out: Vec<Vec<PointId>> = vec![Vec::new(); queries.len()];
    for rank_results in &report.results {
        for (idx, ids) in rank_results {
            out[*idx] = ids.clone();
        }
    }
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build, DnndConfig};
    use dataset::ground_truth::brute_force_queries;
    use dataset::metric::L2;
    use dataset::recall::mean_recall;
    use dataset::synth::{gaussian_mixture, split_queries, MixtureParams};

    type Fixture = (Arc<PointSet<Vec<f32>>>, Arc<KnnGraph>, PointSet<Vec<f32>>);

    fn setup(n: usize, k: usize) -> Fixture {
        let full = gaussian_mixture(MixtureParams::embedding_like(n, 12), 5);
        let (base, queries) = split_queries(full, 50);
        let base = Arc::new(base);
        let out = build(
            &World::new(4),
            &base,
            &L2,
            DnndConfig::new(k).seed(2).graph_opt(1.5),
        );
        (base, Arc::new(out.graph), queries)
    }

    #[test]
    fn distributed_search_matches_ground_truth() {
        let (base, graph, queries) = setup(700, 10);
        let queries = Arc::new(queries);
        let truth = brute_force_queries(&base, &queries, &L2, 10);
        let (ids, _) = distributed_search_batch(
            &World::new(4),
            &base,
            &graph,
            &queries,
            &L2,
            DistSearchParams::new(10).epsilon(0.2).entry_candidates(48),
        );
        assert_eq!(ids.len(), queries.len());
        let recall = mean_recall(&ids, &truth);
        assert!(recall > 0.85, "distributed search recall {recall}");
    }

    #[test]
    fn distributed_matches_shared_memory_search_quality() {
        let (base, graph, queries) = setup(600, 8);
        let queries = Arc::new(queries);
        let truth = brute_force_queries(&base, &queries, &L2, 8);
        let shared = nnd::search_batch(
            &graph,
            &base,
            &L2,
            &queries,
            nnd::SearchParams::new(8)
                .epsilon(0.2)
                .entry_candidates(48)
                .seed(0xD15C),
        );
        let (dist_ids, _) = distributed_search_batch(
            &World::new(3),
            &base,
            &graph,
            &queries,
            &L2,
            DistSearchParams::new(8).epsilon(0.2).entry_candidates(48),
        );
        let r_shared = mean_recall(&shared.ids, &truth);
        let r_dist = mean_recall(&dist_ids, &truth);
        assert!(
            (r_shared - r_dist).abs() < 0.08,
            "shared {r_shared} vs distributed {r_dist}"
        );
    }

    #[test]
    fn member_queries_find_themselves() {
        // The raw directed k-NNG can leave vertices with in-degree 0
        // (unreachable by traversal); querying always uses the Section 4.5
        // optimized graph, whose reverse-edge merge guarantees every
        // vertex is reachable from each of its own neighbors.
        let full = gaussian_mixture(MixtureParams::embedding_like(400, 8), 9);
        let base = Arc::new(full.clone());
        let out = build(
            &World::new(3),
            &base,
            &L2,
            DnndConfig::new(6).seed(1).graph_opt(1.5),
        );
        let graph = Arc::new(out.graph);
        let queries = Arc::new(PointSet::new(vec![
            base.point(11).clone(),
            base.point(222).clone(),
        ]));
        let (ids, _) = distributed_search_batch(
            &World::new(3),
            &base,
            &graph,
            &queries,
            &L2,
            DistSearchParams::new(5).entry_candidates(64),
        );
        assert_eq!(ids[0][0], 11);
        assert_eq!(ids[1][0], 222);
    }

    #[test]
    fn rank_count_does_not_change_results_materially() {
        let (base, graph, queries) = setup(500, 8);
        let queries = Arc::new(queries);
        let truth = brute_force_queries(&base, &queries, &L2, 8);
        let mut recalls = Vec::new();
        for ranks in [1usize, 2, 5] {
            let (ids, _) = distributed_search_batch(
                &World::new(ranks),
                &base,
                &graph,
                &queries,
                &L2,
                DistSearchParams::new(8).epsilon(0.2).entry_candidates(48),
            );
            recalls.push(mean_recall(&ids, &truth));
        }
        let spread = recalls.iter().cloned().fold(f64::MIN, f64::max)
            - recalls.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.05, "recall varies with ranks: {recalls:?}");
    }

    #[test]
    fn rank_count_does_not_change_results_at_all() {
        // The determinism contract (see module doc): identical ids for
        // every query across rank counts, not just comparable recall.
        let (base, graph, queries) = setup(400, 8);
        let queries = Arc::new(queries);
        let params = DistSearchParams::new(8).epsilon(0.2).entry_candidates(32);
        let (ref_ids, _) =
            distributed_search_batch(&World::new(1), &base, &graph, &queries, &L2, params);
        for ranks in [2usize, 4] {
            let (ids, _) =
                distributed_search_batch(&World::new(ranks), &base, &graph, &queries, &L2, params);
            assert_eq!(ids, ref_ids, "results differ at {ranks} ranks");
        }
    }

    #[test]
    fn profiles_are_nonzero_and_rank_count_invariant() {
        // QueryProfile counters are pure functions of (graph, params, seed
        // key): identical across rank counts, and every answered query
        // scored at least its seed entries.
        let (base, graph, queries) = setup(400, 8);
        let queries = Arc::new(queries);
        let params = DistSearchParams::new(8).epsilon(0.2).entry_candidates(32);
        let profiles_at = |ranks: usize| {
            let report = World::new(ranks).run(|comm| {
                let engine = SearchEngine::new(comm, Arc::clone(&base), Arc::clone(&graph), L2);
                let mine: Vec<(u64, Vec<f32>)> = (0..queries.len())
                    .filter(|q| q % comm.n_ranks() == comm.rank())
                    .map(|idx| (idx as u64, queries.point(idx as PointId).clone()))
                    .collect();
                let (_, profiles) = engine.run_batch_profiled(comm, &mine, params);
                mine.iter()
                    .map(|(idx, _)| *idx)
                    .zip(profiles)
                    .collect::<Vec<(u64, QueryProfile)>>()
            });
            let mut all: Vec<(u64, QueryProfile)> = report.results.into_iter().flatten().collect();
            all.sort_unstable_by_key(|&(idx, _)| idx);
            all
        };
        let reference = profiles_at(1);
        assert_eq!(reference.len(), queries.len());
        for (_, p) in &reference {
            assert!(p.dist_evals >= 32, "seed entries must be counted: {p:?}");
            assert!(p.rounds >= 1);
            assert!(p.expansions <= p.rounds, "one expansion per live round");
        }
        for ranks in [2usize, 4] {
            assert_eq!(
                profiles_at(ranks),
                reference,
                "profiles differ at {ranks} ranks"
            );
        }
    }

    #[test]
    fn query_traffic_is_accounted() {
        let (base, graph, queries) = setup(400, 6);
        let queries = Arc::new(queries);
        let (_, report) = distributed_search_batch(
            &World::new(4),
            &base,
            &graph,
            &queries,
            &L2,
            DistSearchParams::new(6).entry_candidates(24),
        );
        let score_tag = report.tag(TAG_SCORE).expect("score traffic");
        let scored_tag = report.tag(TAG_SCORED).expect("scored traffic");
        // Every Score gets exactly one Scored reply.
        assert_eq!(score_tag.count, scored_tag.count);
        // Score messages carry the query vector; replies are small.
        assert!(score_tag.bytes > scored_tag.bytes);
        assert!(report.sim_secs > 0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn nan_epsilon_is_rejected() {
        let _ = DistSearchParams::new(10).epsilon(f32::NAN);
    }

    #[test]
    #[should_panic(expected = "entry_candidates")]
    fn zero_entry_candidates_is_rejected() {
        let _ = DistSearchParams::new(10).entry_candidates(0);
    }

    #[test]
    #[should_panic(expected = "l (results per query)")]
    fn zero_l_is_rejected() {
        let _ = DistSearchParams::new(0);
    }

    #[test]
    fn default_params_are_valid() {
        let p = DistSearchParams::default();
        assert_eq!(p.l, 10);
        p.validate().unwrap();
    }

    #[test]
    fn id_mask_basics() {
        let mut m = IdMask::none(130);
        assert!(m.is_empty());
        m.allow(0);
        m.allow(64);
        m.allow(129);
        m.allow(129); // idempotent
        assert_eq!(m.allowed(), 3);
        assert!(m.allows(64) && !m.allows(63));
        assert!(!m.allows(999)); // out of range ids are disallowed
        m.deny(64);
        m.deny(64);
        assert_eq!(m.allowed(), 2);
        let all = IdMask::all(130);
        assert_eq!(all.allowed(), 130);
        assert!((all.selectivity() - 1.0).abs() < 1e-12);
        let mut inter = all.clone();
        inter.intersect(&m);
        assert_eq!(inter, m);
        let even = IdMask::from_fn(10, |id| id % 2 == 0);
        assert_eq!(even.allowed(), 5);
        assert!((even.selectivity() - 0.5).abs() < 1e-12);
    }

    /// Run a masked batch on `ranks` ranks, gathering `(idx, ids)` rows.
    fn masked_search_at(
        ranks: usize,
        base: &Arc<PointSet<Vec<f32>>>,
        graph: &Arc<KnnGraph>,
        queries: &Arc<PointSet<Vec<f32>>>,
        mask: &Arc<IdMask>,
        params: DistSearchParams,
    ) -> Vec<Vec<PointId>> {
        let (base, graph, queries, mask) = (
            Arc::clone(base),
            Arc::clone(graph),
            Arc::clone(queries),
            Arc::clone(mask),
        );
        let report = World::new(ranks).run(move |comm| {
            let engine = SearchEngine::new(comm, Arc::clone(&base), Arc::clone(&graph), L2);
            let mine: Vec<usize> = (0..queries.len())
                .filter(|q| q % comm.n_ranks() == comm.rank())
                .collect();
            let requests: Vec<(u64, Vec<f32>)> = mine
                .iter()
                .map(|&idx| (idx as u64, queries.point(idx as PointId).clone()))
                .collect();
            let masks: Vec<Option<Arc<IdMask>>> =
                mine.iter().map(|_| Some(Arc::clone(&mask))).collect();
            let (ids, _) = engine.run_batch_masked(comm, &requests, &masks, params);
            mine.into_iter().zip(ids).collect::<RankQueryRows>()
        });
        let mut out: Vec<Vec<PointId>> = vec![Vec::new(); report.results.iter().flatten().count()];
        for (idx, ids) in report.results.into_iter().flatten() {
            out[idx] = ids;
        }
        out
    }

    #[test]
    fn masked_search_returns_only_allowed_ids_with_good_recall() {
        let (base, graph, queries) = setup(600, 10);
        let queries = Arc::new(queries);
        // Allow one id in three — a mid-selectivity predicate.
        let mask = Arc::new(IdMask::from_fn(base.len(), |id| id % 3 == 0));
        let params = DistSearchParams::new(10).epsilon(0.2).entry_candidates(48);
        let ids = masked_search_at(2, &base, &graph, &queries, &mask, params);
        for (qi, row) in ids.iter().enumerate() {
            assert_eq!(row.len(), 10, "query {qi} under-filled");
            for &id in row {
                assert!(mask.allows(id), "query {qi} returned disallowed id {id}");
            }
        }
        // Compare against the brute-force truth restricted to the mask.
        let allowed: Vec<PointId> = (0..base.len() as PointId).filter(|&i| i % 3 == 0).collect();
        let sub = PointSet::new(
            allowed
                .iter()
                .map(|&i| base.point(i).clone())
                .collect::<Vec<_>>(),
        );
        let mut truth = brute_force_queries(&Arc::new(sub), &queries, &L2, 10);
        for row in &mut truth.ids {
            for id in row.iter_mut() {
                *id = allowed[*id as usize];
            }
        }
        let recall = mean_recall(&ids, &truth);
        assert!(recall > 0.8, "filtered recall {recall}");
    }

    #[test]
    fn masked_search_is_bit_identical_across_reruns_and_rank_counts() {
        let (base, graph, queries) = setup(400, 8);
        let queries = Arc::new(queries);
        let mask = Arc::new(IdMask::from_fn(base.len(), |id| id % 4 != 1));
        let params = DistSearchParams::new(8).epsilon(0.2).entry_candidates(32);
        let reference = masked_search_at(1, &base, &graph, &queries, &mask, params);
        // Rerun at the same rank count: bit-identical.
        assert_eq!(
            masked_search_at(1, &base, &graph, &queries, &mask, params),
            reference
        );
        for ranks in [2usize, 4] {
            assert_eq!(
                masked_search_at(ranks, &base, &graph, &queries, &mask, params),
                reference,
                "filtered results differ at {ranks} ranks"
            );
        }
    }

    #[test]
    fn all_deny_mask_returns_no_results_and_no_none_mask_matches_unmasked() {
        let (base, graph, queries) = setup(300, 6);
        let queries = Arc::new(queries);
        let params = DistSearchParams::new(6).entry_candidates(24);
        let deny = Arc::new(IdMask::none(base.len()));
        let empty = masked_search_at(2, &base, &graph, &queries, &deny, params);
        assert!(empty.iter().all(|row| row.is_empty()));
        // A masks slice of all-None must match the unmasked entry point.
        let (b, g, q) = (Arc::clone(&base), Arc::clone(&graph), Arc::clone(&queries));
        let report = World::new(2).run(move |comm| {
            let engine = SearchEngine::new(comm, Arc::clone(&b), Arc::clone(&g), L2);
            let mine: Vec<(u64, Vec<f32>)> = (0..q.len())
                .filter(|i| i % comm.n_ranks() == comm.rank())
                .map(|idx| (idx as u64, q.point(idx as PointId).clone()))
                .collect();
            let masks: Vec<Option<Arc<IdMask>>> = vec![None; mine.len()];
            let (with_none, _) = engine.run_batch_masked(comm, &mine, &masks, params);
            let bare = engine.run_batch(comm, &mine, params);
            assert_eq!(with_none, bare, "None masks must match the legacy path");
            with_none.len()
        });
        assert!(report.results.iter().sum::<usize>() == queries.len());
    }
}
