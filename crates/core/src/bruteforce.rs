//! Distributed exact k-NN (brute force) — the ground-truth computation of
//! Section 5.2, as a distributed application.
//!
//! The paper validates DNND's graphs against brute force on the small
//! datasets; at larger scale even the *checker* needs distribution. The
//! standard scheme: query vertices ship their vectors to every rank in
//! **scan blocks** of [`BF_BLOCK`] queries; each rank answers a block with
//! the **partition-local top-k** of every member (one batched MxN
//! distance evaluation per block against its owned vertices, using the
//! rank's cached norms); `owner(v)` merges the per-partition lists into
//! the exact global top-k. Exactness holds because the global k nearest
//! are a subset of the union of per-partition k nearest.

use crate::msgs::name_tags;
use crate::partition::Partitioner;
use bytes::{Bytes, BytesMut};
use dataset::batch::{BatchMetric, NormCache};
use dataset::ground_truth::GroundTruth;
use dataset::order::OrdF32;
use dataset::point::Point;
use dataset::set::{PointId, PointSet};
use std::cell::RefCell;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;
use ygm::{Comm, Wire, World};

/// Scan request: a block of query vertices + vectors, answered with the
/// local top-k of every member.
pub const TAG_BF_SCAN: u16 = 44;
/// Partial top-k reply (one per scan block).
pub const TAG_BF_PARTIAL: u16 = 45;

/// Queries per scan block: the `M` of the receiver's MxN batched
/// evaluation. Big enough to amortize per-message overhead, small enough
/// that the MxN distance buffer stays cache-resident.
pub const BF_BLOCK: usize = 32;

struct ScanBlock<P> {
    home: u32,
    qs: Vec<(PointId, P)>,
}

impl<P: Wire> Wire for ScanBlock<P> {
    fn encode(&self, buf: &mut BytesMut) {
        self.home.encode(buf);
        self.qs.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Self {
        ScanBlock {
            home: u32::decode(buf),
            qs: Vec::<(PointId, P)>::decode(buf),
        }
    }
    fn wire_size(&self) -> usize {
        self.home.wire_size() + self.qs.wire_size()
    }
}

type Partial = Vec<(PointId, Vec<(PointId, f32)>)>;

/// Exact k-NNG over `set` (no self edges), computed on `world.n_ranks()`
/// simulated ranks. Results are identical to
/// [`dataset::ground_truth::brute_force_knng`].
pub fn distributed_ground_truth<P, M>(
    world: &World,
    set: &Arc<PointSet<P>>,
    metric: &M,
    k: usize,
) -> GroundTruth
where
    P: Point,
    M: BatchMetric<P>,
{
    assert!(k < set.len(), "k must be smaller than the dataset");
    let report = world.run(|comm| rank_bf(comm, Arc::clone(set), metric.clone(), k));
    let mut ids: Vec<Vec<PointId>> = vec![Vec::new(); set.len()];
    let mut dists: Vec<Vec<f32>> = vec![Vec::new(); set.len()];
    for rank_rows in &report.results {
        for (v, pairs) in rank_rows {
            ids[*v as usize] = pairs.iter().map(|&(id, _)| id).collect();
            dists[*v as usize] = pairs.iter().map(|&(_, d)| d).collect();
        }
    }
    GroundTruth { ids, dists }
}

/// Per-partition top-k for every query of a scan block, evaluated as
/// MxN batched distance calls over `owned` in cache-sized column chunks.
/// A query that appears among `owned` (the k-NNG case, where every query
/// is a base vertex) is excluded from its own candidate scan.
fn local_topk_block<P: Point, M: BatchMetric<P>>(
    set: &PointSet<P>,
    metric: &M,
    cache: &NormCache,
    owned: &[PointId],
    qs: &[(PointId, P)],
    k: usize,
) -> Partial {
    const COLS: usize = 256;
    let qvecs: Vec<P> = qs.iter().map(|(_, q)| q.clone()).collect();
    let mut heaps: Vec<BinaryHeap<(OrdF32, PointId)>> = qs
        .iter()
        .map(|_| BinaryHeap::with_capacity(k + 1))
        .collect();
    let mut dbuf: Vec<f32> = Vec::new();
    for chunk in owned.chunks(COLS) {
        metric.distance_many_to_many(&qvecs, set, cache, chunk, &mut dbuf);
        for (qi, ((qv, _), heap)) in qs.iter().zip(heaps.iter_mut()).enumerate() {
            let row = &dbuf[qi * chunk.len()..(qi + 1) * chunk.len()];
            for (&u, &d) in chunk.iter().zip(row) {
                if u == *qv {
                    continue;
                }
                if heap.len() < k {
                    heap.push((OrdF32(d), u));
                } else if let Some(&(worst, worst_id)) = heap.peek() {
                    if (OrdF32(d), u) < (worst, worst_id) {
                        heap.pop();
                        heap.push((OrdF32(d), u));
                    }
                }
            }
        }
    }
    qs.iter()
        .zip(heaps)
        .map(|(&(qv, _), heap)| {
            let mut pairs: Vec<(PointId, f32)> =
                heap.into_iter().map(|(OrdF32(d), id)| (id, d)).collect();
            pairs.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
            (qv, pairs)
        })
        .collect()
}

fn rank_bf<P, M>(
    comm: &Comm,
    set: Arc<PointSet<P>>,
    metric: M,
    k: usize,
) -> Vec<(PointId, Vec<(PointId, f32)>)>
where
    P: Point,
    M: BatchMetric<P>,
{
    let part = Partitioner::new(comm.n_ranks());
    let owned = part.owned_ids(set.len(), comm.rank());
    let dim = set.dim().max(1);
    // Norms once per rank, amortized across every scan block it answers.
    let cache = Arc::new(metric.preprocess(&set));
    comm.charge_compute(comm.cost().distance_cost_ns(dim) * owned.len() as u64);
    name_tags(comm);
    comm.name_tag(TAG_BF_SCAN, "bf_scan");
    comm.name_tag(TAG_BF_PARTIAL, "bf_partial");

    // Merged partial results per owned query vertex.
    type Merged = HashMap<PointId, Vec<(PointId, f32)>>;
    let merged: Rc<RefCell<Merged>> = Rc::new(RefCell::new(HashMap::new()));

    {
        let set = Arc::clone(&set);
        let metric = metric.clone();
        let cache = Arc::clone(&cache);
        let owned = owned.clone();
        comm.register::<ScanBlock<P>, _>(TAG_BF_SCAN, move |c, msg| {
            let local = local_topk_block(&set, &metric, &cache, &owned, &msg.qs, k);
            // The MxN scan over the block is the dominant compute.
            c.charge_compute(c.cost().distance_cost_ns(dim) * (owned.len() * msg.qs.len()) as u64);
            c.trace_hist("kernel_batch_len", (owned.len() * msg.qs.len()) as u64);
            c.async_send(msg.home as usize, TAG_BF_PARTIAL, &local);
        });
    }
    {
        let merged = Rc::clone(&merged);
        comm.register::<Partial, _>(TAG_BF_PARTIAL, move |_, partial| {
            let mut m = merged.borrow_mut();
            for (v, mut pairs) in partial {
                m.entry(v).or_default().append(&mut pairs);
            }
        });
    }

    // Ship owned query vectors to every rank in BF_BLOCK-query scan
    // blocks, quota-limited so buffers stay bounded (same Section 4.4
    // discipline as construction).
    let quota = 1usize << 12;
    let per_window = (quota / comm.n_ranks().max(1) / BF_BLOCK).max(1);
    let blocks: Vec<&[PointId]> = owned.chunks(BF_BLOCK).collect();
    let mut idx = 0;
    loop {
        let end = (idx + per_window).min(blocks.len());
        for block in &blocks[idx..end] {
            let qs: Vec<(PointId, P)> = block.iter().map(|&v| (v, set.point(v).clone())).collect();
            for dest in 0..comm.n_ranks() {
                comm.async_send(
                    dest,
                    TAG_BF_SCAN,
                    &ScanBlock {
                        home: comm.rank() as u32,
                        qs: qs.clone(),
                    },
                );
            }
        }
        idx = end;
        comm.barrier();
        if comm.all_reduce_sum_u64((blocks.len() - idx) as u64) == 0 {
            break;
        }
    }

    // Merge the per-rank partial lists into exact global top-k.
    let mut merged = merged.borrow_mut();
    owned
        .iter()
        .map(|&v| {
            let mut pairs = merged.remove(&v).unwrap_or_default();
            pairs.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
            pairs.truncate(k);
            (v, pairs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::ground_truth::brute_force_knng;
    use dataset::metric::{Jaccard, L2};
    use dataset::synth::uniform;

    #[test]
    fn matches_shared_memory_brute_force_exactly() {
        let set = Arc::new(uniform(200, 6, 3));
        let truth = brute_force_knng(&set, &L2, 7);
        for ranks in [1usize, 3, 5] {
            let dist = distributed_ground_truth(&World::new(ranks), &set, &L2, 7);
            assert_eq!(dist, truth, "ranks={ranks} diverged");
        }
    }

    #[test]
    fn exact_on_sparse_jaccard() {
        let set = Arc::new(dataset::presets::kosarak_like(120, 5));
        let truth = brute_force_knng(&set, &Jaccard, 4);
        let dist = distributed_ground_truth(&World::new(4), &set, &Jaccard, 4);
        assert_eq!(dist, truth);
    }

    #[test]
    fn no_self_neighbors() {
        let set = Arc::new(uniform(80, 3, 9));
        let gt = distributed_ground_truth(&World::new(3), &set, &L2, 5);
        for (v, ids) in gt.ids.iter().enumerate() {
            assert_eq!(ids.len(), 5);
            assert!(!ids.contains(&(v as PointId)));
        }
    }

    #[test]
    #[should_panic(expected = "k must be smaller")]
    fn oversized_k_rejected() {
        let set = Arc::new(uniform(5, 2, 1));
        let _ = distributed_ground_truth(&World::new(2), &set, &L2, 5);
    }
}
