//! Distributed exact k-NN (brute force) — the ground-truth computation of
//! Section 5.2, as a distributed application.
//!
//! The paper validates DNND's graphs against brute force on the small
//! datasets; at larger scale even the *checker* needs distribution. The
//! standard scheme: each query vertex `v` ships its vector to every rank;
//! each rank answers with its **partition-local top-k** among the vertices
//! it owns; `owner(v)` merges the per-partition lists into the exact
//! global top-k. Exactness holds because the global k nearest are a subset
//! of the union of per-partition k nearest.

use crate::msgs::name_tags;
use crate::partition::Partitioner;
use bytes::{Bytes, BytesMut};
use dataset::ground_truth::GroundTruth;
use dataset::metric::Metric;
use dataset::order::OrdF32;
use dataset::point::Point;
use dataset::set::{PointId, PointSet};
use std::cell::RefCell;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;
use ygm::{Comm, Wire, World};

/// Scan request: query vertex + vector, answered with the local top-k.
pub const TAG_BF_SCAN: u16 = 44;
/// Partial top-k reply.
pub const TAG_BF_PARTIAL: u16 = 45;

struct Scan<P> {
    v: PointId,
    home: u32,
    vec: P,
}

impl<P: Wire> Wire for Scan<P> {
    fn encode(&self, buf: &mut BytesMut) {
        self.v.encode(buf);
        self.home.encode(buf);
        self.vec.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Self {
        Scan {
            v: PointId::decode(buf),
            home: u32::decode(buf),
            vec: P::decode(buf),
        }
    }
    fn wire_size(&self) -> usize {
        self.v.wire_size() + self.home.wire_size() + self.vec.wire_size()
    }
}

type Partial = (PointId, Vec<(PointId, f32)>);

/// Exact k-NNG over `set` (no self edges), computed on `world.n_ranks()`
/// simulated ranks. Results are identical to
/// [`dataset::ground_truth::brute_force_knng`].
pub fn distributed_ground_truth<P, M>(
    world: &World,
    set: &Arc<PointSet<P>>,
    metric: &M,
    k: usize,
) -> GroundTruth
where
    P: Point,
    M: Metric<P>,
{
    assert!(k < set.len(), "k must be smaller than the dataset");
    let report = world.run(|comm| rank_bf(comm, Arc::clone(set), metric.clone(), k));
    let mut ids: Vec<Vec<PointId>> = vec![Vec::new(); set.len()];
    let mut dists: Vec<Vec<f32>> = vec![Vec::new(); set.len()];
    for rank_rows in &report.results {
        for (v, pairs) in rank_rows {
            ids[*v as usize] = pairs.iter().map(|&(id, _)| id).collect();
            dists[*v as usize] = pairs.iter().map(|&(_, d)| d).collect();
        }
    }
    GroundTruth { ids, dists }
}

fn local_topk<P: Point, M: Metric<P>>(
    set: &PointSet<P>,
    metric: &M,
    owned: &[PointId],
    q: &P,
    exclude: PointId,
    k: usize,
) -> Vec<(PointId, f32)> {
    let mut heap: BinaryHeap<(OrdF32, PointId)> = BinaryHeap::with_capacity(k + 1);
    for &u in owned {
        if u == exclude {
            continue;
        }
        let d = metric.distance(q, set.point(u));
        if heap.len() < k {
            heap.push((OrdF32(d), u));
        } else if let Some(&(worst, worst_id)) = heap.peek() {
            if (OrdF32(d), u) < (worst, worst_id) {
                heap.pop();
                heap.push((OrdF32(d), u));
            }
        }
    }
    let mut pairs: Vec<(PointId, f32)> = heap.into_iter().map(|(OrdF32(d), id)| (id, d)).collect();
    pairs.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    pairs
}

fn rank_bf<P, M>(
    comm: &Comm,
    set: Arc<PointSet<P>>,
    metric: M,
    k: usize,
) -> Vec<(PointId, Vec<(PointId, f32)>)>
where
    P: Point,
    M: Metric<P>,
{
    let part = Partitioner::new(comm.n_ranks());
    let owned = part.owned_ids(set.len(), comm.rank());
    let dim = set.dim().max(1);
    name_tags(comm);
    comm.name_tag(TAG_BF_SCAN, "bf_scan");
    comm.name_tag(TAG_BF_PARTIAL, "bf_partial");

    // Merged partial results per owned query vertex.
    type Merged = HashMap<PointId, Vec<(PointId, f32)>>;
    let merged: Rc<RefCell<Merged>> = Rc::new(RefCell::new(HashMap::new()));

    {
        let set = Arc::clone(&set);
        let metric = metric.clone();
        let owned = owned.clone();
        comm.register::<Scan<P>, _>(TAG_BF_SCAN, move |c, msg| {
            let local = local_topk(&set, &metric, &owned, &msg.vec, msg.v, k);
            // The scan over |owned| points is the dominant compute.
            c.charge_compute(c.cost().distance_cost_ns(dim) * owned.len() as u64);
            c.async_send(msg.home as usize, TAG_BF_PARTIAL, &(msg.v, local));
        });
    }
    {
        let merged = Rc::clone(&merged);
        comm.register::<Partial, _>(TAG_BF_PARTIAL, move |_, (v, mut pairs)| {
            merged.borrow_mut().entry(v).or_default().append(&mut pairs);
        });
    }

    // Ship each owned query vector to every rank, in batches so buffers
    // stay bounded (same Section 4.4 discipline as construction).
    let quota = 1usize << 12;
    let mut idx = 0;
    loop {
        let end = (idx + quota / comm.n_ranks().max(1))
            .min(owned.len())
            .max(idx);
        for &v in &owned[idx..end] {
            for dest in 0..comm.n_ranks() {
                comm.async_send(
                    dest,
                    TAG_BF_SCAN,
                    &Scan {
                        v,
                        home: comm.rank() as u32,
                        vec: set.point(v).clone(),
                    },
                );
            }
        }
        idx = end;
        comm.barrier();
        if comm.all_reduce_sum_u64((owned.len() - idx) as u64) == 0 {
            break;
        }
    }

    // Merge the per-rank partial lists into exact global top-k.
    let mut merged = merged.borrow_mut();
    owned
        .iter()
        .map(|&v| {
            let mut pairs = merged.remove(&v).unwrap_or_default();
            pairs.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
            pairs.truncate(k);
            (v, pairs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::ground_truth::brute_force_knng;
    use dataset::metric::{Jaccard, L2};
    use dataset::synth::uniform;

    #[test]
    fn matches_shared_memory_brute_force_exactly() {
        let set = Arc::new(uniform(200, 6, 3));
        let truth = brute_force_knng(&set, &L2, 7);
        for ranks in [1usize, 3, 5] {
            let dist = distributed_ground_truth(&World::new(ranks), &set, &L2, 7);
            assert_eq!(dist, truth, "ranks={ranks} diverged");
        }
    }

    #[test]
    fn exact_on_sparse_jaccard() {
        let set = Arc::new(dataset::presets::kosarak_like(120, 5));
        let truth = brute_force_knng(&set, &Jaccard, 4);
        let dist = distributed_ground_truth(&World::new(4), &set, &Jaccard, 4);
        assert_eq!(dist, truth);
    }

    #[test]
    fn no_self_neighbors() {
        let set = Arc::new(uniform(80, 3, 9));
        let gt = distributed_ground_truth(&World::new(3), &set, &L2, 5);
        for (v, ids) in gt.ids.iter().enumerate() {
            assert_eq!(ids.len(), 5);
            assert!(!ids.contains(&(v as PointId)));
        }
    }

    #[test]
    #[should_panic(expected = "k must be smaller")]
    fn oversized_k_rejected() {
        let set = Arc::new(uniform(5, 2, 1));
        let _ = distributed_ground_truth(&World::new(2), &set, &L2, 5);
    }
}
