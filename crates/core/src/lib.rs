//! # dnnd — Distributed NN-Descent
//!
//! The primary contribution of *"Towards A Massive-Scale Distributed
//! Neighborhood Graph Construction"* (Iwabuchi et al., SC-W 2023),
//! reproduced over the simulated [`ygm`] runtime:
//!
//! * hash-partitioned vertices and feature vectors ([`partition`]),
//! * asynchronous distributed k-NNG initialization,
//! * the reverse-neighbor exchange with destination shuffling (paper §4.2),
//! * neighbor checks under the unoptimized (Type 1 + Type 2) or optimized
//!   (Type 1 + Type 2+ + Type 3) protocol with the three communication-
//!   saving techniques (§4.3),
//! * globally batched communication separated by barriers (§4.4),
//! * the distributed graph optimization: reverse-edge merge and degree
//!   pruning (§4.5),
//! * sharded per-rank persistence of the partitioned graph into
//!   [`metall`] stores ([`persist`], the paper's §5.1.3 workflow),
//! * a fully distributed query engine over the partitioned graph
//!   ([`query`], the "massive-scale NNG framework" step the paper's
//!   conclusion anticipates).
//!
//! ```
//! use dataset::{synth, L2};
//! use dnnd::{build, DnndConfig};
//! use std::sync::Arc;
//! use ygm::World;
//!
//! let set = Arc::new(synth::uniform(300, 8, 42));
//! let world = World::new(4); // four simulated ranks
//! let out = build(&world, &set, &L2, DnndConfig::new(5).graph_opt(1.5));
//! assert_eq!(out.graph.len(), 300);
//! assert!(out.report.iterations >= 1);
//! // The optimized protocol used Type 2+ / Type 3 messages:
//! assert!(out.report.tag(dnnd::msgs::TAG_TYPE2_PLUS).count > 0);
//! ```

pub mod bruteforce;
pub mod config;
pub mod dist_index;
pub mod engine;
pub mod msgs;
pub mod obs_report;
pub mod partition;
pub mod persist;
pub mod query;
pub mod rnn_dist;

pub use bruteforce::distributed_ground_truth;
pub use config::{CommOpts, DnndConfig};
pub use dist_index::DistIndex;
pub use engine::{build, BuildReport, DnndOutput};
pub use partition::Partitioner;
pub use persist::{destroy_sharded, load_sharded, save_sharded};
pub use query::{distributed_search_batch, DistSearchParams, IdMask, QueryProfile, SearchEngine};
pub use rnn_dist::{rnn_optimize_distributed, RnnDistReport};
