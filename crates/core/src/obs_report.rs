//! Bridges from runtime/engine result types to [`obs::RunReport`], plus
//! file emission for the `--trace-out` / `--report-out` CLI flags.
//!
//! `obs` itself is dependency-free, so the translation from `ygm`'s
//! `TagStats` / `PhaseRecord` / `ClockBreakdown` (and the engine's
//! `BuildReport`) into the report schema lives here, where both sides are
//! in scope. Every binary and bench driver funnels through these helpers
//! so reports stay structurally identical across producers.

use crate::engine::BuildReport;
use obs::{
    ConvergencePoint, FaultSection, MatrixSection, MatrixTagReport, PhaseReport, RunReport,
    TagReport, Tracer,
};
use std::fs;
use std::io;
use std::path::Path;
use ygm::{ClockBreakdown, FaultReport, PhaseRecord, TagStats, TrafficMatrix, WorldReport};

fn fill_tags(report: &mut RunReport, tags: &[(u16, String, TagStats)], total: &TagStats) {
    report.tags = tags
        .iter()
        .map(|(tag, name, s)| TagReport {
            tag: *tag as u64,
            name: name.clone(),
            count: s.count,
            bytes: s.bytes,
            remote_count: s.remote_count,
            remote_bytes: s.remote_bytes,
        })
        .collect();
    report.total_count = total.count;
    report.total_bytes = total.bytes;
    report.total_remote_count = total.remote_count;
    report.total_remote_bytes = total.remote_bytes;
}

fn fill_matrix(report: &mut RunReport, m: &TrafficMatrix) {
    report.matrix = Some(MatrixSection {
        n_ranks: m.n_ranks as u64,
        tags: m
            .tags
            .iter()
            .map(|t| MatrixTagReport {
                tag: t.tag as u64,
                name: t.name.clone(),
                counts: t.counts.clone(),
                bytes: t.bytes.clone(),
            })
            .collect(),
    });
}

fn fill_phases(report: &mut RunReport, phases: &[PhaseRecord]) {
    report.phases = phases
        .iter()
        .map(|p| PhaseReport {
            index: p.index as u64,
            compute_secs: p.compute_secs,
            comm_secs: p.comm_secs,
            barrier_secs: p.barrier_secs,
            msgs: p.msgs,
            bytes: p.bytes,
        })
        .collect();
}

/// Run the happens-before critical-path analysis over the clock's phase
/// records and attach the resulting section. `sim_ns` must be the exact
/// final clock reading so collective time attributes with zero error.
fn fill_critical_path(report: &mut RunReport, phases: &[PhaseRecord], sim_ns: u64, n_ranks: usize) {
    let costs: Vec<obs::PhaseCost> = phases
        .iter()
        .map(|p| obs::PhaseCost {
            index: p.index as u64,
            total_ns: p.total_ns,
            barrier_ns: p.barrier_secs * 1e9,
            rank_compute_ns: p.rank_compute_ns.clone(),
            rank_send_ns: p.rank_send_ns.clone(),
            rank_recv_ns: p.rank_recv_ns.clone(),
            rank_transport_send_ns: p.rank_transport_send_ns.clone(),
            rank_transport_recv_ns: p.rank_transport_recv_ns.clone(),
            rank_fault_ns: p.rank_fault_ns.clone(),
        })
        .collect();
    report.critical_path = Some(obs::critical_path::analyze(&costs, sim_ns, n_ranks));
}

fn fill_breakdown(report: &mut RunReport, b: &ClockBreakdown) {
    report.compute_secs = b.compute_secs;
    report.comm_secs = b.comm_secs;
    report.barrier_secs = b.barrier_secs;
}

fn fill_faults(report: &mut RunReport, faults: Option<&FaultReport>) {
    report.faults = faults.map(|f| FaultSection {
        sim_seed: f.sim_seed,
        profile: f.profile.clone(),
        dropped: f.dropped,
        duplicated: f.duplicated,
        delayed: f.delayed,
        stalls: f.stalls,
        jittered_flushes: f.jittered_flushes,
        retransmits: f.retransmits,
        dedup_discards: f.dedup_discards,
        forced_deliveries: f.forced_deliveries,
    });
}

/// Fill the schema-v5 `rnn` section from the RNN pass's knobs and
/// all-reduced stats (the binaries call this whenever `--opt-mode rnn`
/// ran; the section is the deterministic fingerprint of the pass).
pub fn fill_rnn(report: &mut RunReport, params: nnd::rnn::RnnParams, stats: &nnd::rnn::RnnStats) {
    report.rnn = Some(obs::RnnSection {
        t1: params.t1 as u64,
        t2: params.t2 as u64,
        k0: params.k0 as u64,
        r: params.r as u64,
        rounds: stats
            .rounds
            .iter()
            .map(|rd| obs::RnnRoundReport {
                outer: rd.outer,
                inner: rd.inner,
                pairs: rd.pairs,
                pruned: rd.pruned,
                added: rd.added,
            })
            .collect(),
        reverse_added: stats.reverse_added.clone(),
        dist_evals: stats.dist_evals,
        repaired: stats.repaired,
    });
}

/// Start a [`RunReport`] from a construction run's [`BuildReport`],
/// including the convergence trajectory.
pub fn report_from_build(binary: &str, r: &BuildReport) -> RunReport {
    let mut report = RunReport::new(binary);
    report.n_ranks = r.n_ranks as u64;
    report.iterations = r.iterations as u64;
    report.distance_evals = r.distance_evals;
    report.sim_secs = r.sim_secs;
    report.wall_secs = r.wall_secs;
    fill_breakdown(&mut report, &r.breakdown);
    fill_tags(&mut report, &r.tags, &r.total);
    fill_matrix(&mut report, &r.matrix);
    fill_phases(&mut report, &r.phases);
    fill_critical_path(&mut report, &r.phases, r.sim_ns, r.n_ranks);
    fill_faults(&mut report, r.faults.as_ref());
    report.convergence = r
        .updates_per_iter
        .iter()
        .enumerate()
        .map(|(i, &u)| ConvergencePoint {
            iteration: i as u64,
            updates: u,
        })
        .collect();
    report
}

/// Start a [`RunReport`] from a standalone distributed RNN-Descent pass
/// (`dnnd-optimize --opt-mode rnn`), including the schema-v5 `rnn`
/// section.
pub fn report_from_rnn_dist(
    binary: &str,
    params: nnd::rnn::RnnParams,
    r: &crate::rnn_dist::RnnDistReport,
) -> RunReport {
    let mut report = RunReport::new(binary);
    report.n_ranks = r.n_ranks as u64;
    report.distance_evals = r.stats.dist_evals;
    report.sim_secs = r.sim_secs;
    report.wall_secs = r.wall_secs;
    fill_breakdown(&mut report, &r.breakdown);
    fill_tags(&mut report, &r.tags, &r.total);
    fill_matrix(&mut report, &r.matrix);
    fill_phases(&mut report, &r.phases);
    fill_critical_path(&mut report, &r.phases, r.sim_ns, r.n_ranks);
    fill_faults(&mut report, r.faults.as_ref());
    fill_rnn(&mut report, params, &r.stats);
    report
}

/// Start a [`RunReport`] from any [`WorldReport`] (e.g. a query run).
pub fn report_from_world<T>(binary: &str, n_ranks: usize, r: &WorldReport<T>) -> RunReport {
    let mut report = RunReport::new(binary);
    report.n_ranks = n_ranks as u64;
    report.sim_secs = r.sim_secs;
    report.wall_secs = r.wall_secs;
    fill_breakdown(&mut report, &r.breakdown);
    fill_tags(&mut report, &r.tags, &r.total);
    fill_matrix(&mut report, &r.matrix);
    fill_phases(&mut report, &r.phases);
    fill_critical_path(&mut report, &r.phases, r.sim_ns, n_ranks);
    fill_faults(&mut report, r.faults.as_ref());
    report
}

/// Fold the tracer's histogram summaries into `report` (no-op for `None`),
/// along with the span-ring overflow counters (satellite: a nonzero
/// `dropped_spans` means the trace is incomplete and is warned about; the
/// per-rank breakdown shows *which* ring overflowed).
pub fn attach_histograms(report: &mut RunReport, tracer: Option<&Tracer>) {
    if let Some(t) = tracer {
        report.add_histograms(&t.hist_snapshots());
        report.set_dropped_spans_per_rank(t.dropped_events_per_rank());
    }
}

/// Fold the tracer's virtual-clock time series into `report` (no-op for
/// `None`).
pub fn attach_series(report: &mut RunReport, tracer: Option<&Tracer>) {
    if let Some(t) = tracer {
        report.series = t.series().snapshot();
    }
}

/// Write the self-contained HTML dashboard for `report` to `path`.
pub fn write_dashboard(path: impl AsRef<Path>, report: &RunReport) -> io::Result<()> {
    fs::write(path, obs::dashboard::dashboard_html(report))
}

/// Write the Chrome-trace JSON for `tracer` to `path`.
pub fn write_trace(path: impl AsRef<Path>, tracer: &Tracer) -> io::Result<()> {
    fs::write(path, obs::chrome::chrome_trace_json(tracer))
}

/// Write `report` as pretty-printed JSON to `path`.
pub fn write_report(path: impl AsRef<Path>, report: &RunReport) -> io::Result<()> {
    fs::write(path, report.to_json_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ygm::TagStats;

    fn tag(t: u16, count: u64, bytes: u64) -> (u16, String, TagStats) {
        (
            t,
            format!("tag{t}"),
            TagStats {
                count,
                bytes,
                remote_count: count / 2,
                remote_bytes: bytes / 2,
            },
        )
    }

    #[test]
    fn build_report_totals_carry_over_exactly() {
        let tags = vec![tag(14, 10, 640), tag(16, 4, 4_000)];
        let total = TagStats {
            count: 14,
            bytes: 4_640,
            remote_count: 7,
            remote_bytes: 2_320,
        };
        let br = BuildReport {
            n_ranks: 4,
            iterations: 3,
            updates_per_iter: vec![100, 40, 2],
            distance_evals: 777,
            sim_secs: 1.25,
            sim_ns: 1_250_000_000,
            breakdown: ClockBreakdown {
                compute_secs: 1.0,
                comm_secs: 0.2,
                barrier_secs: 0.05,
            },
            phases: vec![PhaseRecord {
                index: 0,
                compute_secs: 0.5,
                comm_secs: 0.1,
                barrier_secs: 0.01,
                msgs: 7,
                bytes: 2_320,
                total_ns: 610_000_000,
                rank_compute_ns: vec![500_000_000.0, 450_000_000.0],
                rank_send_ns: vec![90_000_000.0, 80_000_000.0],
                rank_recv_ns: vec![10_000_000.0, 20_000_000.0],
                rank_transport_send_ns: vec![0.0, 1_000_000.0],
                rank_transport_recv_ns: vec![1_000_000.0, 0.0],
                rank_fault_ns: vec![0.0, 0.0],
            }],
            wall_secs: 0.5,
            tags,
            total,
            matrix: TrafficMatrix {
                n_ranks: 2,
                tags: vec![ygm::TagMatrix {
                    tag: 14,
                    name: "tag14".into(),
                    counts: vec![3, 2, 1, 4],
                    bytes: vec![192, 128, 64, 256],
                }],
            },
            faults: Some(FaultReport {
                sim_seed: 99,
                profile: "lossy".into(),
                dropped: 2,
                retransmits: 3,
                ..FaultReport::default()
            }),
            rnn: None,
        };
        let r = report_from_build("dnnd-construct", &br);
        assert_eq!(r.total_bytes, 4_640);
        // Critical-path section: exact attribution against the clock total.
        let cp = r.critical_path.as_ref().unwrap();
        assert_eq!(cp.critical_path_ns, 1_250_000_000);
        assert_eq!(cp.attribution_sum_ns(), 1_250_000_000);
        assert_eq!(cp.collective_ns, 1_250_000_000 - 610_000_000);
        assert_eq!(cp.phase_attribution.len(), 1);
        assert_eq!(cp.phase_attribution[0].critical_rank, 0);
        let fs = r.faults.as_ref().unwrap();
        assert_eq!(fs.sim_seed, 99);
        assert_eq!(fs.profile, "lossy");
        assert_eq!(fs.dropped, 2);
        assert_eq!(fs.retransmits, 3);
        assert_eq!(r.tags.len(), 2);
        assert_eq!(r.tags[1].bytes, 4_000);
        assert_eq!(r.convergence.len(), 3);
        assert_eq!(r.convergence[2].updates, 2);
        assert_eq!(r.phases[0].msgs, 7);
        let mx = r.matrix.as_ref().unwrap();
        assert_eq!(mx.n_ranks, 2);
        assert_eq!(mx.tags[0].counts, vec![3, 2, 1, 4]);
        assert_eq!(mx.total_bytes(), vec![192, 128, 64, 256]);
        // Round-trips through JSON untouched.
        let back = RunReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
    }
}
