//! Sharded persistence of a distributed k-NNG.
//!
//! The real DNND leaves the graph *partitioned*: each MPI rank owns a
//! Metall datastore holding its vertices' neighbor lists, and the
//! graph-optimization executable reopens those per-rank stores (Section
//! 5.1.3). This module reproduces that layout: one `metall::Store` per
//! rank under a common directory, each holding only the rows that rank's
//! partitioner owns, plus a manifest shard recording `(n, n_ranks, k)` so
//! loaders can validate the set of shards.

use crate::partition::Partitioner;
use dataset::set::PointId;
use metall::{Result as StoreResult, Store, StoreError};
use nnd::graph::{Edge, KnnGraph};
use std::path::Path;

const META_KEY: &str = "shard-meta"; // [n, n_ranks, rank]

fn shard_dir(base: &Path, rank: usize) -> std::path::PathBuf {
    base.join(format!("rank-{rank}"))
}

/// Persist `graph` as `n_ranks` per-rank stores under `base`, using the
/// same hash partitioner DNND builds with. Overwrites existing shards.
pub fn save_sharded(graph: &KnnGraph, base: impl AsRef<Path>, n_ranks: usize) -> StoreResult<()> {
    assert!(n_ranks >= 1);
    let base = base.as_ref();
    let part = Partitioner::new(n_ranks);
    for rank in 0..n_ranks {
        let dir = shard_dir(base, rank);
        Store::destroy(&dir)?;
        let mut store = Store::create(&dir)?;
        store.put(
            META_KEY,
            &vec![graph.len() as u64, n_ranks as u64, rank as u64],
        )?;
        // CSR over this rank's owned vertices only.
        let owned = part.owned_ids(graph.len(), rank);
        let mut verts: Vec<u32> = Vec::with_capacity(owned.len());
        let mut offsets: Vec<u64> = Vec::with_capacity(owned.len() + 1);
        let mut ids: Vec<u32> = Vec::new();
        let mut dists: Vec<f32> = Vec::new();
        offsets.push(0);
        for v in owned {
            verts.push(v);
            for &(u, d) in graph.neighbors(v) {
                ids.push(u);
                dists.push(d);
            }
            offsets.push(ids.len() as u64);
        }
        store.put("verts", &verts)?;
        store.put("offsets", &offsets)?;
        store.put("ids", &ids)?;
        store.put("dists", &dists)?;
    }
    Ok(())
}

/// Load a graph persisted by [`save_sharded`], validating that every shard
/// is present and consistent.
pub fn load_sharded(base: impl AsRef<Path>) -> StoreResult<KnnGraph> {
    let base = base.as_ref();
    // Shard 0's meta tells us how many shards to expect.
    let first = Store::open(shard_dir(base, 0))?;
    let meta: Vec<u64> = first.get(META_KEY)?;
    let [n, n_ranks, _] = meta[..] else {
        return Err(StoreError::Decode("bad shard meta".into()));
    };
    let (n, n_ranks) = (n as usize, n_ranks as usize);
    let part = Partitioner::new(n_ranks);

    let mut rows: Vec<Option<Vec<Edge>>> = vec![None; n];
    for rank in 0..n_ranks {
        let store = Store::open(shard_dir(base, rank))?;
        let meta: Vec<u64> = store.get(META_KEY)?;
        if meta != vec![n as u64, n_ranks as u64, rank as u64] {
            return Err(StoreError::Corrupt(format!("shard {rank} meta mismatch")));
        }
        let verts: Vec<u32> = store.get("verts")?;
        let offsets: Vec<u64> = store.get("offsets")?;
        let ids: Vec<u32> = store.get("ids")?;
        let dists: Vec<f32> = store.get("dists")?;
        if offsets.len() != verts.len() + 1
            || ids.len() != dists.len()
            || offsets.last().copied() != Some(ids.len() as u64)
        {
            return Err(StoreError::Decode(format!(
                "shard {rank} arrays inconsistent"
            )));
        }
        for (i, &v) in verts.iter().enumerate() {
            if part.owner(v) != rank {
                return Err(StoreError::Corrupt(format!(
                    "vertex {v} stored in shard {rank} but owned by {}",
                    part.owner(v)
                )));
            }
            let (a, b) = (offsets[i] as usize, offsets[i + 1] as usize);
            rows[v as usize] = Some(
                ids[a..b]
                    .iter()
                    .copied()
                    .zip(dists[a..b].iter().copied())
                    .collect(),
            );
        }
    }
    let rows: Vec<Vec<Edge>> = rows
        .into_iter()
        .enumerate()
        .map(|(v, r)| {
            r.ok_or_else(|| StoreError::Corrupt(format!("vertex {v} missing from all shards")))
        })
        .collect::<StoreResult<_>>()?;
    Ok(KnnGraph::from_rows(rows))
}

/// Remove every shard of a sharded graph. No-op for missing shards.
pub fn destroy_sharded(base: impl AsRef<Path>, n_ranks: usize) -> StoreResult<()> {
    for rank in 0..n_ranks {
        Store::destroy(shard_dir(base.as_ref(), rank))?;
    }
    Ok(())
}

/// Ids a shard on disk claims to own (for inspection/tests).
pub fn shard_vertices(base: impl AsRef<Path>, rank: usize) -> StoreResult<Vec<PointId>> {
    let store = Store::open(shard_dir(base.as_ref(), rank))?;
    store.get("verts")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "dnnd-shard-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_graph(n: usize) -> KnnGraph {
        KnnGraph::from_rows(
            (0..n)
                .map(|v| vec![(((v + 1) % n) as u32, 1.0), (((v + 2) % n) as u32, 2.0)])
                .collect(),
        )
    }

    #[test]
    fn sharded_round_trip() {
        let dir = tmpdir("rt");
        let g = sample_graph(50);
        save_sharded(&g, &dir, 4).unwrap();
        let back = load_sharded(&dir).unwrap();
        assert_eq!(back, g);
        destroy_sharded(&dir, 4).unwrap();
    }

    #[test]
    fn single_shard_round_trip() {
        let dir = tmpdir("one");
        let g = sample_graph(10);
        save_sharded(&g, &dir, 1).unwrap();
        assert_eq!(load_sharded(&dir).unwrap(), g);
        destroy_sharded(&dir, 1).unwrap();
    }

    #[test]
    fn shards_hold_only_owned_vertices() {
        let dir = tmpdir("owned");
        let g = sample_graph(40);
        save_sharded(&g, &dir, 3).unwrap();
        let part = Partitioner::new(3);
        let mut seen = Vec::new();
        for rank in 0..3 {
            for v in shard_vertices(&dir, rank).unwrap() {
                assert_eq!(part.owner(v), rank);
                seen.push(v);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<u32>>());
        destroy_sharded(&dir, 3).unwrap();
    }

    #[test]
    fn missing_shard_is_detected() {
        let dir = tmpdir("missing");
        let g = sample_graph(30);
        save_sharded(&g, &dir, 3).unwrap();
        Store::destroy(dir.join("rank-2")).unwrap();
        assert!(load_sharded(&dir).is_err());
        destroy_sharded(&dir, 3).unwrap();
    }

    #[test]
    fn tampered_shard_is_detected() {
        let dir = tmpdir("tamper");
        let g = sample_graph(30);
        save_sharded(&g, &dir, 2).unwrap();
        // Replace shard 1's meta with a wrong rank count.
        let mut store = Store::open(dir.join("rank-1")).unwrap();
        store.put(META_KEY, &vec![30u64, 5, 1]).unwrap();
        assert!(load_sharded(&dir).is_err());
        destroy_sharded(&dir, 2).unwrap();
    }

    #[test]
    fn overwrite_replaces_previous_shards() {
        let dir = tmpdir("overwrite");
        save_sharded(&sample_graph(20), &dir, 2).unwrap();
        let g2 = sample_graph(24);
        save_sharded(&g2, &dir, 2).unwrap();
        assert_eq!(load_sharded(&dir).unwrap(), g2);
        destroy_sharded(&dir, 2).unwrap();
    }
}
