//! Distributed RNN-Descent: the second graph-optimization mode, run over
//! the same row-batched YGM messaging as the descent itself.
//!
//! Each inner round is one synchronous pass:
//!
//! 1. **Distance prefetch** — for every owned vertex `v`, the flagged
//!    pairs of `v`'s row (see [`nnd::rnn::flagged_pairs`]) are shipped as
//!    ids-only rows `(v, a, [b...])` to `owner(a)` ([`TAG_RNN_REQ`]),
//!    which forwards `a`'s vector once per destination rank holding tails
//!    ([`TAG_RNN_VEC`]); the tail owner answers `owner(v)` with one
//!    batched distance row ([`TAG_RNN_DIST`]) — the Type 1 / Type 2+ /
//!    Type 3 three-hop chain of the construction protocol, reused.
//! 2. **Scan** — with every pair distance in hand, each rank runs the
//!    *pure* [`nnd::rnn::scan_row`] on its own rows. Occluded edges become
//!    redirected inserts shipped to the occluder's owner
//!    ([`TAG_RNN_INS`]).
//! 3. **Apply** — after the barrier, pending inserts are merged in the
//!    canonical `(dist, id)` order ([`nnd::rnn::apply_inserts`]), so the
//!    result is independent of message-arrival order.
//!
//! Outer-round boundaries (and the seed merge) ship plain reverse edges
//! ([`TAG_RNN_REV`]). Because every decision is a pure function of
//! canonical row state and the batched kernels are bit-identical to the
//! scalar reference, the final graph — and the per-round counters — are
//! bit-identical across reruns, rank counts, fault plans, and kernel
//! dispatch, and equal to the shared-memory [`nnd::rnn::rnn_optimize`].

use crate::engine::{batched, batched_weighted, charge_batch, group_by_owner};
use crate::msgs::*;
use crate::partition::Partitioner;
use dataset::batch::{BatchMetric, NormCache};
use dataset::point::Point;
use dataset::set::{PointId, PointSet};
use nnd::graph::{Edge, KnnGraph};
use nnd::rnn::{
    apply_inserts, flagged_pairs, scan_row, seed_row, RnnEdge, RnnParams, RnnRound, RnnStats,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;
use ygm::{ClockBreakdown, Comm, PhaseRecord, TagStats, TrafficMatrix, World};

/// Per-rank mutable state of the distributed RNN pass.
pub(crate) struct RnnDistState {
    /// Working rows of the vertices this rank owns.
    pub(crate) rows: HashMap<PointId, Vec<RnnEdge>>,
    /// Prefetched pair distances, per scanning vertex: `(a, b) -> theta`.
    pair_dists: HashMap<PointId, HashMap<(PointId, PointId), f32>>,
    /// Candidate edges (redirected inserts + reverse edges) awaiting the
    /// next apply step, per owned target.
    pending: HashMap<PointId, Vec<(PointId, f32)>>,
    /// Distance evaluations performed on this rank for the RNN pass.
    pub(crate) dist_evals: u64,
    /// Batched kernel invocations on this rank for the RNN pass.
    pub(crate) kernel_batches: u64,
}

impl RnnDistState {
    pub(crate) fn new() -> Self {
        RnnDistState {
            rows: HashMap::new(),
            pair_dists: HashMap::new(),
            pending: HashMap::new(),
            dist_evals: 0,
            kernel_batches: 0,
        }
    }

    /// Seed the owned rows from adjacency lists (canonicalized, flagged
    /// new, clamped to `r`) — identical to the shared-memory seeding.
    pub(crate) fn seed(
        &mut self,
        owned_rows: impl Iterator<Item = (PointId, Vec<Edge>)>,
        r: usize,
    ) {
        for (v, edges) in owned_rows {
            self.rows.insert(v, seed_row(&edges, v, r));
        }
    }
}

/// Register the five RNN message handlers (tags 19–23).
pub(crate) fn register_rnn_handlers<P, M>(
    comm: &Comm,
    st: &Rc<RefCell<RnnDistState>>,
    set: &Arc<PointSet<P>>,
    metric: &M,
    cache: &Arc<NormCache>,
    part: Partitioner,
    dim: usize,
) where
    P: Point,
    M: BatchMetric<P>,
{
    // Pair-distance request: owner(a) groups the tails by owner and ships
    // a's vector once per destination rank.
    {
        let set = Arc::clone(set);
        comm.register_named::<RnnReq, _>(
            TAG_RNN_REQ,
            tag_display(TAG_RNN_REQ),
            move |c, (v, a, bs)| {
                // usize::MAX matches no rank: rank-local tails still travel
                // as ordinary self-sends (traffic-matrix diagonal).
                let (_, groups) = group_by_owner(part, usize::MAX, &bs);
                for (dest, bs) in groups {
                    c.async_send(
                        dest,
                        TAG_RNN_VEC,
                        &RnnVec {
                            v,
                            a,
                            bs,
                            vec: set.point(a).clone(),
                        },
                    );
                }
            },
        );
    }
    // Vector forward: one batched 1xN evaluation, distances back to
    // owner(v).
    {
        let st = Rc::clone(st);
        let set = Arc::clone(set);
        let metric = metric.clone();
        let cache = Arc::clone(cache);
        comm.register_named::<RnnVec<P>, _>(
            TAG_RNN_VEC,
            tag_display(TAG_RNN_VEC),
            move |c, msg| {
                let mut dbuf = Vec::with_capacity(msg.bs.len());
                metric.distance_one_to_many(&msg.vec, &set, &cache, &msg.bs, &mut dbuf);
                charge_batch(c, dim, msg.bs.len());
                c.trace_hist("kernel_batch_len", msg.bs.len() as u64);
                {
                    let mut s = st.borrow_mut();
                    s.dist_evals += msg.bs.len() as u64;
                    s.kernel_batches += 1;
                }
                let pairs: Vec<(PointId, f32)> =
                    msg.bs.iter().copied().zip(dbuf.iter().copied()).collect();
                c.async_send(part.owner(msg.v), TAG_RNN_DIST, &(msg.v, msg.a, pairs));
            },
        );
    }
    // Distance return: fill v's prefetch map.
    {
        let st = Rc::clone(st);
        comm.register_named::<RnnDist, _>(
            TAG_RNN_DIST,
            tag_display(TAG_RNN_DIST),
            move |_, (v, a, pairs)| {
                let mut s = st.borrow_mut();
                let map = s.pair_dists.entry(v).or_default();
                for (b, d) in pairs {
                    map.insert((a, b), d);
                }
            },
        );
    }
    // Redirected insert: queue for the next apply step.
    {
        let st = Rc::clone(st);
        comm.register_named::<RnnIns, _>(
            TAG_RNN_INS,
            tag_display(TAG_RNN_INS),
            move |_, (u, cands)| {
                st.borrow_mut().pending.entry(u).or_default().extend(cands);
            },
        );
    }
    // Reverse edge: same queue.
    {
        let st = Rc::clone(st);
        comm.register_named::<RnnRev, _>(
            TAG_RNN_REV,
            tag_display(TAG_RNN_REV),
            move |_, (w, v, d)| {
                st.borrow_mut().pending.entry(w).or_default().push((v, d));
            },
        );
    }
}

/// Merge this rank's pending candidates into its rows (canonical order,
/// dedup, clamp to `r`); returns the local insert count.
fn apply_pending(st: &Rc<RefCell<RnnDistState>>, owned: &[PointId], r: usize) -> u64 {
    let mut s = st.borrow_mut();
    let mut pending = std::mem::take(&mut s.pending);
    let mut added = 0;
    for &v in owned {
        if let Some(cands) = pending.remove(&v) {
            let row = s.rows.get_mut(&v).expect("owned rnn row");
            added += apply_inserts(row, cands, v, r);
        }
    }
    added
}

/// One synchronous inner round (prefetch, scan, apply). Returns the
/// globally all-reduced counters, identical on every rank.
#[allow(clippy::too_many_arguments)]
fn inner_round(
    comm: &Comm,
    st: &Rc<RefCell<RnnDistState>>,
    owned: &[PointId],
    part: Partitioner,
    params: RnnParams,
    quota: usize,
    outer: u64,
    inner: u64,
) -> RnnRound {
    // 1. Distance prefetch: flagged pairs grouped per (v, head).
    let reqs: Vec<RnnReq> = {
        let s = st.borrow();
        let mut reqs = Vec::new();
        for &v in owned {
            let row = &s.rows[&v];
            let pairs = flagged_pairs(row);
            let mut h = 0;
            while h < pairs.len() {
                let head = pairs[h].0;
                let mut t = h;
                while t < pairs.len() && pairs[t].0 == head {
                    t += 1;
                }
                let tails = pairs[h..t].iter().map(|&(_, j)| row[j].id).collect();
                reqs.push((v, row[head].id, tails));
                h = t;
            }
        }
        reqs
    };
    let weights: Vec<usize> = reqs.iter().map(|r| r.2.len()).collect();
    let pairs_local: u64 = weights.iter().map(|&w| w as u64).sum();
    batched_weighted(comm, &weights, quota, |i| {
        comm.async_send(part.owner(reqs[i].1), TAG_RNN_REQ, &reqs[i]);
    });

    // 2. Scan against the prefetched distances; rows only shrink here
    // (inserts stay queued until step 3), so scan order is irrelevant.
    let mut pruned_local = 0u64;
    let ins_msgs: Vec<RnnIns> = {
        let mut s = st.borrow_mut();
        let mut msgs: Vec<RnnIns> = Vec::new();
        for &v in owned {
            let row = s.rows.remove(&v).expect("owned rnn row");
            let dists = s.pair_dists.remove(&v).unwrap_or_default();
            let out = scan_row(&row, |i, j| dists[&(row[i].id, row[j].id)]);
            pruned_local += (row.len() - out.kept.len()) as u64;
            let kept: Vec<RnnEdge> = out
                .kept
                .iter()
                .map(|&i| RnnEdge {
                    new: false,
                    ..row[i]
                })
                .collect();
            s.rows.insert(v, kept);
            for (u, w, d) in out.inserts {
                match msgs.iter_mut().find(|(t, _)| *t == u) {
                    Some((_, g)) => g.push((w, d)),
                    None => msgs.push((u, vec![(w, d)])),
                }
            }
        }
        msgs
    };
    let iw: Vec<usize> = ins_msgs.iter().map(|m| m.1.len()).collect();
    batched_weighted(comm, &iw, quota, |i| {
        comm.async_send(part.owner(ins_msgs[i].0), TAG_RNN_INS, &ins_msgs[i]);
    });

    // 3. Apply, then all-reduce the round counters so every rank agrees
    // on convergence (pairs == 0) and on the reported stats.
    let added_local = apply_pending(st, owned, params.r);
    RnnRound {
        outer,
        inner,
        pairs: comm.all_reduce_sum_u64(pairs_local),
        pruned: comm.all_reduce_sum_u64(pruned_local),
        added: comm.all_reduce_sum_u64(added_local),
    }
}

/// One reverse-edge exchange (the seed merge and every outer-round
/// boundary). Costs no distance evaluations — edge distances are already
/// known. Returns the global insert count.
fn reverse_round(
    comm: &Comm,
    st: &Rc<RefCell<RnnDistState>>,
    owned: &[PointId],
    part: Partitioner,
    params: RnnParams,
    quota: usize,
) -> u64 {
    let msgs: Vec<RnnRev> = {
        let s = st.borrow();
        owned
            .iter()
            .flat_map(|&v| s.rows[&v].iter().map(move |e| (e.id, v, e.dist)))
            .collect()
    };
    batched(comm, msgs.len(), quota, |i| {
        comm.async_send(part.owner(msgs[i].0), TAG_RNN_REV, &msgs[i]);
    });
    let added_local = apply_pending(st, owned, params.r);
    comm.all_reduce_sum_u64(added_local)
}

/// The full distributed round schedule over already-seeded state: seed
/// reverse merge, `t1` outer rounds of up to `t2` inner rounds (with the
/// convergence early-exit), reverse exchanges between outer rounds, final
/// `k0` cap. Returns this rank's final rows plus the *global* stats
/// (identical on every rank).
pub(crate) fn run_rnn_rounds(
    comm: &Comm,
    st: &Rc<RefCell<RnnDistState>>,
    owned: &[PointId],
    part: Partitioner,
    params: RnnParams,
    quota: usize,
) -> (Vec<(PointId, Vec<Edge>)>, RnnStats) {
    let mut stats = RnnStats::default();
    comm.trace_begin("rnn_seed");
    stats
        .reverse_added
        .push(reverse_round(comm, st, owned, part, params, quota));
    comm.trace_end("rnn_seed");
    for outer in 0..params.t1 {
        for inner in 0..params.t2 {
            comm.trace_begin_arg("rnn_round", (outer * params.t2 + inner) as u64);
            let round = inner_round(
                comm,
                st,
                owned,
                part,
                params,
                quota,
                outer as u64,
                inner as u64,
            );
            comm.trace_end("rnn_round");
            stats.dist_evals += round.pairs;
            stats.rounds.push(round);
            if comm.rank() == 0 {
                comm.gauge("rnn_pairs", round.pairs as f64);
                comm.gauge("rnn_pruned", round.pruned as f64);
                comm.gauge("rnn_added", round.added as f64);
            }
            if round.pairs == 0 {
                break;
            }
        }
        if outer + 1 < params.t1 {
            stats
                .reverse_added
                .push(reverse_round(comm, st, owned, part, params, quota));
        }
    }
    let s = st.borrow();
    let rows = owned
        .iter()
        .map(|&v| {
            let edges = s.rows[&v]
                .iter()
                .take(params.k0)
                .map(|e| (e.id, e.dist))
                .collect();
            (v, edges)
        })
        .collect();
    (rows, stats)
}

/// Everything the standalone distributed RNN pass reports.
#[derive(Debug, Clone)]
pub struct RnnDistReport {
    /// Ranks the world simulated.
    pub n_ranks: usize,
    /// Global per-round counters (bit-identical across rank counts).
    pub stats: RnnStats,
    /// Virtual (simulated cluster) time, seconds.
    pub sim_secs: f64,
    /// Virtual time in exact nanoseconds.
    pub sim_ns: u64,
    /// Compute / communication / barrier decomposition.
    pub breakdown: ClockBreakdown,
    /// Per-phase virtual-time records.
    pub phases: Vec<PhaseRecord>,
    /// Real wall-clock seconds.
    pub wall_secs: f64,
    /// Per-tag message statistics.
    pub tags: Vec<(u16, String, TagStats)>,
    /// Totals over all tags.
    pub total: TagStats,
    /// Rank×rank×tag traffic matrix.
    pub matrix: TrafficMatrix,
    /// Fault counters when run under a fault plan.
    pub faults: Option<ygm::FaultReport>,
}

/// Run the distributed RNN-Descent optimization standalone over an
/// already-built graph (the `dnnd-optimize --opt-mode rnn` path): the
/// graph is partitioned onto `world.n_ranks()` ranks, optimized, and
/// reassembled.
pub fn rnn_optimize_distributed<P, M>(
    world: &World,
    base: &Arc<PointSet<P>>,
    metric: &M,
    graph: &KnnGraph,
    params: RnnParams,
) -> (KnnGraph, RnnDistReport)
where
    P: Point,
    M: BatchMetric<P>,
{
    assert_eq!(graph.len(), base.len(), "graph and base set disagree on N");
    let graph = Arc::new(graph.clone());
    let n = graph.len();
    let report = world.run(|comm| {
        let part = Partitioner::new(comm.n_ranks());
        let owned = part.owned_ids(n, comm.rank());
        let dim = base.dim().max(1);
        let st = Rc::new(RefCell::new(RnnDistState::new()));
        st.borrow_mut().seed(
            owned.iter().map(|&v| (v, graph.neighbors(v).to_vec())),
            params.r,
        );
        let cache = Arc::new(metric.preprocess(base));
        charge_batch(comm, dim, owned.len());
        name_tags(comm);
        register_rnn_handlers(comm, &st, base, metric, &cache, part, dim);
        let quota = ((1u64 << 16) / comm.n_ranks() as u64).max(1) as usize;
        comm.trace_begin("rnn_optimize");
        let (rows, stats) = run_rnn_rounds(comm, &st, &owned, part, params, quota);
        comm.trace_end("rnn_optimize");
        (rows, stats)
    });
    let mut rows: Vec<Vec<Edge>> = vec![Vec::new(); n];
    let mut stats = RnnStats::default();
    for (rank_rows, rank_stats) in &report.results {
        for (v, edges) in rank_rows {
            rows[*v as usize] = edges.clone();
        }
        stats = rank_stats.clone();
    }
    // Connectivity repair runs on the assembled rows — a pure function of
    // the capped graph, identical to the shared-memory finish.
    stats.repaired = nnd::rnn::repair_connectivity(&mut rows, params.k0);
    (
        KnnGraph::from_rows(rows),
        RnnDistReport {
            n_ranks: world.n_ranks(),
            stats,
            sim_secs: report.sim_secs,
            sim_ns: report.sim_ns,
            breakdown: report.breakdown,
            phases: report.phases,
            wall_secs: report.wall_secs,
            tags: report.tags,
            total: report.total,
            matrix: report.matrix,
            faults: report.faults,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::metric::L2;
    use dataset::synth::{gaussian_mixture, MixtureParams};
    use nnd::nndescent::{build as sm_build, NnDescentParams};
    use nnd::rnn::rnn_optimize;

    #[test]
    fn distributed_matches_shared_memory_exactly() {
        let base = Arc::new(gaussian_mixture(MixtureParams::embedding_like(350, 8), 13));
        let (g, _) = sm_build(&base, &L2, NnDescentParams::new(8).seed(4));
        let params = RnnParams::new(10).t1(2).t2(5);
        let (expect, sm_stats) = rnn_optimize(&g, &base, &L2, params);
        for ranks in [1, 2, 4] {
            let (got, rep) = rnn_optimize_distributed(&World::new(ranks), &base, &L2, &g, params);
            assert_eq!(got, expect, "graph diverged at {ranks} ranks");
            assert_eq!(rep.stats, sm_stats, "stats diverged at {ranks} ranks");
        }
    }

    #[test]
    fn distributed_rerun_bit_identical_and_caps_degree() {
        let base = Arc::new(gaussian_mixture(MixtureParams::embedding_like(200, 6), 21));
        let (g, _) = sm_build(&base, &L2, NnDescentParams::new(6).seed(5));
        let params = RnnParams::new(8);
        let world = World::new(3);
        let (a, ra) = rnn_optimize_distributed(&world, &base, &L2, &g, params);
        let (b, rb) = rnn_optimize_distributed(&world, &base, &L2, &g, params);
        assert_eq!(a, b);
        assert_eq!(ra.stats, rb.stats);
        assert!(a.max_degree() <= 8);
        assert!(ra.stats.dist_evals > 0);
        // The three-hop chain actually ran.
        assert!(ra
            .tags
            .iter()
            .any(|(t, _, s)| *t == TAG_RNN_VEC && s.count > 0));
    }
}
