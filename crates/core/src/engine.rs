//! The distributed NN-Descent engine.
//!
//! One SPMD `rank_main` runs per simulated rank inside a [`ygm::World`].
//! Phases, mirroring Section 4:
//!
//! 1. **Initialization** — every rank seeds its owned vertices' heaps with
//!    `K` random candidates; distances to remote candidates are computed by
//!    shipping the vector to the candidate's owner and receiving the
//!    distance back (the Section 4.1 example RPC chain).
//! 2. **Descent iterations** — local old/new sampling, the reverse-neighbor
//!    exchange with shuffled destinations (4.2), then the neighbor checks
//!    under either the unoptimized (Figure 1a) or optimized (Figure 1b:
//!    Type 1 / Type 2+ / Type 3) protocol (4.3), issued in globally
//!    coordinated batches separated by barriers (4.4). Termination when the
//!    all-reduced update count drops below `delta * K * N`.
//!
//! Since the batched distance-kernel rework, checks travel as **join rows**
//! — `(head, [partners...])` — instead of single pairs: each rank groups a
//! head's partners by destination rank, ships the head's vector once per
//! destination, and the receiver evaluates the whole row with one batched
//! [`BatchMetric::distance_one_to_many`] call against its cached norms.
//! Because the batched kernels are bit-identical to the scalar reference
//! per element, the delivered pair multiset (and therefore the final graph
//! under the unoptimized protocol) is unchanged by the batching.
//! 3. **Graph optimization** (optional, 4.5) — reverse edges are shipped to
//!    their endpoint's owner, merged, deduplicated, and pruned to
//!    `ceil(K * m)` neighbors.

use crate::config::DnndConfig;
use crate::msgs::*;
use crate::partition::Partitioner;
use crate::rnn_dist::{register_rnn_handlers, run_rnn_rounds, RnnDistState};
use dataset::batch::{BatchMetric, NormCache};
use dataset::point::Point;
use dataset::set::{PointId, PointSet};
use nnd::graph::{Edge, KnnGraph};
use nnd::heap::NeighborHeap;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;
use ygm::{ClockBreakdown, Comm, PhaseRecord, TagStats, TrafficMatrix, World};

/// Everything `build` reports besides the graph itself.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// Ranks the world simulated.
    pub n_ranks: usize,
    /// Descent iterations executed.
    pub iterations: usize,
    /// Global update count (`c`) per iteration: the number of neighbor-heap
    /// members added during the iteration that survived to its end. Counting
    /// survivors (end-of-iteration set difference) instead of transient
    /// insert successes makes the value — and therefore the `delta * K * N`
    /// termination decision — independent of message-arrival order, so runs
    /// under the unoptimized protocol replay bit-identically.
    pub updates_per_iter: Vec<u64>,
    /// Total distance evaluations across all ranks.
    pub distance_evals: u64,
    /// Virtual (simulated cluster) construction time, seconds.
    pub sim_secs: f64,
    /// Virtual construction time in exact nanoseconds (final clock reading);
    /// the critical-path analyzer attributes collective time from this.
    pub sim_ns: u64,
    /// Compute / communication / barrier decomposition of `sim_secs` — the
    /// profiling view the paper's Section 7 asks for.
    pub breakdown: ClockBreakdown,
    /// Per-phase (barrier-to-barrier) virtual-time records.
    pub phases: Vec<PhaseRecord>,
    /// Real wall-clock time of the whole simulated run, seconds.
    pub wall_secs: f64,
    /// Per-tag message statistics (Figure 4's raw data).
    pub tags: Vec<(u16, String, TagStats)>,
    /// Totals over all tags.
    pub total: TagStats,
    /// Rank×rank×tag traffic matrix (diagonal = rank-local sends).
    pub matrix: TrafficMatrix,
    /// Injected-fault / reliable-delivery counters when the world ran under
    /// a [`ygm::FaultPlan`]; `None` on fault-free runs.
    pub faults: Option<ygm::FaultReport>,
    /// Per-round RNN-Descent counters when the build ran with
    /// [`crate::config::DnndConfig::rnn_opt`]; global (all-reduced) values,
    /// bit-identical across rank counts.
    pub rnn: Option<nnd::rnn::RnnStats>,
}

impl BuildReport {
    /// Stats for one tag (zero if unused).
    pub fn tag(&self, tag: u16) -> TagStats {
        self.tags
            .iter()
            .find(|(t, _, _)| *t == tag)
            .map(|(_, _, s)| *s)
            .unwrap_or_default()
    }

    /// Combined count/bytes of the neighbor-check messages only (Type 1, 2,
    /// 2+, 3) — the paper's Figure 4 scope.
    pub fn check_traffic(&self) -> TagStats {
        let mut out = TagStats::default();
        for t in [TAG_TYPE1, TAG_TYPE2, TAG_TYPE2_PLUS, TAG_TYPE3] {
            let s = self.tag(t);
            out.count += s.count;
            out.bytes += s.bytes;
            out.remote_count += s.remote_count;
            out.remote_bytes += s.remote_bytes;
        }
        out
    }
}

/// The result of a distributed construction.
#[derive(Debug, Clone)]
pub struct DnndOutput {
    /// The assembled k-NNG (optimized if `graph_opt_m` was set).
    pub graph: KnnGraph,
    /// Run metrics.
    pub report: BuildReport,
}

/// Per-rank mutable state shared between the SPMD main loop and the
/// message handlers (single-threaded within a rank, hence `Rc<RefCell>`).
struct State {
    heaps: HashMap<PointId, NeighborHeap>,
    rev_new: HashMap<PointId, Vec<PointId>>,
    rev_old: HashMap<PointId, Vec<PointId>>,
    /// Reverse edges received during the graph-optimization phase.
    opt_extra: HashMap<PointId, Vec<Edge>>,
    /// Heap-insert attempts this iteration (denominator of the accept
    /// rate histogram).
    attempts: u64,
    /// Distance evaluations performed on this rank.
    dist_evals: u64,
    /// Batched kernel invocations on this rank (each covering one or more
    /// distance evaluations); `dist_evals / kernel_batches` is the mean
    /// batch width the telemetry gauge reports.
    kernel_batches: u64,
    /// Distance evaluations attributed per owned vertex; populated only
    /// when the world has a tracer attached.
    dist_by_vertex: HashMap<PointId, u64>,
}

impl State {
    fn new(owned: &[PointId], k: usize) -> Self {
        State {
            heaps: owned.iter().map(|&v| (v, NeighborHeap::new(k))).collect(),
            rev_new: HashMap::new(),
            rev_old: HashMap::new(),
            opt_extra: HashMap::new(),
            attempts: 0,
            dist_evals: 0,
            kernel_batches: 0,
            dist_by_vertex: HashMap::new(),
        }
    }

    /// Count one distance evaluation for `v`'s benefit (tracing only).
    fn trace_dist(&mut self, traced: bool, v: PointId) {
        if traced {
            *self.dist_by_vertex.entry(v).or_default() += 1;
        }
    }

    /// Account one batched kernel call covering `n` evaluations.
    fn record_batch(&mut self, n: usize) {
        self.dist_evals += n as u64;
        self.kernel_batches += 1;
    }
}

/// Charge the virtual compute cost of `n` distance evaluations at once.
pub(crate) fn charge_batch(comm: &Comm, dim: usize, n: usize) {
    comm.charge_compute(comm.cost().distance_cost_ns(dim) * n as u64);
}

/// Split candidate ids into (locally owned, per-remote-rank groups in
/// first-seen destination order) — one message per remote group.
pub(crate) fn group_by_owner(
    part: Partitioner,
    my_rank: usize,
    ids: &[PointId],
) -> (Vec<PointId>, Vec<(usize, Vec<PointId>)>) {
    let mut local = Vec::new();
    let mut remote: Vec<(usize, Vec<PointId>)> = Vec::new();
    for &u in ids {
        let dest = part.owner(u);
        if dest == my_rank {
            local.push(u);
        } else {
            match remote.iter_mut().find(|(r, _)| *r == dest) {
                Some((_, g)) => g.push(u),
                None => remote.push((dest, vec![u])),
            }
        }
    }
    (local, remote)
}

/// Build a k-NNG over `set` using `world.n_ranks()` simulated ranks.
///
/// `set` is shared read-only with every rank (in a real deployment each
/// rank holds only its partition; handlers here only ever read vectors the
/// owning rank would hold or that arrived inside a message).
pub fn build<P, M>(world: &World, set: &Arc<PointSet<P>>, metric: &M, cfg: DnndConfig) -> DnndOutput
where
    P: Point,
    M: BatchMetric<P>,
{
    assert!(set.len() >= 2, "need at least two points");
    assert!(cfg.k >= 1 && cfg.k < set.len(), "require 1 <= k < N");
    let report = world.run(|comm| rank_main(comm, Arc::clone(set), metric.clone(), cfg));

    // Assemble the distributed rows into one graph (driver-side; the paper
    // would instead leave the graph partitioned in Metall).
    let mut rows: Vec<Vec<Edge>> = vec![Vec::new(); set.len()];
    let mut iterations = 0;
    let mut updates_per_iter = Vec::new();
    let mut distance_evals = 0;
    let mut rnn = None;
    for (rank_rows, metrics) in &report.results {
        for (v, edges) in rank_rows {
            rows[*v as usize] = edges.clone();
        }
        iterations = metrics.iterations;
        updates_per_iter.clone_from(&metrics.updates_per_iter);
        distance_evals += metrics.dist_evals;
        // Global stats are identical on every rank; any copy will do.
        rnn = metrics.rnn.clone().or(rnn);
    }
    // RNN mode: connectivity repair on the assembled rows (pure function
    // of the capped graph — same step the standalone passes run).
    if let (Some(rp), Some(stats)) = (cfg.rnn_opt, rnn.as_mut()) {
        stats.repaired = nnd::rnn::repair_connectivity(&mut rows, rp.k0);
    }
    DnndOutput {
        graph: KnnGraph::from_rows(rows),
        report: BuildReport {
            n_ranks: world.n_ranks(),
            iterations,
            updates_per_iter,
            distance_evals,
            sim_secs: report.sim_secs,
            sim_ns: report.sim_ns,
            breakdown: report.breakdown,
            phases: report.phases,
            wall_secs: report.wall_secs,
            tags: report.tags,
            total: report.total,
            matrix: report.matrix,
            faults: report.faults,
            rnn,
        },
    }
}

/// Per-rank return payload.
#[derive(Debug, Clone)]
struct RankMetrics {
    iterations: usize,
    updates_per_iter: Vec<u64>,
    dist_evals: u64,
    rnn: Option<nnd::rnn::RnnStats>,
}

type RankRows = Vec<(PointId, Vec<Edge>)>;

fn rank_main<P, M>(
    comm: &Comm,
    set: Arc<PointSet<P>>,
    metric: M,
    cfg: DnndConfig,
) -> (RankRows, RankMetrics)
where
    P: Point,
    M: BatchMetric<P>,
{
    let part = Partitioner::new(comm.n_ranks());
    let n = set.len();
    let dim = set.dim().max(1);
    let owned = part.owned_ids(n, comm.rank());
    let st = Rc::new(RefCell::new(State::new(&owned, cfg.k)));
    // Per-set norm cache (Section "cached-norm preprocessing"): each rank
    // computes the squared norms once up front so every dot-form distance
    // afterwards skips both norm recomputations. A real deployment would
    // compute only its partition; the virtual clock charges accordingly.
    let cache = Arc::new(metric.preprocess(&set));
    charge_batch(comm, dim, owned.len());
    register_handlers(comm, &st, &set, &metric, &cache, part, cfg, dim);
    // RNN-Descent optimization state (phase 3); handlers share the world
    // with the descent's (tags 19-23 vs 10-18).
    let rnn_st = Rc::new(RefCell::new(RnnDistState::new()));
    if cfg.rnn_opt.is_some() {
        register_rnn_handlers(comm, &rnn_st, &set, &metric, &cache, part, dim);
    }
    let traced = comm.tracer().is_some();

    // ---- Phase 1: random initialization ------------------------------------
    comm.trace_begin("init");
    let quota = (cfg.batch_size / comm.n_ranks() as u64).max(1) as usize;
    batched(comm, owned.len(), quota.max(1), |i| {
        let v = owned[i];
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ (u64::from(v) << 20));
        let mut chosen: Vec<PointId> = Vec::with_capacity(cfg.k);
        let mut guard = 0;
        while chosen.len() < cfg.k && guard < 100 * cfg.k {
            let u: PointId = rng.gen_range(0..n as PointId);
            if u != v && !chosen.contains(&u) {
                chosen.push(u);
            }
            guard += 1;
        }
        let (local, remote) = group_by_owner(part, comm.rank(), &chosen);
        if !local.is_empty() {
            // Local candidates: one batched 1xN evaluation.
            let mut dbuf = Vec::with_capacity(local.len());
            metric.distance_one_to_many(set.point(v), &set, &cache, &local, &mut dbuf);
            charge_batch(comm, dim, local.len());
            comm.trace_hist("kernel_batch_len", local.len() as u64);
            let mut s = st.borrow_mut();
            s.record_batch(local.len());
            for (&u, &d) in local.iter().zip(&dbuf) {
                s.trace_dist(traced, v);
                s.attempts += 1;
                if let Some(h) = s.heaps.get_mut(&v) {
                    h.checked_insert(u, d, true);
                }
            }
        }
        for (dest, us) in remote {
            comm.async_send(
                dest,
                TAG_INIT_REQ,
                &InitReq {
                    v,
                    us,
                    vec: set.point(v).clone(),
                },
            );
        }
    });
    comm.trace_end("init");

    // ---- Phase 2: descent iterations ----------------------------------------
    let max_sample = ((cfg.rho * cfg.k as f64).round() as usize).max(1);
    let threshold = ((cfg.delta * cfg.k as f64 * n as f64) as u64).max(1);
    let mut iterations = 0;
    let mut updates_per_iter = Vec::new();

    for iter in 0..cfg.max_iters {
        comm.trace_begin_arg("iteration", iter as u64);
        // Snapshot each owned heap's membership: the iteration's update
        // count `c` is the number of ids present at iteration end but not
        // here. Unlike counting `checked_insert` successes (which tallies
        // transient entrants that a later, closer candidate evicts), the
        // set difference is a pure function of the delivered message
        // multiset — message-arrival order cannot flip the termination
        // decision.
        let start_ids: HashMap<PointId, Vec<PointId>> = {
            let mut s = st.borrow_mut();
            s.attempts = 0;
            s.rev_new.clear();
            s.rev_old.clear();
            owned
                .iter()
                .map(|&v| {
                    let mut ids: Vec<PointId> = s.heaps[&v].iter().map(|n| n.id).collect();
                    ids.sort_unstable();
                    (v, ids)
                })
                .collect()
        };

        // 2a. Local sampling: split each owned vertex's heap into old ids
        // and a rho*K sample of new ids (flipped to old).
        comm.trace_begin("sample");
        let mut fwd_old: HashMap<PointId, Vec<PointId>> = HashMap::with_capacity(owned.len());
        let mut fwd_new: HashMap<PointId, Vec<PointId>> = HashMap::with_capacity(owned.len());
        {
            let mut s = st.borrow_mut();
            for &v in &owned {
                let mut rng = ChaCha8Rng::seed_from_u64(
                    cfg.seed ^ 0xA11CE ^ (u64::from(v) << 18) ^ (iter as u64),
                );
                let heap = s.heaps.get_mut(&v).expect("owned vertex heap");
                // The heap's array layout depends on the order updates
                // arrived, which is scheduling-dependent; sort both id
                // lists so the sample below is deterministic in seed.
                let mut old = heap.flagged_ids(false);
                old.sort_unstable();
                let mut candidates = heap.flagged_ids(true);
                candidates.sort_unstable();
                candidates.shuffle(&mut rng);
                candidates.truncate(max_sample);
                for &u in &candidates {
                    heap.mark_old(u);
                }
                fwd_old.insert(v, old);
                fwd_new.insert(v, candidates);
            }
        }

        comm.trace_end("sample");

        // 2b. Reverse-neighbor exchange (Section 4.2): ship (u, v) to
        // owner(u). Destination order is shuffled to spread load.
        comm.trace_begin("reverse_exchange");
        let mut order = owned.clone();
        if cfg.shuffle_reverse {
            let mut rng = ChaCha8Rng::seed_from_u64(
                cfg.seed ^ 0x5F0F ^ (iter as u64) ^ ((comm.rank() as u64) << 32),
            );
            order.shuffle(&mut rng);
        }
        batched(comm, order.len(), quota, |i| {
            let v = order[i];
            for &u in &fwd_new[&v] {
                comm.async_send(part.owner(u), TAG_REV_NEW, &(u, v));
            }
            for &u in &fwd_old[&v] {
                comm.async_send(part.owner(u), TAG_REV_OLD, &(u, v));
            }
        });

        comm.trace_end("reverse_exchange");

        // 2c. Sample rho*K of each received reverse list and union into the
        // forward lists (Algorithm 1 lines 15-16).
        comm.trace_begin("union_sample");
        {
            let mut s = st.borrow_mut();
            for &v in &owned {
                let mut rng = ChaCha8Rng::seed_from_u64(
                    cfg.seed ^ 0xBEE ^ (u64::from(v) << 18) ^ (iter as u64),
                );
                let mut union_sample = |fwd: &mut Vec<PointId>, mut rev: Vec<PointId>| {
                    // The reverse lists arrive in scheduling-dependent order;
                    // canonicalize so the sample is deterministic in seed.
                    rev.sort_unstable();
                    rev.shuffle(&mut rng);
                    rev.truncate(max_sample);
                    for u in rev {
                        if u != v && !fwd.contains(&u) {
                            fwd.push(u);
                        }
                    }
                };
                union_sample(
                    fwd_new.get_mut(&v).unwrap(),
                    s.rev_new.remove(&v).unwrap_or_default(),
                );
                union_sample(
                    fwd_old.get_mut(&v).unwrap(),
                    s.rev_old.remove(&v).unwrap_or_default(),
                );
            }
        }

        comm.trace_end("union_sample");

        // 2d. Generate the neighbor-check join rows for this rank's
        // vertices: one forward row `(u1, [u2...])` per sampled-new head,
        // plus (two-sided protocol only) the mirror rows `(u2, [u1...])`
        // grouped per mirror head in first-seen order. A row is the unit
        // of batched evaluation at the receiver.
        comm.trace_begin("gen_pairs");
        let mut joins: Vec<Type1> = Vec::new();
        let mut n_pairs: u64 = 0;
        for &v in &owned {
            let news = &fwd_new[&v];
            let olds = &fwd_old[&v];
            let fwd_start = joins.len();
            for (i, &u1) in news.iter().enumerate() {
                let tails: Vec<PointId> = news[i + 1..]
                    .iter()
                    .chain(olds.iter())
                    .copied()
                    .filter(|&u2| u2 != u1)
                    .collect();
                if !tails.is_empty() {
                    n_pairs += tails.len() as u64;
                    joins.push((u1, tails));
                }
            }
            if !cfg.opts.one_sided {
                let mut mirrors: Vec<Type1> = Vec::new();
                for (u1, tails) in &joins[fwd_start..] {
                    for &u2 in tails {
                        match mirrors.iter_mut().find(|(h, _)| *h == u2) {
                            Some((_, g)) => g.push(*u1),
                            None => mirrors.push((u2, vec![*u1])),
                        }
                    }
                }
                joins.extend(mirrors);
            }
        }

        comm.trace_end("gen_pairs");
        comm.trace_hist("check_pairs_per_iter", n_pairs);

        // 2e. Issue checks in globally coordinated batches (Section 4.4).
        // Batching is weighted by row width so every rank advances through
        // roughly `quota` *pairs* (not rows) per barrier window, matching
        // the per-pair batching the protocol used before rows existed.
        comm.trace_begin("neighbor_check");
        let weights: Vec<usize> = joins.iter().map(|(_, tails)| tails.len()).collect();
        batched_weighted(comm, &weights, quota, |i| {
            comm.async_send(part.owner(joins[i].0), TAG_TYPE1, &joins[i]);
        });

        comm.trace_end("neighbor_check");

        // 2f. Convergence test on the all-reduced update count.
        let (c_local, attempts) = {
            let s = st.borrow();
            let c: u64 = owned
                .iter()
                .map(|&v| {
                    let start = &start_ids[&v];
                    s.heaps[&v]
                        .iter()
                        .filter(|n| start.binary_search(&n.id).is_err())
                        .count() as u64
                })
                .sum();
            (c, s.attempts)
        };
        if let Some(pct) = (c_local * 100).checked_div(attempts) {
            comm.trace_hist("heap_accept_pct", pct);
        }
        let c_global = comm.all_reduce_sum_u64(c_local);
        iterations = iter + 1;
        updates_per_iter.push(c_global);
        comm.trace_instant("iter_updates", c_global);
        // Per-iteration telemetry gauges: the surviving-update rate and the
        // cumulative distance-eval count per rank, plus the global
        // termination counter on rank 0 (it is identical on every rank, so
        // one track suffices).
        comm.gauge("heap_updates", c_local as f64);
        {
            let s = st.borrow();
            comm.gauge("dist_evals", s.dist_evals as f64);
            comm.gauge(
                "dist_evals_per_batch",
                s.dist_evals as f64 / s.kernel_batches.max(1) as f64,
            );
        }
        if comm.rank() == 0 {
            comm.gauge("termination_c", c_global as f64);
        }
        comm.trace_end("iteration");
        if c_global < threshold {
            break;
        }
    }

    // ---- Phase 3: optional distributed graph optimization -------------------
    let mut rnn_stats = None;
    let rows: RankRows = if let Some(rp) = cfg.rnn_opt {
        comm.trace_begin("rnn_optimize");
        {
            let s = st.borrow();
            rnn_st.borrow_mut().seed(
                owned.iter().map(|&v| {
                    let edges: Vec<Edge> = s.heaps[&v]
                        .sorted()
                        .iter()
                        .map(|nb| (nb.id, nb.dist))
                        .collect();
                    (v, edges)
                }),
                rp.r,
            );
        }
        let (rows, stats) = run_rnn_rounds(comm, &rnn_st, &owned, part, rp, quota);
        comm.trace_end("rnn_optimize");
        rnn_stats = Some(stats);
        rows
    } else if let Some(m) = cfg.graph_opt_m {
        comm.trace_begin("graph_optimize");
        let rows = optimize_distributed(comm, &st, &owned, part, cfg, m, quota);
        comm.trace_end("graph_optimize");
        rows
    } else {
        let s = st.borrow();
        owned
            .iter()
            .map(|&v| {
                let edges = s.heaps[&v]
                    .sorted()
                    .iter()
                    .map(|nb| (nb.id, nb.dist))
                    .collect();
                (v, edges)
            })
            .collect()
    };

    let s = st.borrow();
    if traced {
        for &v in &owned {
            comm.trace_hist(
                "dist_evals_per_item",
                s.dist_by_vertex.get(&v).copied().unwrap_or(0),
            );
        }
    }
    let dist_evals = s.dist_evals + rnn_st.borrow().dist_evals;
    (
        rows,
        RankMetrics {
            iterations,
            updates_per_iter,
            dist_evals,
            rnn: rnn_stats,
        },
    )
}

/// Section 4.5 as a distributed pass: ship every edge `v -> u` to
/// `owner(u)` as a reverse edge, merge + dedup + prune to `ceil(k * m)`.
fn optimize_distributed(
    comm: &Comm,
    st: &Rc<RefCell<State>>,
    owned: &[PointId],
    part: Partitioner,
    cfg: DnndConfig,
    m: f64,
    quota: usize,
) -> RankRows {
    assert!(m >= 1.0, "paper requires m >= 1");
    batched(comm, owned.len(), quota, |i| {
        let v = owned[i];
        let edges: Vec<Edge> = st.borrow().heaps[&v]
            .sorted()
            .iter()
            .map(|nb| (nb.id, nb.dist))
            .collect();
        for (u, d) in edges {
            comm.async_send(part.owner(u), TAG_OPT_EDGE, &(u, v, d));
        }
    });
    let limit = ((cfg.k as f64) * m).ceil() as usize;
    let mut s = st.borrow_mut();
    owned
        .iter()
        .map(|&v| {
            let mut edges: Vec<Edge> = s.heaps[&v]
                .sorted()
                .iter()
                .map(|nb| (nb.id, nb.dist))
                .collect();
            if let Some(extra) = s.opt_extra.remove(&v) {
                edges.extend(extra);
            }
            edges.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
            edges.dedup_by_key(|e| e.0);
            edges.truncate(limit);
            (v, edges)
        })
        .collect()
}

/// Process local work items `0..total` in chunks of `quota`, with a global
/// barrier after each chunk, looping until *every* rank is out of work —
/// the Section 4.4 batched-communication pattern.
pub(crate) fn batched<F: FnMut(usize)>(comm: &Comm, total: usize, quota: usize, mut f: F) {
    let mut idx = 0;
    loop {
        let end = (idx + quota).min(total);
        if end > idx {
            comm.trace_hist("batch_size", (end - idx) as u64);
        }
        for i in idx..end {
            f(i);
        }
        idx = end;
        comm.barrier();
        let remaining = comm.all_reduce_sum_u64((total - idx) as u64);
        if remaining == 0 {
            return;
        }
    }
}

/// Like [`batched`], but each item `i` costs `weights[i]` units against the
/// per-window quota (a window always admits at least one item). Used for
/// join rows, whose cost is their pair count.
pub(crate) fn batched_weighted<F: FnMut(usize)>(
    comm: &Comm,
    weights: &[usize],
    quota: usize,
    mut f: F,
) {
    let mut idx = 0;
    loop {
        let mut used = 0usize;
        while idx < weights.len() && (used == 0 || used + weights[idx] <= quota) {
            used += weights[idx];
            f(idx);
            idx += 1;
        }
        if used > 0 {
            comm.trace_hist("batch_size", used as u64);
        }
        comm.barrier();
        let left: u64 = weights[idx..].iter().map(|&w| w as u64).sum();
        if comm.all_reduce_sum_u64(left) == 0 {
            return;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn register_handlers<P, M>(
    comm: &Comm,
    st: &Rc<RefCell<State>>,
    set: &Arc<PointSet<P>>,
    metric: &M,
    cache: &Arc<NormCache>,
    part: Partitioner,
    cfg: DnndConfig,
    dim: usize,
) where
    P: Point,
    M: BatchMetric<P>,
{
    let traced = comm.tracer().is_some();

    // Init: compute theta(v, u) for every u we own (one batched call),
    // reply once to owner(v).
    {
        let st = Rc::clone(st);
        let set = Arc::clone(set);
        let metric = metric.clone();
        let cache = Arc::clone(cache);
        comm.register_named::<InitReq<P>, _>(
            TAG_INIT_REQ,
            tag_display(TAG_INIT_REQ),
            move |c, msg| {
                let mut dbuf = Vec::with_capacity(msg.us.len());
                metric.distance_one_to_many(&msg.vec, &set, &cache, &msg.us, &mut dbuf);
                charge_batch(c, dim, msg.us.len());
                c.trace_hist("kernel_batch_len", msg.us.len() as u64);
                let mut s = st.borrow_mut();
                s.record_batch(msg.us.len());
                for &u in &msg.us {
                    s.trace_dist(traced, u);
                }
                drop(s);
                let reply: Vec<(PointId, f32)> =
                    msg.us.iter().copied().zip(dbuf.iter().copied()).collect();
                c.async_send(part.owner(msg.v), TAG_INIT_RESP, &(msg.v, reply));
            },
        );
    }
    {
        let st = Rc::clone(st);
        comm.register_named::<InitResp, _>(
            TAG_INIT_RESP,
            tag_display(TAG_INIT_RESP),
            move |_, (v, pairs)| {
                let mut s = st.borrow_mut();
                for (u, d) in pairs {
                    s.attempts += 1;
                    if let Some(h) = s.heaps.get_mut(&v) {
                        h.checked_insert(u, d, true);
                    }
                }
            },
        );
    }

    // Reverse-neighbor exchange accumulators.
    {
        let st = Rc::clone(st);
        comm.register_named::<RevEntry, _>(
            TAG_REV_NEW,
            tag_display(TAG_REV_NEW),
            move |_, (u, v)| {
                st.borrow_mut().rev_new.entry(u).or_default().push(v);
            },
        );
    }
    {
        let st = Rc::clone(st);
        comm.register_named::<RevEntry, _>(
            TAG_REV_OLD,
            tag_display(TAG_REV_OLD),
            move |_, (u, v)| {
                st.borrow_mut().rev_old.entry(u).or_default().push(v);
            },
        );
    }

    // Type 1: this rank owns u1. Filter the row against u1's current heap,
    // read the pruning bound once, then forward one Type 2 / Type 2+ per
    // destination rank — shipping u1's vector once per destination instead
    // of once per pair.
    {
        let st = Rc::clone(st);
        let set = Arc::clone(set);
        comm.register_named::<Type1, _>(TAG_TYPE1, tag_display(TAG_TYPE1), move |c, (u1, u2s)| {
            let (tails, bound) = {
                let s = st.borrow();
                let heap = &s.heaps[&u1];
                let tails: Vec<PointId> = if cfg.opts.skip_redundant {
                    // Redundant-check reduction (4.3.2) on the forward path.
                    u2s.into_iter().filter(|&u2| !heap.contains(u2)).collect()
                } else {
                    u2s
                };
                let bound = if cfg.opts.prune_distance {
                    heap.max_dist()
                } else {
                    f32::INFINITY
                };
                (tails, bound)
            };
            if tails.is_empty() {
                return;
            }
            // Group by destination (usize::MAX: nothing matches "local", so
            // rank-local endpoints still travel as ordinary self-sends and
            // keep showing up on the traffic matrix diagonal, as before).
            let (_, groups) = group_by_owner(part, usize::MAX, &tails);
            for (dest, u2s) in groups {
                if cfg.opts.one_sided {
                    c.async_send(
                        dest,
                        TAG_TYPE2_PLUS,
                        &Type2Plus {
                            u1,
                            u2s,
                            bound,
                            vec: set.point(u1).clone(),
                        },
                    );
                } else {
                    c.async_send(
                        dest,
                        TAG_TYPE2,
                        &Type2 {
                            u1,
                            u2s,
                            vec: set.point(u1).clone(),
                        },
                    );
                }
            }
        });
    }

    // Type 2 (unoptimized): one batched evaluation, update only our side.
    {
        let st = Rc::clone(st);
        let set = Arc::clone(set);
        let metric = metric.clone();
        let cache = Arc::clone(cache);
        comm.register_named::<Type2<P>, _>(TAG_TYPE2, tag_display(TAG_TYPE2), move |c, msg| {
            let mut dbuf = Vec::with_capacity(msg.u2s.len());
            metric.distance_one_to_many(&msg.vec, &set, &cache, &msg.u2s, &mut dbuf);
            charge_batch(c, dim, msg.u2s.len());
            c.trace_hist("kernel_batch_len", msg.u2s.len() as u64);
            let mut s = st.borrow_mut();
            s.record_batch(msg.u2s.len());
            for (&u2, &d) in msg.u2s.iter().zip(&dbuf) {
                s.trace_dist(traced, u2);
                s.attempts += 1;
                if let Some(h) = s.heaps.get_mut(&u2) {
                    h.checked_insert(msg.u1, d, true);
                }
            }
        });
    }

    // Type 2+ (optimized): update our side, Type 3 back unless pruned.
    {
        let st = Rc::clone(st);
        let set = Arc::clone(set);
        let metric = metric.clone();
        let cache = Arc::clone(cache);
        comm.register_named::<Type2Plus<P>, _>(
            TAG_TYPE2_PLUS,
            tag_display(TAG_TYPE2_PLUS),
            move |c, msg| {
                // Redundant-check reduction on the return path (4.3.2): if
                // u1 is already a neighbor of u2 this pair was checked
                // before — drop it from the row before evaluating.
                let u2s: Vec<PointId> = if cfg.opts.skip_redundant {
                    let s = st.borrow();
                    msg.u2s
                        .iter()
                        .copied()
                        .filter(|&u2| !s.heaps[&u2].contains(msg.u1))
                        .collect()
                } else {
                    msg.u2s.clone()
                };
                if u2s.is_empty() {
                    return;
                }
                let mut dbuf = Vec::with_capacity(u2s.len());
                metric.distance_one_to_many(&msg.vec, &set, &cache, &u2s, &mut dbuf);
                charge_batch(c, dim, u2s.len());
                c.trace_hist("kernel_batch_len", u2s.len() as u64);
                let mut replies: Vec<(PointId, f32)> = Vec::new();
                {
                    let mut s = st.borrow_mut();
                    s.record_batch(u2s.len());
                    for (&u2, &d) in u2s.iter().zip(&dbuf) {
                        s.trace_dist(traced, u2);
                        s.attempts += 1;
                        if let Some(h) = s.heaps.get_mut(&u2) {
                            h.checked_insert(msg.u1, d, true);
                        }
                        // Long-distance pruning (4.3.3): only answer if the
                        // distance can possibly improve u1's heap.
                        if d < msg.bound {
                            replies.push((u2, d));
                        }
                    }
                }
                if !replies.is_empty() {
                    c.async_send(part.owner(msg.u1), TAG_TYPE3, &(msg.u1, replies));
                }
            },
        );
    }

    // Type 3: the returned distances update u1's heap.
    {
        let st = Rc::clone(st);
        comm.register_named::<Type3, _>(
            TAG_TYPE3,
            tag_display(TAG_TYPE3),
            move |_, (u1, pairs)| {
                let mut s = st.borrow_mut();
                for (u2, d) in pairs {
                    s.attempts += 1;
                    if let Some(h) = s.heaps.get_mut(&u1) {
                        h.checked_insert(u2, d, true);
                    }
                }
            },
        );
    }

    // Graph-optimization reverse edges.
    {
        let st = Rc::clone(st);
        comm.register_named::<OptEdge, _>(
            TAG_OPT_EDGE,
            tag_display(TAG_OPT_EDGE),
            move |_, (u, v, d)| {
                st.borrow_mut().opt_extra.entry(u).or_default().push((v, d));
            },
        );
    }
}
