//! Shared test-only helpers. This crate is a dev-dependency of every
//! suite that touches the filesystem, so the RAII temp-directory guard
//! lives in exactly one place instead of being copy-pasted per test
//! binary.

use std::path::{Path, PathBuf};

/// RAII temp directory: created unique per test, removed on drop — also
/// when the test panics, so failed runs don't leak shard directories into
/// the system temp dir.
pub struct TmpDir {
    path: PathBuf,
}

impl TmpDir {
    /// Create a fresh directory namespaced by `tag`, process, and thread.
    pub fn new(tag: &str) -> TmpDir {
        let path = std::env::temp_dir().join(format!(
            "dnnd-it-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TmpDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Path of `name` inside the directory.
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl AsRef<Path> for TmpDir {
    fn as_ref(&self) -> &Path {
        &self.path
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_fresh_and_removes_on_drop() {
        let kept;
        {
            let d = TmpDir::new("testutil-self");
            kept = d.path().to_path_buf();
            assert!(kept.is_dir());
            std::fs::write(d.join("x"), b"y").unwrap();
        }
        assert!(!kept.exists(), "drop must remove the directory");
    }
}
