//! Property tests of the RNN-Descent optimization invariants: degree
//! bounds after every individual round, row hygiene (no self loops or
//! duplicates), the `(dist, id)` tie order of the occlusion rule, and the
//! reachability guarantee of the post-cap connectivity repair.

use dataset::batch::BatchMetric;
use dataset::metric::L2;
use dataset::set::PointId;
use dataset::synth::{gaussian_mixture, MixtureParams};
use nnd::nndescent::{build, NnDescentParams};
use nnd::rnn::{canonical, rnn_optimize, scan_row, RnnEdge, RnnParams, RnnState};
use proptest::prelude::*;

/// A small real optimization instance: dataset seed, size, and knobs.
fn instance() -> impl Strategy<Value = (u64, usize, usize, usize)> {
    (0u64..50, 60usize..160, 4usize..8, 5usize..12)
}

/// Row hygiene: canonical `(dist, id)` order, no self loop, no duplicate
/// target, length within `cap`.
fn assert_row_ok(row: &[RnnEdge], owner: PointId, cap: usize) -> Result<(), String> {
    prop_assert!(row.len() <= cap, "row {owner} over cap: {}", row.len());
    for w in row.windows(2) {
        prop_assert!(
            canonical(&w[0], &w[1]) != std::cmp::Ordering::Greater,
            "row {owner} out of canonical order"
        );
    }
    let mut ids: Vec<PointId> = row.iter().map(|e| e.id).collect();
    prop_assert!(!ids.contains(&owner), "self loop at {owner}");
    ids.sort_unstable();
    ids.dedup();
    prop_assert_eq!(ids.len(), row.len(), "duplicate edge at {}", owner);
    Ok(())
}

/// A synthetic row for pure `scan_row` checks: distinct ids with random
/// distances and flags, in canonical order (owner is vertex 0).
fn row_strategy() -> impl Strategy<Value = Vec<RnnEdge>> {
    prop::collection::vec((0.5f32..20.0, any::<bool>()), 1..12).prop_map(|edges| {
        let mut row: Vec<RnnEdge> = edges
            .iter()
            .enumerate()
            .map(|(i, &(dist, new))| RnnEdge {
                id: i as PointId + 1,
                dist,
                new,
            })
            .collect();
        row.sort_unstable_by(canonical);
        row
    })
}

/// Deterministic synthetic pair distance, symmetric in the ids.
fn pair_d(a: PointId, b: PointId) -> f32 {
    let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
    ((lo * 31 + hi * 17) % 97) as f32 / 7.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After every inner round and reverse exchange the working rows obey
    /// the capacity `r`; after `finish` every row obeys `k0`, and every
    /// vertex keeps at least one in-edge (connectivity repair).
    #[test]
    fn degree_bounds_hold_after_every_round(inst in instance()) {
        let (seed, n, k, k0) = inst;
        let base = gaussian_mixture(MixtureParams::embedding_like(n, 6), seed);
        let (g, _) = build(&base, &L2, NnDescentParams::new(k).seed(seed));
        let params = RnnParams::new(k0).t1(2).t2(3);
        let cache = L2.preprocess(&base);
        let mut st = RnnState::from_graph(&g, params);
        st.add_reverse_edges();
        for (v, row) in st.rows().iter().enumerate() {
            assert_row_ok(row, v as PointId, params.r)?;
        }
        for outer in 0..params.t1 {
            for inner in 0..params.t2 {
                let round = st.inner_round(&base, &L2, &cache, outer as u64, inner as u64);
                for (v, row) in st.rows().iter().enumerate() {
                    assert_row_ok(row, v as PointId, params.r)?;
                }
                if round.pairs == 0 {
                    break;
                }
            }
            if outer + 1 < params.t1 {
                st.add_reverse_edges();
                for (v, row) in st.rows().iter().enumerate() {
                    assert_row_ok(row, v as PointId, params.r)?;
                }
            }
        }
        let (opt, stats) = st.finish();
        prop_assert!(opt.max_degree() <= k0, "k0 cap violated");
        let mut indeg = vec![0u32; opt.len()];
        for v in 0..opt.len() as PointId {
            let ids: Vec<PointId> = opt.neighbors(v).iter().map(|&(id, _)| id).collect();
            prop_assert!(!ids.contains(&v), "self loop in final graph");
            for &(u, _) in opt.neighbors(v) {
                indeg[u as usize] += 1;
            }
        }
        prop_assert!(indeg.iter().all(|&d| d > 0), "orphan vertex after repair");
        prop_assert_eq!(
            stats.rounds.iter().map(|r| r.pairs).sum::<u64>(),
            stats.dist_evals
        );
    }

    /// `scan_row` keeps a subset in ascending index order, never invents
    /// edges, and its keep/prune verdicts follow the `(dist, id)` rule
    /// exactly: an edge is pruned iff some kept, flagged-relevant,
    /// strictly-smaller `(theta, id)` neighbor precedes it.
    #[test]
    fn occlusion_respects_canonical_tie_order(row in row_strategy()) {
        let out = scan_row(&row, |i, j| pair_d(row[i].id, row[j].id));
        prop_assert!(out.kept.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(out.kept.len() + out.inserts.len(), row.len());
        // Re-derive every verdict independently.
        for (j, w) in row.iter().enumerate() {
            let occluder = out
                .kept
                .iter()
                .take_while(|&&i| i < j)
                .find(|&&i| {
                    let u = &row[i];
                    (u.new || w.new)
                        && (pair_d(u.id, w.id), u.id) < (w.dist, w.id)
                })
                .copied();
            match occluder {
                None => prop_assert!(out.kept.contains(&j), "edge {j} wrongly pruned"),
                Some(i) => prop_assert!(
                    out.inserts.contains(&(row[i].id, w.id, pair_d(row[i].id, w.id))),
                    "edge {j} should redirect into {i}'s row"
                ),
            }
        }
    }

    /// The whole optimization is a pure function of its inputs: two runs
    /// agree bit-for-bit on the graph and on every counter.
    #[test]
    fn optimize_is_deterministic(inst in instance()) {
        let (seed, n, k, k0) = inst;
        let base = gaussian_mixture(MixtureParams::embedding_like(n, 5), seed);
        let (g, _) = build(&base, &L2, NnDescentParams::new(k).seed(seed ^ 1));
        let params = RnnParams::new(k0).t1(2).t2(4);
        let (a, sa) = rnn_optimize(&g, &base, &L2, params);
        let (b, sb) = rnn_optimize(&g, &base, &L2, params);
        prop_assert_eq!(a, b);
        prop_assert_eq!(sa, sb);
    }
}
