//! Property tests of the k-NNG operations the paper's Section 4.5
//! optimization step composes: reversal, reverse-merge, pruning.

use nnd::graph::KnnGraph;
use proptest::prelude::*;

/// A random small directed graph as adjacency rows of (target, dist), with
/// no self loops or duplicate targets per row.
fn graph_strategy(max_n: usize) -> impl Strategy<Value = KnnGraph> {
    (2..max_n).prop_flat_map(move |n| {
        prop::collection::vec(prop::collection::vec((0..n as u32, 0.0f32..100.0), 0..6), n)
            .prop_map(move |mut rows| {
                for (v, row) in rows.iter_mut().enumerate() {
                    row.retain(|&(u, _)| u as usize != v);
                    row.sort_by_key(|&(u, _)| u);
                    row.dedup_by_key(|&mut (u, _)| u);
                }
                KnnGraph::from_rows(rows)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn double_reverse_is_identity(g in graph_strategy(24)) {
        // Reversal is an involution on edge sets: every edge v->u at d
        // appears as u->v in the reverse and back again.
        let rr = g.reversed().reversed();
        prop_assert_eq!(rr.edge_count(), g.edge_count());
        for v in 0..g.len() as u32 {
            let mut a = g.neighbors(v).to_vec();
            let mut b = rr.neighbors(v).to_vec();
            a.sort_by_key(|x| x.0);
            b.sort_by_key(|x| x.0);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn reverse_preserves_edge_count(g in graph_strategy(24)) {
        prop_assert_eq!(g.reversed().edge_count(), g.edge_count());
    }

    #[test]
    fn merge_reverse_superset_and_symmetric(g in graph_strategy(20)) {
        let m = g.merge_reverse();
        // Every original edge survives the merge.
        for v in 0..g.len() as u32 {
            for &(u, _) in g.neighbors(v) {
                prop_assert!(
                    m.neighbors(v).iter().any(|&(x, _)| x == u),
                    "edge {v}->{u} lost in merge"
                );
            }
        }
        // The merged graph is symmetric as an unweighted graph.
        for v in 0..m.len() as u32 {
            for &(u, _) in m.neighbors(v) {
                prop_assert!(
                    m.neighbors(u).iter().any(|&(x, _)| x == v),
                    "merge not symmetric at {v}<->{u}"
                );
            }
        }
        // No duplicates per row.
        for v in 0..m.len() as u32 {
            let ids: Vec<u32> = m.neighbors(v).iter().map(|&(u, _)| u).collect();
            let mut d = ids.clone();
            d.sort_unstable();
            d.dedup();
            prop_assert_eq!(d.len(), ids.len());
        }
    }

    #[test]
    fn prune_keeps_the_closest_prefix(g in graph_strategy(20), limit in 1usize..8) {
        let p = g.prune(limit);
        for v in 0..g.len() as u32 {
            let orig = g.neighbors(v);
            let kept = p.neighbors(v);
            prop_assert!(kept.len() <= limit);
            prop_assert_eq!(kept, &orig[..kept.len().min(orig.len())]);
        }
    }

    #[test]
    fn optimize_bounds_max_degree(g in graph_strategy(20), k in 1usize..6) {
        let opt = g.optimize(k, 1.5);
        let limit = ((k as f64) * 1.5).ceil() as usize;
        prop_assert!(opt.max_degree() <= limit, "degree {} > {}", opt.max_degree(), limit);
    }

    #[test]
    fn rows_always_sorted_by_distance(g in graph_strategy(24)) {
        for graph in [g.reversed(), g.merge_reverse(), g.optimize(3, 1.5)] {
            for v in 0..graph.len() as u32 {
                let row = graph.neighbors(v);
                prop_assert!(row.windows(2).all(|w| w[0].1 <= w[1].1));
            }
        }
    }

    #[test]
    fn save_load_round_trips(g in graph_strategy(16), case in any::<u64>()) {
        let dir = testutil::TmpDir::new(&format!("nnd-graph-prop-{case}"));
        let mut store = metall::Store::create(dir.path()).unwrap();
        g.save(&mut store, "g").unwrap();
        let back = KnnGraph::load(&store, "g").unwrap();
        prop_assert_eq!(back, g);
    }
}
