//! Property tests for `nnd::heap::NeighborHeap` invariants: bounded size,
//! max-heap ordering, and new-flag semantics under arbitrary interleavings
//! of `checked_insert` (push, possibly evicting the farthest entry — the
//! heap's "pop") and `mark_old`.
//!
//! The final property — insertion-order independence for distinct ids and
//! distances — is the foundation the distributed engine's determinism
//! rests on: message-arrival order varies with thread scheduling, so the
//! per-vertex heap must converge to the same set regardless.

use nnd::heap::NeighborHeap;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// `checked_insert(id, dist, true)`.
    Insert(u32, u32),
    /// `mark_old(id)` — flips the entry's flag if present, else a no-op.
    MarkOld(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..30, 0u32..100).prop_map(|(id, d)| Op::Insert(id, d)),
        (0u32..30, 0u32..100).prop_map(|(id, d)| Op::Insert(id, d)),
        (0u32..30, 0u32..100).prop_map(|(id, d)| Op::Insert(id, d)),
        (0u32..30).prop_map(Op::MarkOld),
    ]
}

/// Check the structural invariants that must hold after every operation.
fn assert_invariants(h: &NeighborHeap) {
    assert!(h.len() <= h.cap(), "size bound violated");
    let items: Vec<_> = h.iter().copied().collect();
    // No duplicate ids.
    let mut ids: Vec<u32> = items.iter().map(|n| n.id).collect();
    ids.sort_unstable();
    let distinct = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), distinct, "duplicate id stored");
    // Max-heap ordering: every parent's distance >= both children's.
    for (i, n) in items.iter().enumerate() {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < items.len() {
                assert!(
                    items[child].dist <= n.dist,
                    "heap order violated at index {i}"
                );
            }
        }
    }
    // max_dist is the true maximum when full, infinity otherwise.
    if h.is_full() {
        let true_max = items.iter().map(|n| n.dist).fold(f32::MIN, f32::max);
        assert_eq!(h.max_dist(), true_max);
    } else {
        assert_eq!(h.max_dist(), f32::INFINITY);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Structural invariants hold after every step of an arbitrary
    /// insert/mark interleaving, and the flag partition stays exact:
    /// every stored id is flagged either new or old, never both.
    #[test]
    fn invariants_hold_under_arbitrary_interleavings(
        cap in 1usize..12,
        ops in prop::collection::vec(op_strategy(), 0..120),
    ) {
        let mut h = NeighborHeap::new(cap);
        for op in &ops {
            match *op {
                Op::Insert(id, d) => {
                    let present = h.contains(id);
                    let changed = h.checked_insert(id, d as f32, true);
                    prop_assert!(!(present && changed), "duplicate insert reported success");
                    if changed {
                        prop_assert!(h.flagged_ids(true).contains(&id),
                            "fresh insert not flagged new");
                    }
                }
                Op::MarkOld(id) => {
                    h.mark_old(id);
                    if h.contains(id) {
                        prop_assert!(h.flagged_ids(false).contains(&id),
                            "mark_old left entry flagged new");
                        prop_assert!(!h.flagged_ids(true).contains(&id));
                    }
                }
            }
            assert_invariants(&h);
            let mut all = h.flagged_ids(true);
            all.extend(h.flagged_ids(false));
            prop_assert_eq!(all.len(), h.len(), "flag partition not exhaustive/disjoint");
        }
    }

    /// A rejected duplicate insert never resurrects the `new` flag: once
    /// sampled (marked old), an entry stays old until it is genuinely
    /// replaced — NN-Descent relies on this to not re-check old pairs.
    #[test]
    fn rejected_duplicates_preserve_old_flag(
        id in 0u32..10,
        d1 in 0u32..50,
        d2 in 0u32..50,
        filler in prop::collection::vec((10u32..30, 0u32..50), 0..8),
    ) {
        let mut h = NeighborHeap::new(12);
        prop_assert!(h.checked_insert(id, d1 as f32, true));
        for &(fid, fd) in &filler {
            h.checked_insert(fid, fd as f32, true);
        }
        h.mark_old(id);
        // Same id again (any distance): rejected, flag untouched.
        prop_assert!(!h.checked_insert(id, d2 as f32, true));
        prop_assert!(h.flagged_ids(false).contains(&id));
        prop_assert!(!h.flagged_ids(true).contains(&id));
    }

    /// With distinct ids and distinct distances (no tie ambiguity), the
    /// surviving set is exactly the k nearest of everything offered, in
    /// *any* insertion order — the order-independence the distributed
    /// engine's schedule-invariant replay depends on.
    #[test]
    fn converges_to_top_k_in_any_insertion_order(
        cap in 1usize..10,
        seed_dists in prop::collection::vec(0u32..10_000, 1..40),
    ) {
        // Deduplicate distances and assign distinct ids.
        let mut dists = seed_dists.clone();
        dists.sort_unstable();
        dists.dedup();
        let offers: Vec<(u32, f32)> = dists
            .iter()
            .enumerate()
            .map(|(i, &d)| (i as u32, d as f32))
            .collect();

        let run = |order: &[(u32, f32)]| {
            let mut h = NeighborHeap::new(cap);
            for &(id, d) in order {
                h.checked_insert(id, d, true);
            }
            h.sorted()
                .iter()
                .map(|n| (n.id, n.dist.to_bits(), n.new))
                .collect::<Vec<_>>()
        };

        let forward = run(&offers);
        let mut reversed = offers.clone();
        reversed.reverse();
        // A third order: odd-indexed offers first, then even-indexed.
        let mut interleaved: Vec<(u32, f32)> =
            offers.iter().skip(1).step_by(2).copied().collect();
        interleaved.extend(offers.iter().step_by(2).copied());

        prop_assert_eq!(&run(&reversed), &forward, "reversed order diverged");
        prop_assert_eq!(&run(&interleaved), &forward, "interleaved order diverged");

        // And the survivors really are the k nearest offered.
        let expect: Vec<u32> = offers
            .iter()
            .take(cap)
            .map(|&(id, _)| id)
            .collect();
        let got: Vec<u32> = forward.iter().map(|&(id, _, _)| id).collect();
        prop_assert_eq!(got, expect);
    }
}
