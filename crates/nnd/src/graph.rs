//! The k-nearest-neighbor graph `G` — NN-Descent's output — plus the two
//! PyNNDescent graph optimizations the paper implements (Section 4.5):
//! reverse-edge merging and neighborhood-size pruning.

use crate::heap::NeighborHeap;
use dataset::set::PointId;
use metall::{Result as StoreResult, Store, StoreError};

/// One directed neighbor edge `(target id, distance)`.
pub type Edge = (PointId, f32);

/// An adjacency-list k-NN graph. Row `v` holds `v`'s approximate nearest
/// neighbors sorted ascending by `(distance, id)`. After construction every
/// row has exactly `k` entries; after [`KnnGraph::merge_reverse`] rows may
/// be longer (bounded again by [`KnnGraph::prune`]).
#[derive(Debug, Clone, PartialEq)]
pub struct KnnGraph {
    rows: Vec<Vec<Edge>>,
}

impl KnnGraph {
    /// Build from raw adjacency rows; each row is sorted by `(dist, id)`.
    pub fn from_rows(mut rows: Vec<Vec<Edge>>) -> Self {
        for row in &mut rows {
            row.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        }
        KnnGraph { rows }
    }

    /// Build from per-vertex neighbor heaps.
    pub fn from_heaps(heaps: &[NeighborHeap]) -> Self {
        KnnGraph {
            rows: heaps
                .iter()
                .map(|h| h.sorted().iter().map(|n| (n.id, n.dist)).collect())
                .collect(),
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Neighbor row of vertex `v` (ascending by distance).
    pub fn neighbors(&self, v: PointId) -> &[Edge] {
        &self.rows[v as usize]
    }

    /// Neighbor ids only, per row, for recall scoring.
    pub fn neighbor_ids(&self) -> Vec<Vec<PointId>> {
        self.rows
            .iter()
            .map(|r| r.iter().map(|&(id, _)| id).collect())
            .collect()
    }

    /// Total directed edges.
    pub fn edge_count(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        self.rows.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Memory the id+distance payload occupies (the paper's `k x N x T`
    /// accounting uses ids only; distances double it in this layout).
    pub fn storage_bytes(&self) -> usize {
        self.edge_count() * (4 + 4)
    }

    /// The transposed adjacency: for every edge `v -> u`, an edge `u -> v`.
    pub fn reversed(&self) -> KnnGraph {
        let mut rows: Vec<Vec<Edge>> = vec![Vec::new(); self.len()];
        for (v, edges) in self.rows.iter().enumerate() {
            for &(u, d) in edges {
                rows[u as usize].push((v as PointId, d));
            }
        }
        KnnGraph::from_rows(rows)
    }

    /// Graph optimization 1 (Section 4.5): merge the transposed graph into
    /// this one and deduplicate, producing a more densely connected graph
    /// for ANN search. Under a symmetric metric forward and reverse copies
    /// of an edge carry equal distances; if they ever differ (asymmetric
    /// similarity functions are legal in NN-Descent) the smaller distance
    /// is kept.
    pub fn merge_reverse(&self) -> KnnGraph {
        let mut rows: Vec<Vec<Edge>> = self.rows.clone();
        for (v, edges) in self.rows.iter().enumerate() {
            for &(u, d) in edges {
                rows[u as usize].push((v as PointId, d));
            }
        }
        for row in &mut rows {
            // Group same-id duplicates, keep the closest copy.
            row.sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.total_cmp(&b.1)));
            row.dedup_by_key(|&mut (id, _)| id);
        }
        KnnGraph::from_rows(rows)
    }

    /// Graph optimization 2 (Section 4.5): clamp every neighborhood to the
    /// `limit` closest entries (the paper uses `limit = k * m`, `m = 1.5`).
    pub fn prune(&self, limit: usize) -> KnnGraph {
        assert!(limit >= 1);
        KnnGraph {
            rows: self
                .rows
                .iter()
                .map(|r| r.iter().copied().take(limit).collect())
                .collect(),
        }
    }

    /// Convenience: both optimizations as the paper's optimization
    /// executable applies them — reverse merge, then prune to `k * m`.
    pub fn optimize(&self, k: usize, m: f64) -> KnnGraph {
        assert!(m >= 1.0, "paper requires m >= 1");
        self.merge_reverse().prune((k as f64 * m).ceil() as usize)
    }

    /// Persist into `store` under `prefix` (CSR-style: offsets, ids, dists).
    pub fn save(&self, store: &mut Store, prefix: &str) -> StoreResult<()> {
        let mut offsets: Vec<u64> = Vec::with_capacity(self.len() + 1);
        let mut ids: Vec<u32> = Vec::with_capacity(self.edge_count());
        let mut dists: Vec<f32> = Vec::with_capacity(self.edge_count());
        offsets.push(0);
        for row in &self.rows {
            for &(id, d) in row {
                ids.push(id);
                dists.push(d);
            }
            offsets.push(ids.len() as u64);
        }
        store.put(&format!("{prefix}/offsets"), &offsets)?;
        store.put(&format!("{prefix}/ids"), &ids)?;
        store.put(&format!("{prefix}/dists"), &dists)
    }

    /// Load a graph persisted by [`KnnGraph::save`].
    pub fn load(store: &Store, prefix: &str) -> StoreResult<Self> {
        let offsets: Vec<u64> = store.get(&format!("{prefix}/offsets"))?;
        let ids: Vec<u32> = store.get(&format!("{prefix}/ids"))?;
        let dists: Vec<f32> = store.get(&format!("{prefix}/dists"))?;
        if ids.len() != dists.len()
            || offsets.first() != Some(&0)
            || offsets.last().copied() != Some(ids.len() as u64)
        {
            return Err(StoreError::Decode("inconsistent knng arrays".into()));
        }
        let rows = offsets
            .windows(2)
            .map(|w| {
                if w[0] > w[1] {
                    return Err(StoreError::Decode("non-monotone knng offsets".into()));
                }
                let (a, b) = (w[0] as usize, w[1] as usize);
                Ok(ids[a..b]
                    .iter()
                    .copied()
                    .zip(dists[a..b].iter().copied())
                    .collect())
            })
            .collect::<StoreResult<Vec<Vec<Edge>>>>()?;
        Ok(KnnGraph { rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> KnnGraph {
        // 0 -> {1, 2}, 1 -> {0}, 2 -> {3}, 3 -> {}
        KnnGraph::from_rows(vec![
            vec![(1, 1.0), (2, 2.0)],
            vec![(0, 1.0)],
            vec![(3, 0.5)],
            vec![],
        ])
    }

    #[test]
    fn rows_sorted_on_construction() {
        let g = KnnGraph::from_rows(vec![vec![(2, 3.0), (1, 1.0), (9, 1.0)]]);
        assert_eq!(g.neighbors(0), &[(1, 1.0), (9, 1.0), (2, 3.0)]);
    }

    #[test]
    fn counts_and_degrees() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.storage_bytes(), 4 * 8);
    }

    #[test]
    fn reversed_transposes() {
        let g = diamond().reversed();
        assert_eq!(g.neighbors(0), &[(1, 1.0)]);
        assert_eq!(g.neighbors(1), &[(0, 1.0)]);
        assert_eq!(g.neighbors(2), &[(0, 2.0)]);
        assert_eq!(g.neighbors(3), &[(2, 0.5)]);
    }

    #[test]
    fn merge_reverse_adds_missing_back_edges_and_dedups() {
        let g = diamond().merge_reverse();
        // 0 <-> 1 existed both ways: stays single after dedup.
        assert_eq!(g.neighbors(0), &[(1, 1.0), (2, 2.0)]);
        assert_eq!(g.neighbors(1), &[(0, 1.0)]);
        // 3 gains the reverse edge to 2.
        assert_eq!(g.neighbors(3), &[(2, 0.5)]);
        // 2 keeps 3 and gains 0.
        assert_eq!(g.neighbors(2), &[(3, 0.5), (0, 2.0)]);
    }

    #[test]
    fn prune_keeps_closest() {
        let g = KnnGraph::from_rows(vec![vec![(1, 1.0), (2, 2.0), (3, 3.0)]]);
        let p = g.prune(2);
        assert_eq!(p.neighbors(0), &[(1, 1.0), (2, 2.0)]);
    }

    #[test]
    fn optimize_bounds_degree_by_k_m() {
        // Star: many vertices point at 0, so 0's merged degree explodes and
        // must be pruned back to ceil(k * m).
        let n = 20;
        let mut rows = vec![vec![(0u32, 1.0f32)]; n];
        rows[0] = vec![(1, 1.0)];
        let g = KnnGraph::from_rows(rows);
        let k = 2;
        let opt = g.optimize(k, 1.5);
        assert!(opt.max_degree() <= 3);
        // And every vertex keeps at least its original edge.
        for v in 1..n as u32 {
            assert!(!opt.neighbors(v).is_empty());
        }
    }

    #[test]
    fn neighbor_ids_strips_distances() {
        let ids = diamond().neighbor_ids();
        assert_eq!(ids[0], vec![1, 2]);
        assert!(ids[3].is_empty());
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "nnd-graph-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = Store::create(&dir).unwrap();
        let g = diamond();
        g.save(&mut store, "knng").unwrap();
        let back = KnnGraph::load(&store, "knng").unwrap();
        assert_eq!(back, g);
        Store::destroy(&dir).unwrap();
    }

    #[test]
    fn from_heaps_sorts_rows() {
        let mut h = NeighborHeap::new(3);
        h.checked_insert(5, 2.0, true);
        h.checked_insert(1, 1.0, true);
        let g = KnnGraph::from_heaps(&[h]);
        assert_eq!(g.neighbors(0), &[(1, 1.0), (5, 2.0)]);
    }

    #[test]
    fn double_reverse_is_identity_for_symmetric_graphs() {
        let g = KnnGraph::from_rows(vec![vec![(1, 1.0)], vec![(0, 1.0)]]);
        assert_eq!(g.reversed().reversed(), g);
    }
}
