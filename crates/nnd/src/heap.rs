//! Bounded neighbor heap — the per-vertex data structure behind `G[v]` in
//! Algorithm 1.
//!
//! A max-heap over `(distance, id)` with fixed capacity `k`: the farthest
//! current neighbor is at the top so the `Update(H, (v, d, f))` step of
//! NN-Descent (pop farthest, push closer candidate) is O(log k). The id
//! tie-break makes the kept set the canonical bottom-k of everything ever
//! inserted — independent of insertion order, which the distributed
//! engine's bit-identity guarantee requires (message-arrival order is
//! scheduling-dependent). Entries carry the *new/old* flag the algorithm
//! uses to avoid re-checking pairs: freshly inserted neighbors are
//! `new = true`, and the sampling step flips sampled entries to `old`.
//!
//! Duplicate ids are rejected by a linear scan — `k` is small (10–100 in the
//! paper) so a scan beats a side table in both time and memory.

use dataset::set::PointId;

/// One neighbor entry: `(id, distance, new-flag)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Neighbor point id.
    pub id: PointId,
    /// Distance from the owning vertex.
    pub dist: f32,
    /// NN-Descent incremental-search flag: `true` until sampled as a check
    /// candidate ("new"), then `false` ("old").
    pub new: bool,
}

/// Fixed-capacity max-heap of neighbors ordered by distance.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborHeap {
    cap: usize,
    items: Vec<Neighbor>,
}

impl NeighborHeap {
    /// An empty heap that will hold at most `cap` neighbors.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "neighbor heap capacity must be positive");
        NeighborHeap {
            cap,
            items: Vec::with_capacity(cap),
        }
    }

    /// Capacity `k`.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Current number of neighbors.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the heap holds no neighbors.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the heap holds `cap` neighbors.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.cap
    }

    /// Distance of the farthest stored neighbor, or `f32::INFINITY` while
    /// the heap is not yet full (any candidate is accepted then). This is
    /// the bound `theta(u1, G[u1][k])` attached to Type 2+ messages.
    #[inline]
    pub fn max_dist(&self) -> f32 {
        if self.is_full() {
            self.items[0].dist
        } else {
            f32::INFINITY
        }
    }

    /// Whether `id` is currently a neighbor (linear scan).
    #[inline]
    pub fn contains(&self, id: PointId) -> bool {
        self.items.iter().any(|n| n.id == id)
    }

    /// The `Update` function of Algorithm 1: insert `(id, dist, new)` if the
    /// id is absent and either the heap has room or `(dist, id)` beats the
    /// current farthest neighbor under the lexicographic order (which is
    /// then evicted). Returns `true` iff the heap changed — the convergence
    /// counter `c` sums these.
    ///
    /// Ordering by `(dist, id)` rather than distance alone makes the stored
    /// set a pure function of the inserted multiset: distinct ids never tie
    /// under the total order, so message-arrival order — which varies from
    /// run to run in the distributed engine — cannot change which of two
    /// equally-distant candidates survives. The bit-identity oracle in
    /// `tests/pipeline.rs` depends on this.
    pub fn checked_insert(&mut self, id: PointId, dist: f32, new: bool) -> bool {
        if self.contains(id) {
            return false;
        }
        if self.items.len() < self.cap {
            self.items.push(Neighbor { id, dist, new });
            self.sift_up(self.items.len() - 1);
            true
        } else if (dist, id) < (self.items[0].dist, self.items[0].id) {
            self.items[0] = Neighbor { id, dist, new };
            self.sift_down(0);
            true
        } else {
            false
        }
    }

    /// Max-heap ordering key: lexicographic `(dist, id)`. Distances are
    /// never NaN (every metric returns finite or +inf), so the partial
    /// tuple order is total here.
    #[inline]
    fn key(n: &Neighbor) -> (f32, PointId) {
        (n.dist, n.id)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::key(&self.items[i]) > Self::key(&self.items[parent]) {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < self.items.len() && Self::key(&self.items[l]) > Self::key(&self.items[largest]) {
                largest = l;
            }
            if r < self.items.len() && Self::key(&self.items[r]) > Self::key(&self.items[largest]) {
                largest = r;
            }
            if largest == i {
                return;
            }
            self.items.swap(i, largest);
            i = largest;
        }
    }

    /// All entries in unspecified (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = &Neighbor> {
        self.items.iter()
    }

    /// Entries sorted ascending by `(distance, id)` — the final neighbor
    /// list order used when extracting the k-NNG.
    pub fn sorted(&self) -> Vec<Neighbor> {
        let mut v = self.items.clone();
        v.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist).then_with(|| a.id.cmp(&b.id)));
        v
    }

    /// Ids of entries flagged `new` / `old`.
    pub fn flagged_ids(&self, new: bool) -> Vec<PointId> {
        self.items
            .iter()
            .filter(|n| n.new == new)
            .map(|n| n.id)
            .collect()
    }

    /// Set the flag of the entry with `id` (if present) to `new = false`.
    pub fn mark_old(&mut self, id: PointId) {
        if let Some(n) = self.items.iter_mut().find(|n| n.id == id) {
            n.new = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fills_then_evicts_farthest() {
        let mut h = NeighborHeap::new(3);
        assert!(h.checked_insert(1, 5.0, true));
        assert!(h.checked_insert(2, 1.0, true));
        assert!(h.checked_insert(3, 3.0, true));
        assert!(h.is_full());
        assert_eq!(h.max_dist(), 5.0);
        // Farther than max: rejected.
        assert!(!h.checked_insert(4, 6.0, true));
        // Closer: evicts id 1 (dist 5).
        assert!(h.checked_insert(5, 2.0, true));
        assert_eq!(h.max_dist(), 3.0);
        assert!(!h.contains(1));
        assert!(h.contains(5));
    }

    #[test]
    fn duplicates_rejected_even_with_better_distance() {
        let mut h = NeighborHeap::new(2);
        assert!(h.checked_insert(7, 4.0, true));
        assert!(!h.checked_insert(7, 1.0, true));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn max_dist_is_infinite_until_full() {
        let mut h = NeighborHeap::new(2);
        assert_eq!(h.max_dist(), f32::INFINITY);
        h.checked_insert(1, 10.0, true);
        assert_eq!(h.max_dist(), f32::INFINITY);
        h.checked_insert(2, 20.0, true);
        assert_eq!(h.max_dist(), 20.0);
    }

    #[test]
    fn sorted_is_ascending_with_id_ties() {
        let mut h = NeighborHeap::new(4);
        h.checked_insert(9, 2.0, true);
        h.checked_insert(3, 1.0, true);
        h.checked_insert(5, 2.0, true);
        h.checked_insert(1, 0.5, true);
        let order: Vec<PointId> = h.sorted().iter().map(|n| n.id).collect();
        assert_eq!(order, vec![1, 3, 5, 9]);
    }

    #[test]
    fn flags_and_marking() {
        let mut h = NeighborHeap::new(3);
        h.checked_insert(1, 1.0, true);
        h.checked_insert(2, 2.0, false);
        h.checked_insert(3, 3.0, true);
        let mut news = h.flagged_ids(true);
        news.sort_unstable();
        assert_eq!(news, vec![1, 3]);
        h.mark_old(1);
        let mut news = h.flagged_ids(true);
        news.sort_unstable();
        assert_eq!(news, vec![3]);
        assert_eq!(h.flagged_ids(false).len(), 2);
    }

    #[test]
    fn capacity_one_tracks_single_best() {
        let mut h = NeighborHeap::new(1);
        assert!(h.checked_insert(1, 9.0, true));
        assert!(h.checked_insert(2, 4.0, true));
        assert!(!h.checked_insert(3, 5.0, true));
        assert_eq!(h.sorted()[0].id, 2);
    }

    proptest! {
        /// Heap invariants hold under arbitrary insert sequences:
        /// size bound, no duplicate ids, max_dist is the true max,
        /// and the kept set is the k best-seen under the `(dist, id)`
        /// total order.
        #[test]
        fn invariants_under_random_inserts(
            cap in 1usize..12,
            inserts in prop::collection::vec((0u32..40, 0.0f32..100.0), 0..200)
        ) {
            let mut h = NeighborHeap::new(cap);
            for &(id, dist) in &inserts {
                h.checked_insert(id, dist, true);
            }
            prop_assert!(h.len() <= cap);
            let ids: Vec<PointId> = h.iter().map(|n| n.id).collect();
            let mut dedup = ids.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), ids.len(), "duplicate ids in heap");
            if !h.is_empty() {
                let true_max = h.iter().map(|n| n.dist).fold(f32::MIN, f32::max);
                if h.is_full() {
                    prop_assert_eq!(h.max_dist(), true_max);
                }
                // Every distinct seen id below max_dist that is absent must
                // have arrived when the heap was already full of closer or
                // equal entries; at minimum, stored dists never exceed the
                // largest rejected candidate we can bound: just check heap
                // ordering property instead.
                for (i, n) in h.iter().enumerate() {
                    let l = 2 * i + 1;
                    let r = 2 * i + 2;
                    if l < h.len() {
                        prop_assert!(h.items[l].dist <= n.dist);
                    }
                    if r < h.len() {
                        prop_assert!(h.items[r].dist <= n.dist);
                    }
                }
            }
        }

        /// Tie ordering when distances arrive from a batch: feeding the
        /// heap a distance buffer in batch order must leave exactly the
        /// same state as the historical one-pair-at-a-time loop, and
        /// boundary ties resolve by id under the `(dist, id)` total
        /// order — never by arrival order.
        #[test]
        fn batch_order_ties_are_deterministic(
            base in prop::collection::vec((0u32..64, 0.0f32..4.0), 1..40),
            tie_ids in prop::collection::vec(100u32..164, 2..10)
        ) {
            // Quantize distances so exact f32 ties are common, then append
            // a run of distinct ids sharing one tied distance.
            let tie_d = 2.0f32;
            let mut stream: Vec<(u32, f32)> = base
                .iter()
                .map(|&(id, d)| (id, (d * 4.0).floor() / 4.0))
                .collect();
            for &id in &tie_ids {
                stream.push((id, tie_d));
            }

            // One-by-one insertion (the pre-batching code path).
            let mut one = NeighborHeap::new(4);
            for &(id, d) in &stream {
                one.checked_insert(id, d, true);
            }

            // Batched arrival: distances land in a buffer first, then the
            // heap replays them in batch order.
            let mut batched = NeighborHeap::new(4);
            let ids: Vec<u32> = stream.iter().map(|&(id, _)| id).collect();
            let dists: Vec<f32> = stream.iter().map(|&(_, d)| d).collect();
            for (&id, &d) in ids.iter().zip(&dists) {
                batched.checked_insert(id, d, true);
            }

            let a: Vec<_> = one.sorted().iter().map(|n| (n.id, n.dist.to_bits())).collect();
            let b: Vec<_> = batched.sorted().iter().map(|n| (n.id, n.dist.to_bits())).collect();
            prop_assert_eq!(a, b);

            // Boundary tie: with a full heap whose worst (dist, id) is
            // (tie_d, 2), a tying candidate with a higher id loses and one
            // with a lower id wins — arrival order is irrelevant.
            let mut h = NeighborHeap::new(2);
            h.checked_insert(1, 1.0, true);
            h.checked_insert(2, tie_d, true);
            prop_assert!(!h.checked_insert(3, tie_d, true), "higher id must not evict at a tie");
            prop_assert!(h.contains(2));
            prop_assert!(!h.contains(3));
            prop_assert!(h.checked_insert(0, tie_d, true), "lower id must evict at a tie");
            prop_assert!(h.contains(0));
            prop_assert!(!h.contains(2));
        }

        /// The stored set is a pure function of the inserted multiset:
        /// replaying the same inserts in reversed and rotated order leaves
        /// bit-identical heap contents. This is the property the engine's
        /// cross-rank bit-identity oracle relies on — message-arrival
        /// order varies between runs and rank counts. Distance is derived
        /// from the id, mirroring the engine (a pair's distance is a pure
        /// function of the pair, so a re-sent duplicate always ties its
        /// first arrival exactly) while making cross-id ties common.
        #[test]
        fn insertion_order_invariant(
            cap in 1usize..8,
            ids in prop::collection::vec(0u32..30, 1..80),
            rot in 0usize..80
        ) {
            let stream: Vec<(u32, f32)> = ids
                .iter()
                .map(|&id| (id, ((id * 7) % 5) as f32 * 0.5))
                .collect();
            let fill = |seq: &[(u32, f32)]| {
                let mut h = NeighborHeap::new(cap);
                for &(id, d) in seq {
                    h.checked_insert(id, d, true);
                }
                h.sorted()
                    .iter()
                    .map(|n| (n.id, n.dist.to_bits()))
                    .collect::<Vec<_>>()
            };
            let forward = fill(&stream);
            let mut reversed = stream.clone();
            reversed.reverse();
            let mut rotated = stream.clone();
            rotated.rotate_left(rot % stream.len());
            prop_assert_eq!(&forward, &fill(&reversed));
            prop_assert_eq!(&forward, &fill(&rotated));
        }

        /// checked_insert returns true exactly when the stored set changes.
        #[test]
        fn insert_return_matches_mutation(
            inserts in prop::collection::vec((0u32..20, 0.0f32..50.0), 1..100)
        ) {
            let mut h = NeighborHeap::new(5);
            for &(id, dist) in &inserts {
                let before = h.sorted();
                let changed = h.checked_insert(id, dist, true);
                let after = h.sorted();
                let ids_before: Vec<_> = before.iter().map(|n| (n.id, n.dist.to_bits())).collect();
                let ids_after: Vec<_> = after.iter().map(|n| (n.id, n.dist.to_bits())).collect();
                prop_assert_eq!(changed, ids_before != ids_after);
            }
        }
    }
}
