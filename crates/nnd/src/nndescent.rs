//! Shared-memory NN-Descent — Algorithm 1 of the paper, in the PyNNDescent
//! variant DNND follows.
//!
//! The loop structure matches the paper's pseudocode line for line:
//!
//! 1. initialize `G` with `K` random neighbors per vertex (or an RP-forest
//!    initialization, see [`crate::rptree`]);
//! 2. per vertex, split neighbors into *old* (flag false) and a sample of
//!    `rho * K` *new* ones (flag true), marking the sampled entries old;
//! 3. reverse both lists, sample `rho * K` of each reverse list, and union
//!    into the forward lists;
//! 4. neighbor-check all `new x new` (ordered) and `new x old` pairs,
//!    updating both endpoint heaps atomically and counting successful
//!    updates `c`;
//! 5. stop when `c < delta * K * N`.
//!
//! Parallelism is rayon over vertices with one lock per vertex heap — the
//! shared-memory analogue of the paper's "c and G are atomically updated".

use crate::graph::KnnGraph;
use crate::heap::NeighborHeap;
use dataset::batch::BatchMetric;
use dataset::point::Point;
use dataset::set::{PointId, PointSet};
use parking_lot::Mutex;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// NN-Descent hyper-parameters. Defaults are the paper's evaluation
/// configuration (Section 5.1.3): `rho = 0.8`, `delta = 0.001`.
#[derive(Debug, Clone, Copy)]
pub struct NnDescentParams {
    /// Neighbors per vertex in the output graph (`K`).
    pub k: usize,
    /// Sample rate `rho` for new-neighbor candidates.
    pub rho: f64,
    /// Early-termination threshold `delta`: stop when fewer than
    /// `delta * K * N` updates happen in an iteration.
    pub delta: f64,
    /// Hard iteration cap (safety net; the paper relies on `delta` alone).
    pub max_iters: usize,
    /// RNG seed: runs are deterministic in this seed (up to thread
    /// interleaving of equal-distance ties).
    pub seed: u64,
}

impl NnDescentParams {
    /// Paper defaults for a given `k`.
    pub fn new(k: usize) -> Self {
        NnDescentParams {
            k,
            rho: 0.8,
            delta: 0.001,
            max_iters: 60,
            seed: 0x5EED,
        }
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the sample rate `rho`.
    pub fn rho(mut self, rho: f64) -> Self {
        assert!(rho > 0.0 && rho <= 1.0);
        self.rho = rho;
        self
    }

    /// Set the termination threshold `delta`.
    pub fn delta(mut self, delta: f64) -> Self {
        assert!(delta >= 0.0);
        self.delta = delta;
        self
    }

    /// Set the iteration cap.
    pub fn max_iters(mut self, n: usize) -> Self {
        self.max_iters = n;
        self
    }
}

/// Counters describing one construction run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BuildStats {
    /// Iterations executed before `delta` termination (or the cap).
    pub iterations: usize,
    /// Total distance evaluations.
    pub distance_evals: u64,
    /// Successful heap updates (`c`) per iteration.
    pub updates_per_iter: Vec<u64>,
}

/// Build a `k`-NNG over `set` with random initialization.
pub fn build<P: Point, M: BatchMetric<P>>(
    set: &PointSet<P>,
    metric: &M,
    params: NnDescentParams,
) -> (KnnGraph, BuildStats) {
    build_with_init(set, metric, params, None)
}

/// Build with an optional initial neighbor candidate list per vertex
/// (e.g. from an RP forest). Vertices with fewer than `k` initial
/// candidates are topped up with random neighbors.
pub fn build_with_init<P: Point, M: BatchMetric<P>>(
    set: &PointSet<P>,
    metric: &M,
    params: NnDescentParams,
    init: Option<&[Vec<PointId>]>,
) -> (KnnGraph, BuildStats) {
    build_traced(set, metric, params, init, None)
}

/// [`build_with_init`] with an optional [`obs::Tracer`]: phase spans land
/// on track 0 (shared-memory NN-Descent is one "rank"), timestamped with
/// the tracer's wall clock on both axes, and per-iteration update counts
/// feed the `nnd_updates_per_iter` histogram.
pub fn build_traced<P: Point, M: BatchMetric<P>>(
    set: &PointSet<P>,
    metric: &M,
    params: NnDescentParams,
    init: Option<&[Vec<PointId>]>,
    tracer: Option<&obs::Tracer>,
) -> (KnnGraph, BuildStats) {
    let span_begin = |name: &'static str, arg: u64| {
        if let Some(t) = tracer {
            t.begin_arg(0, name, t.wall_ns(), arg);
        }
    };
    let span_end = |name: &'static str| {
        if let Some(t) = tracer {
            t.end(0, name, t.wall_ns());
        }
    };
    let n = set.len();
    assert!(n >= 2, "need at least two points");
    assert!(params.k >= 1 && params.k < n, "require 1 <= k < N");
    let k = params.k;
    let dist_evals = AtomicU64::new(0);
    // One-time per-set preprocessing (cached squared norms for the dot-
    // product metric family); handed to every batched evaluation below.
    let cache = metric.preprocess(set);
    // Batched theta: distances from `v` to `cands`, appended to `out` by
    // the same 8-lane kernels a scalar `Metric::distance` call uses, so
    // the produced bits are independent of batch composition.
    let theta_batch = |v: PointId, cands: &[PointId], out: &mut Vec<f32>| {
        dist_evals.fetch_add(cands.len() as u64, Ordering::Relaxed);
        metric.distance_one_to_many(set.point(v), set, &cache, cands, out);
    };

    // ---- Initialization (Algorithm 1 lines 2-5) ----------------------------
    span_begin("nnd_init", 0);
    let heaps: Vec<Mutex<NeighborHeap>> =
        (0..n).map(|_| Mutex::new(NeighborHeap::new(k))).collect();
    (0..n as PointId).into_par_iter().for_each(|v| {
        let mut rng = ChaCha8Rng::seed_from_u64(params.seed ^ (u64::from(v) << 20));
        // Gather the chosen candidates first, then evaluate them as one
        // 1xN batch. Below capacity every insert of a distinct non-self
        // id succeeds, so the dedup-on-gather is equivalent to the old
        // insert-and-check-contains loop.
        let mut chosen: Vec<PointId> = Vec::with_capacity(k);
        if let Some(init_rows) = init {
            for &u in init_rows[v as usize].iter().take(k) {
                if u != v && !chosen.contains(&u) {
                    chosen.push(u);
                }
            }
        }
        let mut guard = 0;
        while chosen.len() < k && guard < 100 * k {
            let u: PointId = rng.gen_range(0..n as PointId);
            if u != v && !chosen.contains(&u) {
                chosen.push(u);
            }
            guard += 1;
        }
        let mut dbuf = Vec::with_capacity(chosen.len());
        theta_batch(v, &chosen, &mut dbuf);
        let mut heap = heaps[v as usize].lock();
        for (&u, &d) in chosen.iter().zip(&dbuf) {
            heap.checked_insert(u, d, true);
        }
    });

    span_end("nnd_init");

    // ---- Descent loop -------------------------------------------------------
    let max_sample = ((params.rho * k as f64).round() as usize).max(1);
    let threshold = (params.delta * k as f64 * n as f64) as u64;
    let mut stats = BuildStats::default();

    for iter in 0..params.max_iters {
        span_begin("nnd_iteration", iter as u64);
        // Lines 7-10: forward old/new lists; sampled news flip to old.
        let mut fwd_old: Vec<Vec<PointId>> = Vec::with_capacity(n);
        let mut fwd_new: Vec<Vec<PointId>> = Vec::with_capacity(n);
        {
            let per_vertex: Vec<(Vec<PointId>, Vec<PointId>)> = (0..n as PointId)
                .into_par_iter()
                .map(|v| {
                    let mut rng = ChaCha8Rng::seed_from_u64(
                        params.seed ^ 0xA11CE ^ (u64::from(v) << 18) ^ (iter as u64),
                    );
                    let mut heap = heaps[v as usize].lock();
                    let old = heap.flagged_ids(false);
                    let mut candidates = heap.flagged_ids(true);
                    candidates.shuffle(&mut rng);
                    candidates.truncate(max_sample);
                    for &u in &candidates {
                        heap.mark_old(u);
                    }
                    (old, candidates)
                })
                .collect();
            for (old, new) in per_vertex {
                fwd_old.push(old);
                fwd_new.push(new);
            }
        }

        // Lines 11-12: reversed lists.
        let mut rev_old: Vec<Vec<PointId>> = vec![Vec::new(); n];
        let mut rev_new: Vec<Vec<PointId>> = vec![Vec::new(); n];
        for v in 0..n {
            for &u in &fwd_old[v] {
                rev_old[u as usize].push(v as PointId);
            }
            for &u in &fwd_new[v] {
                rev_new[u as usize].push(v as PointId);
            }
        }

        // Lines 15-16: sample rho*K of each reverse list, union forward.
        let union_sample =
            |fwd: &mut Vec<PointId>, rev: &mut Vec<PointId>, rng: &mut ChaCha8Rng| {
                rev.shuffle(rng);
                rev.truncate(max_sample);
                for &u in rev.iter() {
                    if !fwd.contains(&u) {
                        fwd.push(u);
                    }
                }
            };
        for v in 0..n {
            let mut rng =
                ChaCha8Rng::seed_from_u64(params.seed ^ 0xBEE ^ ((v as u64) << 18) ^ (iter as u64));
            union_sample(&mut fwd_old[v], &mut rev_old[v], &mut rng);
            union_sample(&mut fwd_new[v], &mut rev_new[v], &mut rng);
        }

        // Lines 17-22: neighbor checks.
        span_begin("nnd_check", 0);
        let counter = AtomicU64::new(0);
        (0..n).into_par_iter().for_each(|v| {
            let news = &fwd_new[v];
            let olds = &fwd_old[v];
            let mut tails: Vec<PointId> = Vec::new();
            let mut dbuf: Vec<f32> = Vec::new();
            // Per join head u1, gather every partner (remaining news +
            // olds) and evaluate the whole tail as one 1xN batch; heap
            // updates then replay in the original pair order.
            for (i, &u1) in news.iter().enumerate() {
                tails.clear();
                tails.extend(news[i + 1..].iter().chain(olds).filter(|&&u2| u2 != u1));
                if tails.is_empty() {
                    continue;
                }
                theta_batch(u1, &tails, &mut dbuf);
                let mut c = 0;
                for (&u2, &d) in tails.iter().zip(&dbuf) {
                    if heaps[u1 as usize].lock().checked_insert(u2, d, true) {
                        c += 1;
                    }
                    if heaps[u2 as usize].lock().checked_insert(u1, d, true) {
                        c += 1;
                    }
                }
                if c > 0 {
                    counter.fetch_add(c, Ordering::Relaxed);
                }
            }
        });

        span_end("nnd_check");

        let c = counter.load(Ordering::Relaxed);
        stats.iterations = iter + 1;
        stats.updates_per_iter.push(c);
        if let Some(t) = tracer {
            t.hist("nnd_updates_per_iter").record(c);
        }
        span_end("nnd_iteration");
        if c < threshold.max(1) {
            break;
        }
    }

    stats.distance_evals = dist_evals.load(Ordering::Relaxed);
    let heaps: Vec<NeighborHeap> = heaps.into_iter().map(Mutex::into_inner).collect();
    (KnnGraph::from_heaps(&heaps), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::ground_truth::brute_force_knng;
    use dataset::metric::{Jaccard, L2};
    use dataset::recall::mean_recall;
    use dataset::synth::{gaussian_mixture, uniform, MixtureParams};

    #[test]
    fn graph_has_exactly_k_neighbors_per_vertex() {
        let set = uniform(200, 4, 1);
        let (g, _) = build(&set, &L2, NnDescentParams::new(5));
        assert_eq!(g.len(), 200);
        for v in 0..200 {
            assert_eq!(g.neighbors(v).len(), 5, "vertex {v}");
        }
    }

    #[test]
    fn no_self_edges_or_duplicates() {
        let set = uniform(150, 3, 2);
        let (g, _) = build(&set, &L2, NnDescentParams::new(8));
        for v in 0..150u32 {
            let ids: Vec<PointId> = g.neighbors(v).iter().map(|&(id, _)| id).collect();
            assert!(!ids.contains(&v), "self edge at {v}");
            let mut dedup = ids.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), ids.len(), "duplicate edge at {v}");
        }
    }

    #[test]
    fn converges_to_high_recall_on_clustered_data() {
        let set = gaussian_mixture(MixtureParams::embedding_like(600, 16), 7);
        let (g, stats) = build(&set, &L2, NnDescentParams::new(10).seed(3));
        let truth = brute_force_knng(&set, &L2, 10);
        let recall = mean_recall(&g.neighbor_ids(), &truth);
        assert!(recall > 0.95, "recall {recall} too low; stats {stats:?}");
        // NN-Descent must beat brute force on distance evaluations here.
        assert!(stats.distance_evals < (600u64 * 599) / 2);
    }

    #[test]
    fn distances_in_graph_match_metric() {
        let set = uniform(100, 2, 9);
        let (g, _) = build(&set, &L2, NnDescentParams::new(4));
        for v in 0..100u32 {
            for &(u, d) in g.neighbors(v) {
                let expect = dataset::Metric::<Vec<f32>>::distance(&L2, set.point(v), set.point(u));
                assert!((d - expect).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn rows_sorted_ascending() {
        let set = uniform(80, 3, 4);
        let (g, _) = build(&set, &L2, NnDescentParams::new(6));
        for v in 0..80u32 {
            let row = g.neighbors(v);
            assert!(row.windows(2).all(|w| w[0].1 <= w[1].1));
        }
    }

    #[test]
    fn works_with_jaccard_metric() {
        let set = dataset::presets::kosarak_like(200, 5);
        let (g, _) = build(&set, &Jaccard, NnDescentParams::new(5));
        let truth = brute_force_knng(&set, &Jaccard, 5);
        let recall = mean_recall(&g.neighbor_ids(), &truth);
        // Jaccard on power-law sets has heavy distance ties; a moderate
        // bar still demonstrates metric-genericity.
        assert!(recall > 0.5, "jaccard recall {recall}");
    }

    #[test]
    fn delta_controls_iterations() {
        let set = gaussian_mixture(MixtureParams::embedding_like(300, 8), 11);
        let (_, fast) = build(&set, &L2, NnDescentParams::new(5).delta(0.2).seed(1));
        let (_, slow) = build(&set, &L2, NnDescentParams::new(5).delta(0.0001).seed(1));
        assert!(fast.iterations <= slow.iterations);
    }

    #[test]
    fn max_iters_caps_work() {
        let set = uniform(120, 6, 8);
        let (_, stats) = build(&set, &L2, NnDescentParams::new(6).max_iters(2));
        assert!(stats.iterations <= 2);
    }

    #[test]
    fn tiny_dataset_k1() {
        let set = uniform(3, 2, 1);
        let (g, _) = build(&set, &L2, NnDescentParams::new(1));
        for v in 0..3 {
            assert_eq!(g.neighbors(v).len(), 1);
        }
    }

    #[test]
    fn init_candidates_are_honored() {
        // Give every vertex its true nearest neighbor as init; recall of the
        // first neighbor must be perfect even with max_iters = 0 refinement.
        let set = uniform(100, 2, 13);
        let truth = brute_force_knng(&set, &L2, 3);
        let init: Vec<Vec<PointId>> = truth.ids.clone();
        let (g, _) = build_with_init(&set, &L2, NnDescentParams::new(3).max_iters(1), Some(&init));
        let recall = mean_recall(&g.neighbor_ids(), &truth);
        assert!(recall > 0.99, "init not honored: recall {recall}");
    }

    #[test]
    #[should_panic(expected = "1 <= k < N")]
    fn k_ge_n_rejected() {
        let set = uniform(5, 2, 1);
        let _ = build(&set, &L2, NnDescentParams::new(5));
    }

    #[test]
    fn updates_per_iter_is_decreasing_overall() {
        let set = gaussian_mixture(MixtureParams::embedding_like(400, 8), 21);
        let (_, stats) = build(&set, &L2, NnDescentParams::new(8).seed(2));
        let first = stats.updates_per_iter.first().copied().unwrap_or(0);
        let last = stats.updates_per_iter.last().copied().unwrap_or(0);
        assert!(
            last < first,
            "descent should slow down: {:?}",
            stats.updates_per_iter
        );
    }
}
