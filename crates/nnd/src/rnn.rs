//! RNN-Descent graph optimization (Relative NN-Descent, after GRNND and
//! the `mini_rnn` reference implementation): an iterative alternative to
//! the paper's Section 4.5 reverse-merge + degree-prune pass that yields a
//! *sparser* search graph at equal or better recall.
//!
//! Starting from a built k-NNG, each **inner round** rescans every
//! neighbor list with the relative-neighborhood (occlusion) rule: walking
//! `v`'s row in ascending `(dist, id)` order, edge `v -> w` is dropped when
//! some already-kept closer neighbor `u` satisfies
//! `(theta(u, w), u) < (theta(v, w), w)` lexicographically — `w` stays
//! reachable through `u`, so the direct edge only costs search fan-out.
//! The pruned edge is not discarded: `w` is *inserted into `u`'s row*,
//! which is how candidates propagate between neighborhoods. After `T2`
//! inner rounds an **outer round** ends by adding every reverse edge
//! (`add_reverse_edges`), re-seeding rows with fresh candidates; after `T1`
//! outer rounds every row is capped at the `K0` closest entries and
//! [`repair_connectivity`] reconnects any vertex the pruning left with
//! zero in-degree (such a vertex would be unreachable by graph search at
//! any beam width).
//!
//! # Determinism contract
//!
//! Unlike `mini_rnn` (which inserts into other rows mid-scan, making the
//! result depend on vertex visit order), every round here is
//! **synchronous**: all rows are scanned against the same snapshot, and
//! prune/insert decisions are applied afterwards in the canonical
//! `(dist, id)` order. Pair distances are only consulted for *flagged*
//! pairs (at least one endpoint `new`, NN-Descent style), and the set of
//! flagged pairs is a pure function of row state — so the distance-eval
//! count, every pruning decision, and the final graph are bit-identical
//! across reruns, rank counts, and kernel dispatch (the batched kernels
//! are bit-identical to the scalar reference by the crate contract). The
//! distributed pass in the `dnnd` crate reuses [`scan_row`] /
//! [`apply_inserts`] verbatim, so shared-memory and distributed runs
//! produce the same graph.

use crate::graph::{Edge, KnnGraph};
use dataset::batch::{BatchMetric, NormCache};
use dataset::point::Point;
use dataset::set::{PointId, PointSet};
use std::cmp::Ordering;
use std::collections::HashMap;

/// RNN-Descent hyper-parameters (`mini_rnn`'s `rnn_para`, minus the
/// sampling knob its random init needs — we always start from a built
/// k-NNG).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RnnParams {
    /// Outer rounds: each ends with a reverse-edge add (except the last).
    pub t1: usize,
    /// Inner neighbor-update rounds per outer round (an outer round exits
    /// early once no flagged pair remains — convergence).
    pub t2: usize,
    /// Final out-degree cap (`K0`): every row is clamped to its `k0`
    /// closest entries when the optimization finishes.
    pub k0: usize,
    /// Working-row capacity (`R`): rows may grow to `r` entries between
    /// rounds (inserts + reverse edges) before the final cap.
    pub r: usize,
}

impl RnnParams {
    /// Defaults scaled from `mini_rnn` (`T1=3, T2=20, R=3*K0`): `t2` is
    /// lowered to 8 because rounds converge (zero flagged pairs) long
    /// before 20 at the scales this repo simulates.
    pub fn new(k0: usize) -> Self {
        assert!(k0 >= 1, "k0 must be >= 1");
        RnnParams {
            t1: 3,
            t2: 8,
            k0,
            r: 3 * k0,
        }
    }

    /// Set the outer round count.
    pub fn t1(mut self, t1: usize) -> Self {
        assert!(t1 >= 1, "t1 must be >= 1");
        self.t1 = t1;
        self
    }

    /// Set the inner round cap.
    pub fn t2(mut self, t2: usize) -> Self {
        assert!(t2 >= 1, "t2 must be >= 1");
        self.t2 = t2;
        self
    }

    /// Set the working-row capacity.
    pub fn r(mut self, r: usize) -> Self {
        assert!(r >= self.k0, "require r >= k0");
        self.r = r;
        self
    }
}

/// One working edge: a [`crate::graph::Edge`] plus the NN-Descent `new`
/// flag that limits occlusion checks to not-yet-compared pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RnnEdge {
    /// Target vertex.
    pub id: PointId,
    /// Distance from the row's owner to `id`.
    pub dist: f32,
    /// Whether this edge has not yet survived a scan round.
    pub new: bool,
}

/// The `(dist, id)` total order every row is kept in. Ties on distance
/// break by id, so boundary decisions never depend on arrival order.
pub fn canonical(a: &RnnEdge, b: &RnnEdge) -> Ordering {
    a.dist.total_cmp(&b.dist).then_with(|| a.id.cmp(&b.id))
}

fn sort_row(row: &mut [RnnEdge]) {
    row.sort_unstable_by(canonical);
}

/// The index pairs `(i, j)`, `i < j`, of `row` whose occlusion check needs
/// a distance this round: at least one endpoint is flagged `new`. Pairs
/// with both endpoints old were checked in an earlier round, and their
/// verdict cannot change (neither `theta(u, w)` nor `theta(v, w)` moves).
/// The flagged-pair list — and therefore the round's distance-eval count —
/// is a pure function of row state.
pub fn flagged_pairs(row: &[RnnEdge]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..row.len() {
        for j in i + 1..row.len() {
            if row[i].new || row[j].new {
                out.push((i, j));
            }
        }
    }
    out
}

/// What one row scan decided.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanOutcome {
    /// Indices (into the scanned row) of surviving edges, ascending.
    pub kept: Vec<usize>,
    /// Redirected edges `(u, w, theta(u, w))`: `v -> w` was occluded by the
    /// kept neighbor `u`, so `w` must be inserted into `u`'s row.
    pub inserts: Vec<(PointId, PointId, f32)>,
}

/// Scan one row (already in canonical order) with the occlusion rule.
///
/// Walking the row ascending, edge `w` is dropped iff some already-kept
/// `u` with `(u.new || w.new)` satisfies
/// `(theta(u, w), u) < (w.dist, w)` lexicographically; the *first* such
/// `u` in kept order receives the redirected edge. `pair_dist(i, j)` must
/// return `theta(row[i].id, row[j].id)` for every flagged pair — the
/// distributed pass pre-fetches exactly [`flagged_pairs`] and serves them
/// from a map, the shared-memory pass computes them in place; both paths
/// therefore take identical decisions.
pub fn scan_row<F: Fn(usize, usize) -> f32>(row: &[RnnEdge], pair_dist: F) -> ScanOutcome {
    let mut kept: Vec<usize> = Vec::with_capacity(row.len());
    let mut inserts = Vec::new();
    for (j, w) in row.iter().enumerate() {
        let mut occluder: Option<(usize, f32)> = None;
        for &i in &kept {
            let u = &row[i];
            if !(u.new || w.new) {
                continue;
            }
            let d_uw = pair_dist(i, j);
            if (d_uw, u.id) < (w.dist, w.id) {
                occluder = Some((i, d_uw));
                break;
            }
        }
        match occluder {
            None => kept.push(j),
            Some((i, d_uw)) => inserts.push((row[i].id, w.id, d_uw)),
        }
    }
    ScanOutcome { kept, inserts }
}

/// Merge candidate edges into a row deterministically: candidates are
/// sorted into the canonical `(dist, id)` order first (so arrival order is
/// irrelevant), self-loops and already-present ids are skipped, and the
/// grown row is re-sorted and clamped to `cap`. Returns how many
/// candidates were actually inserted (before the clamp).
pub fn apply_inserts(
    row: &mut Vec<RnnEdge>,
    mut candidates: Vec<(PointId, f32)>,
    owner: PointId,
    cap: usize,
) -> u64 {
    candidates.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    let mut added = 0;
    for (id, dist) in candidates {
        if id == owner || row.iter().any(|e| e.id == id) {
            continue;
        }
        row.push(RnnEdge {
            id,
            dist,
            new: true,
        });
        added += 1;
    }
    sort_row(row);
    row.truncate(cap);
    added
}

/// Counters for one inner round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RnnRound {
    /// Outer round this inner round belongs to (0-based).
    pub outer: u64,
    /// Inner round index within the outer round (0-based).
    pub inner: u64,
    /// Flagged pairs checked — exactly the distance evaluations.
    pub pairs: u64,
    /// Edges removed by the occlusion rule.
    pub pruned: u64,
    /// Redirected edges actually inserted (deduplicated, pre-clamp).
    pub added: u64,
}

/// Counters for a whole RNN-Descent optimization.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RnnStats {
    /// One entry per executed inner round.
    pub rounds: Vec<RnnRound>,
    /// Reverse edges inserted per exchange (length `t1`): entry 0 is the
    /// seed merge before the first outer round, entries `1..t1` the
    /// outer-round boundaries (the last outer round adds none).
    pub reverse_added: Vec<u64>,
    /// Total distance evaluations (sum of `rounds[i].pairs`).
    pub dist_evals: u64,
    /// Zero-in-degree vertices reconnected by [`repair_connectivity`]
    /// after the final cap.
    pub repaired: u64,
}

/// The stepping state: rows plus accumulated stats. Exposed (rather than
/// only a one-shot driver) so property tests can assert invariants after
/// every individual round, and so the distributed pass has a shared-memory
/// twin to compare against.
#[derive(Debug, Clone)]
pub struct RnnState {
    rows: Vec<Vec<RnnEdge>>,
    params: RnnParams,
    stats: RnnStats,
}

/// Canonicalize one adjacency row into a working row: self-loops and
/// duplicate ids dropped, `(dist, id)` order, clamped to `r`, every edge
/// flagged `new`. Shared with the distributed pass so both seed
/// identically.
pub fn seed_row(edges: &[Edge], owner: PointId, r: usize) -> Vec<RnnEdge> {
    let mut row: Vec<RnnEdge> = edges
        .iter()
        .filter(|&&(id, _)| id != owner)
        .map(|&(id, dist)| RnnEdge {
            id,
            dist,
            new: true,
        })
        .collect();
    sort_row(&mut row);
    row.dedup_by_key(|e| e.id);
    row.truncate(r);
    row
}

impl RnnState {
    /// Seed from a built k-NNG: every edge flagged `new`, rows clamped to
    /// the working capacity `r`.
    pub fn from_graph(graph: &KnnGraph, params: RnnParams) -> Self {
        let rows = (0..graph.len() as PointId)
            .map(|v| seed_row(graph.neighbors(v), v, params.r))
            .collect();
        RnnState {
            rows,
            params,
            stats: RnnStats::default(),
        }
    }

    /// The working rows (tests: invariants hold after every round).
    pub fn rows(&self) -> &[Vec<RnnEdge>] {
        &self.rows
    }

    /// The parameters this state steps under.
    pub fn params(&self) -> RnnParams {
        self.params
    }

    /// Stats accumulated so far.
    pub fn stats(&self) -> &RnnStats {
        &self.stats
    }

    /// One synchronous inner round: scan every row against the current
    /// snapshot, then apply survivors (flags -> old) and redirected
    /// inserts (flagged new) in canonical order. Returns the round's
    /// counters; `pairs == 0` means the state has converged and further
    /// inner rounds are no-ops.
    pub fn inner_round<P: Point, M: BatchMetric<P>>(
        &mut self,
        base: &PointSet<P>,
        metric: &M,
        cache: &NormCache,
        outer: u64,
        inner: u64,
    ) -> RnnRound {
        let n = self.rows.len();
        let mut round = RnnRound {
            outer,
            inner,
            ..RnnRound::default()
        };
        let mut kept_rows: Vec<Vec<RnnEdge>> = Vec::with_capacity(n);
        let mut pending: Vec<Vec<(PointId, f32)>> = vec![Vec::new(); n];
        let mut dbuf: Vec<f32> = Vec::new();
        for row in &self.rows {
            let pairs = flagged_pairs(row);
            round.pairs += pairs.len() as u64;
            // Batch the pair distances head-by-head: one 1xN kernel call
            // per distinct head index, exactly like the distributed pass
            // ships one vector per (head, destination) group.
            let mut dists: HashMap<(usize, usize), f32> = HashMap::with_capacity(pairs.len());
            let mut h = 0;
            while h < pairs.len() {
                let head = pairs[h].0;
                let mut t = h;
                while t < pairs.len() && pairs[t].0 == head {
                    t += 1;
                }
                let tails: Vec<PointId> = pairs[h..t].iter().map(|&(_, j)| row[j].id).collect();
                dbuf.clear();
                metric.distance_one_to_many(
                    base.point(row[head].id),
                    base,
                    cache,
                    &tails,
                    &mut dbuf,
                );
                for (&(i, j), &d) in pairs[h..t].iter().zip(&dbuf) {
                    dists.insert((i, j), d);
                }
                h = t;
            }
            let out = scan_row(row, |i, j| dists[&(i, j)]);
            round.pruned += (row.len() - out.kept.len()) as u64;
            for (u, w, d) in out.inserts {
                pending[u as usize].push((w, d));
            }
            kept_rows.push(
                out.kept
                    .iter()
                    .map(|&i| RnnEdge {
                        new: false,
                        ..row[i]
                    })
                    .collect(),
            );
        }
        self.rows = kept_rows;
        for (v, cands) in pending.into_iter().enumerate() {
            if !cands.is_empty() {
                round.added += apply_inserts(&mut self.rows[v], cands, v as PointId, self.params.r);
            }
        }
        self.stats.dist_evals += round.pairs;
        self.stats.rounds.push(round);
        round
    }

    /// Add every reverse edge (`v -> w` spawns `w -> v` flagged new; the
    /// distance is already known, so this costs no evaluations), clamping
    /// rows to `r`. Returns how many edges were inserted.
    pub fn add_reverse_edges(&mut self) -> u64 {
        let n = self.rows.len();
        let mut pending: Vec<Vec<(PointId, f32)>> = vec![Vec::new(); n];
        for (v, row) in self.rows.iter().enumerate() {
            for e in row {
                pending[e.id as usize].push((v as PointId, e.dist));
            }
        }
        let mut added = 0;
        for (v, cands) in pending.into_iter().enumerate() {
            if !cands.is_empty() {
                added += apply_inserts(&mut self.rows[v], cands, v as PointId, self.params.r);
            }
        }
        self.stats.reverse_added.push(added);
        added
    }

    /// Cap every row at `k0`, repair connectivity, and emit the final
    /// graph plus the stats.
    pub fn finish(mut self) -> (KnnGraph, RnnStats) {
        let k0 = self.params.k0;
        let mut rows: Vec<Vec<Edge>> = self
            .rows
            .drain(..)
            .map(|row| row.iter().take(k0).map(|e| (e.id, e.dist)).collect())
            .collect();
        self.stats.repaired = repair_connectivity(&mut rows, k0);
        (KnnGraph::from_rows(rows), self.stats)
    }
}

/// Reconnect zero-in-degree vertices after the final `k0` cap.
///
/// Occlusion pruning plus the cap can leave a vertex with no in-edges at
/// all, which makes it unreachable by graph search at *any* beam width.
/// For each such orphan `w` (ascending id), the reverse of `w`'s closest
/// out-edge is inserted into that neighbor's row (the distance is already
/// known, so this costs no evaluations). If the insert pushes the row past
/// `k0`, the worst evictable edge is dropped — an edge is evictable only
/// when removing it cannot orphan *its* target (in-degree stays >= 1); if
/// none is, the row keeps the extra edge.
///
/// This is a pure function of the capped rows, so the shared-memory and
/// distributed passes stay bit-identical by running it on the same
/// assembled data. Returns the number of orphans reconnected.
pub fn repair_connectivity(rows: &mut [Vec<Edge>], k0: usize) -> u64 {
    let mut indeg = vec![0u32; rows.len()];
    for row in rows.iter() {
        for &(u, _) in row.iter() {
            indeg[u as usize] += 1;
        }
    }
    let mut repaired = 0;
    for w in 0..rows.len() {
        if indeg[w] > 0 {
            continue;
        }
        // Rows are in canonical (dist, id) order: entry 0 is the closest
        // out-neighbor. A row can only be empty if the vertex was isolated
        // in the input graph; nothing to repair onto then.
        let Some(&(u, d)) = rows[w].first() else {
            continue;
        };
        let row = &mut rows[u as usize];
        row.push((w as PointId, d));
        row.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        indeg[w] += 1;
        repaired += 1;
        if row.len() > k0 {
            // Evict the worst edge whose target keeps an in-edge elsewhere
            // (the just-added edge never qualifies: its target has
            // in-degree exactly 1).
            if let Some(i) = (0..row.len()).rev().find(|&i| indeg[row[i].0 as usize] > 1) {
                indeg[row[i].0 as usize] -= 1;
                row.remove(i);
            }
        }
    }
    repaired
}

/// The full shared-memory RNN-Descent optimization: a seed reverse-edge
/// merge (so the raw directed k-NNG can be passed as-is), then `t1` outer
/// rounds of (up to `t2` inner rounds, early-exiting once converged, then
/// — except after the last outer round — a reverse-edge add), finished
/// with the `k0` cap.
pub fn rnn_optimize<P: Point, M: BatchMetric<P>>(
    graph: &KnnGraph,
    base: &PointSet<P>,
    metric: &M,
    params: RnnParams,
) -> (KnnGraph, RnnStats) {
    assert_eq!(graph.len(), base.len(), "graph and base set disagree on N");
    let cache = metric.preprocess(base);
    let mut st = RnnState::from_graph(graph, params);
    st.add_reverse_edges();
    for outer in 0..params.t1 {
        for inner in 0..params.t2 {
            let round = st.inner_round(base, metric, &cache, outer as u64, inner as u64);
            if round.pairs == 0 {
                break;
            }
        }
        if outer + 1 < params.t1 {
            st.add_reverse_edges();
        }
    }
    st.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nndescent::{build, NnDescentParams};
    use dataset::metric::{SquaredL2, L2};
    use dataset::synth::{gaussian_mixture, MixtureParams};

    fn edge(id: PointId, dist: f32, new: bool) -> RnnEdge {
        RnnEdge { id, dist, new }
    }

    #[test]
    fn collinear_edge_redirected() {
        // 0 -- 1 -- 2 on a line: 0's edge to 2 (d=2) is occluded by 1
        // (d(1,2)=1 < 2) and must be redirected into 1's row.
        let row = vec![edge(1, 1.0, true), edge(2, 2.0, true)];
        let out = scan_row(&row, |_, _| 1.0);
        assert_eq!(out.kept, vec![0]);
        assert_eq!(out.inserts, vec![(1, 2, 1.0)]);
    }

    #[test]
    fn tie_breaks_by_id_both_ways() {
        // theta(u, w) equals w.dist exactly: the edge survives iff
        // u.id >= w.id under the lexicographic (dist, id) rule.
        let survives = scan_row(&[edge(7, 1.0, true), edge(3, 2.0, true)], |_, _| 2.0);
        assert_eq!(survives.kept, vec![0, 1], "occluder id 7 > target id 3");
        let pruned = scan_row(&[edge(2, 1.0, true), edge(3, 2.0, true)], |_, _| 2.0);
        assert_eq!(pruned.kept, vec![0], "occluder id 2 < target id 3");
        assert_eq!(pruned.inserts, vec![(2, 3, 2.0)]);
    }

    #[test]
    fn old_old_pairs_never_checked_or_occluded() {
        let row = vec![edge(1, 1.0, false), edge(2, 2.0, false)];
        let out = scan_row(&row, |_, _| panic!("old-old pair must not be evaluated"));
        assert_eq!(out.kept, vec![0, 1]);
        assert!(flagged_pairs(&row).is_empty());
    }

    #[test]
    fn flagged_pairs_counts_mixed_flags() {
        let row = vec![edge(1, 1.0, false), edge(2, 2.0, true), edge(3, 3.0, false)];
        // (0,1) and (1,2) flagged via the new middle edge; (0,2) both old.
        assert_eq!(flagged_pairs(&row), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn apply_inserts_dedups_skips_self_and_clamps() {
        let mut row = vec![edge(1, 1.0, false)];
        let added = apply_inserts(
            &mut row,
            vec![(2, 2.0), (1, 1.0), (5, 0.5), (9, 9.0), (2, 2.0)],
            9,
            3,
        );
        // id 1 duplicate, id 9 self-loop, second id 2 duplicate: 2 added
        // (5 and 2), then the clamp keeps the closest 3.
        assert_eq!(added, 2);
        assert_eq!(
            row,
            vec![edge(5, 0.5, true), edge(1, 1.0, false), edge(2, 2.0, true)]
        );
    }

    #[test]
    fn insert_order_is_irrelevant() {
        let cands = vec![(4u32, 4.0f32), (2, 2.0), (8, 0.25)];
        let mut a = vec![edge(1, 1.0, false)];
        let mut b = a.clone();
        apply_inserts(&mut a, cands.clone(), 0, 3);
        let mut rev = cands;
        rev.reverse();
        apply_inserts(&mut b, rev, 0, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn converges_and_caps_degree() {
        let base = gaussian_mixture(MixtureParams::embedding_like(300, 8), 5);
        let (g, _) = build(&base, &L2, NnDescentParams::new(8).seed(1));
        let params = RnnParams::new(10).t1(2).t2(6);
        let (opt, stats) = rnn_optimize(&g, &base, &L2, params);
        assert!(opt.max_degree() <= 10);
        assert!(stats.dist_evals > 0);
        // Seed merge + one outer-round boundary.
        assert_eq!(stats.reverse_added.len(), 2);
        // Every executed round's pairs are mirrored in dist_evals.
        let total: u64 = stats.rounds.iter().map(|r| r.pairs).sum();
        assert_eq!(total, stats.dist_evals);
        // No self loops or duplicates in the result.
        for v in 0..opt.len() as PointId {
            let ids: Vec<PointId> = opt.neighbors(v).iter().map(|&(id, _)| id).collect();
            assert!(!ids.contains(&v), "self loop at {v}");
            let mut d = ids.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), ids.len(), "duplicate edge at {v}");
        }
    }

    #[test]
    fn rerun_is_bit_identical() {
        let base = gaussian_mixture(MixtureParams::embedding_like(250, 6), 9);
        let (g, _) = build(&base, &SquaredL2, NnDescentParams::new(6).seed(2));
        let p = RnnParams::new(8);
        let (a, sa) = rnn_optimize(&g, &base, &SquaredL2, p);
        let (b, sb) = rnn_optimize(&g, &base, &SquaredL2, p);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn sparser_than_reverse_prune_at_same_start() {
        let base = gaussian_mixture(MixtureParams::embedding_like(400, 8), 11);
        let k = 8;
        let (g, _) = build(&base, &L2, NnDescentParams::new(k).seed(3));
        let rp = g.optimize(k, 1.5);
        let (rnn, _) = rnn_optimize(&g, &base, &L2, RnnParams::new(10));
        assert!(
            rnn.edge_count() < rp.edge_count(),
            "rnn {} >= reverse-prune {}",
            rnn.edge_count(),
            rp.edge_count()
        );
    }

    #[test]
    #[should_panic(expected = "require r >= k0")]
    fn r_below_k0_rejected() {
        let _ = RnnParams::new(16).r(8);
    }

    #[test]
    fn repair_reconnects_orphans() {
        // Vertex 2 has out-edges but no in-edges: the reverse of its
        // closest out-edge (2 -> 0, d=1) must be added to row 0.
        let mut rows: Vec<Vec<Edge>> =
            vec![vec![(1, 1.0)], vec![(0, 1.0)], vec![(0, 1.0), (1, 2.0)]];
        let repaired = repair_connectivity(&mut rows, 4);
        assert_eq!(repaired, 1);
        assert_eq!(rows[0], vec![(1, 1.0), (2, 1.0)]);
        let mut indeg = [0; 3];
        rows.iter()
            .flatten()
            .for_each(|&(u, _)| indeg[u as usize] += 1);
        assert!(indeg.iter().all(|&d| d > 0));
    }

    #[test]
    fn repair_eviction_never_orphans() {
        // Row 0 is full at k0=2; inserting the repair edge for orphan 3
        // must evict the worst edge whose target stays reachable (vertex 2
        // also has an in-edge from row 1, so (2, 3.0) goes; vertex 1 and
        // the fresh edge to 3 stay).
        let mut rows: Vec<Vec<Edge>> = vec![
            vec![(1, 1.0), (2, 3.0)],
            vec![(0, 1.0), (2, 2.0)],
            vec![(0, 3.0)],
            vec![(0, 2.5)],
        ];
        let repaired = repair_connectivity(&mut rows, 2);
        assert_eq!(repaired, 1);
        assert_eq!(rows[0], vec![(1, 1.0), (3, 2.5)]);
        let mut indeg = vec![0; 4];
        rows.iter()
            .flatten()
            .for_each(|&(u, _)| indeg[u as usize] += 1);
        assert!(indeg.iter().all(|&d| d > 0), "indeg {indeg:?}");
    }

    #[test]
    fn finish_leaves_no_orphans() {
        let base = gaussian_mixture(MixtureParams::embedding_like(500, 8), 17);
        let (g, _) = build(&base, &L2, NnDescentParams::new(8).seed(6));
        let (opt, stats) = rnn_optimize(&g, &base, &L2, RnnParams::new(8));
        let mut indeg = vec![0u32; opt.len()];
        for v in 0..opt.len() as PointId {
            for &(u, _) in opt.neighbors(v) {
                indeg[u as usize] += 1;
            }
        }
        assert!(indeg.iter().all(|&d| d > 0), "orphan vertex survived");
        // The counter mirrors what actually happened (may be zero).
        assert!(stats.repaired <= opt.len() as u64);
    }
}
