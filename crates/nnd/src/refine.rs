//! Incremental graph maintenance — the paper's Section 7 future work:
//!
//! > "Employing Metall will facilitate rapid graph updates ... new data
//! > points may be added/deleted, followed by a short graph refinement
//! > phase, which will fit NN-Descent's iterative nature well."
//!
//! [`insert_points`] grows an existing k-NNG when the dataset gains
//! points: new vertices get candidate neighbors (searched entry or random),
//! every touched entry is flagged *new*, and a short NN-Descent refinement
//! (a few iterations, no full restart) re-converges the graph.
//! [`remove_points`] deletes vertices and repairs the holes they leave in
//! other neighbor lists from the survivors' own neighborhoods.

use crate::graph::KnnGraph;
use crate::nndescent::{build_with_init, BuildStats, NnDescentParams};
use crate::search::{search, SearchParams};
use dataset::batch::BatchMetric;
use dataset::point::Point;
use dataset::set::{PointId, PointSet};

/// Grow `graph` (built over `old_base`) into a graph over `new_base`,
/// where `new_base` extends `old_base` with extra points at the tail.
///
/// Strategy: seed every vertex's candidate list with its current neighbors
/// (old vertices) or an ANN search against the old graph (new vertices),
/// then run NN-Descent with `refine_iters` iterations. Because the seeds
/// are already near-correct, the refinement converges far faster than a
/// from-scratch build — this is the "short graph refinement phase" the
/// paper anticipates.
pub fn insert_points<P: Point, M: BatchMetric<P>>(
    graph: &KnnGraph,
    old_base: &PointSet<P>,
    new_base: &PointSet<P>,
    metric: &M,
    params: NnDescentParams,
    refine_iters: usize,
) -> (KnnGraph, BuildStats) {
    let n_old = old_base.len();
    let n_new = new_base.len();
    assert_eq!(graph.len(), n_old, "graph must cover the old base");
    assert!(n_new >= n_old, "new base must extend the old one");
    for v in 0..n_old as PointId {
        debug_assert_eq!(new_base.point(v).dim(), old_base.point(v).dim());
    }

    let mut init: Vec<Vec<PointId>> = Vec::with_capacity(n_new);
    // Old vertices keep their current neighbors as seeds.
    for v in 0..n_old as PointId {
        init.push(graph.neighbors(v).iter().map(|&(id, _)| id).collect());
    }
    // New vertices are located by searching the existing graph.
    for v in n_old as PointId..n_new as PointId {
        let hits = search(
            graph,
            old_base,
            metric,
            new_base.point(v),
            SearchParams::new(params.k.min(n_old))
                .epsilon(0.2)
                .entry_candidates(4 * params.k)
                .seed(params.seed ^ u64::from(v)),
        );
        init.push(hits.ids());
    }
    build_with_init(
        new_base,
        metric,
        params.max_iters(refine_iters),
        Some(&init),
    )
}

/// Remove the vertices in `gone` from `graph`, compacting ids: survivors
/// are renumbered in ascending order (the returned vector maps new id ->
/// old id). Holes in survivors' neighbor lists are refilled from their
/// remaining neighbors' neighborhoods (one local repair pass); quality can
/// then be restored fully by a short [`insert_points`]-style refinement if
/// desired.
pub fn remove_points<P: Point, M: BatchMetric<P>>(
    graph: &KnnGraph,
    base: &PointSet<P>,
    metric: &M,
    gone: &[PointId],
    k: usize,
) -> (KnnGraph, PointSet<P>, Vec<PointId>) {
    let n = graph.len();
    let mut dead = vec![false; n];
    for &v in gone {
        dead[v as usize] = true;
    }
    // Renumbering: old id -> new id for survivors.
    let mut remap = vec![PointId::MAX; n];
    let mut back = Vec::with_capacity(n - gone.len());
    for old in 0..n {
        if !dead[old] {
            remap[old] = back.len() as PointId;
            back.push(old as PointId);
        }
    }

    let survivors: Vec<P> = back.iter().map(|&old| base.point(old).clone()).collect();
    let new_base = PointSet::new(survivors);

    let mut rows: Vec<Vec<(PointId, f32)>> = Vec::with_capacity(back.len());
    for &old in &back {
        let mut row: Vec<(PointId, f32)> = graph
            .neighbors(old)
            .iter()
            .filter(|&&(u, _)| !dead[u as usize])
            .map(|&(u, d)| (remap[u as usize], d))
            .collect();
        // Repair: pull candidates from surviving neighbors' neighbors.
        if row.len() < k {
            let me_new = remap[old as usize];
            let mut candidates: Vec<PointId> = Vec::new();
            for &(u, _) in &row {
                let u_old = back[u as usize];
                for &(w, _) in graph.neighbors(u_old) {
                    if !dead[w as usize] {
                        let w_new = remap[w as usize];
                        if w_new != me_new
                            && !row.iter().any(|&(x, _)| x == w_new)
                            && !candidates.contains(&w_new)
                        {
                            candidates.push(w_new);
                        }
                    }
                }
            }
            let me_point = base.point(old);
            let mut scored: Vec<(PointId, f32)> = candidates
                .into_iter()
                .map(|w_new| {
                    let w_old = back[w_new as usize];
                    (w_new, metric.distance(me_point, base.point(w_old)))
                })
                .collect();
            scored.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
            for (w, d) in scored {
                if row.len() >= k {
                    break;
                }
                row.push((w, d));
            }
        }
        row.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        row.truncate(k);
        rows.push(row);
    }
    (KnnGraph::from_rows(rows), new_base, back)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nndescent::build;
    use dataset::ground_truth::brute_force_knng;
    use dataset::metric::L2;
    use dataset::recall::mean_recall;
    use dataset::synth::{gaussian_mixture, MixtureParams};

    fn data(n: usize, seed: u64) -> PointSet<Vec<f32>> {
        gaussian_mixture(MixtureParams::embedding_like(n, 12), seed)
    }

    #[test]
    fn insert_extends_graph_with_high_recall() {
        let full = data(700, 3);
        let old = PointSet::new(full.points()[..500].to_vec());
        let params = NnDescentParams::new(8).seed(1);
        let (g_old, _) = build(&old, &L2, params);
        let (g_new, stats) = insert_points(&g_old, &old, &full, &L2, params, 4);
        assert_eq!(g_new.len(), 700);
        let truth = brute_force_knng(&full, &L2, 8);
        let recall = mean_recall(&g_new.neighbor_ids(), &truth);
        assert!(recall > 0.9, "post-insert recall {recall}");
        assert!(stats.iterations <= 4);
    }

    #[test]
    fn refinement_is_cheaper_than_rebuild() {
        let full = data(600, 5);
        let old = PointSet::new(full.points()[..550].to_vec());
        let params = NnDescentParams::new(8).seed(2);
        let (g_old, _) = build(&old, &L2, params);
        let (_, full_stats) = build(&full, &L2, params);
        let (_, refine_stats) = insert_points(&g_old, &old, &full, &L2, params, 3);
        assert!(
            refine_stats.distance_evals < full_stats.distance_evals,
            "refine {} !< rebuild {}",
            refine_stats.distance_evals,
            full_stats.distance_evals
        );
    }

    #[test]
    fn insert_noop_when_no_new_points() {
        let base = data(300, 7);
        let params = NnDescentParams::new(6).seed(3);
        let (g, _) = build(&base, &L2, params);
        let (g2, _) = insert_points(&g, &base, &base, &L2, params, 2);
        assert_eq!(g2.len(), g.len());
        let truth = brute_force_knng(&base, &L2, 6);
        let r = mean_recall(&g2.neighbor_ids(), &truth);
        assert!(r > 0.9);
    }

    #[test]
    fn remove_compacts_and_repairs() {
        let base = data(400, 9);
        let (g, _) = build(&base, &L2, NnDescentParams::new(8).seed(4));
        let gone: Vec<PointId> = (0..40).map(|i| i * 10).collect();
        let (g2, base2, back) = remove_points(&g, &base, &L2, &gone, 8);
        assert_eq!(g2.len(), 360);
        assert_eq!(base2.len(), 360);
        assert_eq!(back.len(), 360);
        // No dead vertices referenced; ids in range; mapping consistent.
        for v in 0..g2.len() as PointId {
            assert_eq!(base2.point(v), base.point(back[v as usize]));
            for &(u, _) in g2.neighbors(v) {
                assert!((u as usize) < 360);
                assert!(!gone.contains(&back[u as usize]));
            }
        }
    }

    #[test]
    fn remove_preserves_reasonable_quality() {
        let base = data(400, 11);
        let (g, _) = build(&base, &L2, NnDescentParams::new(8).seed(5));
        let gone: Vec<PointId> = (100..150).collect();
        let (g2, base2, _) = remove_points(&g, &base, &L2, &gone, 8);
        let truth = brute_force_knng(&base2, &L2, 8);
        let recall = mean_recall(&g2.neighbor_ids(), &truth);
        // One repair pass (no descent) should stay in a usable band.
        assert!(recall > 0.7, "post-remove recall {recall}");
    }

    #[test]
    fn remove_then_refine_restores_quality() {
        let base = data(400, 13);
        let params = NnDescentParams::new(8).seed(6);
        let (g, _) = build(&base, &L2, params);
        let gone: Vec<PointId> = (0..80).collect();
        let (g2, base2, _) = remove_points(&g, &base, &L2, &gone, 8);
        let (g3, _) = insert_points(&g2, &base2, &base2, &L2, params, 3);
        let truth = brute_force_knng(&base2, &L2, 8);
        let recall = mean_recall(&g3.neighbor_ids(), &truth);
        assert!(recall > 0.9, "refined post-remove recall {recall}");
    }

    #[test]
    #[should_panic(expected = "graph must cover the old base")]
    fn mismatched_sizes_rejected() {
        let base = data(100, 15);
        let (g, _) = build(&base, &L2, NnDescentParams::new(4).seed(7));
        let wrong = PointSet::new(base.points()[..50].to_vec());
        let _ = insert_points(&g, &wrong, &base, &L2, NnDescentParams::new(4), 2);
    }
}
