//! Allocation-free repeated search: a [`Searcher`] owns the visited marks
//! and heap buffers and reuses them across queries.
//!
//! [`crate::search::search`] allocates an `N`-slot visited array per query
//! — fine for one-off calls, wasteful for query services at high qps (the
//! Figure 2 measurements run 10,000 queries back to back). The searcher
//! replaces the boolean array with an **epoch-stamped** `u32` array:
//! marking "visited" writes the current epoch, and starting a new query
//! just increments the epoch — O(1) reset instead of O(N) clearing, no
//! allocation at all in steady state.

use crate::graph::KnnGraph;
use crate::search::{SearchParams, SearchResult};
use dataset::batch::BatchMetric;
use dataset::order::OrdF32;
use dataset::point::Point;
use dataset::set::{PointId, PointSet};
use rand::seq::index::sample as index_sample;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reusable search state for one thread.
pub struct Searcher {
    epochs: Vec<u32>,
    epoch: u32,
    best: BinaryHeap<(OrdF32, PointId)>,
    frontier: BinaryHeap<Reverse<(OrdF32, PointId)>>,
}

impl Searcher {
    /// A searcher for graphs/base sets with `n` points.
    pub fn new(n: usize) -> Self {
        Searcher {
            epochs: vec![0; n],
            epoch: 0,
            best: BinaryHeap::new(),
            frontier: BinaryHeap::new(),
        }
    }

    #[inline]
    fn visit(&mut self, id: PointId) -> bool {
        let slot = &mut self.epochs[id as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Run one query, reusing all internal buffers. Semantics are
    /// identical to [`crate::search::search`].
    pub fn search<P: Point, M: BatchMetric<P>>(
        &mut self,
        graph: &KnnGraph,
        base: &PointSet<P>,
        metric: &M,
        query: &P,
        params: SearchParams,
    ) -> SearchResult {
        let n = base.len();
        assert_eq!(graph.len(), n, "graph and base set disagree on N");
        assert_eq!(self.epochs.len(), n, "searcher sized for a different N");
        assert!(params.l >= 1 && params.l <= n);

        // New query: bump the epoch; on wraparound do the rare full clear.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.epochs.fill(0);
            self.epoch = 1;
        }
        self.best.clear();
        self.frontier.clear();
        let mut evals: u64 = 0;

        let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
        let starts = params.l.max(params.entry_candidates).min(n);
        for idx in index_sample(&mut rng, n, starts) {
            let id = idx as PointId;
            self.visit(id);
            let d = metric.distance(query, base.point(id));
            evals += 1;
            self.best.push((OrdF32(d), id));
            self.frontier.push(Reverse((OrdF32(d), id)));
        }
        while self.best.len() > params.l {
            self.best.pop();
        }

        let relax = 1.0 + params.epsilon;
        while let Some(Reverse((OrdF32(d), p))) = self.frontier.pop() {
            let d_max = self.best.peek().map_or(f32::INFINITY, |&(OrdF32(m), _)| m);
            if d > relax * d_max {
                break;
            }
            for &(w, _) in graph.neighbors(p) {
                if !self.visit(w) {
                    continue;
                }
                let dw = metric.distance(query, base.point(w));
                evals += 1;
                let d_max = self.best.peek().map_or(f32::INFINITY, |&(OrdF32(m), _)| m);
                if self.best.len() < params.l || dw < d_max {
                    self.best.push((OrdF32(dw), w));
                    if self.best.len() > params.l {
                        self.best.pop();
                    }
                }
                if dw < relax * d_max {
                    self.frontier.push(Reverse((OrdF32(dw), w)));
                }
            }
        }

        let mut neighbors: Vec<(PointId, f32)> =
            self.best.drain().map(|(OrdF32(d), id)| (id, d)).collect();
        neighbors.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        SearchResult {
            neighbors,
            distance_evals: evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nndescent::{build, NnDescentParams};
    use crate::search::search;
    use dataset::metric::L2;
    use dataset::synth::uniform;

    fn setup() -> (PointSet<Vec<f32>>, KnnGraph) {
        let set = uniform(400, 5, 3);
        let (g, _) = build(&set, &L2, NnDescentParams::new(8).seed(1));
        (set, g.optimize(8, 1.5))
    }

    #[test]
    fn matches_one_shot_search_exactly() {
        let (set, g) = setup();
        let mut s = Searcher::new(set.len());
        for probe in [0u32, 37, 200, 399] {
            let p = SearchParams::new(6)
                .epsilon(0.15)
                .entry_candidates(24)
                .seed(9);
            let a = search(&g, &set, &L2, set.point(probe), p);
            let b = s.search(&g, &set, &L2, set.point(probe), p);
            assert_eq!(a, b, "probe {probe} diverged");
        }
    }

    #[test]
    fn back_to_back_queries_are_independent() {
        let (set, g) = setup();
        let mut s = Searcher::new(set.len());
        let p = SearchParams::new(5).entry_candidates(32).seed(2);
        let first = s.search(&g, &set, &L2, set.point(10), p);
        // Interleave a different query, then repeat the first: identical.
        let _ = s.search(&g, &set, &L2, set.point(300), p);
        let again = s.search(&g, &set, &L2, set.point(10), p);
        assert_eq!(first, again);
    }

    #[test]
    fn epoch_wraparound_still_correct() {
        let (set, g) = setup();
        let mut s = Searcher::new(set.len());
        // Force the wrap path.
        s.epoch = u32::MAX - 1;
        let p = SearchParams::new(5).entry_candidates(32).seed(4);
        let want = search(&g, &set, &L2, set.point(123), p);
        for _ in 0..4 {
            let got = s.search(&g, &set, &L2, set.point(123), p);
            assert_eq!(got, want);
        }
    }

    #[test]
    #[should_panic(expected = "sized for a different N")]
    fn wrong_size_rejected() {
        let (set, g) = setup();
        let mut s = Searcher::new(10);
        let _ = s.search(&g, &set, &L2, set.point(0), SearchParams::new(3));
    }
}
