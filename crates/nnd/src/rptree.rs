//! Random-projection-tree initialization (PyNNDescent extension).
//!
//! The paper's Related Work notes PyNNDescent initializes NN-Descent with a
//! random projection forest instead of purely random neighbors, which cuts
//! the number of descent iterations. This module implements the euclidean
//! RP tree: each node splits its points by the perpendicular-bisector
//! hyperplane of two randomly chosen points; leaves of at most `leaf_size`
//! points become all-pairs candidate cliques.
//!
//! Dense `f32` data only — hyperplane splits need a vector space, which is
//! exactly why generic NN-Descent keeps random init as the fallback for
//! arbitrary metrics (Jaccard sets etc.).

use dataset::point::dense;
use dataset::set::{PointId, PointSet};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// RP-forest parameters.
#[derive(Debug, Clone, Copy)]
pub struct RpForestParams {
    /// Number of trees; more trees give more diverse candidates.
    pub n_trees: usize,
    /// Maximum points per leaf; leaves become all-pairs candidate sets.
    pub leaf_size: usize,
    /// Maximum candidates kept per vertex across the whole forest.
    pub max_candidates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RpForestParams {
    /// PyNNDescent-flavored defaults for a target `k`.
    pub fn for_k(k: usize) -> Self {
        RpForestParams {
            n_trees: 4,
            leaf_size: (2 * k).max(8),
            max_candidates: 4 * k,
            seed: 0x7EE5,
        }
    }
}

fn split(
    set: &PointSet<Vec<f32>>,
    ids: &mut Vec<PointId>,
    leaf_size: usize,
    rng: &mut ChaCha8Rng,
    leaves: &mut Vec<Vec<PointId>>,
    depth: usize,
) {
    // Depth cap guards against degenerate data (all points identical).
    if ids.len() <= leaf_size || depth > 40 {
        leaves.push(std::mem::take(ids));
        return;
    }
    let a = ids[rng.gen_range(0..ids.len())];
    let mut b = ids[rng.gen_range(0..ids.len())];
    let mut tries = 0;
    while b == a && tries < 8 {
        b = ids[rng.gen_range(0..ids.len())];
        tries += 1;
    }
    let pa = set.point(a);
    let pb = set.point(b);
    let normal: Vec<f32> = pa.iter().zip(pb).map(|(x, y)| x - y).collect();
    let midpoint: Vec<f32> = pa.iter().zip(pb).map(|(x, y)| (x + y) * 0.5).collect();
    let offset = dense::dot(&normal, &midpoint);

    let (mut left, mut right): (Vec<PointId>, Vec<PointId>) = (Vec::new(), Vec::new());
    for &id in ids.iter() {
        if dense::dot(&normal, set.point(id)) > offset {
            left.push(id);
        } else {
            right.push(id);
        }
    }
    // Degenerate split (identical points / zero normal): force a random
    // balanced split so recursion terminates.
    if left.is_empty() || right.is_empty() {
        let mut shuffled = std::mem::take(ids);
        shuffled.shuffle(rng);
        let half = shuffled.len() / 2;
        right = shuffled.split_off(half);
        left = shuffled;
    }
    ids.clear();
    split(set, &mut left, leaf_size, rng, leaves, depth + 1);
    split(set, &mut right, leaf_size, rng, leaves, depth + 1);
}

/// Build an RP forest and return, per vertex, a candidate neighbor list
/// (deduplicated, capped at `max_candidates`) suitable for
/// [`crate::nndescent::build_with_init`].
pub fn rp_forest_candidates(set: &PointSet<Vec<f32>>, params: RpForestParams) -> Vec<Vec<PointId>> {
    let n = set.len();
    let mut candidates: Vec<Vec<PointId>> = vec![Vec::new(); n];
    for tree in 0..params.n_trees {
        let mut rng = ChaCha8Rng::seed_from_u64(params.seed ^ ((tree as u64) << 32));
        let mut ids: Vec<PointId> = (0..n as PointId).collect();
        let mut leaves = Vec::new();
        split(set, &mut ids, params.leaf_size, &mut rng, &mut leaves, 0);
        for leaf in &leaves {
            for &v in leaf {
                let list = &mut candidates[v as usize];
                for &u in leaf {
                    if u != v && list.len() < params.max_candidates && !list.contains(&u) {
                        list.push(u);
                    }
                }
            }
        }
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nndescent::{build, build_with_init, NnDescentParams};
    use dataset::ground_truth::brute_force_knng;
    use dataset::metric::L2;
    use dataset::recall::mean_recall;
    use dataset::synth::{gaussian_mixture, uniform, MixtureParams};

    #[test]
    fn candidates_cover_every_vertex() {
        let set = uniform(200, 6, 1);
        let cands = rp_forest_candidates(&set, RpForestParams::for_k(5));
        assert_eq!(cands.len(), 200);
        let nonempty = cands.iter().filter(|c| !c.is_empty()).count();
        assert!(nonempty > 190, "only {nonempty} vertices got candidates");
    }

    #[test]
    fn no_self_candidates_or_duplicates() {
        let set = uniform(150, 4, 2);
        let cands = rp_forest_candidates(&set, RpForestParams::for_k(4));
        for (v, list) in cands.iter().enumerate() {
            assert!(!list.contains(&(v as PointId)));
            let mut d = list.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), list.len());
        }
    }

    #[test]
    fn respects_max_candidates() {
        let set = uniform(300, 4, 3);
        let mut p = RpForestParams::for_k(3);
        p.max_candidates = 7;
        let cands = rp_forest_candidates(&set, p);
        assert!(cands.iter().all(|c| c.len() <= 7));
    }

    #[test]
    fn handles_identical_points() {
        // All points identical: splits degenerate; must terminate and give
        // candidates anyway.
        let set = PointSet::new(vec![vec![1.0f32, 1.0]; 64]);
        let cands = rp_forest_candidates(&set, RpForestParams::for_k(3));
        assert_eq!(cands.len(), 64);
    }

    #[test]
    fn leaf_candidates_are_nearby() {
        // In well-separated clusters, RP-leaf companions should mostly come
        // from the same cluster, i.e. be much closer than random points.
        let set = gaussian_mixture(
            MixtureParams {
                n: 400,
                dim: 8,
                n_clusters: 4,
                center_spread: 50.0,
                cluster_std: 0.5,
            },
            9,
        );
        let cands = rp_forest_candidates(&set, RpForestParams::for_k(5));
        let mut close = 0usize;
        let mut total = 0usize;
        for (v, list) in cands.iter().enumerate() {
            for &u in list {
                total += 1;
                let d = dataset::Metric::<Vec<f32>>::distance(
                    &L2,
                    set.point(v as PointId),
                    set.point(u),
                );
                if d < 25.0 {
                    close += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            close as f64 / total as f64 > 0.6,
            "only {close}/{total} candidates were intra-cluster"
        );
    }

    #[test]
    fn rp_init_converges_faster_early() {
        // RP-forest init starts the descent from nearby candidates, so the
        // first iteration should need *fewer* successful updates than a
        // random start (less wrong to fix), at equal final quality.
        let set = gaussian_mixture(MixtureParams::embedding_like(800, 16), 17);
        let params = NnDescentParams::new(10).seed(5);
        let (_, rand_stats) = build(&set, &L2, params);
        let cands = rp_forest_candidates(&set, RpForestParams::for_k(10));
        let (g, rp_stats) = build_with_init(&set, &L2, params, Some(&cands));
        assert!(
            rp_stats.updates_per_iter[0] < rand_stats.updates_per_iter[0],
            "rp first-iter updates {} !< random {}",
            rp_stats.updates_per_iter[0],
            rand_stats.updates_per_iter[0]
        );
        let truth = brute_force_knng(&set, &L2, 10);
        let recall = mean_recall(&g.neighbor_ids(), &truth);
        assert!(recall > 0.9, "rp-init recall {recall}");
    }
}
