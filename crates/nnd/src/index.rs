//! High-level index API — the PyNNDescent `NNDescent` class equivalent.
//!
//! Wraps the full shared-memory pipeline behind one type: RP-forest or
//! random initialization, NN-Descent construction, the Section 4.5 graph
//! optimizations, optional diversification, query serving, persistence,
//! and incremental updates. Downstream users who just want "an ANN index"
//! use this; the individual modules stay available for research use.
//!
//! ```
//! use dataset::{synth, L2};
//! use nnd::index::{IndexParams, NnIndex};
//!
//! let base = synth::uniform(600, 8, 1);
//! let index = NnIndex::build(base, L2, IndexParams::new(10));
//! let hits = index.query(index.base().point(5), 3);
//! assert_eq!(hits[0].0, 5);
//! ```

use crate::diversify::diversify;
use crate::graph::KnnGraph;
use crate::nndescent::{build_with_init, BuildStats, NnDescentParams};
use crate::refine::insert_points;
use crate::rptree::{rp_forest_candidates, RpForestParams};
use crate::search::{search, search_batch, BatchResult, SearchParams};
use dataset::batch::BatchMetric;
use dataset::point::Point;
use dataset::set::{PointId, PointSet};
use metall::{Result as StoreResult, Store};

/// How the initial candidate graph is seeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitStrategy {
    /// Random neighbors (Algorithm 1 lines 2–5). Works for any metric.
    #[default]
    Random,
    /// Random-projection forest (PyNNDescent's default for dense data).
    /// Falls back to random for point types without an RP splitter.
    RpForest,
}

/// Index construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct IndexParams {
    /// Neighbors per vertex (`K`).
    pub k: usize,
    /// NN-Descent hyper-parameters (rho, delta, iteration cap, seed).
    pub descent: NnDescentParams,
    /// Initialization strategy.
    pub init: InitStrategy,
    /// Degree-prune factor `m` for the Section 4.5 optimization.
    pub prune_m: f64,
    /// Occlusion-pruning keep-ratio (1.0 disables diversification).
    pub diversify_keep: f64,
    /// Default query-time epsilon.
    pub epsilon: f32,
    /// Default query-time entry candidates.
    pub entry_candidates: usize,
}

impl IndexParams {
    /// PyNNDescent-flavored defaults for a given `k`.
    pub fn new(k: usize) -> Self {
        IndexParams {
            k,
            descent: NnDescentParams::new(k),
            init: InitStrategy::default(),
            prune_m: 1.5,
            diversify_keep: 1.0,
            epsilon: 0.1,
            entry_candidates: 4 * k,
        }
    }

    /// Choose the initialization strategy.
    pub fn init(mut self, init: InitStrategy) -> Self {
        self.init = init;
        self
    }

    /// Set the construction seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.descent = self.descent.seed(seed);
        self
    }

    /// Enable diversification with the given keep-ratio (see
    /// [`crate::diversify()`]).
    pub fn diversify(mut self, keep: f64) -> Self {
        assert!((0.0..=1.0).contains(&keep));
        self.diversify_keep = keep;
        self
    }

    /// Set the default query epsilon.
    pub fn epsilon(mut self, e: f32) -> Self {
        assert!(e >= 0.0);
        self.epsilon = e;
        self
    }
}

/// A ready-to-query ANN index owning its base data, raw k-NNG, and the
/// optimized search graph.
pub struct NnIndex<P, M> {
    base: PointSet<P>,
    metric: M,
    params: IndexParams,
    /// The raw NN-Descent output (kept for incremental updates).
    knng: KnnGraph,
    /// The optimized (merged/pruned/diversified) search graph.
    search_graph: KnnGraph,
    /// Construction counters.
    pub stats: BuildStats,
}

/// RP-forest support marker: point types that can seed from a forest.
pub trait RpInit: Point {
    /// Candidate lists from an RP forest, or `None` if unsupported.
    fn rp_candidates(set: &PointSet<Self>, params: RpForestParams) -> Option<Vec<Vec<PointId>>>;
}

impl RpInit for Vec<f32> {
    fn rp_candidates(set: &PointSet<Self>, params: RpForestParams) -> Option<Vec<Vec<PointId>>> {
        Some(rp_forest_candidates(set, params))
    }
}

impl RpInit for Vec<u8> {
    fn rp_candidates(set: &PointSet<Self>, params: RpForestParams) -> Option<Vec<Vec<PointId>>> {
        // Promote to f32 for splitting only; candidates are ids.
        let as_f32 = PointSet::new(
            set.points()
                .iter()
                .map(|p| p.iter().map(|&b| f32::from(b)).collect::<Vec<f32>>())
                .collect(),
        );
        Some(rp_forest_candidates(&as_f32, params))
    }
}

impl RpInit for dataset::SparseVec {
    fn rp_candidates(_: &PointSet<Self>, _: RpForestParams) -> Option<Vec<Vec<PointId>>> {
        None // no vector space to split: fall back to random init
    }
}

impl<P: RpInit, M: BatchMetric<P>> NnIndex<P, M> {
    /// Build the full pipeline over `base`.
    pub fn build(base: PointSet<P>, metric: M, params: IndexParams) -> Self {
        let descent = NnDescentParams {
            k: params.k,
            ..params.descent
        };
        let init = match params.init {
            InitStrategy::Random => None,
            InitStrategy::RpForest => P::rp_candidates(&base, RpForestParams::for_k(params.k)),
        };
        let (knng, stats) = build_with_init(&base, &metric, descent, init.as_deref());
        let search_graph = Self::optimize_graph(&knng, &base, &metric, &params);
        NnIndex {
            base,
            metric,
            params,
            knng,
            search_graph,
            stats,
        }
    }

    fn optimize_graph(
        knng: &KnnGraph,
        base: &PointSet<P>,
        metric: &M,
        params: &IndexParams,
    ) -> KnnGraph {
        let merged = knng.merge_reverse();
        let diversified = if params.diversify_keep < 1.0 {
            diversify(&merged, base, metric, params.diversify_keep)
        } else {
            merged
        };
        diversified.prune((params.k as f64 * params.prune_m).ceil() as usize)
    }

    /// The indexed base data.
    pub fn base(&self) -> &PointSet<P> {
        &self.base
    }

    /// The optimized search graph.
    pub fn search_graph(&self) -> &KnnGraph {
        &self.search_graph
    }

    /// The raw NN-Descent k-NNG.
    pub fn knng(&self) -> &KnnGraph {
        &self.knng
    }

    fn search_params(&self, l: usize) -> SearchParams {
        SearchParams::new(l)
            .epsilon(self.params.epsilon)
            .entry_candidates(self.params.entry_candidates)
            .seed(self.params.descent.seed ^ 0x5EA4C)
    }

    /// Query for the `l` approximate nearest neighbors of `q`.
    pub fn query(&self, q: &P, l: usize) -> Vec<(PointId, f32)> {
        search(
            &self.search_graph,
            &self.base,
            &self.metric,
            q,
            self.search_params(l),
        )
        .neighbors
    }

    /// Parallel batch query.
    pub fn query_batch(&self, queries: &PointSet<P>, l: usize) -> BatchResult {
        search_batch(
            &self.search_graph,
            &self.base,
            &self.metric,
            queries,
            self.search_params(l),
        )
    }

    /// Add points (the Section 7 future-work path): extend the base, run a
    /// short refinement, re-derive the search graph.
    pub fn insert(&mut self, new_points: Vec<P>, refine_iters: usize) {
        if new_points.is_empty() {
            return;
        }
        let mut points = self.base.points().to_vec();
        points.extend(new_points);
        let grown = PointSet::new(points);
        let descent = NnDescentParams {
            k: self.params.k,
            ..self.params.descent
        };
        let (knng, stats) = insert_points(
            &self.knng,
            &self.base,
            &grown,
            &self.metric,
            descent,
            refine_iters,
        );
        self.search_graph = Self::optimize_graph(&knng, &grown, &self.metric, &self.params);
        self.knng = knng;
        self.base = grown;
        self.stats = stats;
    }

    /// Persist the graphs under `prefix` (the base set persists via
    /// [`PointSet`]'s own savers, which are element-type specific).
    pub fn save_graphs(&self, store: &mut Store, prefix: &str) -> StoreResult<()> {
        self.knng.save(store, &format!("{prefix}/knng"))?;
        self.search_graph.save(store, &format!("{prefix}/search"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::ground_truth::{brute_force_knng, brute_force_queries};
    use dataset::metric::{Jaccard, L2};
    use dataset::recall::mean_recall;
    use dataset::synth::{gaussian_mixture, split_queries, MixtureParams};

    #[test]
    fn end_to_end_quality() {
        let full = gaussian_mixture(MixtureParams::embedding_like(900, 12), 3);
        let (base, queries) = split_queries(full, 60);
        let truth = brute_force_queries(&base, &queries, &L2, 10);
        let index = NnIndex::build(base, L2, IndexParams::new(10).seed(1).epsilon(0.2));
        let batch = index.query_batch(&queries, 10);
        let recall = mean_recall(&batch.ids, &truth);
        assert!(recall > 0.9, "index recall {recall}");
    }

    #[test]
    fn rp_forest_init_works_for_f32_and_u8() {
        let f = gaussian_mixture(MixtureParams::embedding_like(400, 8), 5);
        let idx = NnIndex::build(
            f,
            L2,
            IndexParams::new(6).seed(2).init(InitStrategy::RpForest),
        );
        assert!(idx.stats.iterations >= 1);
        let u = dataset::presets::bigann_like(300, 5);
        let idx = NnIndex::build(
            u,
            L2,
            IndexParams::new(6).seed(2).init(InitStrategy::RpForest),
        );
        assert!(idx.stats.iterations >= 1);
    }

    #[test]
    fn sparse_falls_back_to_random_init() {
        let s = dataset::presets::kosarak_like(200, 7);
        let truth = brute_force_knng(&s, &Jaccard, 5);
        let idx = NnIndex::build(
            s,
            Jaccard,
            IndexParams::new(5).seed(3).init(InitStrategy::RpForest),
        );
        let recall = mean_recall(&idx.knng().neighbor_ids(), &truth);
        assert!(recall > 0.5, "sparse index recall {recall}");
    }

    #[test]
    fn member_query_finds_itself() {
        let base = gaussian_mixture(MixtureParams::embedding_like(500, 8), 9);
        let index = NnIndex::build(base, L2, IndexParams::new(8).seed(4));
        let hits = index.query(index.base().point(123), 5);
        assert_eq!(hits[0].0, 123);
        assert_eq!(hits[0].1, 0.0);
    }

    #[test]
    fn diversified_search_graph_is_sparser() {
        let base = gaussian_mixture(MixtureParams::embedding_like(600, 10), 11);
        let plain = NnIndex::build(base.clone(), L2, IndexParams::new(10).seed(5));
        let slim = NnIndex::build(base, L2, IndexParams::new(10).seed(5).diversify(0.3));
        assert!(slim.search_graph().edge_count() <= plain.search_graph().edge_count());
    }

    #[test]
    fn insert_grows_index_and_keeps_quality() {
        let full = gaussian_mixture(MixtureParams::embedding_like(700, 10), 13);
        let initial = PointSet::new(full.points()[..500].to_vec());
        let extra = full.points()[500..].to_vec();
        let mut index = NnIndex::build(initial, L2, IndexParams::new(8).seed(6).epsilon(0.2));
        index.insert(extra, 3);
        assert_eq!(index.base().len(), 700);
        let truth = brute_force_knng(&full, &L2, 8);
        let recall = mean_recall(&index.knng().neighbor_ids(), &truth);
        assert!(recall > 0.9, "post-insert recall {recall}");
        // Queries work against the grown index, including new points.
        let hits = index.query(full.point(650), 3);
        assert_eq!(hits[0].0, 650);
    }

    #[test]
    fn save_graphs_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "nnd-index-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let base = gaussian_mixture(MixtureParams::embedding_like(300, 8), 15);
        let index = NnIndex::build(base, L2, IndexParams::new(6).seed(7));
        let mut store = Store::create(&dir).unwrap();
        index.save_graphs(&mut store, "idx").unwrap();
        let knng = KnnGraph::load(&store, "idx/knng").unwrap();
        let search_g = KnnGraph::load(&store, "idx/search").unwrap();
        assert_eq!(&knng, index.knng());
        assert_eq!(&search_g, index.search_graph());
        Store::destroy(&dir).unwrap();
    }
}
