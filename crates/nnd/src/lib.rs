//! # nnd — shared-memory NN-Descent and k-NNG tooling
//!
//! The single-node half of the DNND reproduction:
//!
//! * [`heap`] — the bounded per-vertex neighbor heap (`G[v]` of Algorithm 1);
//! * [`nndescent`] — NN-Descent construction (Dong et al. WWW'11, with
//!   PyNNDescent's sampling discipline), parallelized with rayon;
//! * [`graph`] — the [`KnnGraph`] output type, the Section 4.5 graph
//!   optimizations (reverse-edge merge + degree pruning), and persistence
//!   into a [`metall::Store`];
//! * [`mod@search`] — the Section 3.3 greedy ANN search with PyNNDescent's
//!   `epsilon` relaxation, plus a parallel batch driver;
//! * [`rptree`] — random-projection-forest initialization (extension);
//! * [`refine`] — incremental insert/remove with short refinement passes
//!   (the paper's Section 7 future work);
//! * [`mod@diversify`] — PyNNDescent's occlusion pruning of search graphs
//!   (extension);
//! * [`rnn`] — RNN-Descent (relative-neighborhood descent with occlusion
//!   pruning, after GRNND / `mini_rnn`): the second graph-optimization
//!   mode, producing sparser graphs at equal recall (extension).
//!
//! The distributed engine in the `dnnd` crate reuses [`heap`] and [`graph`]
//! so the two implementations differ only in *where* vertices live and how
//! neighbor checks travel.
//!
//! ```
//! use dataset::{synth, L2};
//! use nnd::{build, NnDescentParams, search, SearchParams};
//!
//! let set = synth::uniform(500, 8, 42);
//! let (graph, stats) = build(&set, &L2, NnDescentParams::new(10));
//! assert!(stats.iterations >= 1);
//!
//! let optimized = graph.optimize(10, 1.5);
//! let result = search(&optimized, &set, &L2, set.point(0), SearchParams::new(5));
//! assert_eq!(result.neighbors[0].0, 0); // a member query finds itself
//! ```

pub mod diversify;
pub mod graph;
pub mod heap;
pub mod index;
pub mod nndescent;
pub mod refine;
pub mod rnn;
pub mod rptree;
pub mod search;
pub mod searcher;

pub use diversify::diversify;
pub use graph::{Edge, KnnGraph};
pub use heap::{Neighbor, NeighborHeap};
pub use index::{IndexParams, InitStrategy, NnIndex};
pub use nndescent::{build, build_traced, build_with_init, BuildStats, NnDescentParams};
pub use refine::{insert_points, remove_points};
pub use rnn::{rnn_optimize, RnnParams, RnnStats};
pub use rptree::{rp_forest_candidates, RpForestParams};
pub use search::{
    search, search_batch, search_batch_traced, BatchResult, SearchParams, SearchResult,
};
pub use searcher::Searcher;
