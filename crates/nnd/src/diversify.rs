//! Graph diversification — PyNNDescent's occlusion pruning.
//!
//! The paper's Section 4.5 implements two of PyNNDescent's graph
//! optimizations (reverse-edge merge, degree pruning). PyNNDescent applies
//! a third before searching: *diversify* the neighbor lists by removing
//! occluded edges. Scanning a vertex's neighbors in ascending distance, an
//! edge `v -> w` is dropped when some already-kept closer neighbor `u`
//! satisfies `theta(u, w) < prune_prob * theta(v, w)` — `w` is reachable
//! through `u` anyway, so the direct edge buys little and costs search
//! fan-out. This is the relative-neighborhood-graph heuristic that HNSW's
//! select-neighbors rule also approximates.
//!
//! Provided as an extension; composes with [`crate::graph::KnnGraph::
//! merge_reverse`] exactly like PyNNDescent's pipeline (merge, diversify,
//! prune).

use crate::graph::{Edge, KnnGraph};
use dataset::batch::BatchMetric;
use dataset::point::Point;
use dataset::set::{PointId, PointSet};
use rayon::prelude::*;

/// Diversify every neighbor list of `graph`. `keep_ratio` in `(0, 1]`
/// corresponds to PyNNDescent's `1 / pruning_degree_multiplier` safety: a
/// minimum fraction of each list that is always kept (closest first) no
/// matter how aggressive the occlusion test is.
pub fn diversify<P: Point, M: BatchMetric<P>>(
    graph: &KnnGraph,
    base: &PointSet<P>,
    metric: &M,
    keep_ratio: f64,
) -> KnnGraph {
    assert_eq!(graph.len(), base.len(), "graph and base set disagree on N");
    assert!((0.0..=1.0).contains(&keep_ratio));
    let rows: Vec<Vec<Edge>> = (0..graph.len() as PointId)
        .into_par_iter()
        .map(|v| {
            let row = graph.neighbors(v);
            let min_keep = ((row.len() as f64 * keep_ratio).ceil() as usize).max(1);
            let mut kept: Vec<Edge> = Vec::with_capacity(row.len());
            for &(w, d_vw) in row {
                let occluded = kept.len() >= min_keep
                    && kept
                        .iter()
                        .any(|&(u, _)| metric.distance(base.point(u), base.point(w)) < d_vw);
                if !occluded {
                    kept.push((w, d_vw));
                }
            }
            kept
        })
        .collect();
    KnnGraph::from_rows(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nndescent::{build, NnDescentParams};
    use crate::search::{search_batch, SearchParams};
    use dataset::ground_truth::brute_force_queries;
    use dataset::metric::L2;
    use dataset::recall::mean_recall;
    use dataset::synth::{gaussian_mixture, split_queries, MixtureParams};

    #[test]
    fn removes_occluded_collinear_edge() {
        // Points on a line: 0 -- 1 -- 2. Vertex 0's edge to 2 is occluded
        // by the closer neighbor 1 (d(1,2)=1 < d(0,2)=2).
        let base = PointSet::new(vec![vec![0.0f32], vec![1.0], vec![2.0]]);
        let g = KnnGraph::from_rows(vec![
            vec![(1, 1.0), (2, 2.0)],
            vec![(0, 1.0), (2, 1.0)],
            vec![(1, 1.0), (0, 2.0)],
        ]);
        let d = diversify(&g, &base, &L2, 0.0);
        assert_eq!(d.neighbors(0), &[(1, 1.0)]);
        // 1's neighbors are both at distance 1 from it and distance 2 from
        // each other: nothing occluded.
        assert_eq!(d.neighbors(1).len(), 2);
    }

    #[test]
    fn keep_ratio_one_is_identity() {
        let base = dataset::synth::uniform(100, 4, 3);
        let (g, _) = build(&base, &L2, NnDescentParams::new(6).seed(1));
        let d = diversify(&g, &base, &L2, 1.0);
        assert_eq!(d, g);
    }

    #[test]
    fn never_empties_a_nonempty_row() {
        let base = dataset::synth::uniform(150, 4, 5);
        let (g, _) = build(&base, &L2, NnDescentParams::new(8).seed(2));
        let d = diversify(&g.merge_reverse(), &base, &L2, 0.0);
        for v in 0..d.len() as PointId {
            assert!(!d.neighbors(v).is_empty(), "row {v} emptied");
        }
    }

    #[test]
    fn reduces_edges_on_clustered_data() {
        let base = gaussian_mixture(MixtureParams::embedding_like(500, 8), 7);
        let (g, _) = build(&base, &L2, NnDescentParams::new(10).seed(3));
        let merged = g.merge_reverse();
        let d = diversify(&merged, &base, &L2, 0.3);
        assert!(
            d.edge_count() < merged.edge_count(),
            "diversify removed nothing: {} vs {}",
            d.edge_count(),
            merged.edge_count()
        );
    }

    #[test]
    fn search_on_diversified_graph_is_cheaper_at_similar_recall() {
        let set = gaussian_mixture(MixtureParams::embedding_like(1200, 12), 11);
        let (base, queries) = split_queries(set, 60);
        let (g, _) = build(&base, &L2, NnDescentParams::new(10).seed(4));
        let merged = g.merge_reverse();
        let slim = diversify(&merged, &base, &L2, 0.25);
        let truth = brute_force_queries(&base, &queries, &L2, 10);
        let p = SearchParams::new(10).epsilon(0.2).entry_candidates(32);
        let full_run = search_batch(&merged, &base, &L2, &queries, p);
        let slim_run = search_batch(&slim, &base, &L2, &queries, p);
        let r_full = mean_recall(&full_run.ids, &truth);
        let r_slim = mean_recall(&slim_run.ids, &truth);
        assert!(
            r_slim > r_full - 0.05,
            "diversify cost too much recall: {r_full} -> {r_slim}"
        );
        assert!(
            slim_run.distance_evals < full_run.distance_evals,
            "diversified graph should reduce search work: {} vs {}",
            slim_run.distance_evals,
            full_run.distance_evals
        );
    }

    #[test]
    #[should_panic(expected = "graph and base set disagree")]
    fn size_mismatch_rejected() {
        let base = dataset::synth::uniform(10, 2, 1);
        let g = KnnGraph::from_rows(vec![vec![]]);
        let _ = diversify(&g, &base, &L2, 0.5);
    }
}
