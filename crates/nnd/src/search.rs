//! Greedy best-first ANN search on a k-NNG — the query algorithm of
//! Section 3.3, including PyNNDescent's `epsilon` frontier relaxation.
//!
//! The paper's query program is shared-memory (256 OpenMP threads); here
//! [`search_batch`] parallelizes over queries with rayon and reports
//! throughput, which is what Figure 2's qps axis measures.

use crate::graph::KnnGraph;
use dataset::batch::{BatchMetric, NormCache};
use dataset::order::OrdF32;
use dataset::point::Point;
use dataset::set::{PointId, PointSet};
use rand::seq::index::sample as index_sample;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Query-time parameters.
#[derive(Debug, Clone, Copy)]
pub struct SearchParams {
    /// Number of nearest neighbors to return (`l`; may exceed the graph's
    /// `k`).
    pub l: usize,
    /// Frontier relaxation: a visited point enters the frontier if
    /// `dist < (1 + epsilon) * d_max`. `0.0` is pure greedy; the paper
    /// sweeps `0.1..=0.4` step `0.025` for the billion-scale evaluation.
    pub epsilon: f32,
    /// Seed for the random entry points.
    pub seed: u64,
    /// Number of random entry points probed before the descent starts
    /// (clamped to at least `l`). The paper's Section 3.3 algorithm uses
    /// exactly `l` random starts; on strongly clustered data a k-NNG has
    /// few cross-cluster edges, so greedy descent can only reach clusters
    /// an entry point landed in. Raising this is the multi-start analogue
    /// of PyNNDescent's RP-tree entry-point selection.
    pub entry_candidates: usize,
}

impl SearchParams {
    /// Pure greedy search for `l` neighbors.
    pub fn new(l: usize) -> Self {
        SearchParams {
            l,
            epsilon: 0.0,
            seed: 0xCAFE,
            entry_candidates: 0,
        }
    }

    /// Set `epsilon`.
    pub fn epsilon(mut self, e: f32) -> Self {
        assert!(e >= 0.0);
        self.epsilon = e;
        self
    }

    /// Set the entry-point seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Probe `n` random entry points (at least `l` are always used).
    pub fn entry_candidates(mut self, n: usize) -> Self {
        self.entry_candidates = n;
        self
    }
}

/// Result of one query: neighbors ascending by `(distance, id)` plus the
/// number of distance evaluations spent.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Up to `l` nearest neighbors found, closest first.
    pub neighbors: Vec<(PointId, f32)>,
    /// Distance evaluations performed for this query.
    pub distance_evals: u64,
}

impl SearchResult {
    /// Neighbor ids only.
    pub fn ids(&self) -> Vec<PointId> {
        self.neighbors.iter().map(|&(id, _)| id).collect()
    }
}

/// Search the graph for the `params.l` approximate nearest neighbors of
/// `query`. The query need not be a member of `base`.
pub fn search<P: Point, M: BatchMetric<P>>(
    graph: &KnnGraph,
    base: &PointSet<P>,
    metric: &M,
    query: &P,
    params: SearchParams,
) -> SearchResult {
    search_with_cache(graph, base, metric, query, params, &NormCache::empty())
}

/// [`search`] against a precomputed [`NormCache`] for `base` (built with
/// `metric.preprocess(base)`), so batch runs amortize norm computation.
/// Results are bit-identical with or without the cache.
pub fn search_with_cache<P: Point, M: BatchMetric<P>>(
    graph: &KnnGraph,
    base: &PointSet<P>,
    metric: &M,
    query: &P,
    params: SearchParams,
    cache: &NormCache,
) -> SearchResult {
    let n = base.len();
    assert_eq!(graph.len(), n, "graph and base set disagree on N");
    assert!(params.l >= 1 && params.l <= n);
    let mut evals: u64 = 0;
    let mut visited = vec![false; n];

    // Result: max-heap of the best l so far (farthest on top).
    let mut best: BinaryHeap<(OrdF32, PointId)> = BinaryHeap::with_capacity(params.l + 1);
    // Frontier: min-heap of candidates to expand.
    let mut frontier: BinaryHeap<Reverse<(OrdF32, PointId)>> = BinaryHeap::new();

    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
    let starts = params.l.max(params.entry_candidates).min(n);
    let mut cands: Vec<PointId> = Vec::new();
    let mut dbuf: Vec<f32> = Vec::new();
    for idx in index_sample(&mut rng, n, starts) {
        visited[idx] = true;
        cands.push(idx as PointId);
    }
    // Seed probes evaluated as one 1xN batch.
    metric.distance_one_to_many(query, base, cache, &cands, &mut dbuf);
    evals += cands.len() as u64;
    for (&id, &d) in cands.iter().zip(&dbuf) {
        best.push((OrdF32(d), id));
        frontier.push(Reverse((OrdF32(d), id)));
    }
    while best.len() > params.l {
        best.pop();
    }

    let relax = 1.0 + params.epsilon;
    while let Some(Reverse((OrdF32(d), p))) = frontier.pop() {
        let d_max = best.peek().map_or(f32::INFINITY, |&(OrdF32(m), _)| m);
        // Termination: the closest frontier point is already beyond the
        // (relaxed) worst of the current l best.
        if d > relax * d_max {
            break;
        }
        // One expansion = one 1xN batch over the unvisited neighbors of
        // `p`; admission then replays in the original neighbor order (the
        // evolving d_max sees candidates exactly as the scalar loop did).
        cands.clear();
        cands.extend(
            graph
                .neighbors(p)
                .iter()
                .map(|&(w, _)| w)
                .filter(|&w| !std::mem::replace(&mut visited[w as usize], true)),
        );
        metric.distance_one_to_many(query, base, cache, &cands, &mut dbuf);
        evals += cands.len() as u64;
        for (&w, &dw) in cands.iter().zip(&dbuf) {
            let d_max = best.peek().map_or(f32::INFINITY, |&(OrdF32(m), _)| m);
            if best.len() < params.l || dw < d_max {
                best.push((OrdF32(dw), w));
                if best.len() > params.l {
                    best.pop();
                }
            }
            // Relaxed admission (PyNNDescent): explore borderline points.
            if dw < relax * d_max {
                frontier.push(Reverse((OrdF32(dw), w)));
            }
        }
    }

    let mut neighbors: Vec<(PointId, f32)> =
        best.into_iter().map(|(OrdF32(d), id)| (id, d)).collect();
    neighbors.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    SearchResult {
        neighbors,
        distance_evals: evals,
    }
}

/// Timing and quality summary of a parallel batch of queries.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-query neighbor id lists, query order.
    pub ids: Vec<Vec<PointId>>,
    /// Wall-clock seconds for the whole batch.
    pub secs: f64,
    /// Queries per second (the paper's qps axis in Figure 2).
    pub qps: f64,
    /// Total distance evaluations across the batch.
    pub distance_evals: u64,
}

/// Run every query in `queries` in parallel (the paper submits all queries
/// at once on 256 threads).
pub fn search_batch<P: Point, M: BatchMetric<P>>(
    graph: &KnnGraph,
    base: &PointSet<P>,
    metric: &M,
    queries: &PointSet<P>,
    params: SearchParams,
) -> BatchResult {
    search_batch_traced(graph, base, metric, queries, params, None)
}

/// [`search_batch`] with an optional tracer: wraps the batch in a
/// `search_batch` span (track 0) and records a `query_dist_evals`
/// histogram sample per query.
pub fn search_batch_traced<P: Point, M: BatchMetric<P>>(
    graph: &KnnGraph,
    base: &PointSet<P>,
    metric: &M,
    queries: &PointSet<P>,
    params: SearchParams,
    tracer: Option<&obs::Tracer>,
) -> BatchResult {
    if let Some(t) = tracer {
        t.begin_arg(0, "search_batch", t.wall_ns(), queries.len() as u64);
    }
    let evals = AtomicU64::new(0);
    // Norms computed once for the whole batch; per-query results stay
    // bit-identical to uncached single-query `search`.
    let cache = metric.preprocess(base);
    let start = std::time::Instant::now();
    let ids: Vec<Vec<PointId>> = queries
        .points()
        .par_iter()
        .enumerate()
        .map(|(qi, q)| {
            let r = search_with_cache(
                graph,
                base,
                metric,
                q,
                SearchParams {
                    seed: params.seed ^ ((qi as u64) << 17),
                    ..params
                },
                &cache,
            );
            evals.fetch_add(r.distance_evals, Ordering::Relaxed);
            if let Some(t) = tracer {
                t.hist("query_dist_evals").record(r.distance_evals);
            }
            r.ids()
        })
        .collect();
    let secs = start.elapsed().as_secs_f64();
    if let Some(t) = tracer {
        t.end(0, "search_batch", t.wall_ns());
    }
    BatchResult {
        ids,
        qps: queries.len() as f64 / secs.max(1e-12),
        secs,
        distance_evals: evals.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nndescent::{build, NnDescentParams};
    use dataset::ground_truth::brute_force_queries;
    use dataset::metric::L2;
    use dataset::recall::mean_recall;
    use dataset::synth::{gaussian_mixture, split_queries, uniform, MixtureParams};

    fn small_graph() -> (PointSet<Vec<f32>>, KnnGraph) {
        let set = uniform(300, 4, 3);
        let (g, _) = build(&set, &L2, NnDescentParams::new(10).seed(1));
        (set, g)
    }

    #[test]
    fn returns_l_sorted_neighbors() {
        let (set, g) = small_graph();
        let r = search(&g, &set, &L2, set.point(0), SearchParams::new(5));
        assert_eq!(r.neighbors.len(), 5);
        assert!(r.neighbors.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn member_query_finds_itself() {
        let (set, g) = small_graph();
        let r = search(&g, &set, &L2, set.point(42), SearchParams::new(3));
        assert_eq!(r.neighbors[0].0, 42);
        assert_eq!(r.neighbors[0].1, 0.0);
    }

    #[test]
    fn l_may_exceed_graph_k() {
        let (set, g) = small_graph();
        let r = search(&g, &set, &L2, set.point(7), SearchParams::new(25));
        assert_eq!(r.neighbors.len(), 25);
    }

    #[test]
    fn search_visits_far_fewer_points_than_n() {
        let set = gaussian_mixture(MixtureParams::embedding_like(2000, 8), 5);
        let (g, _) = build(&set, &L2, NnDescentParams::new(10).seed(2));
        let opt = g.optimize(10, 1.5);
        let r = search(&opt, &set, &L2, set.point(100), SearchParams::new(10));
        assert!(
            r.distance_evals < 2000 / 2,
            "visited {} of 2000",
            r.distance_evals
        );
    }

    #[test]
    fn epsilon_zero_vs_relaxed_quality() {
        // Larger epsilon explores more, so recall must not decrease and
        // distance evals must not shrink.
        let set = gaussian_mixture(MixtureParams::embedding_like(1500, 12), 8);
        let (base, queries) = split_queries(set, 50);
        let (g, _) = build(&base, &L2, NnDescentParams::new(10).seed(4));
        let opt = g.optimize(10, 1.5);
        let truth = brute_force_queries(&base, &queries, &L2, 10);

        let tight = search_batch(&opt, &base, &L2, &queries, SearchParams::new(10));
        let relaxed = search_batch(
            &opt,
            &base,
            &L2,
            &queries,
            SearchParams::new(10).epsilon(0.3),
        );
        let r_tight = mean_recall(&tight.ids, &truth);
        let r_relaxed = mean_recall(&relaxed.ids, &truth);
        assert!(
            r_relaxed >= r_tight - 0.02,
            "epsilon hurt recall: {r_tight} -> {r_relaxed}"
        );
        assert!(relaxed.distance_evals >= tight.distance_evals);
        assert!(r_relaxed > 0.85, "relaxed recall {r_relaxed}");
    }

    #[test]
    fn batch_matches_individual_queries() {
        let (set, g) = small_graph();
        let queries = PointSet::new(vec![set.point(1).clone(), set.point(2).clone()]);
        let batch = search_batch(&g, &set, &L2, &queries, SearchParams::new(4));
        assert_eq!(batch.ids.len(), 2);
        assert_eq!(batch.ids[0].len(), 4);
        // Each query's own id must appear first (distance 0).
        assert_eq!(batch.ids[0][0], 1);
        assert_eq!(batch.ids[1][0], 2);
        assert!(batch.qps > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (set, g) = small_graph();
        let q = set.point(5);
        let a = search(&g, &set, &L2, q, SearchParams::new(5).seed(9));
        let b = search(&g, &set, &L2, q, SearchParams::new(5).seed(9));
        assert_eq!(a, b);
    }

    #[test]
    fn entry_candidates_rescue_clustered_queries() {
        // 50 tight, well-separated clusters: a k-NNG has no cross-cluster
        // edges, so with only l random starts the query's cluster is often
        // missed entirely; multi-start entry probing fixes it.
        let set = gaussian_mixture(
            MixtureParams {
                n: 1_000,
                dim: 8,
                n_clusters: 50,
                center_spread: 40.0,
                cluster_std: 0.2,
            },
            3,
        );
        let (base, queries) = split_queries(set, 40);
        let (g, _) = build(&base, &L2, NnDescentParams::new(8).seed(1));
        let opt = g.optimize(8, 1.5);
        let truth = brute_force_queries(&base, &queries, &L2, 8);
        let few = search_batch(&opt, &base, &L2, &queries, SearchParams::new(8));
        let many = search_batch(
            &opt,
            &base,
            &L2,
            &queries,
            SearchParams::new(8).entry_candidates(200),
        );
        let r_few = mean_recall(&few.ids, &truth);
        let r_many = mean_recall(&many.ids, &truth);
        assert!(r_many > r_few, "multi-start must help: {r_few} -> {r_many}");
        assert!(r_many > 0.9, "multi-start recall {r_many}");
    }

    #[test]
    #[should_panic(expected = "graph and base set disagree")]
    fn mismatched_graph_and_base_panics() {
        let (set, _) = small_graph();
        let g = KnnGraph::from_rows(vec![vec![]]);
        let _ = search(&g, &set, &L2, set.point(0), SearchParams::new(1));
    }
}
