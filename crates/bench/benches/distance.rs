//! Criterion micro-benchmarks for the distance kernels — the inner loop of
//! every neighbor check. Dimensions match the paper's datasets (GloVe 25,
//! Last.fm 65, DEEP 96, BigANN 128, NYTimes 256, MNIST 784).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dataset::metric::{Cosine, Jaccard, Metric, SquaredL2, L2};
use dataset::synth::{sparse_powerlaw, uniform, SparseParams};

fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_dense_f32");
    for dim in [25usize, 65, 96, 128, 256, 784] {
        let set = uniform(2, dim, 7);
        let a = set.point(0);
        let b = set.point(1);
        group.bench_with_input(BenchmarkId::new("l2", dim), &dim, |bench, _| {
            bench.iter(|| Metric::<Vec<f32>>::distance(&L2, black_box(a), black_box(b)))
        });
        group.bench_with_input(BenchmarkId::new("sq_l2", dim), &dim, |bench, _| {
            bench.iter(|| SquaredL2.distance(black_box(a), black_box(b)))
        });
        group.bench_with_input(BenchmarkId::new("cosine", dim), &dim, |bench, _| {
            bench.iter(|| Cosine.distance(black_box(a), black_box(b)))
        });
    }
    group.finish();
}

fn bench_u8(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_dense_u8");
    for dim in [96usize, 128] {
        let a: Vec<u8> = (0..dim).map(|i| (i % 251) as u8).collect();
        let b: Vec<u8> = (0..dim).map(|i| ((i * 7) % 251) as u8).collect();
        group.bench_with_input(BenchmarkId::new("l2_u8", dim), &dim, |bench, _| {
            bench.iter(|| Metric::<Vec<u8>>::distance(&L2, black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_jaccard(c: &mut Criterion) {
    let set = sparse_powerlaw(SparseParams::kosarak_like(2), 3);
    let a = set.point(0);
    let b = set.point(1);
    c.bench_function("distance_jaccard_kosarak_like", |bench| {
        bench.iter(|| Jaccard.distance(black_box(a), black_box(b)))
    });
}

fn fast_config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_dense, bench_u8, bench_jaccard
}
criterion_main!(benches);
