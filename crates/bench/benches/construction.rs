//! Criterion end-to-end construction benchmarks: shared-memory NN-Descent,
//! distributed DNND (optimized and unoptimized protocols), and the HNSW
//! baseline, on one small DEEP-like workload. These are the microscale
//! versions of Figure 3's measurements.

use criterion::{criterion_group, criterion_main, Criterion};
use dataset::metric::L2;
use dataset::presets;
use dnnd::{build as dnnd_build, CommOpts, DnndConfig};
use hnsw::{HnswIndex, HnswParams};
use nnd::{build as nnd_build, NnDescentParams};
use std::sync::Arc;
use ygm::World;

const N: usize = 400;
const K: usize = 10;

fn bench_shared_memory(c: &mut Criterion) {
    let set = presets::deep1b_like(N, 3);
    let mut group = c.benchmark_group("construction");
    group.bench_function("nnd_shared_memory", |b| {
        b.iter(|| nnd_build(&set, &L2, NnDescentParams::new(K).seed(1)))
    });
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let set = Arc::new(presets::deep1b_like(N, 3));
    let mut group = c.benchmark_group("construction");
    group.bench_function("dnnd_4ranks_optimized", |b| {
        b.iter(|| {
            dnnd_build(
                &World::new(4),
                &set,
                &L2,
                DnndConfig::new(K).seed(1).comm_opts(CommOpts::optimized()),
            )
        })
    });
    group.bench_function("dnnd_4ranks_unoptimized", |b| {
        b.iter(|| {
            dnnd_build(
                &World::new(4),
                &set,
                &L2,
                DnndConfig::new(K)
                    .seed(1)
                    .comm_opts(CommOpts::unoptimized()),
            )
        })
    });
    group.finish();
}

fn bench_hnsw(c: &mut Criterion) {
    let set = presets::deep1b_like(N, 3);
    let mut group = c.benchmark_group("construction");
    group.bench_function("hnsw_m16_efc50", |b| {
        b.iter(|| HnswIndex::build(&set, L2, HnswParams::new(16, 50).seed(1)))
    });
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_shared_memory, bench_distributed, bench_hnsw
}
criterion_main!(benches);
