//! Criterion micro-benchmarks for the bounded neighbor heap — the data
//! structure every neighbor-check update (Algorithm 1's `Update`) hits.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nnd::NeighborHeap;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn bench_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbor_heap_insert");
    for k in [10usize, 30, 100] {
        // Pre-generate a realistic candidate stream: mostly rejected once
        // the heap saturates, as in late NN-Descent iterations.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let stream: Vec<(u32, f32)> = (0..1_000)
            .map(|_| (rng.gen_range(0..5_000), rng.gen::<f32>()))
            .collect();
        group.bench_with_input(BenchmarkId::new("stream_1k", k), &k, |bench, &k| {
            bench.iter(|| {
                let mut h = NeighborHeap::new(k);
                for &(id, d) in &stream {
                    black_box(h.checked_insert(id, d, true));
                }
                h.len()
            })
        });
    }
    group.finish();
}

fn bench_sample_path(c: &mut Criterion) {
    // The per-iteration flag scan + sorted extraction.
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut h = NeighborHeap::new(30);
    for _ in 0..200 {
        h.checked_insert(rng.gen_range(0..10_000), rng.gen::<f32>(), rng.gen());
    }
    c.bench_function("neighbor_heap_flag_scan_and_sort", |bench| {
        bench.iter(|| {
            let news = h.flagged_ids(true);
            let sorted = h.sorted();
            black_box((news.len(), sorted.len()))
        })
    });
}

fn fast_config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_inserts, bench_sample_path
}
criterion_main!(benches);
