//! Criterion benchmarks of the simulated YGM runtime: fire-and-forget RPC
//! throughput, barrier cost, and the effect of the aggregation-buffer flush
//! threshold (the knob behind the paper's Section 4.4 discussion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::cell::RefCell;
use std::rc::Rc;
use ygm::World;

const TAG: u16 = 0;

fn rpc_round(n_ranks: usize, msgs_per_rank: u64, flush: usize) -> u64 {
    let report = World::new(n_ranks).flush_threshold(flush).run(move |comm| {
        let hits = Rc::new(RefCell::new(0u64));
        let h = Rc::clone(&hits);
        comm.register::<u64, _>(TAG, move |_, _| *h.borrow_mut() += 1);
        for i in 0..msgs_per_rank {
            comm.async_send((i as usize) % comm.n_ranks(), TAG, &i);
        }
        comm.barrier();
        let n = *hits.borrow();
        n
    });
    report.results.iter().sum()
}

fn bench_rpc_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("ygm_rpc_round");
    for ranks in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("10k_msgs", ranks), &ranks, |b, &r| {
            b.iter(|| rpc_round(r, 10_000 / r as u64, ygm::DEFAULT_FLUSH_THRESHOLD))
        });
    }
    group.finish();
}

fn bench_flush_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("ygm_flush_threshold");
    for flush in [256usize, 4 * 1024, 64 * 1024] {
        group.bench_with_input(BenchmarkId::new("4ranks_10k", flush), &flush, |b, &f| {
            b.iter(|| rpc_round(4, 2_500, f))
        });
    }
    group.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("ygm_barrier");
    for ranks in [2usize, 8] {
        group.bench_with_input(BenchmarkId::new("empty", ranks), &ranks, |b, &r| {
            b.iter(|| {
                World::new(r).run(|comm| {
                    for _ in 0..10 {
                        comm.barrier();
                    }
                })
            })
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_rpc_throughput, bench_flush_threshold, bench_barrier
}
criterion_main!(benches);
