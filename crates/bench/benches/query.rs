//! Criterion benchmarks of the query path: one-shot [`nnd::search`] vs the
//! buffer-reusing [`nnd::Searcher`], and the epsilon sweep's cost shape
//! (the per-point version of Figure 2's qps axis).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dataset::metric::L2;
use dataset::presets;
use nnd::{build, search, NnDescentParams, SearchParams, Searcher};

fn setup() -> (dataset::PointSet<Vec<f32>>, nnd::KnnGraph) {
    let set = presets::deep1b_like(2_000, 3);
    let (g, _) = build(&set, &L2, NnDescentParams::new(10).seed(1));
    (set, g.optimize(10, 1.5))
}

fn bench_search_vs_searcher(c: &mut Criterion) {
    let (set, graph) = setup();
    let params = SearchParams::new(10).epsilon(0.2).entry_candidates(32);
    let mut group = c.benchmark_group("query_path");
    group.bench_function("one_shot_search", |b| {
        let mut qi = 0u32;
        b.iter(|| {
            qi = (qi + 7) % set.len() as u32;
            black_box(search(&graph, &set, &L2, set.point(qi), params))
        })
    });
    group.bench_function("reused_searcher", |b| {
        let mut searcher = Searcher::new(set.len());
        let mut qi = 0u32;
        b.iter(|| {
            qi = (qi + 7) % set.len() as u32;
            black_box(searcher.search(&graph, &set, &L2, set.point(qi), params))
        })
    });
    group.finish();
}

fn bench_epsilon_cost(c: &mut Criterion) {
    let (set, graph) = setup();
    let mut group = c.benchmark_group("query_epsilon");
    for eps in [0.0f32, 0.2, 0.4] {
        let params = SearchParams::new(10).epsilon(eps).entry_candidates(32);
        group.bench_with_input(
            BenchmarkId::new("eps", format!("{eps:.1}")),
            &eps,
            |b, _| {
                let mut searcher = Searcher::new(set.len());
                let mut qi = 0u32;
                b.iter(|| {
                    qi = (qi + 11) % set.len() as u32;
                    black_box(searcher.search(&graph, &set, &L2, set.point(qi), params))
                })
            },
        );
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_search_vs_searcher, bench_epsilon_cost
}
criterion_main!(benches);
