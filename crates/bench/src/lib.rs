//! Shared harness utilities for the per-table/per-figure benchmark
//! binaries: a tiny CLI parser, aligned-table printing, and CSV output.
//!
//! Every binary accepts `--n <points>`, `--queries <count>`, `--seed <u64>`
//! and `--out <dir>` (CSV destination, default `results/`), plus
//! binary-specific flags; `--full` bumps the scale toward (still laptop-
//! feasible) larger runs. Run e.g.:
//!
//! ```text
//! cargo run --release -p bench --bin fig4_messages -- --n 2000
//! ```

use std::collections::HashMap;
use std::fmt::Display;
use std::fs;
use std::path::{Path, PathBuf};

/// Minimal `--key value` / `--flag` argument parser.
#[derive(Debug, Clone)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse `std::env::args()`.
    pub fn parse() -> Self {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parse an explicit token stream (testable).
    pub fn from_tokens(tokens: impl IntoIterator<Item = String>) -> Self {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let toks: Vec<String> = tokens.into_iter().collect();
        let mut i = 0;
        while i < toks.len() {
            let t = &toks[i];
            if let Some(key) = t.strip_prefix("--") {
                if i + 1 < toks.len() && !toks[i + 1].starts_with("--") {
                    values.insert(key.to_owned(), toks[i + 1].clone());
                    i += 2;
                } else {
                    flags.push(key.to_owned());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Args { values, flags }
    }

    /// Typed lookup with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Typed lookup without a default: `None` when the key was not given.
    pub fn opt<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.values.get(key).and_then(|v| v.parse().ok())
    }

    /// Boolean flag presence.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Output directory for CSVs (`--out`, default `results/`).
    pub fn out_dir(&self) -> PathBuf {
        PathBuf::from(self.get::<String>("out", "results".into()))
    }
}

/// A printable/CSV-able table of rows.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (displayed values).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Render an aligned text table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        println!("\n== {} ==", self.title);
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        line(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<String>>(),
        );
        for row in &self.rows {
            line(row);
        }
    }

    /// Write as CSV into `dir/<name>.csv`.
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        fs::write(&path, out)?;
        Ok(path)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Format seconds as fractional "virtual hours" the way the paper's
/// Figure 3 axis does.
pub fn hours(secs: f64) -> String {
    format!("{:.3}", secs / 3600.0)
}

/// Format a ratio as a percentage.
pub fn pct(num: f64, den: f64) -> String {
    if den == 0.0 {
        "n/a".into()
    } else {
        format!("{:.1}%", 100.0 * num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::from_tokens(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_key_values_and_flags() {
        let a = args("--n 500 --full --seed 9");
        assert_eq!(a.get("n", 0usize), 500);
        assert_eq!(a.get("seed", 0u64), 9);
        assert!(a.flag("full"));
        assert!(!a.flag("missing"));
        assert_eq!(a.get("absent", 7i32), 7);
    }

    #[test]
    fn flag_at_end_without_value() {
        let a = args("--verbose");
        assert!(a.flag("verbose"));
    }

    #[test]
    fn malformed_value_falls_back_to_default() {
        let a = args("--n abc");
        assert_eq!(a.get("n", 42usize), 42);
    }

    #[test]
    fn table_roundtrip_to_csv() {
        let dir = std::env::temp_dir().join(format!(
            "bench-table-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&[&1, &"x"]);
        t.row(&[&2, &"y"]);
        assert_eq!(t.len(), 2);
        let path = t.write_csv(&dir, "demo").unwrap();
        let text = fs::read_to_string(path).unwrap();
        assert_eq!(text, "a,b\n1,x\n2,y\n");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&[&1]);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(hours(3600.0), "1.000");
        assert_eq!(pct(1.0, 2.0), "50.0%");
        assert_eq!(pct(1.0, 0.0), "n/a");
    }
}
