//! **Figure 4** — effectiveness of the neighbor-check communication-saving
//! techniques.
//!
//! The paper constructs k = 10 graphs for DEEP-1B and BigANN on 16 nodes
//! with the unoptimized (Type 1 + Type 2) and optimized (Type 1 +
//! Type 2+ + Type 3) protocols and reports that both the number of
//! messages (Fig. 4a) and the total message volume (Fig. 4b) drop by
//! about 50%, with BigANN's volume smaller than DEEP's because its
//! vectors are `u8`.
//!
//! This harness reproduces both panels at `--n` scale on `--ranks`
//! simulated ranks, printing per-tag breakdowns and the reduction ratios.

use bench::{pct, Args, Table};
use dataset::metric::L2;
use dataset::point::Point;
use dataset::presets;
use dataset::set::PointSet;
use dnnd::msgs::{TAG_TYPE1, TAG_TYPE2, TAG_TYPE2_PLUS, TAG_TYPE3};
use dnnd::{build, BuildReport, CommOpts, DnndConfig};
use std::sync::Arc;
use ygm::World;

fn run<P: Point, M: dataset::batch::BatchMetric<P>>(
    set: &Arc<PointSet<P>>,
    metric: &M,
    k: usize,
    ranks: usize,
    seed: u64,
    opts: CommOpts,
) -> BuildReport {
    let world = World::new(ranks);
    build(
        &world,
        set,
        metric,
        DnndConfig::new(k).seed(seed).comm_opts(opts),
    )
    .report
}

#[allow(clippy::too_many_arguments)]
fn report_dataset<P: Point, M: dataset::batch::BatchMetric<P>>(
    name: &str,
    set: PointSet<P>,
    metric: M,
    k: usize,
    ranks: usize,
    seed: u64,
    counts: &mut Table,
    volumes: &mut Table,
    tags: &mut Table,
) {
    println!("building {name} unoptimized...");
    let set = Arc::new(set);
    let unopt = run(&set, &metric, k, ranks, seed, CommOpts::unoptimized());
    println!("building {name} optimized...");
    let opt = run(&set, &metric, k, ranks, seed, CommOpts::optimized());

    let tu = unopt.check_traffic();
    let to = opt.check_traffic();
    counts.row(&[
        &name,
        &tu.count,
        &to.count,
        &pct(to.count as f64, tu.count as f64),
    ]);
    volumes.row(&[
        &name,
        &tu.bytes,
        &to.bytes,
        &pct(to.bytes as f64, tu.bytes as f64),
    ]);
    for (label, rep) in [("unoptimized", &unopt), ("optimized", &opt)] {
        for tag in [TAG_TYPE1, TAG_TYPE2, TAG_TYPE2_PLUS, TAG_TYPE3] {
            let s = rep.tag(tag);
            if s.count > 0 {
                let tag_name = match tag {
                    TAG_TYPE1 => "Type 1",
                    TAG_TYPE2 => "Type 2",
                    TAG_TYPE2_PLUS => "Type 2+",
                    _ => "Type 3",
                };
                tags.row(&[&name, &label, &tag_name, &s.count, &s.bytes]);
            }
        }
    }
}

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", if args.flag("full") { 4_000 } else { 1_500 });
    let k: usize = args.get("k", 10); // the paper's Figure 4 uses k = 10
    let ranks: usize = args.get("ranks", 16); // and 16 nodes
    let seed: u64 = args.get("seed", 9);

    println!("Figure 4 reproduction: n={n} k={k} ranks={ranks}");
    let mut counts = Table::new(
        "Figure 4a: neighbor-check messages (paper: optimized ~= 50% of unoptimized)",
        &[
            "Dataset",
            "Unoptimized",
            "Optimized",
            "Optimized/Unoptimized",
        ],
    );
    let mut volumes = Table::new(
        "Figure 4b: neighbor-check message volume in bytes (BigANN < DEEP: u8 vectors)",
        &[
            "Dataset",
            "Unoptimized",
            "Optimized",
            "Optimized/Unoptimized",
        ],
    );
    let mut tags = Table::new(
        "Per-tag breakdown",
        &["Dataset", "Protocol", "Tag", "Messages", "Bytes"],
    );

    report_dataset(
        "DEEP-like (96d f32)",
        presets::deep1b_like(n, seed),
        L2,
        k,
        ranks,
        seed,
        &mut counts,
        &mut volumes,
        &mut tags,
    );
    report_dataset(
        "BigANN-like (128d u8)",
        presets::bigann_like(n, seed),
        L2,
        k,
        ranks,
        seed,
        &mut counts,
        &mut volumes,
        &mut tags,
    );

    counts.print();
    volumes.print();
    tags.print();
    let dir = args.out_dir();
    counts.write_csv(&dir, "fig4a_messages").expect("csv");
    volumes.write_csv(&dir, "fig4b_volume").expect("csv");
    tags.write_csv(&dir, "fig4_tags").expect("csv");
    println!("\ncsv written to {}", dir.display());
}
