//! `dnnd-report-diff` — the RunReport regression gate.
//!
//! Compares a candidate report against a baseline metric-by-metric with
//! per-metric relative thresholds, prints an aligned delta table, and
//! exits nonzero when any gated metric regressed:
//!
//! ```text
//! dnnd-report-diff baseline.json candidate.json [--threshold 0.05] [--out results/]
//! ```
//!
//! Exit codes: `0` within thresholds, `1` regression detected, `2` usage
//! or I/O error. Virtual-clock metrics are gated (they are deterministic
//! under `--sim-seed`); `wall_secs` is reported but never gated because
//! real time depends on the host. `--threshold` overrides every gated
//! metric's threshold at once (tightening or loosening the whole gate).

use bench::{Args, Table};
use obs::RunReport;
use std::process::ExitCode;

/// How a metric's movement maps to "regressed".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Growth beyond the threshold regresses (times, message counts).
    HigherIsWorse,
    /// Shrinkage beyond the threshold regresses (recall).
    LowerIsWorse,
    /// Reported for context, never gated (wall clock, throughput).
    Info,
}

#[derive(Debug, Clone)]
struct MetricRow {
    name: String,
    base: f64,
    cand: f64,
    /// Relative threshold (0.05 = 5% movement allowed).
    threshold: f64,
    direction: Direction,
}

impl MetricRow {
    /// Signed relative delta `(cand - base) / base`; `None` when the
    /// baseline is zero and the candidate moved (infinite relative change).
    fn rel_delta(&self) -> Option<f64> {
        if self.base == 0.0 {
            if self.cand == 0.0 {
                Some(0.0)
            } else {
                None
            }
        } else {
            Some((self.cand - self.base) / self.base)
        }
    }

    fn regressed(&self) -> bool {
        let bad = match self.rel_delta() {
            // 0 -> nonzero: infinite relative growth.
            None => self.cand > self.base,
            Some(d) => match self.direction {
                Direction::HigherIsWorse => d > self.threshold,
                Direction::LowerIsWorse => -d > self.threshold,
                Direction::Info => false,
            },
        };
        bad && self.direction != Direction::Info
    }
}

/// Default per-metric relative thresholds. Counters of a deterministic
/// simulation get tight gates; virtual times a little slack (cost-model
/// tweaks shift them slightly); recall its own quality gate.
fn threshold_for(name: &str) -> (f64, Direction) {
    use Direction::*;
    match name {
        "wall_secs" => (0.0, Info),
        "recall" => (0.02, LowerIsWorse),
        "sim_secs" | "compute_secs" | "comm_secs" | "barrier_secs" => (0.10, HigherIsWorse),
        "iterations" => (0.0, HigherIsWorse),
        n if n.starts_with("faults.") => (0.0, HigherIsWorse),
        // RNN-Descent counters are bit-identical across reruns and rank
        // counts, so every one of them gates exactly: any drift means the
        // occlusion rule or round schedule changed.
        "rnn.rounds" | "rnn.reverse_added_total" => (0.0, HigherIsWorse),
        n if n.starts_with("rnn.") => (0.0, HigherIsWorse),
        // Serving SLOs: counters of the deterministic control plane gate
        // exactly; answered/cache-hit shrinkage is the regression side;
        // latency percentiles get slack for search-cost tweaks.
        "serving.answered" | "serving.cache_hits" => (0.0, LowerIsWorse),
        "serving.p50_ns" | "serving.p95_ns" | "serving.p99_ns" => (0.10, HigherIsWorse),
        // Client-perceived percentiles carry shed-retry time, so they get
        // the same slack as the answered-side percentiles.
        "serving.client_p50_ns" | "serving.client_p99_ns" => (0.10, HigherIsWorse),
        // Per-tenant SLO rows (`serving.tenant.<name>.<key>`): the
        // admission ladder is seed-deterministic, so shed/served counters
        // gate exactly per class; only the latency percentiles get slack.
        n if n.starts_with("serving.tenant.") => {
            if n.ends_with(".p50_ns") || n.ends_with(".p99_ns") {
                (0.10, HigherIsWorse)
            } else if n.ends_with(".answered")
                || n.ends_with(".admitted")
                || n.ends_with(".cache_hits")
                || n.ends_with(".slo_attainment")
            {
                (0.0, LowerIsWorse)
            } else {
                (0.0, HigherIsWorse)
            }
        }
        n if n.starts_with("serving.") => (0.0, HigherIsWorse),
        // Per-query forensics: the whole section is a pure function of
        // the serve seed, so every sampler counter gates exactly in both
        // directions (fewer retained records means the sampler lost
        // coverage); bit-identity of the records themselves is enforced
        // by the digest hard-check, not a relative threshold.
        "query_forensics.retained"
        | "query_forensics.retained_slow"
        | "query_forensics.retained_exemplar"
        | "query_forensics.considered" => (0.0, LowerIsWorse),
        n if n.starts_with("query_forensics.") => (0.0, HigherIsWorse),
        // Vector-DB product layer: collection mutations and the filter
        // pipeline are pure PRFs of the serve seed, so every counter
        // gates exactly. Shrinking live points / filtered coverage is the
        // regression side; growth of tombstone debt, cache suppression,
        // or mutation counts gates as drift from the pinned schedule.
        "vdb.live" | "vdb.filtered_queries" => (0.0, LowerIsWorse),
        n if n.starts_with("vdb.") => (0.0, HigherIsWorse),
        // Critical-path attribution: the path length and its dominant
        // buckets follow the virtual-time gates; the small noisy buckets
        // (stall residue, retransmit charge) and the imbalance score get
        // extra slack so a cost-model tweak doesn't trip them.
        "critical_path.stall_ns" | "critical_path.retransmit_ns" => (0.25, HigherIsWorse),
        "critical_path.straggler_score" => (0.15, HigherIsWorse),
        n if n.starts_with("critical_path.") => (0.10, HigherIsWorse),
        n if n.starts_with("extra.") => (0.0, Info),
        _ => (0.05, HigherIsWorse),
    }
}

fn push(rows: &mut Vec<MetricRow>, name: &str, base: f64, cand: f64, thr: Option<f64>) {
    let (default_thr, direction) = threshold_for(name);
    rows.push(MetricRow {
        name: name.to_string(),
        base,
        cand,
        threshold: match direction {
            Direction::Info => default_thr,
            _ => thr.unwrap_or(default_thr),
        },
        direction,
    });
}

/// Flatten the comparable metrics of two reports into rows. `thr`
/// overrides every gated metric's threshold.
fn collect(base: &RunReport, cand: &RunReport, thr: Option<f64>) -> Vec<MetricRow> {
    let mut rows = Vec::new();
    push(
        &mut rows,
        "iterations",
        base.iterations as f64,
        cand.iterations as f64,
        thr,
    );
    push(
        &mut rows,
        "distance_evals",
        base.distance_evals as f64,
        cand.distance_evals as f64,
        thr,
    );
    push(&mut rows, "sim_secs", base.sim_secs, cand.sim_secs, thr);
    push(
        &mut rows,
        "compute_secs",
        base.compute_secs,
        cand.compute_secs,
        thr,
    );
    push(&mut rows, "comm_secs", base.comm_secs, cand.comm_secs, thr);
    push(
        &mut rows,
        "barrier_secs",
        base.barrier_secs,
        cand.barrier_secs,
        thr,
    );
    push(
        &mut rows,
        "total_count",
        base.total_count as f64,
        cand.total_count as f64,
        thr,
    );
    push(
        &mut rows,
        "total_bytes",
        base.total_bytes as f64,
        cand.total_bytes as f64,
        thr,
    );
    push(
        &mut rows,
        "total_remote_count",
        base.total_remote_count as f64,
        cand.total_remote_count as f64,
        thr,
    );
    push(
        &mut rows,
        "total_remote_bytes",
        base.total_remote_bytes as f64,
        cand.total_remote_bytes as f64,
        thr,
    );
    if base.recall.is_some() || cand.recall.is_some() {
        push(
            &mut rows,
            "recall",
            base.recall.unwrap_or(0.0),
            cand.recall.unwrap_or(0.0),
            thr,
        );
    }
    push(&mut rows, "wall_secs", base.wall_secs, cand.wall_secs, thr);

    // Fault/reliable-delivery counters: present when either run carried a
    // fault plan; a fault-free side contributes zeros, so new fault
    // activity in the candidate gates as growth from zero.
    if base.faults.is_some() || cand.faults.is_some() {
        let d = obs::FaultSection::default();
        let b = base.faults.as_ref().unwrap_or(&d);
        let c = cand.faults.as_ref().unwrap_or(&d);
        for (key, bv, cv) in [
            ("dropped", b.dropped, c.dropped),
            ("duplicated", b.duplicated, c.duplicated),
            ("delayed", b.delayed, c.delayed),
            ("stalls", b.stalls, c.stalls),
            ("jittered_flushes", b.jittered_flushes, c.jittered_flushes),
            ("retransmits", b.retransmits, c.retransmits),
            ("dedup_discards", b.dedup_discards, c.dedup_discards),
            (
                "forced_deliveries",
                b.forced_deliveries,
                c.forced_deliveries,
            ),
        ] {
            push(
                &mut rows,
                &format!("faults.{key}"),
                bv as f64,
                cv as f64,
                thr,
            );
        }
    }

    // Serving SLO section: present when either run served queries; a
    // side without the section contributes zeros, so new shedding or
    // degradation in the candidate gates as growth from zero.
    if base.serving.is_some() || cand.serving.is_some() {
        let d = obs::ServingSection::default();
        let b = base.serving.as_ref().unwrap_or(&d);
        let c = cand.serving.as_ref().unwrap_or(&d);
        for (key, bv, cv) in [
            ("offered", b.offered, c.offered),
            ("admitted", b.admitted, c.admitted),
            ("answered", b.answered, c.answered),
            ("cache_hits", b.cache_hits, c.cache_hits),
            ("cache_evictions", b.cache_evictions, c.cache_evictions),
            ("shed_deadline", b.shed_deadline, c.shed_deadline),
            ("shed_overload", b.shed_overload, c.shed_overload),
            ("degraded", b.degraded, c.degraded),
            ("max_queue_depth", b.max_queue_depth, c.max_queue_depth),
            ("p50_ns", b.p50_ns, c.p50_ns),
            ("p95_ns", b.p95_ns, c.p95_ns),
            ("p99_ns", b.p99_ns, c.p99_ns),
        ] {
            push(
                &mut rows,
                &format!("serving.{key}"),
                bv as f64,
                cv as f64,
                thr,
            );
        }
        // Client-perceived percentiles (schema v7). Gated only when the
        // baseline measured them: a v6 baseline diffed against a v7
        // candidate is schema growth, not "growth from zero".
        if b.client_p99_ns > 0 || !b.client_hist.is_empty() {
            for (key, bv, cv) in [
                ("client_p50_ns", b.client_p50_ns, c.client_p50_ns),
                ("client_p99_ns", b.client_p99_ns, c.client_p99_ns),
            ] {
                push(
                    &mut rows,
                    &format!("serving.{key}"),
                    bv as f64,
                    cv as f64,
                    thr,
                );
            }
        }
        // Per-tenant SLO rows, matched by class name, gated only when the
        // baseline declared classes (same schema-growth rule). A class the
        // candidate lost compares against zeros and gates hard.
        for bt in &b.tenants {
            let dt = obs::TenantSloSection::default();
            let ct = c.tenants.iter().find(|t| t.name == bt.name).unwrap_or(&dt);
            for (key, bv, cv) in [
                ("offered", bt.offered, ct.offered),
                ("admitted", bt.admitted, ct.admitted),
                ("answered", bt.answered, ct.answered),
                ("cache_hits", bt.cache_hits, ct.cache_hits),
                ("shed_overload", bt.shed_overload, ct.shed_overload),
                ("shed_deadline", bt.shed_deadline, ct.shed_deadline),
                ("degraded", bt.degraded, ct.degraded),
                ("p50_ns", bt.p50_ns, ct.p50_ns),
                ("p99_ns", bt.p99_ns, ct.p99_ns),
            ] {
                push(
                    &mut rows,
                    &format!("serving.tenant.{}.{key}", bt.name),
                    bv as f64,
                    cv as f64,
                    thr,
                );
            }
            push(
                &mut rows,
                &format!("serving.tenant.{}.slo_attainment", bt.name),
                bt.slo_attainment,
                ct.slo_attainment,
                thr,
            );
        }
    }

    // Per-query forensics: present when either run profiled queries; a
    // side without the section contributes zeros. Sampler counters gate
    // exactly (the section is seed-deterministic).
    if base.query_forensics.is_some() || cand.query_forensics.is_some() {
        let d = obs::QueryForensicsSection::default();
        let b = base.query_forensics.as_ref().unwrap_or(&d);
        let c = cand.query_forensics.as_ref().unwrap_or(&d);
        for (key, bv, cv) in [
            ("considered", b.considered, c.considered),
            ("retained", b.retained, c.retained),
            ("retained_slow", b.retained_slow, c.retained_slow),
            (
                "retained_exemplar",
                b.retained_exemplar,
                c.retained_exemplar,
            ),
            ("window_slots", b.window_slots, c.window_slots),
            ("slow_n", b.slow_n, c.slow_n),
        ] {
            push(
                &mut rows,
                &format!("query_forensics.{key}"),
                bv as f64,
                cv as f64,
                thr,
            );
        }
    }

    // RNN-Descent optimization counters: the pass is deterministic, so
    // every aggregate gates exactly (threshold 0). A side without the
    // section contributes zeros; growth from zero gates.
    if base.rnn.is_some() || cand.rnn.is_some() {
        let d = obs::RnnSection::default();
        let b = base.rnn.as_ref().unwrap_or(&d);
        let c = cand.rnn.as_ref().unwrap_or(&d);
        let sums = |s: &obs::RnnSection| {
            (
                s.rounds.len() as u64,
                s.rounds.iter().map(|r| r.pruned).sum::<u64>(),
                s.rounds.iter().map(|r| r.added).sum::<u64>(),
                s.reverse_added.iter().sum::<u64>(),
            )
        };
        let (br, bp, ba, brv) = sums(b);
        let (cr, cp, ca, crv) = sums(c);
        for (key, bv, cv) in [
            ("rounds", br, cr),
            ("pruned_total", bp, cp),
            ("added_total", ba, ca),
            ("reverse_added_total", brv, crv),
            ("dist_evals", b.dist_evals, c.dist_evals),
            ("repaired", b.repaired, c.repaired),
        ] {
            push(&mut rows, &format!("rnn.{key}"), bv as f64, cv as f64, thr);
        }
    }

    // Vector-DB product layer. Gated only when the *baseline* carries the
    // section (a candidate-only section is schema growth, e.g. a v7
    // baseline diffed against a v8 candidate); a candidate that dropped
    // it fails hard via `missing_sections`. Counters are summed over
    // namespaces; the epoch gates as the per-namespace maximum.
    if base.vdb.is_some() {
        let d = obs::VdbSection::default();
        let b = base.vdb.as_ref().unwrap_or(&d);
        let c = cand.vdb.as_ref().unwrap_or(&d);
        let sums = |s: &obs::VdbSection| {
            let f = |get: fn(&obs::VdbNamespaceSection) -> u64| {
                s.namespaces.iter().map(get).sum::<u64>()
            };
            (
                f(|n| n.points),
                f(|n| n.live),
                f(|n| n.tombstones),
                f(|n| n.dead),
                s.namespaces.iter().map(|n| n.epoch).max().unwrap_or(0),
                f(|n| n.inserts),
                f(|n| n.deletes),
                f(|n| n.compactions),
            )
        };
        let (bp, bl, bt, bd, be, bi, bdel, bc) = sums(b);
        let (cp, cl, ct, cd, ce, ci, cdel, cc) = sums(c);
        for (key, bv, cv) in [
            ("points", bp, cp),
            ("live", bl, cl),
            ("tombstones", bt, ct),
            ("dead", bd, cd),
            ("epoch", be, ce),
            ("inserts", bi, ci),
            ("deletes", bdel, cdel),
            ("compactions", bc, cc),
            ("filtered_queries", b.filtered_queries, c.filtered_queries),
            (
                "cache_suppressed_ids",
                b.cache_suppressed_ids,
                c.cache_suppressed_ids,
            ),
        ] {
            push(&mut rows, &format!("vdb.{key}"), bv as f64, cv as f64, thr);
        }
    }

    // Critical-path attribution. Gated only when the *baseline* carries
    // the section: a candidate-only section is schema growth (e.g. a v3
    // baseline diffed against a v4 candidate), not a regression, while a
    // candidate that *dropped* the section is a hard failure via
    // `missing_sections` — its rows here (against zeros) are informational
    // context for that failure.
    if base.critical_path.is_some() {
        let d = obs::CriticalPathSection::default();
        let b = base.critical_path.as_ref().unwrap_or(&d);
        let c = cand.critical_path.as_ref().unwrap_or(&d);
        for (key, bv, cv) in [
            ("critical_path_ns", b.critical_path_ns, c.critical_path_ns),
            ("collective_ns", b.collective_ns, c.collective_ns),
            ("compute_ns", b.compute_ns, c.compute_ns),
            ("comm_ns", b.comm_ns, c.comm_ns),
            ("stall_ns", b.stall_ns, c.stall_ns),
            ("retransmit_ns", b.retransmit_ns, c.retransmit_ns),
        ] {
            push(
                &mut rows,
                &format!("critical_path.{key}"),
                bv as f64,
                cv as f64,
                thr,
            );
        }
        push(
            &mut rows,
            "critical_path.straggler_score",
            b.straggler_score,
            c.straggler_score,
            thr,
        );
    }

    // Free-form metrics appearing in both reports (informational: the
    // schema cannot know which way each one points).
    for (k, bv) in &base.extra {
        if let Some((_, cv)) = cand.extra.iter().find(|(ck, _)| ck == k) {
            push(&mut rows, &format!("extra.{k}"), *bv, *cv, thr);
        }
    }
    rows
}

/// Optional report sections present in the baseline but absent from the
/// candidate. A producer silently dropping a section must not slip past
/// the gate as "nothing to compare", so this is a hard failure naming
/// each missing section.
fn missing_sections(base: &RunReport, cand: &RunReport) -> Vec<&'static str> {
    let mut missing = Vec::new();
    if base.faults.is_some() && cand.faults.is_none() {
        missing.push("faults");
    }
    if base.serving.is_some() && cand.serving.is_none() {
        missing.push("serving");
    }
    // A candidate that kept the serving section but silently dropped the
    // per-tenant breakdown must not slip past as "nothing to compare".
    if base.serving.as_ref().is_some_and(|s| !s.tenants.is_empty())
        && cand.serving.as_ref().is_some_and(|s| s.tenants.is_empty())
    {
        missing.push("serving.tenants");
    }
    if base.rnn.is_some() && cand.rnn.is_none() {
        missing.push("rnn");
    }
    if base.query_forensics.is_some() && cand.query_forensics.is_none() {
        missing.push("query_forensics");
    }
    if base.vdb.is_some() && cand.vdb.is_none() {
        missing.push("vdb");
    }
    if base.critical_path.is_some() && cand.critical_path.is_none() {
        missing.push("critical_path");
    }
    if base.matrix.is_some() && cand.matrix.is_none() {
        missing.push("matrix");
    }
    missing
}

/// Bit-identity hard check: the forensics digest is a pure function of
/// the serve seed and parameters, so when both reports carry the section
/// the digests must match verbatim. Compared as the original `u64` (a
/// relative-delta row would round through `f64` and could miss drift in
/// the low bits).
fn forensics_digest_drift(base: &RunReport, cand: &RunReport) -> Option<(u64, u64)> {
    match (&base.query_forensics, &cand.query_forensics) {
        (Some(b), Some(c)) if b.digest != c.digest => Some((b.digest, c.digest)),
        _ => None,
    }
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

fn fmt_delta(r: &MetricRow) -> String {
    match r.rel_delta() {
        None => "+inf%".into(),
        Some(d) => format!("{:+.2}%", d * 100.0),
    }
}

fn status(r: &MetricRow) -> &'static str {
    if r.direction == Direction::Info {
        "info"
    } else if r.regressed() {
        "REGRESSION"
    } else {
        "ok"
    }
}

fn run() -> Result<bool, String> {
    let positional: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .take(2)
        .collect();
    let args = Args::parse();
    let [base_path, cand_path] = match positional.as_slice() {
        [b, c] => [b.clone(), c.clone()],
        _ => {
            return Err("usage: dnnd-report-diff <baseline.json> <candidate.json> \
                 [--threshold <rel>] [--out <dir>]"
                .into())
        }
    };
    let thr: Option<f64> = args.opt("threshold");
    if let Some(t) = thr {
        if !(t.is_finite() && t >= 0.0) {
            return Err(format!("--threshold must be a nonnegative number, got {t}"));
        }
    }

    let load = |path: &str| -> Result<RunReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        RunReport::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
    };
    let base = load(&base_path)?;
    let cand = load(&cand_path)?;

    if base.n_ranks != cand.n_ranks {
        eprintln!(
            "note: rank counts differ (baseline {} vs candidate {}); \
             traffic metrics are not directly comparable",
            base.n_ranks, cand.n_ranks
        );
    }

    let rows = collect(&base, &cand, thr);
    let mut table = Table::new(
        &format!("report diff: {base_path} -> {cand_path}"),
        &[
            "metric",
            "baseline",
            "candidate",
            "delta",
            "threshold",
            "status",
        ],
    );
    for r in &rows {
        let (b, c, d) = (fmt_value(r.base), fmt_value(r.cand), fmt_delta(r));
        let t = if r.direction == Direction::Info {
            "-".to_string()
        } else {
            format!("{:.0}%", r.threshold * 100.0)
        };
        table.row(&[&r.name, &b, &c, &d, &t, &status(r)]);
    }
    table.print();
    if args.opt::<String>("out").is_some() {
        let path = table
            .write_csv(&args.out_dir(), "report_diff")
            .map_err(|e| e.to_string())?;
        println!("wrote {}", path.display());
    }

    let missing = missing_sections(&base, &cand);
    let digest_drift = forensics_digest_drift(&base, &cand);
    let regressed: Vec<&MetricRow> = rows.iter().filter(|r| r.regressed()).collect();
    if !missing.is_empty() {
        println!(
            "\nFAIL: candidate report is missing section(s) present in the baseline: {}",
            missing.join(", ")
        );
    }
    if let Some((b, c)) = digest_drift {
        println!(
            "\nFAIL: query_forensics digest drifted: {b:016x} -> {c:016x} \
             (the section is seed-deterministic; any drift means the \
             lifecycle records changed)"
        );
    }
    if !regressed.is_empty() {
        println!("\nFAIL: {} metric(s) regressed:", regressed.len());
        for r in &regressed {
            println!(
                "  {}: {} -> {} ({}, threshold {:.0}%)",
                r.name,
                fmt_value(r.base),
                fmt_value(r.cand),
                fmt_delta(r),
                r.threshold * 100.0
            );
        }
    }
    if missing.is_empty() && regressed.is_empty() && digest_drift.is_none() {
        println!("\nPASS: all gated metrics within thresholds");
        Ok(true)
    } else {
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(sim_secs: f64, evals: u64) -> RunReport {
        let mut r = RunReport::new("test");
        r.n_ranks = 2;
        r.iterations = 5;
        r.distance_evals = evals;
        r.sim_secs = sim_secs;
        r.compute_secs = sim_secs * 0.7;
        r.comm_secs = sim_secs * 0.2;
        r.barrier_secs = sim_secs * 0.1;
        r.total_count = 1_000;
        r.total_bytes = 64_000;
        r.total_remote_count = 750;
        r.total_remote_bytes = 48_000;
        r
    }

    fn row_named<'a>(rows: &'a [MetricRow], name: &str) -> &'a MetricRow {
        rows.iter().find(|r| r.name == name).unwrap()
    }

    #[test]
    fn identical_reports_pass_every_gate() {
        let r = report(1.5, 100_000);
        let rows = collect(&r, &r, None);
        assert!(rows.iter().all(|m| !m.regressed()));
        assert!(rows.iter().any(|m| m.name == "wall_secs"));
    }

    #[test]
    fn slowdown_beyond_threshold_regresses() {
        let base = report(1.0, 100_000);
        let cand = report(1.5, 100_000); // +50% sim time vs 10% gate
        let rows = collect(&base, &cand, None);
        assert!(row_named(&rows, "sim_secs").regressed());
        assert!(!row_named(&rows, "distance_evals").regressed());
    }

    #[test]
    fn improvement_never_regresses_higher_is_worse() {
        let base = report(2.0, 100_000);
        let cand = report(1.0, 50_000);
        let rows = collect(&base, &cand, None);
        assert!(rows.iter().all(|m| !m.regressed()));
    }

    #[test]
    fn recall_gates_downward_only() {
        let mut base = report(1.0, 1);
        let mut cand = report(1.0, 1);
        base.recall = Some(0.95);
        cand.recall = Some(0.90); // -5.3% vs 2% gate
        let rows = collect(&base, &cand, None);
        assert!(row_named(&rows, "recall").regressed());
        // Upward recall is fine.
        let rows = collect(&cand, &base, None);
        assert!(!row_named(&rows, "recall").regressed());
    }

    #[test]
    fn growth_from_zero_is_a_regression() {
        let mut base = report(1.0, 1);
        let mut cand = report(1.0, 1);
        base.faults = Some(obs::FaultSection::default());
        cand.faults = Some(obs::FaultSection {
            retransmits: 7,
            ..Default::default()
        });
        let rows = collect(&base, &cand, None);
        let r = row_named(&rows, "faults.retransmits");
        assert_eq!(r.rel_delta(), None);
        assert!(r.regressed());
    }

    #[test]
    fn serving_counters_gate_exactly_and_answered_gates_downward() {
        let mut base = report(1.0, 1);
        let mut cand = report(1.0, 1);
        base.serving = Some(obs::ServingSection {
            offered: 100,
            answered: 90,
            shed_overload: 0,
            p99_ns: 4_000_000,
            ..Default::default()
        });
        cand.serving = Some(obs::ServingSection {
            offered: 100,
            answered: 80, // fewer answered: regression
            shed_overload: 5,
            p99_ns: 4_100_000, // +2.5%, inside the 10% latency gate
            ..Default::default()
        });
        let rows = collect(&base, &cand, None);
        assert!(row_named(&rows, "serving.answered").regressed());
        assert!(row_named(&rows, "serving.shed_overload").regressed());
        assert!(!row_named(&rows, "serving.p99_ns").regressed());
        // The reverse direction (more answered, less shedding) is fine.
        let rows = collect(&cand, &base, None);
        assert!(rows
            .iter()
            .filter(|r| r.name.starts_with("serving."))
            .all(|r| !r.regressed()));
    }

    fn tenant(name: &str, shed_overload: u64, answered: u64) -> obs::TenantSloSection {
        obs::TenantSloSection {
            name: name.into(),
            share_pct: 50,
            offered: 100,
            admitted: answered,
            answered,
            shed_overload,
            slo_attainment: answered as f64 / 100.0,
            p50_ns: 500_000,
            p99_ns: 2_000_000,
            ..Default::default()
        }
    }

    #[test]
    fn tenant_counters_gate_exactly_by_class_name() {
        let mut base = report(1.0, 1);
        let mut cand = report(1.0, 1);
        base.serving = Some(obs::ServingSection {
            offered: 200,
            tenants: vec![tenant("gold", 0, 98), tenant("free", 10, 80)],
            ..Default::default()
        });
        // Identical per-tenant counters: every row inside the gate.
        cand.serving = base.serving.clone();
        let rows = collect(&base, &cand, None);
        assert!(rows
            .iter()
            .filter(|r| r.name.starts_with("serving.tenant."))
            .all(|r| !r.regressed()));
        // One extra shed + one fewer answered in `free` gates both ways;
        // `gold` stays clean.
        cand.serving = Some(obs::ServingSection {
            offered: 200,
            tenants: vec![tenant("gold", 0, 98), tenant("free", 11, 79)],
            ..Default::default()
        });
        let rows = collect(&base, &cand, None);
        assert!(row_named(&rows, "serving.tenant.free.shed_overload").regressed());
        assert!(row_named(&rows, "serving.tenant.free.answered").regressed());
        assert!(row_named(&rows, "serving.tenant.free.slo_attainment").regressed());
        assert!(!row_named(&rows, "serving.tenant.gold.shed_overload").regressed());
        // A candidate that dropped the breakdown entirely hard-fails.
        cand.serving = Some(obs::ServingSection {
            offered: 200,
            ..Default::default()
        });
        assert_eq!(missing_sections(&base, &cand), vec!["serving.tenants"]);
        // A tenant-less baseline gates nothing tenant-shaped (schema
        // growth when the candidate adds classes).
        let rows = collect(&cand, &base, None);
        assert!(!rows.iter().any(|r| r.name.starts_with("serving.tenant.")));
        assert!(missing_sections(&cand, &base).is_empty());
    }

    #[test]
    fn vdb_counters_gate_exactly_and_baseline_only() {
        let section = |live: u64, filtered: u64, suppressed: u64| obs::VdbSection {
            namespaces: vec![obs::VdbNamespaceSection {
                name: "prod".into(),
                points: 1_000,
                live,
                tombstones: 1_000 - live,
                dead: 0,
                epoch: 2,
                inserts: 5,
                deletes: 1_000 - live,
                compactions: 1,
            }],
            filtered_queries: filtered,
            cache_suppressed_ids: suppressed,
            selectivity_hist: vec![(3, filtered)],
        };
        let mut base = report(1.0, 1);
        let mut cand = report(1.0, 1);
        // v7-shaped baseline vs v8 candidate: schema growth, no rows.
        cand.vdb = Some(section(950, 40, 0));
        let rows = collect(&base, &cand, None);
        assert!(!rows.iter().any(|r| r.name.starts_with("vdb.")));
        assert!(missing_sections(&base, &cand).is_empty());
        // Candidate dropped the section: hard failure.
        base.vdb = Some(section(950, 40, 0));
        cand.vdb = None;
        assert_eq!(missing_sections(&base, &cand), vec!["vdb"]);
        // Exact gates: fewer live points / filtered queries regress, and
        // cache-suppression growth regresses; identical sections pass.
        cand.vdb = Some(section(940, 30, 3));
        let rows = collect(&base, &cand, None);
        assert!(row_named(&rows, "vdb.live").regressed());
        assert!(row_named(&rows, "vdb.filtered_queries").regressed());
        assert!(row_named(&rows, "vdb.cache_suppressed_ids").regressed());
        cand.vdb = base.vdb.clone();
        let rows = collect(&base, &cand, None);
        assert!(rows
            .iter()
            .filter(|r| r.name.starts_with("vdb."))
            .all(|r| !r.regressed()));
    }

    #[test]
    fn client_latency_gates_only_when_baseline_measured_it() {
        let mut base = report(1.0, 1);
        let mut cand = report(1.0, 1);
        // v6-shaped baseline (no client histogram) vs v7 candidate:
        // schema growth, not growth-from-zero.
        base.serving = Some(obs::ServingSection::default());
        cand.serving = Some(obs::ServingSection {
            client_p50_ns: 500_000,
            client_p99_ns: 4_000_000,
            client_hist: vec![(2, 10)],
            ..Default::default()
        });
        let rows = collect(&base, &cand, None);
        assert!(!rows.iter().any(|r| r.name.starts_with("serving.client_")));
        // Both measured: +20% client p99 trips the 10% latency gate.
        base.serving = Some(obs::ServingSection {
            client_p50_ns: 500_000,
            client_p99_ns: 4_000_000,
            client_hist: vec![(2, 10)],
            ..Default::default()
        });
        cand.serving = Some(obs::ServingSection {
            client_p50_ns: 500_000,
            client_p99_ns: 4_800_000,
            client_hist: vec![(2, 10)],
            ..Default::default()
        });
        let rows = collect(&base, &cand, None);
        assert!(!row_named(&rows, "serving.client_p50_ns").regressed());
        assert!(row_named(&rows, "serving.client_p99_ns").regressed());
    }

    #[test]
    fn rnn_counters_gate_exactly() {
        let mut base = report(1.0, 1);
        let mut cand = report(1.0, 1);
        let section = |pruned: u64, evals: u64| obs::RnnSection {
            t1: 2,
            t2: 5,
            k0: 10,
            r: 30,
            rounds: vec![obs::RnnRoundReport {
                outer: 0,
                inner: 0,
                pairs: evals,
                pruned,
                added: 12,
            }],
            reverse_added: vec![100],
            dist_evals: evals,
            repaired: 1,
        };
        base.rnn = Some(section(40, 5_000));
        cand.rnn = Some(section(40, 5_000));
        let rows = collect(&base, &cand, None);
        assert!(rows
            .iter()
            .filter(|r| r.name.starts_with("rnn."))
            .all(|r| !r.regressed()));
        // Any drift in the deterministic counters gates (threshold 0).
        cand.rnn = Some(section(41, 5_001));
        let rows = collect(&base, &cand, None);
        assert!(row_named(&rows, "rnn.pruned_total").regressed());
        assert!(row_named(&rows, "rnn.dist_evals").regressed());
        // A candidate that silently dropped the section hard-fails.
        cand.rnn = None;
        assert_eq!(missing_sections(&base, &cand), vec!["rnn"]);
    }

    #[test]
    fn forensics_counters_gate_exactly_and_digest_drift_hard_fails() {
        let section = |retained: u64, digest: u64| obs::QueryForensicsSection {
            window_slots: 8,
            slow_n: 4,
            considered: 150,
            retained,
            retained_slow: retained,
            digest,
            ..Default::default()
        };
        let mut base = report(1.0, 1);
        let mut cand = report(1.0, 1);
        base.query_forensics = Some(section(12, 0xAB));
        cand.query_forensics = Some(section(12, 0xAB));
        let rows = collect(&base, &cand, None);
        assert!(rows
            .iter()
            .filter(|r| r.name.starts_with("query_forensics."))
            .all(|r| !r.regressed()));
        assert!(forensics_digest_drift(&base, &cand).is_none());
        // Lost sampler coverage gates (threshold 0, downward).
        cand.query_forensics = Some(section(11, 0xAB));
        let rows = collect(&base, &cand, None);
        assert!(row_named(&rows, "query_forensics.retained").regressed());
        // Digest drift is a hard failure even when every counter agrees.
        cand.query_forensics = Some(section(12, 0xCD));
        let rows = collect(&base, &cand, None);
        assert!(rows
            .iter()
            .filter(|r| r.name.starts_with("query_forensics."))
            .all(|r| !r.regressed()));
        assert_eq!(forensics_digest_drift(&base, &cand), Some((0xAB, 0xCD)));
        // A candidate that silently dropped the section hard-fails.
        cand.query_forensics = None;
        assert_eq!(missing_sections(&base, &cand), vec!["query_forensics"]);
        assert!(forensics_digest_drift(&base, &cand).is_none());
    }

    #[test]
    fn forensics_free_pair_has_no_forensics_rows() {
        let r = report(1.0, 1);
        let rows = collect(&r, &r, None);
        assert!(!rows.iter().any(|m| m.name.starts_with("query_forensics.")));
    }

    #[test]
    fn rnn_free_pair_has_no_rnn_rows() {
        let r = report(1.0, 1);
        let rows = collect(&r, &r, None);
        assert!(!rows.iter().any(|m| m.name.starts_with("rnn.")));
    }

    #[test]
    fn serving_free_pair_has_no_serving_rows() {
        let r = report(1.0, 1);
        let rows = collect(&r, &r, None);
        assert!(!rows.iter().any(|m| m.name.starts_with("serving.")));
    }

    #[test]
    fn fault_free_pair_has_no_fault_rows() {
        let r = report(1.0, 1);
        let rows = collect(&r, &r, None);
        assert!(!rows.iter().any(|m| m.name.starts_with("faults.")));
    }

    #[test]
    fn missing_baseline_sections_are_named() {
        let mut base = report(1.0, 1);
        let cand = report(1.0, 1);
        assert!(missing_sections(&base, &cand).is_empty());
        base.faults = Some(obs::FaultSection::default());
        base.critical_path = Some(obs::CriticalPathSection::default());
        let missing = missing_sections(&base, &cand);
        assert_eq!(missing, vec!["faults", "critical_path"]);
        // A candidate-only section is growth, not loss: nothing missing.
        assert!(missing_sections(&cand, &base).is_empty());
    }

    #[test]
    fn critical_path_metrics_gate_with_their_own_thresholds() {
        let section = |path_ns: u64, stall_ns: u64, score: f64| obs::CriticalPathSection {
            critical_path_ns: path_ns,
            compute_ns: path_ns - stall_ns,
            stall_ns,
            straggler_score: score,
            ..Default::default()
        };
        let mut base = report(1.0, 1);
        let mut cand = report(1.0, 1);
        base.critical_path = Some(section(1_000_000_000, 100_000_000, 0.10));
        // +15% path length trips the 10% gate; +20% stall stays inside its
        // 25% slack; the score needs >15% growth to trip.
        cand.critical_path = Some(section(1_150_000_000, 120_000_000, 0.11));
        let rows = collect(&base, &cand, None);
        assert!(row_named(&rows, "critical_path.critical_path_ns").regressed());
        assert!(!row_named(&rows, "critical_path.stall_ns").regressed());
        assert!(!row_named(&rows, "critical_path.straggler_score").regressed());
        let mut worse = report(1.0, 1);
        worse.critical_path = Some(section(1_000_000_000, 100_000_000, 0.20));
        let rows = collect(&base, &worse, None);
        assert!(row_named(&rows, "critical_path.straggler_score").regressed());
    }

    #[test]
    fn threshold_override_loosens_the_gate() {
        let base = report(1.0, 100_000);
        let cand = report(1.5, 100_000);
        let rows = collect(&base, &cand, Some(0.6));
        assert!(rows.iter().all(|m| !m.regressed()));
        // ... and tightens it.
        let cand = report(1.01, 100_000);
        let rows = collect(&base, &cand, Some(0.001));
        assert!(row_named(&rows, "sim_secs").regressed());
    }

    #[test]
    fn wall_clock_is_informational_even_when_wild() {
        let mut base = report(1.0, 1);
        let mut cand = report(1.0, 1);
        base.wall_secs = 0.1;
        cand.wall_secs = 99.0;
        let rows = collect(&base, &cand, None);
        assert!(!row_named(&rows, "wall_secs").regressed());
        assert_eq!(status(row_named(&rows, "wall_secs")), "info");
    }
}
