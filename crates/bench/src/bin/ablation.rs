//! **Ablations** — the design choices DESIGN.md calls out, beyond the
//! paper's own unoptimized-vs-optimized comparison:
//!
//! 1. each Section 4.3 communication-saving technique toggled individually,
//! 2. reverse-exchange destination shuffling on/off (Section 4.2),
//! 3. batch-size sweep (Section 4.4),
//! 4. rho / delta sensitivity (Algorithm 1's quality-vs-cost dials),
//! 5. RP-forest vs random initialization (PyNNDescent extension, shared-
//!    memory engine).

use bench::{Args, Table};
use dataset::ground_truth::brute_force_knng;
use dataset::metric::L2;
use dataset::presets;
use dataset::recall::mean_recall;
use dnnd::{build, CommOpts, DnndConfig};
use std::sync::Arc;
use ygm::World;

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", if args.flag("full") { 2_500 } else { 1_000 });
    let k: usize = args.get("k", 10);
    let ranks: usize = args.get("ranks", 8);
    let seed: u64 = args.get("seed", 61);
    let dir = args.out_dir();

    let set = Arc::new(presets::deep1b_like(n, seed));
    println!("ablation dataset: DEEP-like n={n} k={k} ranks={ranks}");
    let truth = brute_force_knng(&set, &L2, k);

    // --- 1. communication-saving techniques, one at a time ---
    let mut t1 = Table::new(
        "Ablation 1: Section 4.3 techniques (cumulative from none to all)",
        &[
            "Config",
            "Check msgs",
            "Check bytes",
            "Recall",
            "Virtual secs",
        ],
    );
    let variants: [(&str, CommOpts); 4] = [
        ("none (Fig 1a)", CommOpts::unoptimized()),
        (
            "+one-sided",
            CommOpts {
                one_sided: true,
                skip_redundant: false,
                prune_distance: false,
            },
        ),
        (
            "+redundant-skip",
            CommOpts {
                one_sided: true,
                skip_redundant: true,
                prune_distance: false,
            },
        ),
        ("+dist-pruning (Fig 1b)", CommOpts::optimized()),
    ];
    for (label, opts) in variants {
        println!("running {label}...");
        let res = build(
            &World::new(ranks),
            &set,
            &L2,
            DnndConfig::new(k).seed(seed).comm_opts(opts),
        );
        let traffic = res.report.check_traffic();
        let recall = mean_recall(&res.graph.neighbor_ids(), &truth);
        t1.row(&[
            &label,
            &traffic.count,
            &traffic.bytes,
            &format!("{recall:.4}"),
            &format!("{:.4}", res.report.sim_secs),
        ]);
    }
    t1.print();
    t1.write_csv(&dir, "ablation_comm_saving").expect("csv");

    // --- 2. reverse-exchange shuffle ---
    let mut t2 = Table::new(
        "Ablation 2: reverse-exchange destination shuffle (Section 4.2)",
        &["Shuffle", "Recall", "Virtual secs"],
    );
    for on in [true, false] {
        let res = build(
            &World::new(ranks),
            &set,
            &L2,
            DnndConfig::new(k).seed(seed).shuffle_reverse(on),
        );
        let recall = mean_recall(&res.graph.neighbor_ids(), &truth);
        t2.row(&[
            &on,
            &format!("{recall:.4}"),
            &format!("{:.4}", res.report.sim_secs),
        ]);
    }
    t2.print();
    t2.write_csv(&dir, "ablation_shuffle").expect("csv");

    // --- 3. batch size sweep ---
    let mut t3 = Table::new(
        "Ablation 3: communication batch size (Section 4.4; paper uses 2^25-2^30)",
        &["Batch size", "Recall", "Virtual secs", "Wall secs"],
    );
    for shift in [8u32, 12, 16, 20] {
        let res = build(
            &World::new(ranks),
            &set,
            &L2,
            DnndConfig::new(k).seed(seed).batch_size(1 << shift),
        );
        let recall = mean_recall(&res.graph.neighbor_ids(), &truth);
        t3.row(&[
            &format!("2^{shift}"),
            &format!("{recall:.4}"),
            &format!("{:.4}", res.report.sim_secs),
            &format!("{:.2}", res.report.wall_secs),
        ]);
    }
    t3.print();
    t3.write_csv(&dir, "ablation_batch").expect("csv");

    // --- 4. rho / delta sensitivity ---
    let mut t4 = Table::new(
        "Ablation 4: rho and delta sensitivity",
        &["rho", "delta", "Recall", "Iterations", "Distance evals"],
    );
    for &rho in &[0.4f64, 0.8, 1.0] {
        for &delta in &[0.01f64, 0.001] {
            let res = build(
                &World::new(ranks),
                &set,
                &L2,
                DnndConfig::new(k).seed(seed).rho(rho).delta(delta),
            );
            let recall = mean_recall(&res.graph.neighbor_ids(), &truth);
            t4.row(&[
                &rho,
                &delta,
                &format!("{recall:.4}"),
                &res.report.iterations,
                &res.report.distance_evals,
            ]);
        }
    }
    t4.print();
    t4.write_csv(&dir, "ablation_rho_delta").expect("csv");

    // --- 5. RP-forest vs random init (shared-memory engine) ---
    let mut t5 = Table::new(
        "Ablation 5: RP-forest vs random initialization (shared-memory nnd)",
        &[
            "Init",
            "Recall",
            "Iterations",
            "First-iter updates",
            "Distance evals",
        ],
    );
    let params = nnd::NnDescentParams::new(k).seed(seed);
    let (g_rand, s_rand) = nnd::build(&set, &L2, params);
    let cands = nnd::rp_forest_candidates(&set, nnd::RpForestParams::for_k(k));
    let (g_rp, s_rp) = nnd::build_with_init(&set, &L2, params, Some(&cands));
    for (label, g, s) in [("random", &g_rand, &s_rand), ("rp-forest", &g_rp, &s_rp)] {
        t5.row(&[
            &label,
            &format!("{:.4}", mean_recall(&g.neighbor_ids(), &truth)),
            &s.iterations,
            &s.updates_per_iter.first().copied().unwrap_or(0),
            &s.distance_evals,
        ]);
    }
    t5.print();
    t5.write_csv(&dir, "ablation_init").expect("csv");

    println!("\ncsv written to {}", dir.display());
}
