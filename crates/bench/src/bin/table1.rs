//! **Table 1** — datasets used in the evaluation.
//!
//! Prints the paper's inventory next to the synthetic stand-ins this
//! reproduction generates (dimensions and element types match; entry
//! counts are scaled by `--n`).

use bench::{Args, Table};
use dataset::presets;

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", 2_000);
    let seed: u64 = args.get("seed", 1);

    let mut t = Table::new(
        "Table 1: Datasets used in the evaluation (paper vs. synthetic stand-in)",
        &[
            "Dataset",
            "Dimensions",
            "Entries (paper)",
            "Metric",
            "Elem",
            "Stand-in entries",
            "Stand-in bytes",
        ],
    );

    // Generate each stand-in at the requested scale to report its true size.
    let sizes: Vec<(usize, usize)> = vec![
        {
            let s = presets::fashion_mnist_like(n, seed);
            (s.len(), s.storage_bytes())
        },
        {
            let s = presets::glove25_like(n, seed);
            (s.len(), s.storage_bytes())
        },
        {
            let s = presets::kosarak_like(n, seed);
            (s.len(), s.storage_bytes())
        },
        {
            let s = presets::mnist_like(n, seed);
            (s.len(), s.storage_bytes())
        },
        {
            let s = presets::nytimes_like(n, seed);
            (s.len(), s.storage_bytes())
        },
        {
            let s = presets::lastfm_like(n, seed);
            (s.len(), s.storage_bytes())
        },
        {
            let s = presets::deep1b_like(n, seed);
            (s.len(), s.storage_bytes())
        },
        {
            let s = presets::bigann_like(n, seed);
            (s.len(), s.storage_bytes())
        },
    ];

    for (info, (sn, sb)) in presets::TABLE1.iter().zip(sizes) {
        t.row(&[
            &info.name,
            &info.dim,
            &info.paper_entries,
            &info.metric,
            &info.elem,
            &sn,
            &sb,
        ]);
    }
    t.print();
    let path = t.write_csv(&args.out_dir(), "table1").expect("write csv");
    println!("\ncsv: {}", path.display());
}
