//! **Extension harness** — the distributed query engine (`dnnd::query`)
//! vs. the paper's shared-memory query program on the same graphs.
//!
//! The paper gathers the k-NNG and queries it shared-memory (Section
//! 5.3.1); its conclusion motivates frameworks where the graph never fits
//! one node. This harness quantifies what that costs: recall parity and
//! the virtual-time/traffic profile of fully distributed serving.
//!
//! `--trace-out trace.json` / `--report-out report.json` capture the
//! 8-rank distributed run's span timeline and unified run report.

use bench::{Args, Table};
use dataset::ground_truth::brute_force_queries;
use dataset::metric::L2;
use dataset::presets;
use dataset::recall::mean_recall;
use dataset::synth::split_queries;
use dnnd::{build, distributed_search_batch, DistSearchParams, DnndConfig};
use nnd::{search_batch, SearchParams};
use std::sync::Arc;
use ygm::World;

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", if args.flag("full") { 4_000 } else { 1_500 });
    let n_queries: usize = args.get("queries", 150);
    let k: usize = args.get("k", 10);
    let seed: u64 = args.get("seed", 91);

    let (base, queries) = split_queries(presets::deep1b_like(n + n_queries, seed), n_queries);
    let base = Arc::new(base);
    let queries = Arc::new(queries);
    println!("distributed serving: DEEP-like n={n}, {n_queries} queries, k={k}");

    let out = build(
        &World::new(8),
        &base,
        &L2,
        DnndConfig::new(k).seed(seed).graph_opt(1.5),
    );
    let graph = Arc::new(out.graph);
    let truth = brute_force_queries(&base, &queries, &L2, k);

    // Shared-memory reference (the paper's query program).
    let shared = search_batch(
        &graph,
        &base,
        &L2,
        &queries,
        SearchParams::new(k)
            .epsilon(0.2)
            .entry_candidates(32)
            .seed(seed),
    );
    let r_shared = mean_recall(&shared.ids, &truth);

    let mut t = Table::new(
        "Distributed vs shared-memory query serving",
        &[
            "Engine",
            "Ranks",
            "Recall@k",
            "Virtual secs",
            "Wall secs",
            "Messages",
            "MB",
        ],
    );
    t.row(&[
        &"shared-memory",
        &1usize,
        &format!("{r_shared:.4}"),
        &"-",
        &format!("{:.3}", shared.secs),
        &0u64,
        &0.0,
    ]);

    let trace_out: String = args.get("trace-out", String::new());
    let report_out: String = args.get("report-out", String::new());

    for ranks in [2usize, 4, 8, 16] {
        // Observe the 8-rank run: one track per rank in the trace.
        let tracer = if ranks == 8 && !(trace_out.is_empty() && report_out.is_empty()) {
            Some(Arc::new(obs::Tracer::new(ranks)))
        } else {
            None
        };
        let mut world = World::new(ranks);
        if let Some(t) = &tracer {
            world = world.tracer(Arc::clone(t));
        }
        let (ids, report) = distributed_search_batch(
            &world,
            &base,
            &graph,
            &queries,
            &L2,
            DistSearchParams::new(k)
                .epsilon(0.2)
                .entry_candidates(32)
                .seed(seed),
        );
        let recall = mean_recall(&ids, &truth);
        t.row(&[
            &"distributed",
            &ranks,
            &format!("{recall:.4}"),
            &format!("{:.4}", report.sim_secs),
            &format!("{:.3}", report.wall_secs),
            &report.total.count,
            &format!("{:.1}", report.total.bytes as f64 / 1e6),
        ]);
        if let Some(t) = &tracer {
            if !trace_out.is_empty() {
                dnnd::obs_report::write_trace(&trace_out, t).expect("trace-out");
                println!("trace ({ranks} ranks): {trace_out}");
            }
            if !report_out.is_empty() {
                let mut rr =
                    dnnd::obs_report::report_from_world("bench-dist-query", ranks, &report);
                rr.recall = Some(recall);
                rr.param("n", n).param("queries", n_queries).param("k", k);
                dnnd::obs_report::attach_histograms(&mut rr, Some(t));
                dnnd::obs_report::write_report(&report_out, &rr).expect("report-out");
                println!("report ({ranks} ranks): {report_out}");
            }
        }
    }
    t.print();
    t.write_csv(&args.out_dir(), "dist_query").expect("csv");
    println!("\ncsv: {}/dist_query.csv", args.out_dir().display());
}
