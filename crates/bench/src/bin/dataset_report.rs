//! **Dataset diagnostics** — LID / contrast profile of every synthetic
//! stand-in, plus its NN-Descent difficulty (iterations and distance
//! evaluations to converge). Complements Table 1: it shows the stand-ins
//! have genuine local structure (LID well below ambient dimension,
//! expansion > 1) rather than being degenerate uniform noise.

use bench::{Args, Table};
use dataset::ground_truth::brute_force_knng;
use dataset::metric::{Cosine, Jaccard, L2};
use dataset::point::Point;
use dataset::presets;
use dataset::recall::mean_recall;
use dataset::set::PointSet;
use dataset::{analysis, GroundTruth};
use nnd::{build, NnDescentParams};

fn report_one<P: Point, M: dataset::batch::BatchMetric<P>>(
    name: &str,
    set: PointSet<P>,
    metric: M,
    ambient_dim: usize,
    k: usize,
    seed: u64,
    t: &mut Table,
) {
    let truth: GroundTruth = brute_force_knng(&set, &metric, k);
    let p = analysis::profile(&truth);
    let (g, stats) = build(&set, &metric, NnDescentParams::new(k).seed(seed));
    let recall = mean_recall(&g.neighbor_ids(), &truth);
    t.row(&[
        &name,
        &set.len(),
        &ambient_dim,
        &format!("{:.1}", p.mean_lid),
        &format!("{:.1}", p.median_lid),
        &format!("{:.2}", p.expansion),
        &stats.iterations,
        &stats.distance_evals,
        &format!("{recall:.4}"),
    ]);
}

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", if args.flag("full") { 2_000 } else { 800 });
    let k: usize = args.get("k", 15);
    let seed: u64 = args.get("seed", 13);

    println!("dataset diagnostics: n={n} k={k}");
    let mut t = Table::new(
        "Synthetic stand-in profiles (LID = local intrinsic dimensionality)",
        &[
            "Dataset",
            "N",
            "Ambient dim",
            "Mean LID",
            "Median LID",
            "Expansion",
            "NN-D iters",
            "NN-D dist evals",
            "NN-D recall",
        ],
    );
    report_one(
        "Fashion-MNIST-like",
        presets::fashion_mnist_like(n, seed),
        L2,
        784,
        k,
        seed,
        &mut t,
    );
    report_one(
        "GloVe25-like",
        presets::glove25_like(n, seed),
        Cosine,
        25,
        k,
        seed,
        &mut t,
    );
    report_one(
        "Kosarak-like",
        presets::kosarak_like(n, seed),
        Jaccard,
        27_983,
        k,
        seed,
        &mut t,
    );
    report_one(
        "MNIST-like",
        presets::mnist_like(n, seed),
        L2,
        784,
        k,
        seed,
        &mut t,
    );
    report_one(
        "NYTimes-like",
        presets::nytimes_like(n, seed),
        Cosine,
        256,
        k,
        seed,
        &mut t,
    );
    report_one(
        "Lastfm-like",
        presets::lastfm_like(n, seed),
        Cosine,
        65,
        k,
        seed,
        &mut t,
    );
    report_one(
        "DEEP-like",
        presets::deep1b_like(n, seed),
        L2,
        96,
        k,
        seed,
        &mut t,
    );
    report_one(
        "BigANN-like",
        presets::bigann_like(n, seed),
        L2,
        128,
        k,
        seed,
        &mut t,
    );

    t.print();
    let path = t.write_csv(&args.out_dir(), "dataset_report").expect("csv");
    println!("\ncsv: {}", path.display());
}
