//! `dnnd-critical-path` — post-processes any `--trace-out` Chrome-trace
//! file: validates the causal flow arrows (`ph:"s"`/`ph:"f"` halves must
//! pair exactly on id), tallies per-tag and cross-rank arrow counts, and
//! computes the longest causally-ordered flow chain through the trace.
//!
//! ```text
//! dnnd-critical-path trace.json [--out flows.json]
//! ```
//!
//! Exit codes: `0` when every recv half has a matching send half, `1`
//! when the pairing is broken (each unmatched id is named), `2` on usage
//! or I/O errors. The analysis is a pure function of the trace file, so
//! its JSON output is byte-identical across invocations.

use obs::JsonValue as J;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::process::ExitCode;

/// One flow-arrow half pulled out of the trace.
#[derive(Debug, Clone)]
struct Half {
    id: String,
    name: String,
    rank: u64,
    /// Virtual timestamp in microseconds (`args.virt_us`).
    virt_us: f64,
}

fn halves(events: &[J], ph: &str) -> Vec<Half> {
    events
        .iter()
        .filter(|e| {
            e.get("cat").and_then(J::as_str) == Some("flow")
                && e.get("ph").and_then(J::as_str) == Some(ph)
        })
        .map(|e| Half {
            id: e
                .get("id")
                .and_then(J::as_str)
                .unwrap_or_default()
                .to_string(),
            name: e
                .get("name")
                .and_then(J::as_str)
                .unwrap_or_default()
                .to_string(),
            rank: e.get("tid").and_then(J::as_u64).unwrap_or(0),
            virt_us: e
                .get("args")
                .and_then(|a| a.get("virt_us"))
                .and_then(J::as_f64)
                .unwrap_or(0.0),
        })
        .collect()
}

/// A paired arrow: send half joined with its recv half on id.
struct Arrow {
    name: String,
    send_rank: u64,
    recv_rank: u64,
    send_virt_us: f64,
    recv_virt_us: f64,
}

/// Longest chain of causally ordered arrows: arrow `b` can follow arrow
/// `a` when `b` originates on the rank where `a` landed, no earlier (in
/// virtual time) than `a`'s landing. Arrows are processed in send order
/// with landings applied from a time-ordered queue, so the whole pass is
/// `O(n log n)` and fully deterministic (ties break on the stable sort).
fn longest_chain(arrows: &[Arrow]) -> u64 {
    let mut order: Vec<usize> = (0..arrows.len()).collect();
    order.sort_by(|&a, &b| {
        arrows[a]
            .send_virt_us
            .total_cmp(&arrows[b].send_virt_us)
            .then_with(|| a.cmp(&b))
    });
    // Pending landings as a min-heap on recv time: (recv_virt_us, rank,
    // chain length ending at that landing).
    struct Landing(f64, u64, u64);
    impl PartialEq for Landing {
        fn eq(&self, o: &Self) -> bool {
            self.0 == o.0 && self.1 == o.1 && self.2 == o.2
        }
    }
    impl Eq for Landing {}
    impl PartialOrd for Landing {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for Landing {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            // Reversed: BinaryHeap is a max-heap, we want earliest first.
            o.0.total_cmp(&self.0)
                .then_with(|| o.1.cmp(&self.1))
                .then_with(|| o.2.cmp(&self.2))
        }
    }
    let mut pending: BinaryHeap<Landing> = BinaryHeap::new();
    let mut best_at: BTreeMap<u64, u64> = BTreeMap::new();
    let mut longest = 0u64;
    for i in order {
        let a = &arrows[i];
        while let Some(l) = pending.peek() {
            if l.0 <= a.send_virt_us {
                let Landing(_, rank, chain) = pending.pop().unwrap();
                let e = best_at.entry(rank).or_insert(0);
                *e = (*e).max(chain);
            } else {
                break;
            }
        }
        let chain = best_at.get(&a.send_rank).copied().unwrap_or(0) + 1;
        longest = longest.max(chain);
        pending.push(Landing(a.recv_virt_us, a.recv_rank, chain));
    }
    longest
}

fn run() -> Result<bool, String> {
    let mut positional = Vec::new();
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            out_path = Some(args.next().ok_or("--out needs a path")?);
        } else if a.starts_with("--") {
            return Err(format!("unknown flag {a:?}"));
        } else {
            positional.push(a);
        }
    }
    let trace_path = match positional.as_slice() {
        [p] => p.clone(),
        _ => return Err("usage: dnnd-critical-path <trace.json> [--out flows.json]".into()),
    };

    let text = std::fs::read_to_string(&trace_path)
        .map_err(|e| format!("cannot read {trace_path}: {e}"))?;
    let doc = J::parse(&text).map_err(|e| format!("cannot parse {trace_path}: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(J::as_arr)
        .ok_or("not a Chrome trace: no traceEvents array")?;
    let n_ranks = doc
        .get("otherData")
        .and_then(|o| o.get("n_ranks"))
        .and_then(J::as_u64)
        .unwrap_or(0);
    let dropped = doc
        .get("otherData")
        .and_then(|o| o.get("dropped_events"))
        .and_then(J::as_u64)
        .unwrap_or(0);

    let sends = halves(events, "s");
    let recvs = halves(events, "f");
    let send_by_id: BTreeMap<&str, &Half> = sends.iter().map(|h| (h.id.as_str(), h)).collect();
    let recv_ids: BTreeSet<&str> = recvs.iter().map(|h| h.id.as_str()).collect();

    // The pairing invariant: every terminating half must have an origin.
    // (The reverse is legal — an arrow whose payload was shed or still
    // unflushed when the trace was cut has a send and no recv.)
    let unmatched: Vec<&Half> = recvs
        .iter()
        .filter(|h| !send_by_id.contains_key(h.id.as_str()))
        .collect();

    let arrows: Vec<Arrow> = recvs
        .iter()
        .filter_map(|r| {
            send_by_id.get(r.id.as_str()).map(|s| Arrow {
                name: r.name.clone(),
                send_rank: s.rank,
                recv_rank: r.rank,
                send_virt_us: s.virt_us,
                recv_virt_us: r.virt_us,
            })
        })
        .collect();
    let cross_rank = arrows.iter().filter(|a| a.send_rank != a.recv_rank).count();

    // Per-flow-name tallies, name-sorted for a stable report.
    let mut per_name: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for s in &sends {
        per_name.entry(&s.name).or_default().0 += 1;
    }
    for r in &recvs {
        per_name.entry(&r.name).or_default().1 += 1;
    }
    for a in &arrows {
        if a.send_rank != a.recv_rank {
            per_name.entry(&a.name).or_default().2 += 1;
        }
    }
    let chain = longest_chain(&arrows);

    println!(
        "{trace_path}: {} ranks, {} flow sends, {} flow recvs, {} arrows ({} cross-rank), \
         longest causal chain {} arrow(s), {} trace events dropped",
        n_ranks,
        sends.len(),
        recvs.len(),
        arrows.len(),
        cross_rank,
        chain,
        dropped
    );
    for (name, (s, r, x)) in &per_name {
        println!("  {name}: {s} sends / {r} recvs ({x} cross-rank)");
    }

    if let Some(path) = out_path {
        let per_flow = J::Arr(
            per_name
                .iter()
                .map(|(name, (s, r, x))| {
                    J::Obj(vec![
                        ("name".into(), J::str(*name)),
                        ("sends".into(), J::uint(*s)),
                        ("recvs".into(), J::uint(*r)),
                        ("cross_rank".into(), J::uint(*x)),
                    ])
                })
                .collect(),
        );
        let out = J::Obj(vec![
            ("n_ranks".into(), J::uint(n_ranks)),
            ("flow_sends".into(), J::uint(sends.len() as u64)),
            ("flow_recvs".into(), J::uint(recvs.len() as u64)),
            ("arrows".into(), J::uint(arrows.len() as u64)),
            ("cross_rank_arrows".into(), J::uint(cross_rank as u64)),
            ("unmatched_recvs".into(), J::uint(unmatched.len() as u64)),
            (
                "unpaired_sends".into(),
                J::uint(
                    sends
                        .iter()
                        .filter(|s| !recv_ids.contains(s.id.as_str()))
                        .count() as u64,
                ),
            ),
            ("longest_chain".into(), J::uint(chain)),
            ("dropped_events".into(), J::uint(dropped)),
            ("per_flow".into(), per_flow),
        ]);
        std::fs::write(&path, out.pretty()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("flow analysis written to {path}");
    }

    if unmatched.is_empty() {
        Ok(true)
    } else {
        println!(
            "FAIL: {} recv half(s) without a matching send:",
            unmatched.len()
        );
        for h in unmatched.iter().take(10) {
            println!("  id {} ({}, rank {})", h.id, h.name, h.rank);
        }
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrow(name: &str, sr: u64, rr: u64, st: f64, rt: f64) -> Arrow {
        Arrow {
            name: name.into(),
            send_rank: sr,
            recv_rank: rr,
            send_virt_us: st,
            recv_virt_us: rt,
        }
    }

    #[test]
    fn chain_follows_causal_order_across_ranks() {
        // 0 -> 1 at t10, then 1 -> 2 at t20 (after landing), then an
        // unrelated early arrow that cannot extend anything.
        let arrows = vec![
            arrow("a", 0, 1, 0.0, 10.0),
            arrow("b", 1, 2, 20.0, 30.0),
            arrow("c", 3, 3, 1.0, 2.0),
        ];
        assert_eq!(longest_chain(&arrows), 2);
    }

    #[test]
    fn concurrent_arrows_do_not_chain() {
        // b starts before a lands on its rank: no happens-before edge.
        let arrows = vec![arrow("a", 0, 1, 0.0, 10.0), arrow("b", 1, 2, 5.0, 15.0)];
        assert_eq!(longest_chain(&arrows), 1);
        assert_eq!(longest_chain(&[]), 0);
    }

    #[test]
    fn chain_is_order_invariant() {
        let mut arrows = vec![
            arrow("a", 0, 1, 0.0, 1.0),
            arrow("b", 1, 0, 2.0, 3.0),
            arrow("c", 0, 1, 4.0, 5.0),
            arrow("d", 2, 3, 0.5, 0.6),
        ];
        assert_eq!(longest_chain(&arrows), 3);
        arrows.reverse();
        assert_eq!(longest_chain(&arrows), 3);
    }

    #[test]
    fn halves_extract_flow_events_only() {
        let doc = J::parse(
            r#"{"traceEvents":[
                {"ph":"s","cat":"flow","name":"Type 1","id":"000e000000000001","tid":0,"ts":1.0,"args":{"virt_us":5.0,"tag":14}},
                {"ph":"f","bp":"e","cat":"flow","name":"Type 1","id":"000e000000000001","tid":1,"ts":2.0,"args":{"virt_us":9.0,"tag":14}},
                {"ph":"X","name":"dispatch","tid":1,"ts":0.5,"dur":3.0}
            ]}"#,
        )
        .unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let sends = halves(events, "s");
        let recvs = halves(events, "f");
        assert_eq!(sends.len(), 1);
        assert_eq!(recvs.len(), 1);
        assert_eq!(sends[0].id, recvs[0].id);
        assert_eq!(sends[0].rank, 0);
        assert_eq!(recvs[0].rank, 1);
        assert_eq!(recvs[0].virt_us, 9.0);
    }
}
