//! **Extension harness** — the online serving layer under an offered-load
//! sweep: throughput vs. tail latency, shedding, and answered-query
//! quality as the frontend moves from idle to 2x overload.
//!
//! Each sweep point replays the same deterministic workload shape at a
//! different offered load against the same graph, so the emitted run
//! report is bit-stable and serves as the committed `BENCH_5.json`
//! regression baseline (gated softly by `dnnd-report-diff` in CI: the
//! `serving.*` counters must not grow, answered queries must not shrink).
//!
//! ```text
//! serve --smoke --report-out BENCH_5.candidate.json   # CI shape
//! serve --n 4000 --arrivals 1200 --dashboard-out serve.html
//! ```
//!
//! `--smoke` shrinks the fixture to CI size and self-checks the schema-v3
//! report (serving section present, round-trips, digest stable).

use bench::{Args, Table};
use dataset::ground_truth::brute_force_queries;
use dataset::metric::L2;
use dataset::presets;
use dataset::set::PointId;
use dataset::synth::split_queries;
use dnnd::{build, CommOpts, DnndConfig};
use serve::{attach_serving, run_serve, ServeOutcome, ServeParams};
use std::sync::Arc;
use ygm::World;

/// Mean recall of the answered queries against brute-force truth.
fn answered_recall(outcome: &ServeOutcome, truth: &[Vec<PointId>], k: usize) -> f64 {
    if outcome.answers.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (_, pool_id, ids) in &outcome.answers {
        let hits = ids.iter().filter(|id| truth[*pool_id].contains(id)).count();
        total += hits as f64 / k as f64;
    }
    total / outcome.answers.len() as f64
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let n: usize = args.get("n", if smoke { 500 } else { 1_500 });
    let pool_n: usize = args.get("pool", 32);
    let arrivals: usize = args.get("arrivals", if smoke { 150 } else { 400 });
    let k: usize = args.get("k", 10);
    let seed: u64 = args.get("seed", 91);
    let serve_seed: u64 = args.get("serve-seed", 0x5E27E);
    let ranks: usize = args.get("ranks", 2);

    let (base, pool) = split_queries(presets::deep1b_like(n + pool_n, seed), pool_n);
    let base = Arc::new(base);
    let pool = Arc::new(pool);
    println!("online serving sweep: DEEP-like n={n}, pool {pool_n}, k={k}, {ranks} ranks");

    // The committed BENCH_5.json baseline must be byte-reproducible, so the
    // graph build uses the bit-deterministic path: unoptimized protocol with
    // a pinned iteration count (the optimized protocol's racy pruning makes
    // the graph — and thus the serving result digest — vary run to run).
    let out = build(
        &World::new(ranks),
        &base,
        &L2,
        DnndConfig::new(k)
            .seed(seed)
            .comm_opts(CommOpts::unoptimized())
            .max_iters(8)
            .graph_opt(1.5),
    );
    let graph = Arc::new(out.graph);
    let truth = brute_force_queries(&base, &pool, &L2, k);

    // Nominal drain capacity: one micro-batch per slot. The sweep offers
    // 0.25x (idle) through 2x (overload) of that.
    let batch = 4usize;
    let slot_ns = 1_000_000u64;
    let capacity_qps = batch as f64 * 1e9 / slot_ns as f64;
    // Degrade level 2 doubles drain capacity, so 2x is absorbed by
    // degradation alone; 4x is past what the ladder can drain and forces
    // overload shedding.
    let factors = [0.25, 0.5, 1.0, 2.0, 4.0];

    let mut t = Table::new(
        "Online serving: offered load vs SLOs",
        &[
            "Offered qps",
            "Answered",
            "Cache hits",
            "Shed",
            "Degraded",
            "p50 ms",
            "p99 ms",
            "Recall@k",
        ],
    );
    let mut sweep: Vec<(f64, ServeOutcome, f64)> = Vec::new();
    let mut last_wr = None;
    for factor in factors {
        let qps = capacity_qps * factor;
        let params = ServeParams::new(k)
            .serve_seed(serve_seed)
            .slot_ns(slot_ns)
            .offered_qps(qps)
            .n_arrivals(arrivals)
            .hot_set(0.3, 8)
            .batch(batch)
            .flush_age_slots(2)
            .deadline_slots(6)
            .watermarks(8, 20)
            .cache(16, 1e-3);
        let (outcome, wr) = run_serve(&World::new(ranks), &base, &graph, &pool, &L2, &params);
        let recall = answered_recall(&outcome, &truth.ids, k);
        let s = &outcome.stats;
        t.row(&[
            &format!("{qps:.0}"),
            &s.total_answered(),
            &s.cache_hits,
            &(s.shed_deadline + s.shed_overload),
            &s.degraded,
            &format!("{:.2}", s.percentile_ns(0.50) as f64 / 1e6),
            &format!("{:.2}", s.percentile_ns(0.99) as f64 / 1e6),
            &format!("{recall:.4}"),
        ]);
        sweep.push((qps, outcome, recall));
        last_wr = Some(wr);
    }
    t.print();
    t.write_csv(&args.out_dir(), "serve").expect("csv");
    println!("\ncsv: {}/serve.csv", args.out_dir().display());

    // The emitted report carries the overload (2x) point's serving section
    // — the one whose shedding/degrade counters the regression gate should
    // watch — plus the whole sweep as extras for the dashboard's
    // throughput-latency chart.
    let (_, overload, overload_recall) = sweep.last().expect("sweep is non-empty");
    let mut rr =
        dnnd::obs_report::report_from_world("serve", ranks, last_wr.as_ref().expect("ran"));
    attach_serving(&mut rr, &overload.stats);
    rr.recall = Some(*overload_recall);
    rr.param("mode", if smoke { "smoke" } else { "full" })
        .param("n", n)
        .param("pool", pool_n)
        .param("arrivals", arrivals)
        .param("k", k)
        .param("serve_seed", serve_seed)
        .param("batch", batch)
        .param("ranks", ranks);
    for (i, (qps, outcome, recall)) in sweep.iter().enumerate() {
        rr.extra.push((format!("sweep_qps_{i}"), *qps));
        rr.extra.push((
            format!("sweep_p99_ms_{i}"),
            outcome.stats.percentile_ns(0.99) as f64 / 1e6,
        ));
        rr.extra.push((format!("sweep_recall_{i}"), *recall));
        rr.extra.push((
            format!("sweep_answered_{i}"),
            outcome.stats.total_answered() as f64,
        ));
    }

    if smoke {
        // Self-checks: schema v3 with a serving section that round-trips,
        // deterministic digest across an in-process replay, and the
        // overload point must actually exercise the admission ladder.
        let json = rr.to_json_string();
        assert!(
            json.contains(&format!(
                "\"schema_version\": {}",
                obs::report::SCHEMA_VERSION
            )),
            "report is not schema v{}",
            obs::report::SCHEMA_VERSION
        );
        let parsed = obs::RunReport::parse(&json).expect("report round-trip");
        let section = parsed.serving.expect("serving section present");
        assert_eq!(section, overload.stats.to_section());
        assert!(
            section.shed_deadline + section.shed_overload + section.degraded > 0,
            "2x overload exercised no shedding/degradation"
        );
        println!(
            "smoke OK: schema v3 serving report round-trips, digest {:016x}",
            section.result_digest
        );
    }

    let report_out: String = args.get("report-out", String::new());
    if !report_out.is_empty() {
        dnnd::obs_report::write_report(&report_out, &rr).expect("report-out");
        println!("report: {report_out}");
    }
    let dashboard_out: String = args.get("dashboard-out", String::new());
    if !dashboard_out.is_empty() {
        dnnd::obs_report::write_dashboard(&dashboard_out, &rr).expect("dashboard-out");
        println!("dashboard: {dashboard_out}");
    }
}
