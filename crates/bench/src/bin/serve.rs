//! **Extension harness** — the online serving layer under an offered-load
//! sweep: throughput vs. tail latency, shedding, and answered-query
//! quality as the frontend moves from idle to 2x overload.
//!
//! Each sweep point replays the same deterministic workload shape at a
//! different offered load against the same graph, so the emitted run
//! report is bit-stable and serves as the committed `BENCH_5.json`
//! regression baseline (gated softly by `dnnd-report-diff` in CI: the
//! `serving.*` counters must not grow, answered queries must not shrink).
//!
//! ```text
//! serve --smoke --report-out BENCH_5.candidate.json   # CI shape
//! serve --n 4000 --arrivals 1200 --dashboard-out serve.html
//! serve --flash --smoke --report-out BENCH_9.candidate.json
//! ```
//!
//! `--smoke` shrinks the fixture to CI size and self-checks the schema
//! report (serving section present, round-trips, digest stable).
//!
//! `--flash` swaps the offered-load sweep for the flash-crowd scenario:
//! a closed-loop Zipfian two-tenant workload
//! (`closed:n=24,think=3ms;zipf:s=1.1;burst:at=10ms,x=8,dur=30ms;`
//! `tenants=gold:50%,free:50%`) replayed under escalating transport-fault
//! profiles (none → lossy → stormy). The faulted point's serving section
//! — per-tenant shed counters included — is the committed `BENCH_9.json`
//! baseline; the report self-checks bit-identity across an in-process
//! rerun before it is written.
//!
//! `--vdb` swaps the sweep for the vector-DB product-layer scenario: the
//! same DEEP-like points become a namespaced collection (deterministic
//! per-id `bucket` metadata), and a filtered-workload ladder runs from
//! unfiltered through 10%-selective predicates to a mixed
//! insert/delete/compact point. The mutating point's report — serving
//! *and* schema-v8 `vdb` sections — is the committed `BENCH_10.json`
//! baseline; the smoke shape also asserts the unfiltered point matches
//! legacy (non-vdb) serving over the identical base + graph bit for bit.

use bench::{Args, Table};
use dataset::ground_truth::brute_force_queries;
use dataset::metric::L2;
use dataset::presets;
use dataset::set::PointId;
use dataset::synth::split_queries;
use dnnd::{build, CommOpts, DnndConfig};
use serve::{
    attach_serving, attach_vdb, run_serve, run_serve_vdb, ServeOutcome, ServeParams, VdbServeConfig,
};
use std::sync::Arc;
use vdb::{Collection, MetaRecord};
use ygm::World;

/// Mean recall of the answered queries against brute-force truth.
fn answered_recall(outcome: &ServeOutcome, truth: &[Vec<PointId>], k: usize) -> f64 {
    if outcome.answers.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (_, pool_id, ids) in &outcome.answers {
        let hits = ids.iter().filter(|id| truth[*pool_id].contains(id)).count();
        total += hits as f64 / k as f64;
    }
    total / outcome.answers.len() as f64
}

/// The flash-crowd scenario spec (`BENCH_9.json`): closed-loop clients on
/// a Zipfian pool, one 8x flash-crowd window, two 50/50 tenant classes.
const FLASH_SPEC: &str =
    "closed:n=48,think=3ms;zipf:s=1.1;burst:at=8ms,x=16,dur=40ms;tenants=gold:50%,free:50%";

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let flash = args.flag("flash");
    let n: usize = args.get("n", if smoke { 500 } else { 1_500 });
    let pool_n: usize = args.get("pool", 32);
    let arrivals: usize = args.get("arrivals", if smoke { 150 } else { 400 });
    let k: usize = args.get("k", 10);
    let seed: u64 = args.get("seed", 91);
    let serve_seed: u64 = args.get("serve-seed", 0x5E27E);
    let ranks: usize = args.get("ranks", 2);

    if args.flag("vdb") {
        return vdb_sweep(
            &args, smoke, n, pool_n, arrivals, k, seed, serve_seed, ranks,
        );
    }

    let (base, pool) = split_queries(presets::deep1b_like(n + pool_n, seed), pool_n);
    let base = Arc::new(base);
    let pool = Arc::new(pool);
    println!("online serving sweep: DEEP-like n={n}, pool {pool_n}, k={k}, {ranks} ranks");

    // The committed BENCH_5.json baseline must be byte-reproducible, so the
    // graph build uses the bit-deterministic path: unoptimized protocol with
    // a pinned iteration count (the optimized protocol's racy pruning makes
    // the graph — and thus the serving result digest — vary run to run).
    let out = build(
        &World::new(ranks),
        &base,
        &L2,
        DnndConfig::new(k)
            .seed(seed)
            .comm_opts(CommOpts::unoptimized())
            .max_iters(8)
            .graph_opt(1.5),
    );
    let graph = Arc::new(out.graph);
    let truth = brute_force_queries(&base, &pool, &L2, k);

    if flash {
        return flash_crowd(
            &args, smoke, arrivals, k, serve_seed, ranks, &base, &graph, &pool, &truth.ids,
        );
    }

    // Nominal drain capacity: one micro-batch per slot. The sweep offers
    // 0.25x (idle) through 2x (overload) of that.
    let batch = 4usize;
    let slot_ns = 1_000_000u64;
    let capacity_qps = batch as f64 * 1e9 / slot_ns as f64;
    // Degrade level 2 doubles drain capacity, so 2x is absorbed by
    // degradation alone; 4x is past what the ladder can drain and forces
    // overload shedding.
    let factors = [0.25, 0.5, 1.0, 2.0, 4.0];

    let mut t = Table::new(
        "Online serving: offered load vs SLOs",
        &[
            "Offered qps",
            "Answered",
            "Cache hits",
            "Shed",
            "Degraded",
            "p50 ms",
            "p99 ms",
            "Recall@k",
        ],
    );
    let mut sweep: Vec<(f64, ServeOutcome, f64)> = Vec::new();
    let mut last_wr = None;
    for factor in factors {
        let qps = capacity_qps * factor;
        let params = ServeParams::new(k)
            .serve_seed(serve_seed)
            .slot_ns(slot_ns)
            .offered_qps(qps)
            .n_arrivals(arrivals)
            .hot_set(0.3, 8)
            .batch(batch)
            .flush_age_slots(2)
            .deadline_slots(6)
            .watermarks(8, 20)
            .cache(16, 1e-3);
        let (outcome, wr) = run_serve(&World::new(ranks), &base, &graph, &pool, &L2, &params);
        let recall = answered_recall(&outcome, &truth.ids, k);
        let s = &outcome.stats;
        t.row(&[
            &format!("{qps:.0}"),
            &s.total_answered(),
            &s.cache_hits,
            &(s.shed_deadline + s.shed_overload),
            &s.degraded,
            &format!("{:.2}", s.percentile_ns(0.50) as f64 / 1e6),
            &format!("{:.2}", s.percentile_ns(0.99) as f64 / 1e6),
            &format!("{recall:.4}"),
        ]);
        sweep.push((qps, outcome, recall));
        last_wr = Some(wr);
    }
    t.print();
    t.write_csv(&args.out_dir(), "serve").expect("csv");
    println!("\ncsv: {}/serve.csv", args.out_dir().display());

    // The emitted report carries the overload (2x) point's serving section
    // — the one whose shedding/degrade counters the regression gate should
    // watch — plus the whole sweep as extras for the dashboard's
    // throughput-latency chart.
    let (_, overload, overload_recall) = sweep.last().expect("sweep is non-empty");
    let mut rr =
        dnnd::obs_report::report_from_world("serve", ranks, last_wr.as_ref().expect("ran"));
    attach_serving(&mut rr, &overload.stats);
    rr.recall = Some(*overload_recall);
    rr.param("mode", if smoke { "smoke" } else { "full" })
        .param("n", n)
        .param("pool", pool_n)
        .param("arrivals", arrivals)
        .param("k", k)
        .param("serve_seed", serve_seed)
        .param("batch", batch)
        .param("ranks", ranks);
    for (i, (qps, outcome, recall)) in sweep.iter().enumerate() {
        rr.extra.push((format!("sweep_qps_{i}"), *qps));
        rr.extra.push((
            format!("sweep_p99_ms_{i}"),
            outcome.stats.percentile_ns(0.99) as f64 / 1e6,
        ));
        rr.extra.push((format!("sweep_recall_{i}"), *recall));
        rr.extra.push((
            format!("sweep_answered_{i}"),
            outcome.stats.total_answered() as f64,
        ));
    }

    if smoke {
        // Self-checks: schema v3 with a serving section that round-trips,
        // deterministic digest across an in-process replay, and the
        // overload point must actually exercise the admission ladder.
        let json = rr.to_json_string();
        assert!(
            json.contains(&format!(
                "\"schema_version\": {}",
                obs::report::SCHEMA_VERSION
            )),
            "report is not schema v{}",
            obs::report::SCHEMA_VERSION
        );
        let parsed = obs::RunReport::parse(&json).expect("report round-trip");
        let section = parsed.serving.expect("serving section present");
        assert_eq!(section, overload.stats.to_section());
        assert!(
            section.shed_deadline + section.shed_overload + section.degraded > 0,
            "2x overload exercised no shedding/degradation"
        );
        println!(
            "smoke OK: schema v3 serving report round-trips, digest {:016x}",
            section.result_digest
        );
    }

    let report_out: String = args.get("report-out", String::new());
    if !report_out.is_empty() {
        dnnd::obs_report::write_report(&report_out, &rr).expect("report-out");
        println!("report: {report_out}");
    }
    let dashboard_out: String = args.get("dashboard-out", String::new());
    if !dashboard_out.is_empty() {
        dnnd::obs_report::write_dashboard(&dashboard_out, &rr).expect("dashboard-out");
        println!("dashboard: {dashboard_out}");
    }
}

/// Flash-crowd-with-faults scenario (`--flash`): the pinned closed-loop
/// Zipfian two-tenant workload replayed under escalating transport-fault
/// profiles. The faulted (`lossy`) point's report is the `BENCH_9.json`
/// regression baseline: its per-tenant shed counters gate exactly in
/// `dnnd-report-diff`.
#[allow(clippy::too_many_arguments)]
fn flash_crowd(
    args: &Args,
    smoke: bool,
    arrivals: usize,
    k: usize,
    serve_seed: u64,
    ranks: usize,
    base: &Arc<dataset::PointSet<Vec<f32>>>,
    graph: &Arc<nnd::KnnGraph>,
    pool: &Arc<dataset::PointSet<Vec<f32>>>,
    truth: &[Vec<PointId>],
) {
    let batch = 4usize;
    let slot_ns = 1_000_000u64;
    let params = ServeParams::new(k)
        .serve_seed(serve_seed)
        .slot_ns(slot_ns)
        .offered_qps(batch as f64 * 1e9 / slot_ns as f64)
        .n_arrivals(arrivals)
        .hot_set(0.3, 8)
        .batch(batch)
        .flush_age_slots(2)
        .deadline_slots(6)
        .watermarks(8, 20)
        .cache(8, 1e-3)
        .workload_str(FLASH_SPEC);
    println!("flash crowd scenario: {FLASH_SPEC}");

    let run_profile = |profile: &str| {
        let mut world = World::new(ranks);
        if profile != "none" {
            let p = ygm::FaultProfile::by_name(profile).expect("known fault profile");
            world = world.fault_plan(ygm::FaultPlan::new(p, serve_seed));
        }
        run_serve(&world, base, graph, pool, &L2, &params)
    };

    let profiles = ["none", "lossy", "stormy"];
    let mut t = Table::new(
        "Flash crowd (closed-loop zipf, gold/free tenants) under faults",
        &[
            "Profile",
            "Answered",
            "Cache",
            "ShedOver",
            "ShedDdl",
            "gold SLO",
            "free SLO",
            "p99 ms",
            "client p99 ms",
            "Recall@k",
        ],
    );
    let mut sweep: Vec<(&str, ServeOutcome, f64)> = Vec::new();
    let mut faulted_wr = None;
    for profile in profiles {
        let (outcome, wr) = run_profile(profile);
        let recall = answered_recall(&outcome, truth, k);
        let s = &outcome.stats;
        assert_eq!(s.tenants.len(), 2, "scenario declares gold+free");
        t.row(&[
            &profile,
            &s.total_answered(),
            &s.cache_hits,
            &s.shed_overload,
            &s.shed_deadline,
            &format!("{:.1}%", s.tenants[0].slo_attainment() * 100.0),
            &format!("{:.1}%", s.tenants[1].slo_attainment() * 100.0),
            &format!("{:.2}", s.percentile_ns(0.99) as f64 / 1e6),
            &format!("{:.2}", s.client_percentile_ns(0.99) as f64 / 1e6),
            &format!("{recall:.4}"),
        ]);
        if profile == "lossy" {
            faulted_wr = Some(wr);
        }
        sweep.push((profile, outcome, recall));
    }
    t.print();
    t.write_csv(&args.out_dir(), "serve_flash").expect("csv");
    println!("\ncsv: {}/serve_flash.csv", args.out_dir().display());

    // The report carries the lossy point: a flash crowd *and* transport
    // faults, the regression gate's most load-bearing configuration.
    let (_, faulted, faulted_recall) = sweep
        .iter()
        .find(|(p, _, _)| *p == "lossy")
        .expect("lossy point ran");
    let mut rr = dnnd::obs_report::report_from_world(
        "serve-flash",
        ranks,
        faulted_wr.as_ref().expect("ran"),
    );
    attach_serving(&mut rr, &faulted.stats);
    // Transport-level fault counters (retransmits, dedup discards) depend
    // on real-thread flush interleaving, not the virtual clock, so they
    // drift run to run; keep them out of the gated baseline. The
    // `fault_profile` param records that the point ran lossy, and the
    // deterministic fault *penalties* live in the serving section.
    rr.faults = None;
    rr.recall = Some(*faulted_recall);
    rr.param("mode", if smoke { "smoke" } else { "full" })
        .param("scenario", FLASH_SPEC)
        .param("arrivals", arrivals)
        .param("k", k)
        .param("serve_seed", serve_seed)
        .param("batch", batch)
        .param("ranks", ranks)
        .param("fault_profile", "lossy");
    for (i, (profile, outcome, recall)) in sweep.iter().enumerate() {
        let s = &outcome.stats;
        rr.param(format!("flash_profile_{i}"), profile);
        rr.extra
            .push((format!("flash_shed_overload_{i}"), s.shed_overload as f64));
        rr.extra
            .push((format!("flash_shed_deadline_{i}"), s.shed_deadline as f64));
        rr.extra.push((
            format!("flash_client_p99_ms_{i}"),
            s.client_percentile_ns(0.99) as f64 / 1e6,
        ));
        rr.extra.push((format!("flash_recall_{i}"), *recall));
    }

    if smoke {
        // Self-checks: the scenario must actually flash (overload sheds
        // fire), both tenant classes must be accounted exactly, the v7
        // serving section must round-trip, and an in-process rerun of the
        // faulted point must be bit-identical (arrival plan, verdicts,
        // per-tenant counters, forensics digest all fold into the
        // fingerprint and the two digests).
        let s = &faulted.stats;
        assert!(
            s.shed_overload > 0,
            "flash crowd engaged no overload shedding"
        );
        let gold = &s.tenants[0];
        let free = &s.tenants[1];
        assert_eq!(gold.name, "gold");
        assert_eq!(free.name, "free");
        assert_eq!(
            gold.offered + free.offered,
            s.offered,
            "tenant offered counts must partition the workload"
        );
        assert_eq!(
            gold.shed_overload + free.shed_overload,
            s.shed_overload,
            "tenant shed counts must partition the sheds"
        );
        // Priority drain: the gold class's SLO attainment cannot trail free.
        assert!(
            gold.slo_attainment() >= free.slo_attainment(),
            "gold ({:.3}) must not trail free ({:.3})",
            gold.slo_attainment(),
            free.slo_attainment()
        );
        let json = rr.to_json_string();
        assert!(
            json.contains(&format!(
                "\"schema_version\": {}",
                obs::report::SCHEMA_VERSION
            )),
            "report is not schema v{}",
            obs::report::SCHEMA_VERSION
        );
        let parsed = obs::RunReport::parse(&json).expect("report round-trip");
        let section = parsed.serving.expect("serving section present");
        assert_eq!(section, s.to_section());
        assert_eq!(section.tenants.len(), 2);
        let (replay, _) = run_profile("lossy");
        assert_eq!(
            replay.stats.fingerprint(),
            s.fingerprint(),
            "flash scenario must replay bit-identically"
        );
        assert_eq!(replay.stats.result_digest, s.result_digest);
        assert_eq!(replay.forensics.digest, faulted.forensics.digest);
        println!(
            "smoke OK: flash scenario replays bit-identically, digest {:016x}",
            s.result_digest
        );
    }

    let report_out: String = args.get("report-out", String::new());
    if !report_out.is_empty() {
        dnnd::obs_report::write_report(&report_out, &rr).expect("report-out");
        println!("report: {report_out}");
    }
    let dashboard_out: String = args.get("dashboard-out", String::new());
    if !dashboard_out.is_empty() {
        dnnd::obs_report::write_dashboard(&dashboard_out, &rr).expect("dashboard-out");
        println!("dashboard: {dashboard_out}");
    }
}

/// Vector-DB scenario (`--vdb`, `BENCH_10.json`): a filtered-workload
/// ladder over a namespaced collection, from unfiltered through sharply
/// selective predicates to a mixed insert/delete point that crosses the
/// compaction watermark. The mutating point's serving + `vdb` sections
/// are the committed regression baseline.
#[allow(clippy::too_many_arguments)]
fn vdb_sweep(
    args: &Args,
    smoke: bool,
    n: usize,
    pool_n: usize,
    arrivals: usize,
    k: usize,
    seed: u64,
    serve_seed: u64,
    ranks: usize,
) {
    let (base, pool) = split_queries(presets::deep1b_like(n + pool_n, seed), pool_n);
    let meta: Vec<MetaRecord> = (0..base.len() as u64)
        .map(|id| MetaRecord::bucket_record(seed, id))
        .collect();
    let collection = Collection::create("bench", base, meta, "l2", k, seed).expect("collection");
    let pool = Arc::new(pool);
    println!(
        "vdb filtered-serving sweep: namespace \"bench\", n={n}, pool {pool_n}, k={k}, \
         {ranks} ranks"
    );

    // Every sweep point starts from the same pristine persisted namespace
    // (the mutating point writes its changes back, so the store is rebuilt
    // between points).
    let store_dir = std::env::temp_dir().join(format!("dnnd_serve_vdb_{serve_seed:x}"));
    let reset = |c: &Collection| {
        let _ = std::fs::remove_dir_all(&store_dir);
        let mut store = metall::Store::open_or_create(&store_dir).expect("bench store");
        c.save(&mut store).expect("save collection");
    };

    let batch = 4usize;
    let slot_ns = 1_000_000u64;
    let params_for = |spec: &str| {
        let p = ServeParams::new(k)
            .serve_seed(serve_seed)
            .slot_ns(slot_ns)
            .offered_qps(batch as f64 * 1e9 / slot_ns as f64)
            .n_arrivals(arrivals)
            .hot_set(0.3, 8)
            .batch(batch)
            .flush_age_slots(2)
            .deadline_slots(6)
            .watermarks(8, 20)
            .cache(16, 1e-3);
        if spec.is_empty() {
            p
        } else {
            p.workload_str(spec)
        }
    };
    // A low watermark so the smoke-sized mutating point actually crosses
    // it and exercises the deterministic compaction schedule.
    let cfg = VdbServeConfig {
        compact_watermark: 0.005,
        ..VdbServeConfig::default()
    };

    const MUTATING_SPEC: &str = "filter:pct=50,sel=0.3;mutate:ins=10,del=7";
    let scenarios: [(&str, &str); 5] = [
        ("plain", ""),
        ("sel10", "filter:pct=100,sel=0.1"),
        ("sel30", "filter:pct=100,sel=0.3"),
        ("sel100", "filter:pct=100,sel=1"),
        ("mutating", MUTATING_SPEC),
    ];

    let mut t = Table::new(
        "Vector-DB serving: filter selectivity and online mutations",
        &[
            "Scenario", "Answered", "Cache", "Filtered", "Ins", "Del", "Compact", "p99 ms",
        ],
    );
    let mut sweep: Vec<(&str, ServeOutcome)> = Vec::new();
    let mut mutating_wr = None;
    for (name, spec) in scenarios {
        reset(&collection);
        let (outcome, _, wr) = run_serve_vdb(
            &World::new(ranks),
            &store_dir,
            "bench",
            &pool,
            &L2,
            &params_for(spec),
            &cfg,
        );
        let s = &outcome.stats;
        let v = s.vdb.as_ref().expect("vdb serving stats present");
        t.row(&[
            &name,
            &s.total_answered(),
            &s.cache_hits,
            &v.filtered,
            &v.inserts,
            &v.deletes,
            &v.compactions,
            &format!("{:.2}", s.percentile_ns(0.99) as f64 / 1e6),
        ]);
        if name == "mutating" {
            mutating_wr = Some(wr);
        }
        sweep.push((name, outcome));
    }
    t.print();
    t.write_csv(&args.out_dir(), "serve_vdb").expect("csv");
    println!("\ncsv: {}/serve_vdb.csv", args.out_dir().display());

    let (_, mutating) = sweep.last().expect("sweep is non-empty");
    let mut rr =
        dnnd::obs_report::report_from_world("serve-vdb", ranks, mutating_wr.as_ref().expect("ran"));
    attach_serving(&mut rr, &mutating.stats);
    attach_vdb(&mut rr, &mutating.stats);
    rr.param("mode", if smoke { "smoke" } else { "full" })
        .param("scenario", MUTATING_SPEC)
        .param("namespace", "bench")
        .param("n", n)
        .param("pool", pool_n)
        .param("arrivals", arrivals)
        .param("k", k)
        .param("serve_seed", serve_seed)
        .param("batch", batch)
        .param("ranks", ranks);
    for (i, (name, outcome)) in sweep.iter().enumerate() {
        let s = &outcome.stats;
        let v = s.vdb.as_ref().expect("vdb stats");
        rr.param(format!("vdb_scenario_{i}"), name);
        rr.extra
            .push((format!("vdb_answered_{i}"), s.total_answered() as f64));
        rr.extra
            .push((format!("vdb_filtered_{i}"), v.filtered as f64));
        rr.extra.push((
            format!("vdb_p99_ms_{i}"),
            s.percentile_ns(0.99) as f64 / 1e6,
        ));
    }

    if smoke {
        // Self-check 1 — product-layer overhead is *zero* when unused: the
        // unfiltered, mutation-free point must reproduce legacy (non-vdb)
        // serving over the identical base + graph bit for bit.
        let (_, plain) = &sweep[0];
        let (legacy, _) = run_serve(
            &World::new(ranks),
            &Arc::new(collection.base.clone()),
            &Arc::new(collection.graph.clone()),
            &pool,
            &L2,
            &params_for(""),
        );
        assert_eq!(
            plain.answers, legacy.answers,
            "unfiltered vdb serving must answer exactly like legacy serving"
        );
        assert_eq!(plain.stats.result_digest, legacy.stats.result_digest);
        assert_eq!(plain.stats.cache_hits, legacy.stats.cache_hits);
        assert_eq!(
            plain.stats.shed_deadline + plain.stats.shed_overload,
            legacy.stats.shed_deadline + legacy.stats.shed_overload
        );

        // Self-check 2 — the mutating point exercised the whole mutation
        // surface: inserts, deletes, a compaction pass, filtered queries.
        let v = mutating.stats.vdb.as_ref().expect("vdb stats");
        assert!(v.inserts > 0, "mutating point applied no inserts");
        assert!(v.deletes > 0, "mutating point applied no deletes");
        assert!(v.compactions > 0, "watermark never triggered compaction");
        assert!(v.filtered > 0, "filtered traffic never drew a predicate");
        assert!(
            !v.selectivity_hist.is_empty(),
            "filtered queries recorded no selectivity"
        );

        // Self-check 3 — the v8 report round-trips with the vdb section.
        let json = rr.to_json_string();
        assert!(
            json.contains(&format!(
                "\"schema_version\": {}",
                obs::report::SCHEMA_VERSION
            )),
            "report is not schema v{}",
            obs::report::SCHEMA_VERSION
        );
        let parsed = obs::RunReport::parse(&json).expect("report round-trip");
        assert_eq!(parsed.vdb, Some(v.to_section()));

        // Self-check 4 — the mutating point replays bit-identically from
        // the same pristine store.
        reset(&collection);
        let (replay, _, _) = run_serve_vdb(
            &World::new(ranks),
            &store_dir,
            "bench",
            &pool,
            &L2,
            &params_for(MUTATING_SPEC),
            &cfg,
        );
        assert_eq!(
            replay.stats.fingerprint(),
            mutating.stats.fingerprint(),
            "mutating vdb scenario must replay bit-identically"
        );
        assert_eq!(replay.answers, mutating.answers);
        println!(
            "smoke OK: vdb scenario replays bit-identically, digest {:016x}",
            mutating.stats.result_digest
        );
    }

    let report_out: String = args.get("report-out", String::new());
    if !report_out.is_empty() {
        dnnd::obs_report::write_report(&report_out, &rr).expect("report-out");
        println!("report: {report_out}");
    }
    let dashboard_out: String = args.get("dashboard-out", String::new());
    if !dashboard_out.is_empty() {
        dnnd::obs_report::write_dashboard(&dashboard_out, &rr).expect("dashboard-out");
        println!("dashboard: {dashboard_out}");
    }
}
