//! **Figure 3 / Table 3** — k-NNG construction time vs. number of compute
//! nodes.
//!
//! The paper builds k = {10, 20, 30} graphs of DEEP-1B and BigANN on 4-32
//! Mammoth nodes and compares against single-node Hnswlib runs (Hnsw A-D,
//! Table 2 parameters). Headline numbers: DNND k10 on DEEP scales 3.8x
//! from 4 to 16 nodes (6.96h -> 1.84h) and flattens by 32; DNND k20 at 16
//! nodes beats the quality-comparable Hnsw B/D builds by 4.4x / 4.7x.
//!
//! Time basis here: the ygm **virtual clock**, with one simulated rank
//! calibrated as one 128-core node (the per-element distance cost is
//! divided by 128). Hnswlib stand-in times are modeled from its measured
//! distance-evaluation count on the same calibration. Absolute values are
//! not comparable to the paper's hours (the stand-in datasets are ~1e3
//! points, not 1e9); the *shape* — scaling slope, flattening, who wins —
//! is the reproduction target. Wall-clock times are also printed.

use bench::{Args, Table};
use dataset::metric::L2;
use dataset::point::Point;
use dataset::presets;
use dataset::set::PointSet;
use dnnd::{build, DnndConfig};
use hnsw::{HnswIndex, HnswParams};
use std::sync::Arc;
use ygm::{CostModel, World};

/// Cores per Mammoth node (dual 64-core EPYC).
const NODE_CORES: f64 = 128.0;

fn node_cost_model() -> CostModel {
    let mut c = CostModel::mammoth_like();
    // One simulated rank stands in for one whole node.
    c.dist_elem_ns /= NODE_CORES;
    c
}

/// Per-evaluation memory-stall penalty for HNSW inserts, nanoseconds of
/// core time. HNSW construction chases pointers through a graph spread
/// over hundreds of GiB at the paper's scale, so every candidate fetch is
/// a DRAM/TLB miss rather than the streaming access NN-Descent's batched
/// checks enjoy. Calibrated so Hnsw A lands near DNND k10 on 4 nodes, the
/// paper's Table 3a relation; see EXPERIMENTS.md.
const HNSW_MEM_NS: f64 = 1_200.0;

/// Modeled single-node construction time for an HNSW build: its measured
/// distance evaluations, at the same per-node arithmetic throughput the
/// DNND ranks use plus the memory-stall penalty above.
fn hnsw_node_secs(evals: u64, dim: usize) -> f64 {
    let per_eval_ns =
        (dim as f64 * CostModel::mammoth_like().dist_elem_ns + HNSW_MEM_NS) / NODE_CORES;
    evals as f64 * per_eval_ns / 1e9
}

struct PaperRow {
    label: &'static str,
    /// Paper hours at node counts [1, 4, 8, 16, 32]; None where the paper
    /// has no data point.
    hours: [Option<f64>; 5],
}

const NODES: [usize; 5] = [1, 4, 8, 16, 32];

fn fmt_opt(h: Option<f64>) -> String {
    h.map_or("-".into(), |v| format!("{v:.2}"))
}

#[allow(clippy::too_many_arguments)]
fn dataset_section<P: Point, M: dataset::batch::BatchMetric<P>>(
    name: &str,
    set: PointSet<P>,
    metric: M,
    hnsw_cfgs: [(&'static str, usize, usize); 2],
    paper: &[PaperRow],
    args: &Args,
    out: &mut Table,
    csv_rows: &mut Table,
) {
    let seed: u64 = args.get("seed", 3);
    let set = Arc::new(set);
    let dim = set.dim();

    // --- Hnswlib stand-ins (single node) ---
    for (label, m, efc) in hnsw_cfgs {
        println!("building {name} {label} (M={m}, efc={efc})...");
        let start = std::time::Instant::now();
        let idx = HnswIndex::build(&set, metric.clone(), HnswParams::new(m, efc).seed(seed));
        let wall = start.elapsed().as_secs_f64();
        let secs = hnsw_node_secs(idx.build_distance_evals, dim);
        let paper_row = paper.iter().find(|p| p.label == label).expect("paper row");
        let mut cells: Vec<String> = vec![label.to_owned()];
        cells.push(format!("{} | {:.3}", fmt_opt(paper_row.hours[0]), secs));
        for _ in 1..NODES.len() {
            cells.push("-".into());
        }
        let refs: Vec<&dyn std::fmt::Display> = cells.iter().map(|c| c as _).collect();
        out.row(&refs);
        csv_rows.row(&[&name, &label, &1usize, &secs, &wall]);
    }

    // --- DNND at each node count ---
    for &k in &[10usize, 20, 30] {
        let label = format!("DNND k{k}");
        let paper_row = paper
            .iter()
            .find(|p| p.label == label.as_str())
            .expect("paper row");
        let mut cells: Vec<String> = vec![label.clone()];
        cells.push(fmt_opt(paper_row.hours[0])); // 1 node: paper has none for DNND
        for (i, &nodes) in NODES.iter().enumerate().skip(1) {
            if paper_row.hours[i].is_none() && !args.flag("all-points") {
                cells.push("-".into());
                continue;
            }
            println!("building {name} DNND k={k} on {nodes} simulated nodes...");
            let world = World::new(nodes).cost_model(node_cost_model());
            let cfg = DnndConfig::new(k).seed(seed).graph_opt(1.5);
            let start = std::time::Instant::now();
            let res = build(&world, &set, &metric, cfg);
            let wall = start.elapsed().as_secs_f64();
            let secs = res.report.sim_secs;
            cells.push(format!("{} | {:.3}", fmt_opt(paper_row.hours[i]), secs));
            csv_rows.row(&[&name, &label, &nodes, &secs, &wall]);
        }
        let refs: Vec<&dyn std::fmt::Display> = cells.iter().map(|c| c as _).collect();
        out.row(&refs);
    }
}

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", if args.flag("full") { 4_000 } else { 1_500 });
    println!(
        "Figure 3 / Table 3 reproduction: n={n} (cells: paper-hours | measured virtual-seconds)"
    );

    let deep_paper = [
        PaperRow {
            label: "Hnsw A",
            hours: [Some(5.90), None, None, None, None],
        },
        PaperRow {
            label: "Hnsw B",
            hours: [Some(22.60), None, None, None, None],
        },
        PaperRow {
            label: "DNND k10",
            hours: [None, Some(6.96), Some(3.87), Some(1.84), Some(1.50)],
        },
        PaperRow {
            label: "DNND k20",
            hours: [None, None, Some(10.62), Some(5.18), Some(3.74)],
        },
        PaperRow {
            label: "DNND k30",
            hours: [None, None, None, Some(10.29), Some(6.58)],
        },
    ];
    let bigann_paper = [
        PaperRow {
            label: "Hnsw C",
            hours: [Some(1.70), None, None, None, None],
        },
        PaperRow {
            label: "Hnsw D",
            hours: [Some(16.50), None, None, None, None],
        },
        PaperRow {
            label: "DNND k10",
            hours: [None, Some(5.45), Some(2.92), Some(1.27), Some(1.24)],
        },
        PaperRow {
            label: "DNND k20",
            hours: [None, None, Some(8.19), Some(3.50), Some(3.05)],
        },
        PaperRow {
            label: "DNND k30",
            hours: [None, None, None, Some(6.84), Some(5.83)],
        },
    ];

    let headers = [
        "Config", "1 node", "4 nodes", "8 nodes", "16 nodes", "32 nodes",
    ];
    let mut deep_table = Table::new(
        "Table 3a: Yandex DEEP-like construction time (paper hours | virtual secs)",
        &headers,
    );
    let mut bigann_table = Table::new(
        "Table 3b: BigANN-like construction time (paper hours | virtual secs)",
        &headers,
    );
    let mut csv = Table::new(
        "raw",
        &["dataset", "config", "nodes", "virtual_secs", "wall_secs"],
    );

    dataset_section(
        "DEEP-like",
        presets::deep1b_like(n, 11),
        L2,
        [("Hnsw A", 64, 50), ("Hnsw B", 64, 200)],
        &deep_paper,
        &args,
        &mut deep_table,
        &mut csv,
    );
    dataset_section(
        "BigANN-like",
        presets::bigann_like(n, 11),
        L2,
        [("Hnsw C", 32, 25), ("Hnsw D", 64, 200)],
        &bigann_paper,
        &args,
        &mut bigann_table,
        &mut csv,
    );

    deep_table.print();
    bigann_table.print();
    csv.write_csv(&args.out_dir(), "fig3_scaling").expect("csv");
    println!("\ncsv: {}/fig3_scaling.csv", args.out_dir().display());
    println!(
        "\nPaper headline: DNND k10 DEEP scales 3.8x from 4 -> 16 nodes and flattens at 32;\n\
         compare the measured virtual-second columns for the same shape."
    );
}
