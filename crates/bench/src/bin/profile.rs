//! **Section 7 profiling** — "further performance profiling is required to
//! identify bottlenecks, such as finding how much the computation or
//! communication is heavier than the other."
//!
//! This harness builds the same graph across rank counts and prints the
//! virtual-clock decomposition (compute vs. communication vs. barrier) per
//! configuration — showing where DNND's time goes as the job scales out,
//! i.e. why the Figure 3 curves flatten.
//!
//! `--trace-out trace.json` attaches a tracer to the representative
//! 8-rank build and writes its Chrome-trace span timeline; `--report-out
//! report.json` writes the unified run report for the same build.

use bench::{pct, Args, Table};
use dataset::metric::L2;
use dataset::presets;
use dnnd::{build, CommOpts, DnndConfig};
use std::sync::Arc;
use ygm::World;

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", if args.flag("full") { 3_000 } else { 1_200 });
    let k: usize = args.get("k", 10);
    let seed: u64 = args.get("seed", 71);

    let set = Arc::new(presets::deep1b_like(n, seed));
    println!("Section 7 profile: DEEP-like n={n} k={k}");
    let mut t = Table::new(
        "Virtual-time decomposition per rank count (optimized protocol)",
        &[
            "Ranks",
            "Total s",
            "Compute s",
            "Comm s",
            "Barrier s",
            "Comm share",
        ],
    );
    for ranks in [2usize, 4, 8, 16, 32] {
        let out = build(&World::new(ranks), &set, &L2, DnndConfig::new(k).seed(seed));
        let b = out.report.breakdown;
        t.row(&[
            &ranks,
            &format!("{:.4}", b.total_secs()),
            &format!("{:.4}", b.compute_secs),
            &format!("{:.4}", b.comm_secs),
            &format!("{:.4}", b.barrier_secs),
            &pct(b.comm_secs + b.barrier_secs, b.total_secs()),
        ]);
    }
    t.print();
    t.write_csv(&args.out_dir(), "profile_breakdown")
        .expect("csv");

    let mut t2 = Table::new(
        "Decomposition per protocol (8 ranks)",
        &[
            "Protocol",
            "Total s",
            "Compute s",
            "Comm s",
            "Barrier s",
            "Comm share",
        ],
    );
    for (label, opts) in [
        ("unoptimized", CommOpts::unoptimized()),
        ("optimized", CommOpts::optimized()),
    ] {
        let out = build(
            &World::new(8),
            &set,
            &L2,
            DnndConfig::new(k).seed(seed).comm_opts(opts),
        );
        let b = out.report.breakdown;
        t2.row(&[
            &label,
            &format!("{:.4}", b.total_secs()),
            &format!("{:.4}", b.compute_secs),
            &format!("{:.4}", b.comm_secs),
            &format!("{:.4}", b.barrier_secs),
            &pct(b.comm_secs + b.barrier_secs, b.total_secs()),
        ]);
    }
    t2.print();
    t2.write_csv(&args.out_dir(), "profile_protocols")
        .expect("csv");

    // Per-phase trace for one representative build: shows the heavy
    // neighbor-check phases against the light sampling/collective ones.
    let trace_out: String = args.get("trace-out", String::new());
    let report_out: String = args.get("report-out", String::new());
    let tracer = if trace_out.is_empty() && report_out.is_empty() {
        None
    } else {
        Some(Arc::new(obs::Tracer::new(8)))
    };
    let mut world = World::new(8);
    if let Some(t) = &tracer {
        world = world.tracer(Arc::clone(t));
    }
    let out = build(&world, &set, &L2, DnndConfig::new(k).seed(seed));
    let mut t3 = Table::new(
        "Per-phase trace (8 ranks, optimized; heaviest 12 phases by time)",
        &["Phase", "Total ms", "Compute ms", "Comm ms", "Msgs", "MB"],
    );
    let mut phases = out.report.phases.clone();
    phases.sort_by(|a, b| b.total_secs().total_cmp(&a.total_secs()));
    for p in phases.iter().take(12) {
        t3.row(&[
            &p.index,
            &format!("{:.3}", p.total_secs() * 1e3),
            &format!("{:.3}", p.compute_secs * 1e3),
            &format!("{:.3}", p.comm_secs * 1e3),
            &p.msgs,
            &format!("{:.2}", p.bytes as f64 / 1e6),
        ]);
    }
    t3.print();
    t3.write_csv(&args.out_dir(), "profile_phases")
        .expect("csv");
    println!(
        "\n{} phases total; csv written to {}",
        out.report.phases.len(),
        args.out_dir().display()
    );

    if let Some(t) = &tracer {
        if !trace_out.is_empty() {
            dnnd::obs_report::write_trace(&trace_out, t).expect("trace-out");
            println!("trace: {trace_out}");
        }
        if !report_out.is_empty() {
            let mut rr = dnnd::obs_report::report_from_build("bench-profile", &out.report);
            rr.param("n", n).param("k", k).param("seed", seed);
            dnnd::obs_report::attach_histograms(&mut rr, Some(t));
            dnnd::obs_report::write_report(&report_out, &rr).expect("report-out");
            println!("report: {report_out}");
        }
    }
}
