//! **Extension harness** — the two graph-optimization modes head to head:
//! the paper's Section 4.5 reverse-prune pass vs the RNN-Descent
//! (occlusion-pruning) mode, on the same raw k-NNG, compared on edge
//! count, mean/max out-degree, served recall at equal beam width, and
//! served tail latency through the online serving layer.
//!
//! The fixture is the pipeline-test preset (DEEP-like 600 points, k=8,
//! seed 7, unoptimized protocol), so every number in the emitted report —
//! including the schema-v5 `rnn` section — is bit-stable and serves as
//! the committed `BENCH_7.json` regression baseline (gated softly by
//! `dnnd-report-diff` in CI: `rnn.*` counters gate exactly).
//!
//! ```text
//! rnn --smoke --report-out BENCH_7.candidate.json   # CI shape
//! rnn --ranks 4 --dashboard-out rnn.html
//! ```
//!
//! `--smoke` additionally self-checks the tentpole claims: the RNN graph
//! must be strictly sparser at equal-or-better served recall, and the
//! distributed pass must be bit-identical across ranks {1, 2, 4} and
//! across a rerun.

use bench::{Args, Table};
use dataset::ground_truth::brute_force_queries;
use dataset::metric::L2;
use dataset::presets;
use dataset::set::PointId;
use dataset::synth::split_queries;
use dnnd::{build, rnn_optimize_distributed, CommOpts, DnndConfig};
use nnd::rnn::RnnParams;
use nnd::KnnGraph;
use serve::{attach_serving, run_serve, ServeOutcome, ServeParams};
use std::sync::Arc;
use ygm::World;

/// Mean recall of the answered queries against brute-force truth.
fn answered_recall(outcome: &ServeOutcome, truth: &[Vec<PointId>], k: usize) -> f64 {
    if outcome.answers.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (_, pool_id, ids) in &outcome.answers {
        let hits = ids.iter().filter(|id| truth[*pool_id].contains(id)).count();
        total += hits as f64 / k as f64;
    }
    total / outcome.answers.len() as f64
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let n: usize = args.get("n", 600);
    let pool_n: usize = args.get("pool", 32);
    let k: usize = args.get("k", 8);
    let seed: u64 = args.get("seed", 7);
    let ranks: usize = args.get("ranks", 2);
    let l: usize = args.get("l", 12);
    let k0: usize = args.get("k0", 10);
    let params = RnnParams::new(k0)
        .t1(args.get("t1", 3usize))
        .t2(args.get("t2", 8usize));
    let m: f64 = args.get("m", 1.5);

    let (base, pool) = split_queries(presets::deep1b_like(n + pool_n, seed), pool_n);
    let base = Arc::new(base);
    let pool = Arc::new(pool);
    println!(
        "optimization-mode comparison: DEEP-like n={n}, pool {pool_n}, k={k}, seed {seed}, \
         {ranks} ranks"
    );

    // Raw k-NNG under the bit-deterministic path (unoptimized protocol, no
    // post-pass) — the input both optimization modes start from.
    let out = build(
        &World::new(ranks),
        &base,
        &L2,
        DnndConfig::new(k)
            .seed(seed)
            .comm_opts(CommOpts::unoptimized()),
    );
    let raw = out.graph;

    // Mode A — Section 4.5 reverse-prune (what `dnnd-optimize` defaults
    // to): reverse merge then prune to ceil(k * m).
    let limit = (k as f64 * m).ceil() as usize;
    let rp_graph = raw.merge_reverse().prune(limit);

    // Mode B — RNN-Descent over the same raw graph, distributed.
    let (rnn_graph, rnn_report) =
        rnn_optimize_distributed(&World::new(ranks), &base, &L2, &raw, params);

    // Equal-beam-width serving comparison: identical workload and search
    // parameters, only the graph differs.
    let truth = brute_force_queries(&base, &pool, &L2, k);
    let serve_params = ServeParams::new(l)
        .serve_seed(0x5E27E)
        .slot_ns(1_000_000)
        .offered_qps(2_000.0)
        .n_arrivals(if smoke { 120 } else { 300 })
        .hot_set(0.3, 8)
        .batch(4)
        .flush_age_slots(2)
        .deadline_slots(8)
        .watermarks(16, 48)
        .cache(16, 1e-3);
    let serve_one = |graph: &KnnGraph| {
        let (outcome, _) = run_serve(
            &World::new(ranks),
            &base,
            &Arc::new(graph.clone()),
            &pool,
            &L2,
            &serve_params,
        );
        let recall = answered_recall(&outcome, &truth.ids, k);
        (outcome, recall)
    };
    let (rp_serve, rp_recall) = serve_one(&rp_graph);
    let (rnn_serve, rnn_recall) = serve_one(&rnn_graph);

    let mean_deg = |g: &KnnGraph| g.edge_count() as f64 / g.len() as f64;
    let mut t = Table::new(
        "Optimization modes on the same raw k-NNG",
        &[
            "Mode",
            "Edges",
            "Mean deg",
            "Max deg",
            "Recall@k",
            "Served p99 ms",
        ],
    );
    for (name, g, recall, serve) in [
        ("reverse-prune", &rp_graph, rp_recall, &rp_serve),
        ("rnn", &rnn_graph, rnn_recall, &rnn_serve),
    ] {
        t.row(&[
            &name,
            &g.edge_count(),
            &format!("{:.2}", mean_deg(g)),
            &g.max_degree(),
            &format!("{recall:.4}"),
            &format!("{:.2}", serve.stats.percentile_ns(0.99) as f64 / 1e6),
        ]);
    }
    t.print();
    t.write_csv(&args.out_dir(), "rnn").expect("csv");
    println!("\ncsv: {}/rnn.csv", args.out_dir().display());

    // The emitted report is anchored on the RNN pass (tags, phases, the
    // schema-v5 rnn section) with the comparison as extras and the RNN
    // serving section attached for the SLO gates.
    let mut rr = dnnd::obs_report::report_from_rnn_dist("rnn", params, &rnn_report);
    attach_serving(&mut rr, &rnn_serve.stats);
    rr.recall = Some(rnn_recall);
    rr.param("mode", if smoke { "smoke" } else { "full" })
        .param("n", n)
        .param("pool", pool_n)
        .param("k", k)
        .param("seed", seed)
        .param("l", l)
        .param("ranks", ranks)
        .param("t1", params.t1)
        .param("t2", params.t2)
        .param("k0", params.k0)
        .param("r", params.r)
        .param("m", m);
    rr.metric("rp_edges", rp_graph.edge_count() as f64);
    rr.metric("rp_mean_degree", mean_deg(&rp_graph));
    rr.metric("rp_max_degree", rp_graph.max_degree() as f64);
    rr.metric("rp_recall", rp_recall);
    rr.metric("rp_p99_ms", rp_serve.stats.percentile_ns(0.99) as f64 / 1e6);
    rr.metric("rnn_edges", rnn_graph.edge_count() as f64);
    rr.metric("rnn_mean_degree", mean_deg(&rnn_graph));
    rr.metric("rnn_max_degree", rnn_graph.max_degree() as f64);
    rr.metric("rnn_recall", rnn_recall);
    rr.metric(
        "rnn_p99_ms",
        rnn_serve.stats.percentile_ns(0.99) as f64 / 1e6,
    );

    if smoke {
        // Tentpole self-checks. Sparsity: strictly fewer edges and lower
        // mean out-degree than reverse-prune. Quality: equal-or-better
        // served recall at the same beam width.
        assert!(
            rnn_graph.edge_count() < rp_graph.edge_count(),
            "rnn graph is not sparser: {} vs {} edges",
            rnn_graph.edge_count(),
            rp_graph.edge_count()
        );
        assert!(
            mean_deg(&rnn_graph) < mean_deg(&rp_graph),
            "rnn mean degree did not drop"
        );
        assert!(
            rnn_recall >= rp_recall,
            "rnn served recall {rnn_recall:.4} below reverse-prune {rp_recall:.4}"
        );
        // Bit-identity across rank counts and a rerun.
        for check_ranks in [1usize, 2, 4] {
            let (g2, r2) =
                rnn_optimize_distributed(&World::new(check_ranks), &base, &L2, &raw, params);
            assert_eq!(g2, rnn_graph, "rnn graph diverged at {check_ranks} ranks");
            assert_eq!(
                r2.stats, rnn_report.stats,
                "rnn stats diverged at {check_ranks} ranks"
            );
        }
        // The schema-v5 section must round-trip through JSON.
        let json = rr.to_json_string();
        assert!(
            json.contains(&format!(
                "\"schema_version\": {}",
                obs::report::SCHEMA_VERSION
            )),
            "report is not schema v{}",
            obs::report::SCHEMA_VERSION
        );
        let parsed = obs::RunReport::parse(&json).expect("report round-trip");
        let section = parsed.rnn.expect("rnn section present");
        assert_eq!(section.k0 as usize, params.k0);
        assert_eq!(section.dist_evals, rnn_report.stats.dist_evals);
        assert!(!section.rounds.is_empty(), "no rnn rounds recorded");
        println!(
            "smoke OK: rnn sparser ({} < {} edges) at recall {rnn_recall:.4} >= {rp_recall:.4}, \
             bit-identical across ranks 1/2/4, schema v{} rnn section round-trips",
            rnn_graph.edge_count(),
            rp_graph.edge_count(),
            obs::report::SCHEMA_VERSION
        );
    }

    let report_out: String = args.get("report-out", String::new());
    if !report_out.is_empty() {
        dnnd::obs_report::write_report(&report_out, &rr).expect("report-out");
        println!("report: {report_out}");
    }
    let dashboard_out: String = args.get("dashboard-out", String::new());
    if !dashboard_out.is_empty() {
        dnnd::obs_report::write_dashboard(&dashboard_out, &rr).expect("dashboard-out");
        println!("dashboard: {dashboard_out}");
    }
}
