//! **Section 5.2** — preliminary NN-graph quality evaluation.
//!
//! The paper builds k-NNGs (k = 100) over the six small Table 1 datasets
//! and scores them against brute-force ground truth, reporting mean recall
//! 0.93 (NYTimes), 0.98 (Last.fm), and >= 0.99 elsewhere. This harness does
//! the same over the scaled synthetic stand-ins, with DNND running on
//! `--ranks` simulated ranks.
//!
//! Defaults are sized for minutes-scale runs: `--n 1200 --k 20`. Use
//! `--k 100 --n 4000` (slower) to mirror the paper's k exactly.

use bench::{Args, Table};
use dataset::ground_truth::brute_force_knng;
use dataset::metric::{Cosine, Jaccard, L2};
use dataset::point::Point;
use dataset::presets;
use dataset::recall::mean_recall;
use dataset::set::PointSet;
use dnnd::{build, DnndConfig};
use std::sync::Arc;
use ygm::World;

/// Paper-reported recall for each dataset (Section 5.2 text).
fn paper_recall(name: &str) -> &'static str {
    match name {
        "NYTimes" => "0.93",
        "Last.fm" => "0.98",
        _ => ">=0.99",
    }
}

fn run_one<P: Point, M: dataset::batch::BatchMetric<P>>(
    name: &'static str,
    set: PointSet<P>,
    metric: M,
    k: usize,
    ranks: usize,
    seed: u64,
    table: &mut Table,
) {
    let set = Arc::new(set);
    let world = World::new(ranks);
    let start = std::time::Instant::now();
    let out = build(&world, &set, &metric, DnndConfig::new(k).seed(seed));
    let build_secs = start.elapsed().as_secs_f64();
    let truth = brute_force_knng(&set, &metric, k);
    let recall = mean_recall(&out.graph.neighbor_ids(), &truth);
    table.row(&[
        &name,
        &set.len(),
        &metric.name(),
        &k,
        &paper_recall(name),
        &format!("{recall:.4}"),
        &out.report.iterations,
        &format!("{build_secs:.1}s"),
    ]);
    println!(
        "  {name}: recall {recall:.4} ({} iterations)",
        out.report.iterations
    );
}

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", if args.flag("full") { 4_000 } else { 1_200 });
    let k: usize = args.get("k", if args.flag("full") { 100 } else { 20 });
    let ranks: usize = args.get("ranks", 4);
    let seed: u64 = args.get("seed", 5);

    println!("Section 5.2 quality check: n={n} k={k} ranks={ranks}");
    let mut t = Table::new(
        "Section 5.2: DNND k-NNG recall vs brute force",
        &[
            "Dataset",
            "N",
            "Metric",
            "k",
            "Paper recall",
            "Measured recall",
            "Iterations",
            "Build (wall)",
        ],
    );

    run_one(
        "Fashion-MNIST",
        presets::fashion_mnist_like(n, seed),
        L2,
        k,
        ranks,
        seed,
        &mut t,
    );
    run_one(
        "GloVe 25",
        presets::glove25_like(n, seed),
        Cosine,
        k,
        ranks,
        seed,
        &mut t,
    );
    run_one(
        "Kosarak",
        presets::kosarak_like(n, seed),
        Jaccard,
        k,
        ranks,
        seed,
        &mut t,
    );
    run_one(
        "MNIST",
        presets::mnist_like(n, seed),
        L2,
        k,
        ranks,
        seed,
        &mut t,
    );
    run_one(
        "NYTimes",
        presets::nytimes_like(n, seed),
        Cosine,
        k,
        ranks,
        seed,
        &mut t,
    );
    run_one(
        "Last.fm",
        presets::lastfm_like(n, seed),
        Cosine,
        k,
        ranks,
        seed,
        &mut t,
    );

    t.print();
    let path = t
        .write_csv(&args.out_dir(), "recall_small")
        .expect("write csv");
    println!("\ncsv: {}", path.display());
}
