//! `simtest` — deterministic fault-injection seed sweep for the YGM runtime.
//!
//! For every (preset, protocol, opt mode, fault profile, sim seed) tuple
//! this driver builds a k-NNG with the distributed engine under injected
//! transport faults and checks the simulation-harness invariants:
//!
//! 1. **Termination** — construction completes (the runtime's storm guard
//!    converts genuine hangs into panics naming the seed, which the sweep
//!    records as failures instead of wedging).
//! 2. **Quality** — mean recall vs brute-force ground truth stays within
//!    `--tolerance` (default 0.05) of the fault-free run with the same
//!    data seed.
//! 3. **Exactly-once delivery** — under the *unoptimized* protocol the
//!    engine is a pure function of the delivered message multiset, so every
//!    fault profile (and the fault-free run) must produce a bit-identical
//!    graph; any divergence means the reliable-delivery layer dropped or
//!    double-applied a message. The optimized protocol consults heap state
//!    at message-arrival time (Section 4.3 skips), so only the recall band
//!    applies there. The RNN-Descent optimization mode (`--opt-mode rnn`)
//!    is swept on top of the unoptimized protocol: its pruning decisions
//!    are pure functions of canonical row state, so the *optimized* graph
//!    must also be bit-identical under every fault profile. (RNN trials
//!    report low *absolute* k-NN recall by design — occlusion pruning
//!    removes near-duplicate k-NN edges to sparsify the search graph —
//!    but the drift band against the same-mode fault-free baseline still
//!    applies, and any nonzero drift under the unoptimized protocol is an
//!    exactly-once violation.)
//!
//! Every failing seed gets a `RunReport` JSON (fault counters included)
//! under `--out`, and the sweep ends by printing the *minimal* failing seed
//! plus the exact replay command. Replay a single seed with:
//!
//! ```text
//! cargo run --release -p bench --bin simtest -- \
//!     --preset clustered --protocol optimized --profile stormy --sim-seed 17
//! ```
//!
//! The same sim seed always replays the same faults: fault decisions are
//! pure functions of `(sim_seed, frame coordinates)`, independent of thread
//! scheduling.

use bench::{Args, Table};
use dataset::ground_truth::{brute_force_knng, GroundTruth};
use dataset::metric::L2;
use dataset::recall::mean_recall;
use dataset::set::{PointId, PointSet};
use dataset::synth::{gaussian_mixture, MixtureParams};
use dnnd::obs_report::{report_from_build, write_dashboard, write_report};
use dnnd::{build, CommOpts, DnndConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use ygm::{FaultPlan, FaultProfile, World};

/// One synthetic workload the sweep runs against.
struct Preset {
    name: &'static str,
    set: Arc<PointSet<Vec<f32>>>,
    /// Brute-force ground truth for recall scoring.
    truth: GroundTruth,
}

/// Fault-free reference for one (preset, protocol) pair.
struct Baseline {
    ids: Vec<Vec<PointId>>,
    recall: f64,
}

/// Outcome of a single faulted build.
struct Trial {
    preset: &'static str,
    protocol: &'static str,
    opt_mode: &'static str,
    profile: &'static str,
    sim_seed: u64,
    recall: f64,
    injected: u64,
    failure: Option<String>,
}

fn protocol_opts(name: &str) -> CommOpts {
    match name {
        "optimized" => CommOpts::optimized(),
        "unoptimized" => CommOpts::unoptimized(),
        other => panic!("unknown protocol {other:?} (optimized|unoptimized|both)"),
    }
}

fn make_presets(n: usize, k: usize) -> Vec<Preset> {
    // Two shapes the paper's datasets span: tightly clustered (easy local
    // neighborhoods) and spread-out (more cross-rank traffic per update).
    let shapes: [(&'static str, MixtureParams); 2] = [
        ("clustered", MixtureParams::embedding_like(n, 8)),
        (
            "spread",
            MixtureParams {
                n,
                dim: 12,
                n_clusters: 3,
                center_spread: 2.0,
                cluster_std: 4.0,
            },
        ),
    ];
    shapes
        .into_iter()
        .map(|(name, params)| {
            // The data seed is fixed: the sweep varies *sim* seeds, and the
            // baseline must be the same-workload fault-free run.
            let set = Arc::new(gaussian_mixture(params, 5));
            let truth = brute_force_knng(&set, &L2, k);
            Preset { name, set, truth }
        })
        .collect()
}

struct Sweep {
    k: usize,
    ranks: usize,
    data_seed: u64,
    tolerance: f64,
    out_dir: std::path::PathBuf,
    keep_all_reports: bool,
}

impl Sweep {
    fn config(&self, protocol: &str, opt_mode: &str) -> DnndConfig {
        let cfg = DnndConfig::new(self.k)
            .seed(self.data_seed)
            .comm_opts(protocol_opts(protocol));
        match opt_mode {
            // k0 = k + 2 mirrors the bench fixture's headroom over k.
            "rnn" => cfg.rnn_opt(nnd::rnn::RnnParams::new(self.k + 2)),
            "default" => cfg,
            other => panic!("unknown opt mode {other:?} (default|rnn|both)"),
        }
    }

    fn baseline(&self, preset: &Preset, protocol: &str, opt_mode: &str) -> Baseline {
        let out = build(
            &World::new(self.ranks),
            &preset.set,
            &L2,
            self.config(protocol, opt_mode),
        );
        let ids = out.graph.neighbor_ids();
        let recall = mean_recall(&ids, &preset.truth);
        println!(
            "baseline {}/{protocol}/{opt_mode}: fault-free recall {recall:.4}",
            preset.name
        );
        Baseline { ids, recall }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_trial(
        &self,
        preset: &Preset,
        baseline: &Baseline,
        protocol: &'static str,
        opt_mode: &'static str,
        profile: FaultProfile,
        sim_seed: u64,
    ) -> Trial {
        let plan = FaultPlan::new(profile, sim_seed);
        let set = Arc::clone(&preset.set);
        let cfg = self.config(protocol, opt_mode);
        let ranks = self.ranks;
        let built = catch_unwind(AssertUnwindSafe(|| {
            build(&World::new(ranks).fault_plan(plan), &set, &L2, cfg)
        }));

        let mut trial = Trial {
            preset: preset.name,
            protocol,
            opt_mode,
            profile: profile.name(),
            sim_seed,
            recall: 0.0,
            injected: 0,
            failure: None,
        };
        match built {
            Err(payload) => {
                // Storm guard (or any other runtime panic): a termination
                // failure.
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "non-string panic payload".into());
                trial.failure = Some(format!("did not terminate: {msg}"));
            }
            Ok(out) => {
                let ids = out.graph.neighbor_ids();
                trial.recall = mean_recall(&ids, &preset.truth);
                trial.injected = out
                    .report
                    .faults
                    .as_ref()
                    .map(|f| f.injected())
                    .unwrap_or(0);
                let drift = (trial.recall - baseline.recall).abs();
                if drift > self.tolerance {
                    trial.failure = Some(format!(
                        "recall {:.4} drifted {drift:.4} from fault-free {:.4} (tolerance {})",
                        trial.recall, baseline.recall, self.tolerance
                    ));
                } else if protocol == "unoptimized" && ids != baseline.ids {
                    let v = first_divergent(&ids, &baseline.ids);
                    trial.failure = Some(format!(
                        "graph differs from fault-free run (first divergent node {v}): \
                         exactly-once delivery violated"
                    ));
                }
                if trial.failure.is_some() || self.keep_all_reports {
                    self.write_trial_report(&trial, baseline, &out.report);
                }
            }
        }
        trial
    }

    fn write_trial_report(&self, trial: &Trial, baseline: &Baseline, report: &dnnd::BuildReport) {
        let mut run = report_from_build("simtest", report);
        run.params = vec![
            ("preset".into(), trial.preset.into()),
            ("protocol".into(), trial.protocol.into()),
            ("opt_mode".into(), trial.opt_mode.into()),
            ("profile".into(), trial.profile.into()),
            ("sim_seed".into(), trial.sim_seed.to_string()),
            ("recall".into(), format!("{:.4}", trial.recall)),
            ("baseline_recall".into(), format!("{:.4}", baseline.recall)),
            (
                "verdict".into(),
                trial
                    .failure
                    .clone()
                    .map(|f| format!("FAIL: {f}"))
                    .unwrap_or_else(|| "PASS".into()),
            ),
        ];
        let stem = format!(
            "simtest-{}-{}-{}-{}-seed{}",
            trial.preset, trial.protocol, trial.opt_mode, trial.profile, trial.sim_seed
        );
        let path = self.out_dir.join(format!("{stem}.json"));
        if let Err(e) = write_report(&path, &run) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        // A dashboard next to each report: failing seeds get a one-file
        // visual of the run (timeline, traffic, fault counters) in CI
        // artifacts, no replay needed for a first look.
        let dash = self.out_dir.join(format!("{stem}.html"));
        if let Err(e) = write_dashboard(&dash, &run) {
            eprintln!("warning: could not write {}: {e}", dash.display());
        }
    }
}

fn first_divergent(a: &[Vec<PointId>], b: &[Vec<PointId>]) -> usize {
    a.iter()
        .zip(b.iter())
        .position(|(x, y)| x != y)
        .unwrap_or(a.len().min(b.len()))
}

fn replay_command(t: &Trial) -> String {
    format!(
        "cargo run --release -p bench --bin simtest -- --preset {} --protocol {} --opt-mode {} --profile {} --sim-seed {}",
        t.preset, t.protocol, t.opt_mode, t.profile, t.sim_seed
    )
}

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", 400);
    let k: usize = args.get("k", 8);
    let replay_seed: Option<u64> = args.opt("sim-seed");
    let sweep = Sweep {
        k,
        ranks: args.get("ranks", 4),
        data_seed: args.get("seed", 5),
        tolerance: args.get("tolerance", 0.05),
        out_dir: args.out_dir(),
        keep_all_reports: args.flag("reports") || replay_seed.is_some(),
    };
    std::fs::create_dir_all(&sweep.out_dir).expect("create --out dir");

    // Replay mode: `--sim-seed S` runs exactly one seed (deterministically
    // reproducing a sweep failure); otherwise sweep seeds 0..--seeds.
    let seeds: Vec<u64> = match replay_seed {
        Some(s) => vec![s],
        None => (0..args.get("seeds", 25u64)).collect(),
    };

    let profile_arg: String = args.get("profile", "all".to_string());
    let profiles: Vec<FaultProfile> = if profile_arg == "all" {
        FaultProfile::NAMES
            .iter()
            .map(|n| FaultProfile::by_name(n).unwrap())
            .collect()
    } else {
        vec![FaultProfile::by_name(&profile_arg).unwrap_or_else(|| {
            panic!("unknown --profile {profile_arg:?} (clean|lossy|stormy|all)")
        })]
    };

    let protocol_arg: String = args.get("protocol", "both".to_string());
    let protocols: Vec<&'static str> = match protocol_arg.as_str() {
        "both" => vec!["optimized", "unoptimized"],
        "optimized" => vec!["optimized"],
        "unoptimized" => vec!["unoptimized"],
        other => panic!("unknown --protocol {other:?} (optimized|unoptimized|both)"),
    };

    // Optimization-mode dimension. RNN trials ride the unoptimized
    // protocol only: there the raw graph is a pure function of the input,
    // so the RNN pass on top must be bit-identical under faults too (the
    // optimized protocol's raw graph is schedule-dependent, which would
    // make an identity check meaningless).
    let opt_mode_arg: String = args.get("opt-mode", "both".to_string());
    let mut combos: Vec<(&'static str, &'static str)> = Vec::new();
    if opt_mode_arg == "default" || opt_mode_arg == "both" {
        combos.extend(protocols.iter().map(|&p| (p, "default")));
    }
    if (opt_mode_arg == "rnn" || opt_mode_arg == "both") && protocols.contains(&"unoptimized") {
        combos.push(("unoptimized", "rnn"));
    }
    assert!(
        !combos.is_empty(),
        "no (protocol, opt-mode) combination selected (opt-mode rnn needs the unoptimized protocol)"
    );

    let preset_arg: String = args.get("preset", "all".to_string());
    let mut presets = make_presets(n, k);
    if preset_arg != "all" {
        presets.retain(|p| p.name == preset_arg);
        assert!(!presets.is_empty(), "unknown --preset {preset_arg:?}");
    }

    println!(
        "simtest sweep: {} preset(s) x {} (protocol, mode) combo(s) x {} profile(s) x {} seed(s), ranks={}, tolerance={}",
        presets.len(),
        combos.len(),
        profiles.len(),
        seeds.len(),
        sweep.ranks,
        sweep.tolerance
    );

    let mut trials: Vec<Trial> = Vec::new();
    for preset in &presets {
        for &(protocol, opt_mode) in &combos {
            let baseline = sweep.baseline(preset, protocol, opt_mode);
            for &profile in &profiles {
                for &sim_seed in &seeds {
                    trials.push(
                        sweep.run_trial(preset, &baseline, protocol, opt_mode, profile, sim_seed),
                    );
                }
            }
        }
    }

    let mut table = Table::new(
        "simtest: per-(preset, protocol, profile) summary",
        &[
            "Preset",
            "Protocol",
            "Mode",
            "Profile",
            "Seeds",
            "Min recall",
            "Mean recall",
            "Faults injected",
            "Failures",
        ],
    );
    for preset in &presets {
        for &(protocol, opt_mode) in &combos {
            for &profile in &profiles {
                let group: Vec<&Trial> = trials
                    .iter()
                    .filter(|t| {
                        t.preset == preset.name
                            && t.protocol == protocol
                            && t.opt_mode == opt_mode
                            && t.profile == profile.name()
                    })
                    .collect();
                let done: Vec<&&Trial> = group
                    .iter()
                    .filter(|t| !t.failure.as_deref().unwrap_or("").starts_with("did not"))
                    .collect();
                let min_recall = done.iter().map(|t| t.recall).fold(f64::INFINITY, f64::min);
                let mean = if done.is_empty() {
                    0.0
                } else {
                    done.iter().map(|t| t.recall).sum::<f64>() / done.len() as f64
                };
                let injected: u64 = group.iter().map(|t| t.injected).sum();
                let failures = group.iter().filter(|t| t.failure.is_some()).count();
                table.row(&[
                    &preset.name,
                    &protocol,
                    &opt_mode,
                    &profile.name(),
                    &group.len(),
                    &format!("{min_recall:.4}"),
                    &format!("{mean:.4}"),
                    &injected,
                    &failures,
                ]);
            }
        }
    }
    table.print();
    let _ = table.write_csv(&sweep.out_dir, "simtest");

    let mut failures: Vec<&Trial> = trials.iter().filter(|t| t.failure.is_some()).collect();
    if failures.is_empty() {
        println!(
            "\nsimtest PASS: all {} trial(s) terminated with recall within {} of fault-free",
            trials.len(),
            sweep.tolerance
        );
        return;
    }
    failures.sort_by_key(|t| t.sim_seed);
    let minimal = failures[0];
    println!("\nsimtest FAIL: {} failing trial(s)", failures.len());
    for t in &failures {
        println!(
            "  preset={} protocol={} profile={} --sim-seed {} : {}",
            t.preset,
            t.protocol,
            t.profile,
            t.sim_seed,
            t.failure.as_deref().unwrap()
        );
    }
    println!(
        "\nminimal failing seed: {} (preset={} protocol={} profile={})",
        minimal.sim_seed, minimal.preset, minimal.protocol, minimal.profile
    );
    println!("replay with:\n  {}", replay_command(minimal));
    println!(
        "failing-seed RunReports (fault counters included) are under {}",
        sweep.out_dir.display()
    );
    std::process::exit(1);
}
