//! **Figure 2** — recall@10 vs. query throughput trade-off.
//!
//! The paper queries the graphs built for Figure 3 with 10,000 held-out
//! queries (10 ground-truth neighbors each), sweeping the search parameter:
//! `epsilon` in {0.0, 0.1, 0.125, ..., 0.4} for DNND graphs and `ef` for
//! Hnswlib. Findings: DNND k20 matches Hnswlib's best graphs, DNND k30
//! beats them (Figures 2c/2d zoom into recall >= 0.9).
//!
//! This harness rebuilds all six indices per dataset at `--n` scale and
//! prints one (recall, qps) series per index. qps is wall-clock over the
//! parallel batch, as in the paper's query program.

use bench::{Args, Table};
use dataset::ground_truth::brute_force_queries;
use dataset::metric::L2;
use dataset::point::Point;
use dataset::presets;
use dataset::recall::mean_recall;
use dataset::set::PointSet;
use dataset::synth::split_queries;
use dnnd::{build, DnndConfig};
use hnsw::{HnswIndex, HnswParams};
use nnd::{search_batch, SearchParams};
use std::sync::Arc;
use ygm::World;

fn epsilon_sweep() -> Vec<f32> {
    // epsilon = 0 plus 0.1..=0.4 step 0.025 (Section 5.3.1).
    let mut eps = vec![0.0f32];
    let mut e = 0.1f32;
    while e <= 0.4 + 1e-6 {
        eps.push(e);
        e += 0.025;
    }
    eps
}

#[allow(clippy::too_many_arguments)]
fn dataset_section<P: Point, M: dataset::batch::BatchMetric<P>>(
    name: &str,
    full: PointSet<P>,
    metric: M,
    hnsw_cfgs: [(&'static str, usize, usize); 2],
    n_queries: usize,
    ranks: usize,
    seed: u64,
    out: &mut Table,
) {
    let (base, queries) = split_queries(full, n_queries);
    let base = Arc::new(base);
    println!("{name}: computing ground truth for {n_queries} queries...");
    let truth = brute_force_queries(&base, &queries, &metric, 10);

    // --- DNND k10/k20/k30 graphs (optimized, m = 1.5, as in the paper) ---
    for &k in &[10usize, 20, 30] {
        println!("{name}: building DNND k{k}...");
        let world = World::new(ranks);
        let res = build(
            &world,
            &base,
            &metric,
            DnndConfig::new(k).seed(seed).graph_opt(1.5),
        );
        for &eps in &epsilon_sweep() {
            let batch = search_batch(
                &res.graph,
                &base,
                &metric,
                &queries,
                SearchParams::new(10)
                    .epsilon(eps)
                    .seed(seed)
                    .entry_candidates(32),
            );
            let recall = mean_recall(&batch.ids, &truth);
            out.row(&[
                &name,
                &format!("DNND k{k}"),
                &format!("eps={eps:.3}"),
                &format!("{recall:.4}"),
                &format!("{:.0}", batch.qps),
            ]);
        }
    }

    // --- Hnswlib stand-ins ---
    for (label, m, efc) in hnsw_cfgs {
        println!("{name}: building {label} (M={m}, efc={efc})...");
        let idx = HnswIndex::build(&base, metric.clone(), HnswParams::new(m, efc).seed(seed));
        for ef in [20usize, 40, 80, 160, 320, 640, 1200] {
            let start = std::time::Instant::now();
            let (ids, qps) = idx.search_batch(&queries, 10, ef);
            let _ = start;
            let recall = mean_recall(&ids, &truth);
            out.row(&[
                &name,
                &label,
                &format!("ef={ef}"),
                &format!("{recall:.4}"),
                &format!("{qps:.0}"),
            ]);
        }
    }
}

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", if args.flag("full") { 5_000 } else { 2_000 });
    let n_queries: usize = args.get("queries", 200);
    let ranks: usize = args.get("ranks", 8);
    let seed: u64 = args.get("seed", 21);

    println!("Figure 2 reproduction: n={n} queries={n_queries} ranks={ranks}");
    let mut t = Table::new(
        "Figure 2: recall@10 vs query throughput (each row = one sweep point)",
        &["Dataset", "Index", "Sweep", "Recall@10", "QPS"],
    );

    dataset_section(
        "DEEP-like",
        presets::deep1b_like(n + n_queries, 31),
        L2,
        [("Hnsw A", 64, 50), ("Hnsw B", 64, 200)],
        n_queries,
        ranks,
        seed,
        &mut t,
    );
    dataset_section(
        "BigANN-like",
        presets::bigann_like(n + n_queries, 31),
        L2,
        [("Hnsw C", 32, 25), ("Hnsw D", 64, 200)],
        n_queries,
        ranks,
        seed,
        &mut t,
    );

    t.print();
    let path = t.write_csv(&args.out_dir(), "fig2_tradeoff").expect("csv");
    println!("\ncsv: {}", path.display());
    println!(
        "\nPaper shape to check: larger k dominates the high-recall regime\n\
         (k30 > k20 > k10 at equal qps near recall 0.9+), and DNND k20/k30\n\
         reach recall levels comparable to or beyond the best Hnsw curves."
    );
}
