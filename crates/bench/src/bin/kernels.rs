//! `kernels` — microbenchmark for the batched distance-kernel subsystem.
//!
//! For every metric x dimension cell this driver times two ways of
//! evaluating the same query-against-candidates workload:
//!
//! * **scalar**: the documented per-pair reference path — dispatch forced
//!   to [`kernel::Dispatch::Scalar`], no norm cache, one
//!   [`Metric::distance`] call per pair (what every hot loop did before
//!   the batched rework);
//! * **batched**: whatever SIMD path the host dispatches, plus the
//!   cached-norm preprocessing, through
//!   [`BatchMetric::distance_one_to_many`] — the path the engine, search,
//!   and brute-force code now use.
//!
//! Both paths must agree **bit for bit** (asserted inline on every run:
//! the determinism contract of `dataset::kernel`), so the only difference
//! is speed. Results go into a RunReport-schema JSON whose `extra` map
//! carries, per cell: `<metric>.d<dim>.scalar_ns_per_pair`,
//! `.batch_ns_per_pair`, `.speedup`, and `.batch_gflops` — the committed
//! baseline lives in `BENCH_4.json` and CI soft-diffs candidates against
//! it with `dnnd-report-diff`.
//!
//! `--smoke` keeps every workload size identical (so `distance_evals`
//! matches the committed baseline exactly) but runs fewer timing reps,
//! validates a JSON schema round-trip, and asserts the batched path is at
//! least as fast as scalar for the cached-norm metrics at dim >= 64.
//!
//! ```text
//! cargo run --release -p bench --bin kernels -- --report-out BENCH_4.json
//! cargo run --release -p bench --bin kernels -- --smoke --report-out /tmp/k.json
//! ```

use bench::{Args, Table};
use dataset::batch::BatchMetric;
use dataset::kernel;
use dataset::metric::{Cosine, Hamming, InnerProduct, SquaredL2, L1, L2};
use dataset::set::{PointId, PointSet};
use obs::report::RunReport;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Candidate-set size per cell (the `N` of each 1xN batched call).
const CANDS: usize = 1024;
/// Queries per rep: every query runs one full 1xN batch (or N scalar
/// pairs), so one rep evaluates `QUERIES * CANDS` pairs per path.
const QUERIES: usize = 32;
/// Dimension sweep: one sub-lane width, then sizes crossing the 8-lane
/// boundary every way the engine's datasets do.
const DIMS: &[usize] = &[8, 64, 100, 300, 960];

/// One timed cell.
struct Cell {
    metric: &'static str,
    dim: usize,
    scalar_ns_per_pair: f64,
    batch_ns_per_pair: f64,
    /// Approximate FLOPs per pair / batched time (dot-form metrics do
    /// ~2*dim useful floating-point ops per pair).
    batch_gflops: f64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.scalar_ns_per_pair / self.batch_ns_per_pair
    }
}

fn gen_f32(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

fn gen_u8(n: usize, dim: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen::<u8>()).collect())
        .collect()
}

/// Time `reps` runs of `f` (which must evaluate `pairs` pairs) and return
/// the best-of ns/pair — best-of filters scheduler noise, which matters
/// on the shared CI hosts this runs on.
fn best_ns_per_pair(reps: usize, pairs: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as f64 / pairs as f64);
    }
    best
}

/// Bench one metric over one point type: scalar per-pair loop vs batched
/// 1xN calls, with an inline bit-identity check between the two paths.
fn bench_cell<P, M>(
    name: &'static str,
    m: &M,
    queries: &[P],
    set: &PointSet<P>,
    reps: usize,
) -> Cell
where
    P: dataset::point::Point,
    M: BatchMetric<P>,
{
    let dim = set.dim();
    let ids: Vec<PointId> = (0..set.len() as PointId).collect();
    let pairs = queries.len() * ids.len();

    // Scalar reference: forced scalar dispatch, per-pair distance calls.
    let before = kernel::dispatch();
    kernel::force_dispatch(Some(kernel::Dispatch::Scalar));
    let mut scalar_out: Vec<f32> = vec![0.0; pairs];
    let scalar_ns = best_ns_per_pair(reps, pairs, || {
        for (qi, q) in queries.iter().enumerate() {
            for (ci, &u) in ids.iter().enumerate() {
                scalar_out[qi * ids.len() + ci] = m.distance(q, set.point(u));
            }
        }
    });
    kernel::force_dispatch(Some(before));

    // Batched path: host dispatch + cached norms.
    let cache = m.preprocess(set);
    let mut batch_out: Vec<f32> = Vec::with_capacity(ids.len());
    let mut sink = 0u32; // defeat dead-code elimination across reps
    let batch_ns = best_ns_per_pair(reps, pairs, || {
        for q in queries {
            m.distance_one_to_many(q, set, &cache, &ids, &mut batch_out);
            sink ^= batch_out[0].to_bits();
        }
    });
    std::hint::black_box(sink);

    // Determinism contract: the batched path (any dispatch, cached norms)
    // is bit-identical to the scalar per-pair reference.
    for (qi, q) in queries.iter().enumerate() {
        m.distance_one_to_many(q, set, &cache, &ids, &mut batch_out);
        for (ci, d) in batch_out.iter().enumerate() {
            assert_eq!(
                d.to_bits(),
                scalar_out[qi * ids.len() + ci].to_bits(),
                "{name} d{dim}: batched result differs from scalar reference at q{qi} c{ci}"
            );
        }
    }

    Cell {
        metric: name,
        dim,
        scalar_ns_per_pair: scalar_ns,
        batch_ns_per_pair: batch_ns,
        batch_gflops: 2.0 * dim as f64 / batch_ns,
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let reps = args.get("reps", if smoke { 2 } else { 7 });
    let report_out: Option<String> = args.opt("report-out");

    let mut cells: Vec<Cell> = Vec::new();
    for &dim in DIMS {
        let qs = gen_f32(QUERIES, dim, 0xBE0 + dim as u64);
        let set = PointSet::new(gen_f32(CANDS, dim, 0xCA0 + dim as u64));
        cells.push(bench_cell("sq_l2", &SquaredL2, &qs, &set, reps));
        cells.push(bench_cell("l2", &L2, &qs, &set, reps));
        cells.push(bench_cell("cosine", &Cosine, &qs, &set, reps));
        cells.push(bench_cell("inner_product", &InnerProduct, &qs, &set, reps));
        cells.push(bench_cell("l1", &L1, &qs, &set, reps));
    }
    for &dim in &[64usize, 960] {
        let qs = gen_u8(QUERIES, dim, 0xB10 + dim as u64);
        let set = PointSet::new(gen_u8(CANDS, dim, 0xC10 + dim as u64));
        cells.push(bench_cell("hamming", &Hamming, &qs, &set, reps));
    }

    let mut table = Table::new(
        "Batched distance kernels vs per-pair scalar reference",
        &[
            "metric",
            "dim",
            "scalar ns/pair",
            "batch ns/pair",
            "speedup",
            "batch GFLOP/s",
        ],
    );
    for c in &cells {
        table.row(&[
            &c.metric,
            &c.dim,
            &format!("{:.2}", c.scalar_ns_per_pair),
            &format!("{:.2}", c.batch_ns_per_pair),
            &format!("{:.2}x", c.speedup()),
            &format!("{:.2}", c.batch_gflops),
        ]);
    }
    table.print();

    // The cached-norm dot-form metrics are the hot path the tentpole
    // targets; they must never lose to per-pair scalar at real embedding
    // dimensions. (The committed BENCH_4.json baseline shows >= 1.5x.)
    for c in &cells {
        if matches!(c.metric, "sq_l2" | "cosine") && c.dim >= 64 {
            assert!(
                c.speedup() >= 1.0,
                "{} d{}: batched path slower than scalar ({:.2}x)",
                c.metric,
                c.dim,
                c.speedup()
            );
        }
    }

    let mut report = RunReport::new("kernels");
    report
        .param("mode", if smoke { "smoke" } else { "full" })
        .param("reps", reps)
        .param("candidates", CANDS)
        .param("queries", QUERIES)
        .param("dispatch", format!("{:?}", kernel::dispatch()));
    report.n_ranks = 1;
    // Pairs evaluated per timing rep per path, summed over cells — a pure
    // function of the workload shape, so smoke and full runs report the
    // same number and `dnnd-report-diff`'s 5% distance_evals gate holds.
    report.distance_evals = (cells.len() * QUERIES * CANDS) as u64;
    for c in &cells {
        let key = format!("{}.d{}", c.metric, c.dim);
        report.metric(format!("{key}.scalar_ns_per_pair"), c.scalar_ns_per_pair);
        report.metric(format!("{key}.batch_ns_per_pair"), c.batch_ns_per_pair);
        report.metric(format!("{key}.speedup"), c.speedup());
        report.metric(format!("{key}.batch_gflops"), c.batch_gflops);
    }

    let json = report.to_json_string();
    if smoke {
        // Schema round-trip: whatever we emit must parse back as a valid
        // RunReport with every cell metric intact.
        let back = RunReport::parse(&json).expect("kernels report must round-trip");
        assert_eq!(back.extra.len(), report.extra.len());
        assert_eq!(back.distance_evals, report.distance_evals);
        println!("smoke: schema round-trip OK, batched >= scalar OK");
    }
    if let Some(path) = report_out {
        std::fs::write(&path, &json).expect("write report");
        println!("report written to {path}");
    }
}
