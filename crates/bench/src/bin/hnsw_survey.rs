//! **Table 2** — Hnswlib parameter survey.
//!
//! The paper surveys Hnswlib's `M` and `ef_construction` and selects, for
//! each DNND graph, the cheapest Hnswlib build of comparable quality
//! (Section 5.3.2), arriving at Hnsw A (M=64, efc=50), B (M=64, efc=200),
//! C (M=32, efc=25), D (M=64, efc=200). This harness reruns the survey on
//! the DEEP-like and BigANN-like stand-ins: every (M, efc) cell is built,
//! queried over an `ef` sweep, and reported with its construction cost so
//! the same selection logic can be applied.

use bench::{Args, Table};
use dataset::ground_truth::brute_force_queries;
use dataset::metric::L2;
use dataset::point::Point;
use dataset::presets;
use dataset::recall::mean_recall;
use dataset::set::PointSet;
use dataset::synth::split_queries;
use hnsw::{HnswIndex, HnswParams};

fn survey<P: Point, M: dataset::batch::BatchMetric<P>>(
    name: &str,
    full: PointSet<P>,
    metric: M,
    n_queries: usize,
    seed: u64,
    out: &mut Table,
) {
    let (base, queries) = split_queries(full, n_queries);
    let truth = brute_force_queries(&base, &queries, &metric, 10);
    for m in [16usize, 32, 64] {
        for efc in [25usize, 50, 100, 200] {
            println!("{name}: M={m} efc={efc}...");
            let start = std::time::Instant::now();
            let idx = HnswIndex::build(&base, metric.clone(), HnswParams::new(m, efc).seed(seed));
            let build_secs = start.elapsed().as_secs_f64();
            for ef in [20usize, 100, 400] {
                let (ids, qps) = idx.search_batch(&queries, 10, ef);
                let recall = mean_recall(&ids, &truth);
                out.row(&[
                    &name,
                    &m,
                    &efc,
                    &ef,
                    &format!("{recall:.4}"),
                    &format!("{qps:.0}"),
                    &format!("{build_secs:.2}"),
                    &idx.build_distance_evals,
                ]);
            }
        }
    }
}

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", if args.flag("full") { 4_000 } else { 1_500 });
    let n_queries: usize = args.get("queries", 150);
    let seed: u64 = args.get("seed", 41);

    println!("Table 2 parameter survey: n={n} queries={n_queries}");
    println!(
        "Paper's selected cells: Hnsw A (M=64, efc=50), B (M=64, efc=200) on DEEP;\n\
         Hnsw C (M=32, efc=25), D (M=64, efc=200) on BigANN; ef sweeps 20-1200."
    );
    let mut t = Table::new(
        "Table 2 survey: HNSW build cost and query quality per (M, efc, ef)",
        &[
            "Dataset",
            "M",
            "efc",
            "ef",
            "Recall@10",
            "QPS",
            "Build secs",
            "Build dist evals",
        ],
    );
    survey(
        "DEEP-like",
        presets::deep1b_like(n + n_queries, 51),
        L2,
        n_queries,
        seed,
        &mut t,
    );
    survey(
        "BigANN-like",
        presets::bigann_like(n + n_queries, 51),
        L2,
        n_queries,
        seed,
        &mut t,
    );
    t.print();
    let path = t
        .write_csv(&args.out_dir(), "table2_hnsw_survey")
        .expect("csv");
    println!("\ncsv: {}", path.display());
}
