//! End-to-end tests for the `dnnd-report-diff` regression gate: a report
//! diffed against itself passes, and a clean run diffed against a stormy
//! (fault-injected) run of the same workload fails with a readable delta
//! table.

use dataset::{synth, L2};
use dnnd::obs_report::{report_from_build, write_report};
use dnnd::{build, CommOpts, DnndConfig};
use std::path::Path;
use std::process::Command;
use std::sync::Arc;
use testutil::TmpDir;
use ygm::{FaultPlan, FaultProfile, World};

/// Build once (optionally under a fault plan) and write its RunReport.
fn write_run(path: &Path, plan: Option<FaultPlan>) {
    let set = Arc::new(synth::uniform(300, 8, 7));
    let mut world = World::new(4);
    if let Some(p) = plan {
        world = world.fault_plan(p);
    }
    let out = build(
        &world,
        &set,
        &L2,
        DnndConfig::new(6)
            .seed(11)
            .comm_opts(CommOpts::unoptimized())
            .max_iters(3),
    );
    let rr = report_from_build("e2e", &out.report);
    write_report(path, &rr).unwrap();
}

fn diff(base: &Path, cand: &Path) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dnnd-report-diff"))
        .args([base.to_str().unwrap(), cand.to_str().unwrap()])
        .output()
        .expect("spawn dnnd-report-diff");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn self_diff_passes_and_storm_diff_fails_readably() {
    let dir = TmpDir::new("report-diff-gate");
    let clean = dir.join("clean.json");
    let stormy = dir.join("stormy.json");
    write_run(&clean, None);
    write_run(
        &stormy,
        Some(FaultPlan::new(FaultProfile::by_name("stormy").unwrap(), 1)),
    );

    // A report is always within threshold of itself.
    let (code, stdout) = diff(&clean, &clean);
    assert_eq!(code, Some(0), "self-diff must exit 0:\n{stdout}");
    assert!(stdout.contains("PASS"), "{stdout}");
    assert!(!stdout.contains("REGRESSION"), "{stdout}");

    // The stormy run retransmits (virtual time up, fault counters up from
    // zero): the gate must trip, exit 1, and name the offenders in an
    // aligned table.
    let (code, stdout) = diff(&clean, &stormy);
    assert_eq!(code, Some(1), "storm diff must exit 1:\n{stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    assert!(
        stdout.contains("faults.retransmits"),
        "fault counters must appear in the delta table:\n{stdout}"
    );
    // Table header + per-metric rows are present and readable.
    for col in [
        "metric",
        "baseline",
        "candidate",
        "delta",
        "threshold",
        "status",
    ] {
        assert!(stdout.contains(col), "missing column {col:?}:\n{stdout}");
    }
}

#[test]
fn usage_error_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_dnnd-report-diff"))
        .output()
        .expect("spawn dnnd-report-diff");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
