//! Model-based property test: a random sequence of store operations must
//! behave exactly like an in-memory map, and the committed state must
//! survive a close/reopen after every prefix.

use metall::{Store, StoreError};
use proptest::prelude::*;
use std::collections::HashMap;
use testutil::TmpDir;

#[derive(Debug, Clone)]
enum Op {
    Put(String, Vec<u8>),
    Remove(String),
    Get(String),
    Reopen,
}

fn name_strategy() -> impl Strategy<Value = String> {
    // A small key universe so operations collide often.
    prop::sample::select(vec![
        "alpha".to_string(),
        "beta".to_string(),
        "gamma/delta".to_string(),
        "k-nng.bin".to_string(),
        "meta_1".to_string(),
    ])
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (name_strategy(), prop::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(n, v)| Op::Put(n, v)),
        name_strategy().prop_map(Op::Remove),
        name_strategy().prop_map(Op::Get),
        Just(Op::Reopen),
    ]
}

fn fresh_dir(case: u64) -> TmpDir {
    TmpDir::new(&format!("metall-model-{case}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn store_behaves_like_a_map(ops in prop::collection::vec(op_strategy(), 1..40), case in any::<u64>()) {
        let dir = fresh_dir(case);
        let mut store = Store::create(dir.path()).unwrap();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();

        for op in &ops {
            match op {
                Op::Put(name, bytes) => {
                    store.put_bytes(name, bytes).unwrap();
                    model.insert(name.clone(), bytes.clone());
                }
                Op::Remove(name) => {
                    let existed = store.remove(name).unwrap();
                    prop_assert_eq!(existed, model.remove(name).is_some());
                }
                Op::Get(name) => match (store.get_bytes(name), model.get(name)) {
                    (Ok(got), Some(want)) => prop_assert_eq!(&got, want),
                    (Err(StoreError::Missing(_)), None) => {}
                    (got, want) => {
                        return Err(TestCaseError::fail(format!(
                            "get({name}) diverged: store={got:?} model={want:?}"
                        )))
                    }
                },
                Op::Reopen => {
                    drop(store);
                    store = Store::open(dir.path()).unwrap();
                }
            }
            // Invariants that must hold after every operation.
            prop_assert_eq!(store.len(), model.len());
            let mut names = model.keys().cloned().collect::<Vec<_>>();
            names.sort();
            prop_assert_eq!(store.names(), names);
        }

        // Final durability check: a reopened store equals the model.
        drop(store);
        let store = Store::open(dir.path()).unwrap();
        for (name, want) in &model {
            prop_assert_eq!(&store.get_bytes(name).unwrap(), want);
        }
    }
}
