//! FNV-1a 64-bit checksum used to detect blob corruption and torn writes.
//!
//! Metall proper relies on `msync` + filesystem guarantees; this store keeps
//! an explicit checksum per object in the manifest instead, which is the
//! portable equivalent for a copy-based datastore.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `data`.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_offset_basis() {
        assert_eq!(fnv1a(&[]), FNV_OFFSET);
    }

    #[test]
    fn known_vector() {
        // FNV-1a("a") per the reference implementation.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn distinguishes_near_collisions() {
        assert_ne!(fnv1a(b"hello"), fnv1a(b"hellp"));
        assert_ne!(fnv1a(&[0, 0]), fnv1a(&[0]));
    }

    #[test]
    fn deterministic() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(fnv1a(&data), fnv1a(&data));
    }
}
