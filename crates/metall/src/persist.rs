//! The [`Persist`] trait: types that can be stored in and loaded from a
//! [`crate::Store`].
//!
//! Metall exposes a C++ allocator so STL containers live directly in the
//! mapped file. Rust has no stable allocator-polymorphic std containers, so
//! the equivalent ergonomic contract here is explicit binary
//! serialization: a type describes how to turn itself into bytes and back.
//! Implementations for the common primitive buffers used by the k-NNG
//! pipeline (`Vec<u8>`, `Vec<u32>`, `Vec<f32>`, `Vec<f64>`, `String`) are
//! provided; higher-level crates implement `Persist` for their own graph and
//! matrix types.

use crate::error::{Result, StoreError};

/// A type that can round-trip through a byte buffer for persistent storage.
pub trait Persist: Sized {
    /// Serialize into bytes. Must be deterministic.
    fn persist_to_bytes(&self) -> Vec<u8>;
    /// Reconstruct from bytes produced by [`Persist::persist_to_bytes`].
    fn persist_from_bytes(bytes: &[u8]) -> Result<Self>;
}

impl Persist for Vec<u8> {
    fn persist_to_bytes(&self) -> Vec<u8> {
        self.clone()
    }
    fn persist_from_bytes(bytes: &[u8]) -> Result<Self> {
        Ok(bytes.to_vec())
    }
}

macro_rules! impl_persist_le_vec {
    ($elem:ty, $sz:expr) => {
        impl Persist for Vec<$elem> {
            fn persist_to_bytes(&self) -> Vec<u8> {
                let mut out = Vec::with_capacity(self.len() * $sz);
                for v in self {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out
            }
            fn persist_from_bytes(bytes: &[u8]) -> Result<Self> {
                if bytes.len() % $sz != 0 {
                    return Err(StoreError::Decode(format!(
                        "byte length {} not a multiple of element size {}",
                        bytes.len(),
                        $sz
                    )));
                }
                Ok(bytes
                    .chunks_exact($sz)
                    .map(|c| <$elem>::from_le_bytes(c.try_into().unwrap()))
                    .collect())
            }
        }
    };
}

impl_persist_le_vec!(u16, 2);
impl_persist_le_vec!(u32, 4);
impl_persist_le_vec!(u64, 8);
impl_persist_le_vec!(i32, 4);
impl_persist_le_vec!(i64, 8);
impl_persist_le_vec!(f32, 4);
impl_persist_le_vec!(f64, 8);

impl Persist for String {
    fn persist_to_bytes(&self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }
    fn persist_from_bytes(bytes: &[u8]) -> Result<Self> {
        String::from_utf8(bytes.to_vec())
            .map_err(|e| StoreError::Decode(format!("invalid utf-8: {e}")))
    }
}

impl Persist for u64 {
    fn persist_to_bytes(&self) -> Vec<u8> {
        self.to_le_bytes().to_vec()
    }
    fn persist_from_bytes(bytes: &[u8]) -> Result<Self> {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| StoreError::Decode(format!("expected 8 bytes, got {}", bytes.len())))?;
        Ok(u64::from_le_bytes(arr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.persist_to_bytes();
        let back = T::persist_from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn vec_round_trips() {
        round_trip(vec![1u8, 2, 3]);
        round_trip(vec![1u32, u32::MAX]);
        round_trip(vec![1.5f32, -2.25]);
        round_trip(vec![1u64, u64::MAX]);
        round_trip(Vec::<f64>::new());
    }

    #[test]
    fn string_round_trips() {
        round_trip(String::from("k-NNG construction"));
        round_trip(String::new());
    }

    #[test]
    fn scalar_round_trips() {
        round_trip(42u64);
    }

    #[test]
    fn misaligned_bytes_rejected() {
        assert!(matches!(
            <Vec<u32>>::persist_from_bytes(&[1, 2, 3]),
            Err(StoreError::Decode(_))
        ));
        assert!(matches!(
            u64::persist_from_bytes(&[1, 2]),
            Err(StoreError::Decode(_))
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        assert!(matches!(
            String::persist_from_bytes(&[0xFF, 0xFE]),
            Err(StoreError::Decode(_))
        ));
    }
}
