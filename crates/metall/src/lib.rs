//! # metall — persistent datastore for k-NNG pipelines
//!
//! A simplified Rust analogue of
//! [Metall](https://github.com/LLNL/metall), the persistent memory allocator
//! the DNND paper uses to hand constructed k-NN graphs and datasets between
//! its two executables (k-NNG construction, then graph optimization) and to
//! keep indices across runs.
//!
//! Metall proper exposes a C++ STL-compatible allocator over `mmap`-ed
//! files. Rust lacks stable allocator-polymorphic std containers, so this
//! crate keeps Metall's *workflow contract* instead of its mechanism: a
//! named-object store rooted at a directory, with atomic commits, checksums,
//! and snapshots. The DNND pipeline stores the dataset matrix and each
//! rank's neighbor lists under well-known names, reopens the store in a
//! separate process/step, and continues. See `DESIGN.md` at the repository
//! root for the substitution rationale.
//!
//! ```
//! use metall::Store;
//! let dir = std::env::temp_dir().join("metall-doc-example");
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! let mut store = Store::create(&dir).unwrap();
//! store.put("knng/neighbors", &vec![3u32, 1, 4, 1, 5]).unwrap();
//! drop(store);
//!
//! let store = Store::open(&dir).unwrap();
//! let ids: Vec<u32> = store.get("knng/neighbors").unwrap();
//! assert_eq!(ids, vec![3, 1, 4, 1, 5]);
//! # metall::Store::destroy(&dir).unwrap();
//! ```

pub mod checksum;
pub mod error;
pub mod persist;
pub mod store;

pub use error::{Result, StoreError};
pub use persist::Persist;
pub use store::Store;
