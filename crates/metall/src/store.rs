//! A crash-consistent named-object datastore.
//!
//! On-disk layout:
//!
//! ```text
//! <root>/
//!   MANIFEST                 # committed index: one line per live object
//!   objects/<name>.<gen>.blob
//! ```
//!
//! Every [`Store::put`] writes a *new generation* of the object's blob,
//! commits an updated manifest via write-to-temp + atomic rename, and only
//! then deletes the previous generation. A crash at any point leaves the
//! store openable at either the old or the new committed state — the same
//! guarantee Metall's snapshot-based workflow provides for the paper's
//! two-executable pipeline (construct k-NNG, persist, reopen, optimize).

use crate::checksum::fnv1a;
use crate::error::{Result, StoreError};
use crate::persist::Persist;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

const MANIFEST: &str = "MANIFEST";
const OBJECTS_DIR: &str = "objects";
const MAGIC: &str = "metall-store v1";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    gen: u64,
    len: u64,
    checksum: u64,
}

/// A persistent datastore rooted at a directory.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    index: BTreeMap<String, Entry>,
    /// Largest total committed payload observed over this handle's
    /// lifetime — the allocation high-water mark telemetry reports.
    high_water: u64,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b'/'))
        && !name.contains("..")
        && !name.starts_with('/')
        && !name.ends_with('/')
}

impl Store {
    /// Create a new, empty store at `root`. Fails if a store already exists
    /// there. Parent directories are created as needed.
    pub fn create(root: impl AsRef<Path>) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        if root.join(MANIFEST).exists() {
            return Err(StoreError::InvalidStore(format!(
                "store already exists at {}",
                root.display()
            )));
        }
        fs::create_dir_all(root.join(OBJECTS_DIR))?;
        let store = Store {
            root,
            index: BTreeMap::new(),
            high_water: 0,
        };
        store.commit_manifest()?;
        Ok(store)
    }

    /// Open an existing store, verifying the manifest and the presence of
    /// every referenced blob.
    pub fn open(root: impl AsRef<Path>) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        let manifest_path = root.join(MANIFEST);
        if !manifest_path.exists() {
            return Err(StoreError::InvalidStore(root.display().to_string()));
        }
        let text = fs::read_to_string(&manifest_path)?;
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err(StoreError::Corrupt("bad manifest magic".into()));
        }
        let mut index = BTreeMap::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.splitn(4, ' ');
            let parse = || StoreError::Corrupt(format!("bad manifest line: {line:?}"));
            let gen: u64 = parts
                .next()
                .ok_or_else(parse)?
                .parse()
                .map_err(|_| parse())?;
            let checksum =
                u64::from_str_radix(parts.next().ok_or_else(parse)?, 16).map_err(|_| parse())?;
            let len: u64 = parts
                .next()
                .ok_or_else(parse)?
                .parse()
                .map_err(|_| parse())?;
            let name = parts.next().ok_or_else(parse)?.to_owned();
            index.insert(name, Entry { gen, len, checksum });
        }
        let mut store = Store {
            root,
            index,
            high_water: 0,
        };
        store.high_water = store.total_bytes();
        for (name, entry) in &store.index {
            if !store.blob_path(name, entry.gen).exists() {
                return Err(StoreError::Corrupt(format!("missing blob for {name}")));
            }
        }
        Ok(store)
    }

    /// Open a store if one exists at `root`, otherwise create one.
    pub fn open_or_create(root: impl AsRef<Path>) -> Result<Self> {
        if root.as_ref().join(MANIFEST).exists() {
            Store::open(root)
        } else {
            Store::create(root)
        }
    }

    /// Remove a store directory entirely. A no-op if it does not exist.
    pub fn destroy(root: impl AsRef<Path>) -> Result<()> {
        let root = root.as_ref();
        if root.exists() {
            fs::remove_dir_all(root)?;
        }
        Ok(())
    }

    fn blob_path(&self, name: &str, gen: u64) -> PathBuf {
        let safe = name.replace('/', "__");
        self.root
            .join(OBJECTS_DIR)
            .join(format!("{safe}.{gen}.blob"))
    }

    fn commit_manifest(&self) -> Result<()> {
        let tmp = self.root.join(".MANIFEST.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            writeln!(f, "{MAGIC}")?;
            for (name, e) in &self.index {
                writeln!(f, "{} {:016x} {} {}", e.gen, e.checksum, e.len, name)?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, self.root.join(MANIFEST))?;
        Ok(())
    }

    /// Store raw bytes under `name`, replacing any previous value.
    pub fn put_bytes(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        if !valid_name(name) {
            return Err(StoreError::InvalidStore(format!(
                "invalid object name: {name:?}"
            )));
        }
        let prev = self.index.get(name).copied();
        let gen = prev.map_or(0, |e| e.gen + 1);
        let blob = self.blob_path(name, gen);
        let tmp = blob.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &blob)?;
        self.index.insert(
            name.to_owned(),
            Entry {
                gen,
                len: bytes.len() as u64,
                checksum: fnv1a(bytes),
            },
        );
        self.commit_manifest()?;
        self.high_water = self.high_water.max(self.total_bytes());
        if let Some(old) = prev {
            // Best-effort cleanup after the commit point; a leftover blob of
            // a dead generation is harmless.
            let _ = fs::remove_file(self.blob_path(name, old.gen));
        }
        Ok(())
    }

    /// Store a [`Persist`] value under `name`.
    pub fn put<T: Persist>(&mut self, name: &str, value: &T) -> Result<()> {
        self.put_bytes(name, &value.persist_to_bytes())
    }

    /// Fetch raw bytes stored under `name`, verifying the checksum.
    pub fn get_bytes(&self, name: &str) -> Result<Vec<u8>> {
        let entry = self
            .index
            .get(name)
            .ok_or_else(|| StoreError::Missing(name.to_owned()))?;
        let bytes = fs::read(self.blob_path(name, entry.gen))?;
        if bytes.len() as u64 != entry.len || fnv1a(&bytes) != entry.checksum {
            return Err(StoreError::Corrupt(format!("checksum mismatch for {name}")));
        }
        Ok(bytes)
    }

    /// Fetch and decode a [`Persist`] value.
    pub fn get<T: Persist>(&self, name: &str) -> Result<T> {
        T::persist_from_bytes(&self.get_bytes(name)?)
    }

    /// Whether `name` exists in the store.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Delete an object. Returns whether it existed.
    pub fn remove(&mut self, name: &str) -> Result<bool> {
        match self.index.remove(name) {
            None => Ok(false),
            Some(entry) => {
                self.commit_manifest()?;
                let _ = fs::remove_file(self.blob_path(name, entry.gen));
                Ok(true)
            }
        }
    }

    /// Names of all stored objects, sorted.
    pub fn names(&self) -> Vec<String> {
        self.index.keys().cloned().collect()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total committed payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.index.values().map(|e| e.len).sum()
    }

    /// Largest [`total_bytes`](Store::total_bytes) observed over this
    /// handle's lifetime (seeded with the committed size on `open`).
    /// Removals lower `total_bytes` but never this.
    pub fn high_water_bytes(&self) -> u64 {
        self.high_water
    }

    /// Copy the committed state of this store to a new directory — the
    /// analogue of Metall's snapshot feature.
    pub fn snapshot(&self, dest: impl AsRef<Path>) -> Result<Store> {
        let mut out = Store::create(dest)?;
        for name in self.names() {
            let bytes = self.get_bytes(&name)?;
            out.put_bytes(&name, &bytes)?;
        }
        Ok(out)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "metall-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn create_put_get_round_trip() {
        let dir = tmpdir("roundtrip");
        let mut s = Store::create(&dir).unwrap();
        s.put("graph", &vec![1u32, 2, 3]).unwrap();
        s.put("notes", &String::from("k=10")).unwrap();
        let g: Vec<u32> = s.get("graph").unwrap();
        assert_eq!(g, vec![1, 2, 3]);
        let n: String = s.get("notes").unwrap();
        assert_eq!(n, "k=10");
        Store::destroy(&dir).unwrap();
    }

    #[test]
    fn reopen_sees_committed_state() {
        let dir = tmpdir("reopen");
        {
            let mut s = Store::create(&dir).unwrap();
            s.put("v", &vec![9u64, 8]).unwrap();
        }
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get::<Vec<u64>>("v").unwrap(), vec![9, 8]);
        assert_eq!(s.names(), vec!["v".to_string()]);
        Store::destroy(&dir).unwrap();
    }

    #[test]
    fn overwrite_bumps_generation_and_keeps_latest() {
        let dir = tmpdir("overwrite");
        let mut s = Store::create(&dir).unwrap();
        s.put("x", &vec![1u32]).unwrap();
        s.put("x", &vec![2u32, 3]).unwrap();
        assert_eq!(s.get::<Vec<u32>>("x").unwrap(), vec![2, 3]);
        drop(s);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get::<Vec<u32>>("x").unwrap(), vec![2, 3]);
        Store::destroy(&dir).unwrap();
    }

    #[test]
    fn missing_object_errors() {
        let dir = tmpdir("missing");
        let s = Store::create(&dir).unwrap();
        assert!(matches!(s.get_bytes("nope"), Err(StoreError::Missing(_))));
        Store::destroy(&dir).unwrap();
    }

    #[test]
    fn remove_deletes_object() {
        let dir = tmpdir("remove");
        let mut s = Store::create(&dir).unwrap();
        s.put("a", &vec![1u8]).unwrap();
        assert!(s.remove("a").unwrap());
        assert!(!s.remove("a").unwrap());
        assert!(!s.contains("a"));
        drop(s);
        let s = Store::open(&dir).unwrap();
        assert!(!s.contains("a"));
        Store::destroy(&dir).unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tmpdir("corrupt");
        let mut s = Store::create(&dir).unwrap();
        s.put("data", &vec![1u8, 2, 3, 4]).unwrap();
        // Flip bytes in the committed blob behind the store's back.
        let blob = s.blob_path("data", 0);
        fs::write(&blob, [9u8, 9, 9, 9]).unwrap();
        assert!(matches!(s.get_bytes("data"), Err(StoreError::Corrupt(_))));
        Store::destroy(&dir).unwrap();
    }

    #[test]
    fn open_missing_dir_is_invalid() {
        let dir = tmpdir("nodir");
        assert!(matches!(
            Store::open(&dir),
            Err(StoreError::InvalidStore(_))
        ));
    }

    #[test]
    fn create_over_existing_store_fails() {
        let dir = tmpdir("exists");
        let _s = Store::create(&dir).unwrap();
        assert!(matches!(
            Store::create(&dir),
            Err(StoreError::InvalidStore(_))
        ));
        Store::destroy(&dir).unwrap();
    }

    #[test]
    fn invalid_names_rejected() {
        let dir = tmpdir("names");
        let mut s = Store::create(&dir).unwrap();
        for bad in ["", "../etc", "/abs", "sp ace", "a/../b", "trail/"] {
            assert!(
                s.put_bytes(bad, b"x").is_err(),
                "name {bad:?} must be rejected"
            );
        }
        for good in ["a", "k-nng.bin", "dataset/vectors", "A_1.2-3"] {
            assert!(
                s.put_bytes(good, b"x").is_ok(),
                "name {good:?} must be accepted"
            );
        }
        Store::destroy(&dir).unwrap();
    }

    #[test]
    fn snapshot_copies_everything() {
        let dir = tmpdir("snap-src");
        let dst = tmpdir("snap-dst");
        let mut s = Store::create(&dir).unwrap();
        s.put("a", &vec![1u32, 2]).unwrap();
        s.put("b", &String::from("hello")).unwrap();
        let snap = s.snapshot(&dst).unwrap();
        assert_eq!(snap.get::<Vec<u32>>("a").unwrap(), vec![1, 2]);
        assert_eq!(snap.get::<String>("b").unwrap(), "hello");
        // Snapshot is independent: mutate original, snapshot unchanged.
        s.put("a", &vec![7u32]).unwrap();
        assert_eq!(snap.get::<Vec<u32>>("a").unwrap(), vec![1, 2]);
        Store::destroy(&dir).unwrap();
        Store::destroy(&dst).unwrap();
    }

    #[test]
    fn sizes_and_listing() {
        let dir = tmpdir("sizes");
        let mut s = Store::create(&dir).unwrap();
        assert!(s.is_empty());
        s.put_bytes("one", &[0; 10]).unwrap();
        s.put_bytes("two", &[0; 32]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_bytes(), 42);
        assert_eq!(s.names(), vec!["one".to_string(), "two".to_string()]);
        Store::destroy(&dir).unwrap();
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let dir = tmpdir("highwater");
        let mut s = Store::create(&dir).unwrap();
        assert_eq!(s.high_water_bytes(), 0);
        s.put_bytes("a", &[0; 100]).unwrap();
        s.put_bytes("b", &[0; 50]).unwrap();
        assert_eq!(s.high_water_bytes(), 150);
        // Shrinking the store does not lower the mark.
        s.remove("a").unwrap();
        assert_eq!(s.total_bytes(), 50);
        assert_eq!(s.high_water_bytes(), 150);
        // Overwriting with a smaller payload keeps the peak too.
        s.put_bytes("b", &[0; 10]).unwrap();
        assert_eq!(s.high_water_bytes(), 150);
        drop(s);
        // A fresh handle is seeded with the committed size, not the dead
        // handle's peak (the mark is per-handle, like an allocator's).
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.high_water_bytes(), 10);
        Store::destroy(&dir).unwrap();
    }

    #[test]
    fn torn_manifest_write_is_recoverable() {
        // Simulate a crash between blob write and manifest commit: the blob
        // of a *new* generation exists but the manifest still points at the
        // old one. Open must succeed with the old value.
        let dir = tmpdir("torn");
        let mut s = Store::create(&dir).unwrap();
        s.put("k", &vec![1u32]).unwrap();
        let next_gen_blob = s.blob_path("k", 1);
        fs::write(&next_gen_blob, [0xAA; 4]).unwrap(); // uncommitted gen 1
        drop(s);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get::<Vec<u32>>("k").unwrap(), vec![1]);
        Store::destroy(&dir).unwrap();
    }
}
