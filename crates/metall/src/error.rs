//! Error type for store operations.

use std::fmt;
use std::io;

/// Errors returned by [`crate::Store`] operations.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The requested object does not exist in the store.
    Missing(String),
    /// An object's bytes do not match its manifest checksum, or the manifest
    /// itself is malformed.
    Corrupt(String),
    /// Attempted to create a store over an existing non-empty directory, or
    /// open a directory that is not a store.
    InvalidStore(String),
    /// A `Persist` implementation rejected the stored bytes.
    Decode(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::Missing(name) => write!(f, "object not found: {name}"),
            StoreError::Corrupt(what) => write!(f, "store corruption detected: {what}"),
            StoreError::InvalidStore(path) => write!(f, "not a valid store: {path}"),
            StoreError::Decode(what) => write!(f, "failed to decode object: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;
