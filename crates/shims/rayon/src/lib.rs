//! Offline stand-in for the `rayon` crate (see `crates/shims/`).
//!
//! The `par_iter` / `par_iter_mut` / `into_par_iter` / `par_chunks` entry
//! points return *standard library iterators*, so every downstream
//! combinator (`map`, `for_each`, `collect`, `sum`, ...) is the ordinary
//! `Iterator` method and the code runs sequentially. This trades the
//! shared-memory parallel speedup for zero-dependency builds; the
//! distributed simulation's parallelism (one OS thread per rank in
//! `ygm::World`) is unaffected.

pub mod prelude {
    /// `into_par_iter()` on any `IntoIterator` (ranges, `Vec`, ...).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// `par_iter()` / `par_chunks()` on slices (and `Vec` via deref).
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
        fn par_windows(&self, window_size: usize) -> std::slice::Windows<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }

        fn par_windows(&self, window_size: usize) -> std::slice::Windows<'_, T> {
            self.windows(window_size)
        }
    }

    /// `par_iter_mut()` / `par_chunks_mut()` on slices.
    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

/// Sequential `rayon::join`: runs `a` then `b`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn into_par_iter_on_ranges() {
        let sum: u64 = (0u64..10).into_par_iter().sum();
        assert_eq!(sum, 45);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(super::join(|| 1, || "x"), (1, "x"));
    }
}
