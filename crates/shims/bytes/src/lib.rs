//! Offline stand-in for the `bytes` crate (see `crates/shims/`).
//!
//! [`Bytes`] is a cheaply cloneable, sliceable view into shared immutable
//! storage (`Arc<Vec<u8>>` + range); [`BytesMut`] is a growable write
//! buffer. [`Buf`]/[`BufMut`] provide the little-endian accessors the wire
//! codec in `ygm::codec` relies on. Only the API surface this workspace
//! uses is implemented.

use std::ops::Deref;
use std::sync::Arc;

/// Read-side cursor over a contiguous byte region.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i32_le(&mut self) -> i32 {
        self.get_u32_le() as i32
    }

    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write-side sink for little-endian encoding.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_u32_le(v as u32);
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_u64_le(v as u64);
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Cheaply cloneable shared immutable byte slice.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Split off the first `n` bytes into a new `Bytes` (shared storage).
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of range");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// A sub-slice view sharing the same storage.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of range");
        self.start += n;
    }
}

/// Growable write buffer; `split().freeze()` hands the accumulated bytes
/// off as an immutable [`Bytes`] while retaining the allocation's type.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Take the entire filled contents, leaving `self` empty (capacity may
    /// be retained by the allocator; semantics match `bytes`' use here).
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            inner: std::mem::take(&mut self.inner),
        }
    }

    /// Freeze into an immutable shared [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:?})", self.as_slice())
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_round_trip_through_freeze() {
        let mut w = BytesMut::new();
        w.put_u16_le(0xBEEF);
        w.put_u32_le(7);
        w.put_f32_le(1.5);
        w.put_u64_le(u64::MAX);
        let mut r = w.freeze();
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_u64_le(), u64::MAX);
        assert!(r.is_empty());
    }

    #[test]
    fn split_to_shares_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.as_slice(), &[1, 2]);
        assert_eq!(b.as_slice(), &[3, 4, 5]);
        let clone = b.clone();
        assert_eq!(clone.as_slice(), b.as_slice());
    }

    #[test]
    fn bytes_mut_split_empties_source() {
        let mut w = BytesMut::new();
        w.put_slice(b"abc");
        let taken = w.split();
        assert!(w.is_empty());
        assert_eq!(taken.as_slice(), b"abc");
    }
}
