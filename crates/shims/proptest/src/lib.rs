//! Offline stand-in for the `proptest` crate (see `crates/shims/`).
//!
//! A miniature property-testing engine with the API subset this workspace
//! uses: the [`proptest!`] macro (`arg in strategy` syntax, optional
//! `#![proptest_config(...)]`), `prop_assert!`/`prop_assert_eq!`,
//! [`strategy::Strategy`] with `prop_map`/`prop_filter`/`prop_flat_map`,
//! range and tuple strategies, `any::<T>()`, `prop::collection::vec`,
//! `prop::option::of`, `prop::sample::select`, [`strategy::Just`], and
//! `prop_oneof!`.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed sequence (no `PROPTEST_*` env integration, no
//! persisted failure regressions) and **no shrinking** — a failing case
//! reports its case index and message only. Determinism means a failure
//! reproduces by re-running the same test binary.

pub mod test_runner {
    /// Run-time configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps offline CI fast while
            // still exploring a meaningful sample.
            ProptestConfig { cases: 64 }
        }
    }

    /// Failure constructor mirroring real proptest's `TestCaseError`.
    ///
    /// The shim's case bodies carry plain `String` errors, so `fail`
    /// returns the message itself — which keeps
    /// `return Err(TestCaseError::fail(..))` source-compatible alongside
    /// `prop_assert!` in the same body.
    pub struct TestCaseError;

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> String {
            msg.into()
        }
    }

    /// Deterministic per-case generator (xoshiro256**, SplitMix64-seeded).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// The generator for one numbered case of a test.
        pub fn for_case(case: u64) -> Self {
            let mut state = case.wrapping_mul(0xA076_1D64_78BD_642F) ^ 0x1234_5678_9ABC_DEF0;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            TestRng { s }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                f,
            }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy, as produced by [`Strategy::boxed`].
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter {:?} rejected 1000 consecutive candidates",
                self.reason
            );
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    start + rng.unit_f64() as $t * (end - start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// Marker for types with a canonical `any::<T>()` strategy.
    pub trait ArbitrarySample: Sized {
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitrarySample> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// The canonical strategy for `T`: full-range integers, bit-pattern
    /// floats (exercising infinities and NaNs), fair booleans.
    pub fn any<T: ArbitrarySample>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitrarySample for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitrarySample for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitrarySample for f32 {
        fn arbitrary_sample(rng: &mut TestRng) -> Self {
            // Raw bit patterns cover subnormals, infinities, and NaN.
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl ArbitrarySample for f64 {
        fn arbitrary_sample(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }

    impl ArbitrarySample for char {
        fn arbitrary_sample(rng: &mut TestRng) -> Self {
            char::from_u32((rng.below(0xD800)) as u32).unwrap_or('a')
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Acceptable length specifications for [`vec`].
    pub trait IntoSizeRange {
        /// Inclusive (lo, hi) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let (lo, hi) = self.size.bounds();
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy yielding `None` about a quarter of the time.
    pub struct OptionStrategy<S>(S);

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform choice from a fixed list.
    pub struct Select<T>(Vec<T>);

    /// `prop::sample::select(options)`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use super::strategy::{any, ArbitrarySample, BoxedStrategy, Just, Strategy};
    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    /// `prop::collection::vec(...)`-style paths.
    pub use crate as prop;
}

/// Assert inside a `proptest!` body; failure fails the current case with a
/// message instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(u64::from(__case));
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        ::std::panic!(
                            "proptest {} case {}/{} failed: {}",
                            stringify!($name), __case, config.cases, __msg
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..9, y in 0.0f64..1.0, z in 5usize..=5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert_eq!(z, 5);
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), 3u8..10]) {
            prop_assert!(v >= 1 && v < 10);
        }

        #[test]
        fn map_filter_flat_map(
            s in (1usize..4).prop_flat_map(|n| prop::collection::vec(0u8..10, n))
                .prop_map(|v| v.len())
                .prop_filter("nonzero", |&n| n > 0)
        ) {
            prop_assert!(s >= 1 && s < 4);
        }

        #[test]
        fn option_sometimes_none(o in prop::option::of(any::<u32>())) {
            // Either arm is fine; this just exercises the strategy.
            let _ = o;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u32..100, 0..10);
        let a: Vec<Vec<u32>> = (0..5)
            .map(|c| s.generate(&mut TestRng::for_case(c)))
            .collect();
        let b: Vec<Vec<u32>> = (0..5)
            .map(|c| s.generate(&mut TestRng::for_case(c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest always_fails case 0")]
    fn failure_reports_case() {
        crate::proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u8..1) {
                prop_assert!(x > 10, "x was {}", x);
            }
        }
        always_fails();
    }
}
