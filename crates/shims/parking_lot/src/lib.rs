//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal API-compatible shims for its external dependencies (see
//! `crates/shims/`). This one wraps `std::sync` primitives behind
//! parking_lot's no-poison API: `lock()` returns a guard directly and a
//! poisoned std lock is transparently recovered, matching parking_lot's
//! behavior of not propagating panics through locks.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutual exclusion primitive (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard invariant")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guard's lock and block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard invariant");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Reader-writer lock (no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            while !*done {
                c.wait(&mut done);
            }
        });
        {
            let (m, c) = &*pair;
            *m.lock() = true;
            c.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
