//! Offline stand-in for the `rand` crate, 0.8 API surface (see
//! `crates/shims/`).
//!
//! Implements the subset this workspace uses: [`RngCore`], [`SeedableRng`]
//! (including `seed_from_u64` via SplitMix64, so seeding is deterministic
//! and well-mixed), the [`Rng`] extension trait with `gen`/`gen_range`/
//! `gen_bool`, slice shuffling, index sampling without replacement, and the
//! [`distributions::Distribution`] trait. Distributional *quality* matches
//! what NN-Descent needs (uniform, well-mixed), not bit-for-bit `rand`
//! output.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

/// SplitMix64 step — used to expand `u64` seeds into full seed material.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable construction, mirroring rand 0.8.
pub trait SeedableRng: Sized {
    /// Raw seed type (byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Derive a full seed from a `u64` via SplitMix64 (deterministic).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let b = splitmix64(&mut s).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&b[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Uniform sampling over a range, used by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                let v = if span == 0 { rng.next_u64() } else { rng.next_u64() % span };
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                let v = if span == 0 { rng.next_u64() } else { rng.next_u64() % span };
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)`.
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)`.
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    use super::{Rng, RngCore, StandardSample};

    /// A sampling distribution over values of `T`.
    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over a type's natural domain
    /// (`[0, 1)` for floats, full range for integers).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl<T: StandardSample> Distribution<T> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::standard_sample(rng)
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    pub mod index {
        use super::super::Rng;

        /// Distinct indices sampled from `0..length`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            pub fn len(&self) -> usize {
                self.0.len()
            }

            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            pub fn iter(&self) -> std::slice::Iter<'_, usize> {
                self.0.iter()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices uniformly from `0..length`
        /// (partial Fisher-Yates over a sparse index map).
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            use std::collections::HashMap;
            let mut swaps: HashMap<usize, usize> = HashMap::new();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                let vj = *swaps.get(&j).unwrap_or(&j);
                let vi = *swaps.get(&i).unwrap_or(&i);
                out.push(vj);
                swaps.insert(j, vi);
            }
            IndexVec(out)
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256**-based generator (stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::index::sample as index_sample;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    // Helper since RngCore::next_u64 needs the trait in scope.
    trait NextPub {
        fn next_u64_pub(&mut self) -> u64;
    }
    impl<R: super::RngCore> NextPub for R {
        fn next_u64_pub(&mut self) -> u64 {
            self.next_u64()
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: usize = rng.gen_range(0..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn index_sample_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let picked: Vec<usize> = index_sample(&mut rng, 50, 20).into_iter().collect();
        assert_eq!(picked.len(), 20);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 20, "indices must be distinct");
        assert!(picked.iter().all(|&i| i < 50));
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} out of range");
        }
    }
}
