//! Offline stand-in for the `rand_chacha` crate (see `crates/shims/`).
//!
//! Exposes [`ChaCha8Rng`] and [`ChaCha20Rng`] type names backed by the shim
//! `rand`'s xoshiro-based generator. The workspace uses these purely as
//! deterministic seeded PRNGs (every construction site is
//! `seed_from_u64`), so statistical quality and determinism are what
//! matter, not the ChaCha stream-cipher output itself.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

macro_rules! chacha_like {
    ($name:ident) => {
        /// Deterministic seeded PRNG (xoshiro-backed shim).
        #[derive(Debug, Clone)]
        pub struct $name(StdRng);

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                self.0.next_u32()
            }

            #[inline]
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }

            #[inline]
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                self.0.fill_bytes(dest)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                $name(StdRng::from_seed(seed))
            }
        }
    };
}

chacha_like!(ChaCha8Rng);
chacha_like!(ChaCha12Rng);
chacha_like!(ChaCha20Rng);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(0xD00D);
        let mut b = ChaCha8Rng::seed_from_u64(0xD00D);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha20Rng::seed_from_u64(5);
        let x: f32 = rng.gen();
        assert!((0.0..1.0).contains(&x));
    }
}
