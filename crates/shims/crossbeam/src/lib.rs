//! Offline stand-in for the `crossbeam` crate (see `crates/shims/`).
//!
//! Provides the two pieces the simulated YGM runtime relies on:
//!
//! * `channel::unbounded` — an MPMC unbounded channel whose `Sender` and
//!   `Receiver` are both `Send + Sync` (std's mpsc does not guarantee a
//!   `Sync` sender on older toolchains), built on a mutex-protected deque.
//!   Throughput is adequate here because the runtime batches many RPCs per
//!   channel message (aggregation buffers), so channel ops are rare.
//! * `utils::CachePadded` — alignment wrapper that keeps hot atomics on
//!   separate cache lines.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        cvar: Condvar,
    }

    /// Sending side of an unbounded channel. Cloneable, `Send + Sync`.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Receiving side of an unbounded channel. Cloneable, `Send + Sync`.
    pub struct Receiver<T>(Arc<Chan<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    /// Error returned by [`Sender::send`]; the shim's channels never close,
    /// so it is never actually produced, but the type keeps call sites
    /// (`.expect(...)`) compiling unchanged.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a closed channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`] when the queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue empty right now.
        Empty,
        /// All senders dropped (not distinguished by this shim).
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            cvar: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            self.0.cvar.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.pop_front().ok_or(TryRecvError::Empty)
        }

        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) one cache line so neighbouring
    /// hot atomics do not false-share.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};
    use super::utils::CachePadded;

    #[test]
    fn channel_delivers_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn senders_are_sync_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        std::thread::scope(|s| {
            for i in 0..4 {
                let tx = &tx;
                s.spawn(move || tx.send(i).unwrap());
            }
        });
        let mut got: Vec<usize> = std::iter::from_fn(|| rx.try_recv().ok()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let c = CachePadded::new(7u64);
        assert_eq!(*c, 7);
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 128);
    }
}
