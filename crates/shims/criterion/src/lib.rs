//! Offline stand-in for the `criterion` crate (see `crates/shims/`).
//!
//! A minimal benchmark harness exposing the subset this workspace's
//! `benches/` use: [`Criterion`] with `measurement_time` / `warm_up_time` /
//! `sample_size` builders, [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], and both forms of [`criterion_group!`]
//! plus [`criterion_main!`].
//!
//! Instead of criterion's statistical analysis it runs a short warm-up,
//! then a fixed number of timed samples, and prints mean / min per-sample
//! timing per benchmark. Good enough to exercise every bench path in CI
//! and eyeball relative regressions; not a precision instrument.

use std::time::{Duration, Instant};

/// Re-exported opaque-value hint (prevents the optimizer from deleting
/// benchmarked work).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark (`group/name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }

    fn label(&self) -> String {
        format!("{}/{}", self.name, self.param)
    }
}

/// Something usable as a benchmark label: a `&str`/`String` or a
/// [`BenchmarkId`].
pub trait IntoBenchmarkLabel {
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label()
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: u64,
    /// (total elapsed, iterations timed) accumulated by `iter`.
    measured: (Duration, u64),
}

impl Bencher {
    /// Time `f` over `samples` iterations (after one untimed warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.measured = (start.elapsed(), self.samples);
    }
}

/// Top-level harness configuration.
pub struct Criterion {
    sample_size: u64,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Far below criterion's defaults: the shim is a smoke-timer, so
            // keep full `cargo bench` runs fast.
            sample_size: 10,
            measurement_time: Duration::from_millis(100),
            warm_up_time: Duration::from_millis(10),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, label: impl IntoBenchmarkLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = label.into_label();
        run_one(self, &label, f);
        self
    }

    /// Called by `criterion_main!` after all groups; criterion prints a
    /// summary here, the shim has nothing buffered.
    pub fn final_summary(&mut self) {}
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1) as u64;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.warm_up_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, label: impl IntoBenchmarkLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, label.into_label());
        run_one(self.criterion, &label, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        label: impl IntoBenchmarkLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(label, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(criterion: &Criterion, label: &str, mut f: F) {
    // Warm-up: run the closure with a single sample until the warm-up
    // budget is spent (at least once).
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            samples: 1,
            measured: (Duration::ZERO, 1),
        };
        f(&mut b);
        if warm_start.elapsed() >= criterion.warm_up_time {
            break;
        }
    }

    let mut per_iter: Vec<f64> = Vec::new();
    let measure_start = Instant::now();
    loop {
        let mut b = Bencher {
            samples: criterion.sample_size,
            measured: (Duration::ZERO, criterion.sample_size),
        };
        f(&mut b);
        let (elapsed, iters) = b.measured;
        per_iter.push(elapsed.as_secs_f64() / iters.max(1) as f64);
        if measure_start.elapsed() >= criterion.measurement_time || per_iter.len() >= 100 {
            break;
        }
    }

    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "bench {:<40} mean {:>12}  min {:>12}  ({} samples of {} iters)",
        label,
        fmt_time(mean),
        fmt_time(min),
        per_iter.len(),
        criterion.sample_size,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

/// Declare a benchmark group. Supports both the positional form
/// `criterion_group!(benches, bench_a, bench_b)` and the braced
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("direct", |b| b.iter(|| black_box(3u64).pow(7)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(5);
        group.bench_function("in_group", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with_input", 42), &42u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.finish();
    }

    criterion_group!(positional, sample_bench);
    criterion_group!(
        name = braced;
        config = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(5));
        targets = sample_bench
    );

    #[test]
    fn groups_run() {
        positional();
        braced();
    }

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: 4,
            measured: (Duration::ZERO, 0),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 5); // 1 warm-up + 4 timed
        assert_eq!(b.measured.1, 4);
    }

    #[test]
    fn benchmark_id_label() {
        assert_eq!(BenchmarkId::new("scan", 128).label(), "scan/128");
    }
}
