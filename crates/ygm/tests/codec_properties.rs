//! Property tests for `ygm::codec::Wire`: round-trips and exact
//! `wire_size` accounting for every implementation, plus frame-level
//! length accounting with the `FRAME_HEADER_BYTES` header the runtime
//! prepends — including zero-length payloads (`()` messages) and the
//! largest routable tag (`MAX_TAGS - 1`).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use proptest::prelude::*;
use ygm::codec::{decode_from_bytes, encode_to_bytes};
use ygm::{Wire, FRAME_HEADER_BYTES, MAX_TAGS};

/// Encode, assert the byte count matches `wire_size` exactly, decode back.
fn round_trip<T: Wire + PartialEq + std::fmt::Debug + Clone>(value: &T) {
    let enc = encode_to_bytes(value);
    assert_eq!(
        enc.len(),
        value.wire_size(),
        "wire_size disagrees with encoded length for {value:?}"
    );
    let back: T = decode_from_bytes(enc);
    assert_eq!(&back, value);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn primitives_round_trip(
        a in any::<u8>(), b in any::<u16>(), c in any::<u32>(), d in any::<u64>(),
        e in any::<i32>(), f in any::<i64>(), g in any::<bool>(), h in any::<u64>(),
    ) {
        round_trip(&a);
        round_trip(&b);
        round_trip(&c);
        round_trip(&d);
        round_trip(&e);
        round_trip(&f);
        round_trip(&g);
        round_trip(&(h as usize));
    }

    /// Floats round-trip bit-exactly — including NaN payloads and signed
    /// zeros, which `PartialEq` would conflate.
    #[test]
    fn floats_round_trip_bit_exactly(bits32 in any::<u32>(), bits64 in any::<u64>()) {
        let x = f32::from_bits(bits32);
        let enc = encode_to_bytes(&x);
        prop_assert_eq!(enc.len(), x.wire_size());
        let back: f32 = decode_from_bytes(enc);
        prop_assert_eq!(back.to_bits(), bits32);

        let y = f64::from_bits(bits64);
        let enc = encode_to_bytes(&y);
        prop_assert_eq!(enc.len(), y.wire_size());
        let back: f64 = decode_from_bytes(enc);
        prop_assert_eq!(back.to_bits(), bits64);
    }

    #[test]
    fn collections_and_options_round_trip(
        v in prop::collection::vec(any::<u32>(), 0..40),
        nested in prop::collection::vec(prop::collection::vec(any::<u16>(), 0..8), 0..8),
        o in prop::option::of(any::<u64>()),
        oo in prop::option::of(prop::option::of(any::<u8>())),
        t in (any::<u32>(), any::<bool>(), prop::collection::vec(any::<i64>(), 0..6)),
    ) {
        round_trip(&v);
        round_trip(&nested);
        round_trip(&o);
        round_trip(&oo);
        round_trip(&t);
    }

    /// Decoding consumes *exactly* the bytes encoding produced: two values
    /// concatenated into one buffer decode back-to-back with nothing left.
    #[test]
    fn decode_consumes_exactly(
        first in prop::collection::vec((any::<u32>(), any::<u64>()), 0..12),
        second in prop::option::of(any::<i64>()),
    ) {
        let mut buf = BytesMut::new();
        first.encode(&mut buf);
        second.encode(&mut buf);
        prop_assert_eq!(buf.len(), first.wire_size() + second.wire_size());
        let mut bytes: Bytes = buf.freeze();
        let a = <Vec<(u32, u64)> as Wire>::decode(&mut bytes);
        prop_assert_eq!(bytes.len(), second.wire_size());
        let b = <Option<i64> as Wire>::decode(&mut bytes);
        prop_assert_eq!(a, first);
        prop_assert_eq!(b, second);
        prop_assert!(bytes.is_empty(), "decode left {} stray bytes", bytes.len());
    }

    /// Frame accounting mirrors `Comm::async_send`: each frame is a `u16`
    /// tag + `u32` payload-length header followed by the payload, and a
    /// whole stream of frames parses back losslessly. Covers zero-length
    /// payloads (tag-only `()` messages) and the largest routable tag.
    #[test]
    fn frame_stream_accounting(
        msgs in prop::collection::vec(
            ((0u16..MAX_TAGS as u16), prop::collection::vec(any::<u32>(), 0..10)),
            0..20,
        ),
    ) {
        let mut buf = BytesMut::new();
        let mut expect_len = 0usize;
        for (tag, payload) in &msgs {
            let sz = payload.wire_size();
            buf.put_u16_le(*tag);
            buf.put_u32_le(sz as u32);
            payload.encode(&mut buf);
            expect_len += FRAME_HEADER_BYTES + sz;
        }
        prop_assert_eq!(buf.len(), expect_len);

        let mut bytes: Bytes = buf.freeze();
        for (tag, payload) in &msgs {
            let got_tag = bytes.get_u16_le();
            let got_len = bytes.get_u32_le() as usize;
            prop_assert_eq!(got_tag, *tag);
            prop_assert_eq!(got_len, payload.wire_size());
            let before = bytes.len();
            let got = <Vec<u32> as Wire>::decode(&mut bytes);
            prop_assert_eq!(before - bytes.len(), got_len);
            prop_assert_eq!(&got, payload);
        }
        prop_assert!(bytes.is_empty());
    }
}

#[test]
fn unit_payload_is_zero_length_and_frames_to_header_only() {
    round_trip(&());
    assert_eq!(().wire_size(), 0);
    let mut buf = BytesMut::new();
    buf.put_u16_le((MAX_TAGS - 1) as u16);
    buf.put_u32_le(0);
    ().encode(&mut buf);
    assert_eq!(buf.len(), FRAME_HEADER_BYTES);
    let mut bytes = buf.freeze();
    assert_eq!(bytes.get_u16_le(), (MAX_TAGS - 1) as u16);
    assert_eq!(bytes.get_u32_le(), 0);
    assert!(bytes.is_empty());
}

#[test]
fn max_tag_value_survives_the_header() {
    // The header stores the tag as a little-endian u16; MAX_TAGS - 1 is the
    // largest tag the runtime will route. Also exercise u16::MAX to prove
    // the header field itself cannot truncate.
    for tag in [(MAX_TAGS - 1) as u16, u16::MAX] {
        let mut buf = BytesMut::new();
        buf.put_u16_le(tag);
        buf.put_u32_le(0);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.get_u16_le(), tag);
    }
}
