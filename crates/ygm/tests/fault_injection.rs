//! Integration tests for the deterministic fault-injection layer and the
//! reliable-delivery protocol (`ygm::fault` + the `Comm` transport).
//!
//! The regression seeds named here were found by sweeping the harness during
//! development; each is pinned so the discovering schedule replays forever.

use std::cell::RefCell;
use std::rc::Rc;
use ygm::fault::{FaultPlan, FaultProfile};
use ygm::World;

const PING: u16 = 0;
const PONG: u16 = 1;

/// A chatty SPMD program: every rank fans out `per_rank` PINGs round-robin,
/// each PING handler replies PONG to the sender. Returns per-rank
/// `(pings_handled, pongs_handled)`.
fn chatty(world: World, per_rank: u64) -> ygm::WorldReport<(u64, u64)> {
    world.run(move |comm| {
        let pings = Rc::new(RefCell::new(0u64));
        let pongs = Rc::new(RefCell::new(0u64));
        let p1 = Rc::clone(&pings);
        let p2 = Rc::clone(&pongs);
        comm.register::<u64, _>(PING, move |c, from| {
            *p1.borrow_mut() += 1;
            c.async_send(from as usize, PONG, &1u64);
        });
        comm.register::<u64, _>(PONG, move |_, _| *p2.borrow_mut() += 1);
        for i in 0..per_rank {
            let dest = (comm.rank() + 1 + i as usize) % comm.n_ranks();
            comm.async_send(dest, PING, &(comm.rank() as u64));
        }
        comm.barrier();
        let out = (*pings.borrow(), *pongs.borrow());
        out
    })
}

/// Exactly-once conservation under every profile: all PINGs and PONGs are
/// handled precisely once world-wide, no matter what the transport injects.
#[test]
fn faulted_worlds_conserve_messages_exactly_once() {
    let n = 4;
    let per_rank = 300u64;
    for profile in [
        FaultProfile::clean(),
        FaultProfile::lossy(),
        FaultProfile::stormy(),
    ] {
        for sim_seed in [1u64, 2, 3] {
            let world = World::new(n)
                .flush_threshold(128)
                .fault_plan(FaultPlan::new(profile, sim_seed));
            let report = chatty(world, per_rank);
            let pings: u64 = report.results.iter().map(|r| r.0).sum();
            let pongs: u64 = report.results.iter().map(|r| r.1).sum();
            assert_eq!(
                pings,
                n as u64 * per_rank,
                "ping conservation failed (profile {} seed {sim_seed})",
                profile.name()
            );
            assert_eq!(
                pongs,
                n as u64 * per_rank,
                "pong conservation failed (profile {} seed {sim_seed})",
                profile.name()
            );
            let faults = report.faults.expect("fault report missing");
            assert_eq!(faults.sim_seed, sim_seed);
            if profile.is_hostile() {
                assert!(
                    faults.injected() > 0,
                    "hostile profile {} injected nothing at seed {sim_seed}",
                    profile.name()
                );
            }
        }
    }
}

/// The clean plan runs the full reliable-delivery machinery (sequencing,
/// acks, dedup) but injects nothing — results must match a plan-free world.
#[test]
fn clean_plan_matches_fault_free_world() {
    let n = 3;
    let baseline = chatty(World::new(n).flush_threshold(64), 100);
    let clean = chatty(
        World::new(n)
            .flush_threshold(64)
            .fault_plan(FaultPlan::new(FaultProfile::clean(), 7)),
        100,
    );
    assert_eq!(baseline.results, clean.results);
    assert!(baseline.faults.is_none());
    let faults = clean.faults.unwrap();
    assert_eq!(faults.injected(), 0);
    assert_eq!(faults.retransmits, 0);
}

/// Same seed => same application outcome and same (schedule-independent)
/// injection decisions. This is the property that makes `--sim-seed` a
/// complete bug report.
#[test]
fn same_seed_replays_identically() {
    let n = 4;
    let run = || {
        chatty(
            World::new(n)
                .flush_threshold(96)
                .fault_plan(FaultPlan::new(FaultProfile::stormy(), 0xFACE)),
            250,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.results, b.results);
    assert_eq!(a.total, b.total);
    let (fa, fb) = (a.faults.unwrap(), b.faults.unwrap());
    // Flush-jitter decisions are a pure function of per-edge send counts,
    // which are deterministic per rank — so the count must replay exactly.
    assert_eq!(fa.jittered_flushes, fb.jittered_flushes);
    assert_eq!(fa.sim_seed, fb.sim_seed);
}

/// Regression (satellite: barrier/termination bug under duplication).
///
/// Discovering seed: 0xBAD5EED. A transport that duplicates frames without
/// receive-side dedup dispatches the copy too: `processed` overruns `sent`,
/// `sent == processed` never holds again, and the termination-detection
/// barrier spins forever. With the dedup layer the copy is discarded, the
/// counters stay conserved, and the barrier exits.
#[test]
fn duplicated_frames_do_not_wedge_termination_detection() {
    let profile = FaultProfile {
        drop: 0.0,
        dup: 1.0, // duplicate every frame
        delay: 0.0,
        max_delay_epochs: 0,
        stall: 0.0,
        flush_jitter: 0.0,
        max_faulty_attempts: 4,
    };
    let n = 3;
    let world = World::new(n)
        .flush_threshold(64)
        .fault_plan(FaultPlan::new(profile, 0xBAD5EED));
    let report = chatty(world, 200);
    let pings: u64 = report.results.iter().map(|r| r.0).sum();
    assert_eq!(pings, n as u64 * 200);
    let faults = report.faults.unwrap();
    assert!(faults.duplicated > 0, "profile failed to duplicate");
    assert!(
        faults.dedup_discards >= faults.duplicated,
        "every injected duplicate must be discarded (dup={} discards={})",
        faults.duplicated,
        faults.dedup_discards
    );
}

/// Heavy drop storms terminate because the attempt cap forces frames
/// through fault-free once retransmission has charged enough virtual time.
#[test]
fn drop_storms_terminate_via_forced_delivery() {
    let profile = FaultProfile {
        drop: 0.95,
        dup: 0.0,
        delay: 0.0,
        max_delay_epochs: 0,
        stall: 0.0,
        flush_jitter: 0.0,
        max_faulty_attempts: 3,
    };
    let n = 3;
    let world = World::new(n)
        .flush_threshold(64)
        .fault_plan(FaultPlan::new(profile, 5));
    let report = chatty(world, 120);
    let pings: u64 = report.results.iter().map(|r| r.0).sum();
    assert_eq!(pings, n as u64 * 120);
    let faults = report.faults.unwrap();
    assert!(faults.dropped > 0);
    assert!(faults.retransmits > 0);
}

/// Injected faults must charge the virtual clock: a run with guaranteed
/// frame delays takes longer in sim-time than the identical clean run.
#[test]
fn faults_charge_virtual_time() {
    let delayed_profile = FaultProfile {
        drop: 0.0,
        dup: 0.0,
        delay: 1.0,
        max_delay_epochs: 4,
        stall: 0.0,
        flush_jitter: 0.0,
        max_faulty_attempts: 4,
    };
    let n = 2;
    let clean = chatty(
        World::new(n).fault_plan(FaultPlan::new(FaultProfile::clean(), 1)),
        50,
    );
    let delayed = chatty(
        World::new(n).fault_plan(FaultPlan::new(delayed_profile, 1)),
        50,
    );
    assert!(delayed.faults.as_ref().unwrap().delayed > 0);
    assert!(
        delayed.sim_secs > clean.sim_secs,
        "delays must extend sim-time: clean={} delayed={}",
        clean.sim_secs,
        delayed.sim_secs
    );
}

/// A transport bug that permanently prevents delivery must not hang: the
/// storm guard converts the wedged barrier into a panic naming the sim
/// seed, so the failure is replayable instead of a timeout.
#[test]
fn storm_guard_converts_hangs_into_replayable_failures() {
    let black_hole = FaultProfile {
        drop: 1.0,
        dup: 0.0,
        delay: 0.0,
        max_delay_epochs: 0,
        stall: 0.0,
        flush_jitter: 0.0,
        max_faulty_attempts: u32::MAX, // the cap never forces delivery
    };
    let err = std::panic::catch_unwind(|| {
        World::new(2)
            .fault_plan(FaultPlan::new(black_hole, 0xDEAD))
            .run(|comm| {
                comm.register::<u64, _>(PING, |_, _| {});
                if comm.rank() == 0 {
                    comm.async_send(1, PING, &1u64);
                }
                comm.barrier();
            });
    })
    .unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
    assert!(
        msg.contains("--sim-seed 57005"), // 0xDEAD
        "storm panic must name the replay seed, got: {msg}"
    );
}

/// Regression (satellite: panic masking in `World::run`).
///
/// When one rank panics, peers abort out of the poisoned barrier with a
/// secondary payload. Joining in rank order used to re-raise whichever
/// came first — usually rank 0's "another rank panicked" — burying the
/// real failure. The caller must see the original payload.
#[test]
fn peer_abort_does_not_mask_the_original_panic() {
    let err = std::panic::catch_unwind(|| {
        World::new(4).run(|comm| {
            comm.register::<u64, _>(PING, |_, _| {});
            comm.barrier(); // everyone in lock-step first
            if comm.rank() == 2 {
                panic!("rank 2 exploded");
            }
            comm.barrier(); // survivors block here until poisoned
        });
    })
    .unwrap_err();
    let msg = err
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert_eq!(
        msg, "rank 2 exploded",
        "caller must receive the original panic payload, not a secondary abort"
    );
}

/// Collectives (which bypass the message path) still work under faults.
#[test]
fn collectives_survive_fault_mode() {
    let report = World::new(4)
        .fault_plan(FaultPlan::new(FaultProfile::stormy(), 21))
        .run(|comm| {
            let sum = comm.all_reduce_sum_u64(comm.rank() as u64 + 1);
            let v: u64 = comm.broadcast(2, (comm.rank() == 2).then_some(&99u64));
            (sum, v)
        });
    for r in &report.results {
        assert_eq!(*r, (10, 99));
    }
}
