//! Property tests of the simulated runtime: codec round-trips under
//! arbitrary values, message conservation under random traffic patterns,
//! and partition-independent collective results.

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use ygm::codec::{decode_from_bytes, encode_to_bytes};
use ygm::World;

type Composite = (u32, f32, Vec<u64>, Vec<(u32, bool)>, Option<i64>);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_round_trips_arbitrary_composites(
        a in any::<u32>(),
        b in any::<f32>().prop_filter("NaN breaks Eq only", |x| !x.is_nan()),
        v in prop::collection::vec(any::<u64>(), 0..20),
        s in prop::collection::vec((any::<u32>(), any::<bool>()), 0..10),
        o in prop::option::of(any::<i64>()),
    ) {
        let value = (a, b, v, s, o);
        let enc = encode_to_bytes(&value);
        prop_assert_eq!(enc.len(), ygm::Wire::wire_size(&value));
        let back: Composite = decode_from_bytes(enc);
        prop_assert_eq!(back, value);
    }
}

proptest! {
    // World spins up threads; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every message sent is processed exactly once, no matter the traffic
    /// pattern, rank count, or flush threshold.
    #[test]
    fn message_conservation(
        ranks in 1usize..6,
        sends in prop::collection::vec((0usize..6, any::<u32>()), 0..60),
        flush in prop::sample::select(vec![32usize, 1024, 64 * 1024]),
    ) {
        const TAG: u16 = 0;
        let sends = Arc::new(sends);
        let report = World::new(ranks).flush_threshold(flush).run(|comm| {
            let got = Rc::new(RefCell::new(0u64));
            let g = Rc::clone(&got);
            comm.register::<u32, _>(TAG, move |_, _| *g.borrow_mut() += 1);
            // Rank 0 issues the scripted sends (destinations mod ranks).
            if comm.rank() == 0 {
                for &(dest, payload) in sends.iter() {
                    comm.async_send(dest % comm.n_ranks(), TAG, &payload);
                }
            }
            comm.barrier();
            let n = *got.borrow();
            n
        });
        let delivered: u64 = report.results.iter().sum();
        prop_assert_eq!(delivered, sends.len() as u64);
        prop_assert_eq!(report.total.count, sends.len() as u64);
    }

    /// All-reduce results are identical on every rank and independent of
    /// the rank count.
    #[test]
    fn all_reduce_is_rank_count_invariant(
        values in prop::collection::vec(1u64..1000, 1..5),
    ) {
        let total: u64 = values.iter().sum();
        for ranks in [1usize, 2, 4] {
            let values = values.clone();
            let report = World::new(ranks).run(move |comm| {
                // Spread the addends over ranks round-robin.
                let mine: u64 = values
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % comm.n_ranks() == comm.rank())
                    .map(|(_, v)| *v)
                    .sum();
                comm.all_reduce_sum_u64(mine)
            });
            for r in &report.results {
                prop_assert_eq!(*r, total);
            }
        }
    }

    /// The virtual clock is monotone in added work.
    #[test]
    fn clock_monotone_in_compute(work in 0u64..10_000_000) {
        let base = World::new(2)
            .run(|comm| comm.barrier())
            .sim_secs;
        let loaded = World::new(2)
            .run(move |comm| {
                comm.charge_compute(work);
                comm.barrier();
            })
            .sim_secs;
        prop_assert!(loaded >= base);
    }
}

#[test]
fn rank_panic_propagates_to_caller() {
    // A panic on any rank must surface from World::run, not hang the
    // barrier. Catch it at the test boundary.
    let result = std::panic::catch_unwind(|| {
        World::new(2).run(|comm| {
            if comm.rank() == 1 {
                panic!("rank 1 exploded");
            }
            // Rank 0 must not deadlock waiting for rank 1's barrier; it
            // ends its SPMD body immediately and the implicit final
            // barrier would wait forever if the panic were swallowed.
        })
    });
    assert!(result.is_err(), "panic must propagate");
}

#[test]
fn empty_world_rejected() {
    let result = std::panic::catch_unwind(|| World::new(0));
    assert!(result.is_err());
}

#[test]
fn sequential_worlds_are_independent() {
    // Worlds must not leak state (tags, counters) into each other.
    for seed in 0..3u64 {
        let report = World::new(2).run(move |comm| {
            let tag = 5u16;
            comm.register::<u64, _>(tag, |_, _| {});
            comm.async_send(0, tag, &seed);
            comm.barrier();
        });
        assert_eq!(
            report.total.count, 2,
            "world for seed {seed} saw foreign traffic"
        );
    }
}
