//! World construction and the SPMD launcher.
//!
//! A [`World`] describes a simulated multi-rank job: rank count, flush
//! threshold, and cost model. [`World::run`] spawns one OS thread per rank,
//! hands each a [`Comm`], executes the supplied SPMD closure, performs a
//! final implicit barrier (so no message is ever dropped), and returns the
//! per-rank results together with timing and traffic summaries.

use crate::comm::{Comm, Packet};
use crate::cost::{ClockBreakdown, CostModel, PhaseRecord, VirtualClock};
use crate::fault::{FaultCounters, FaultPlan, FaultReport};
use crate::stats::{Stats, TagStats, TrafficMatrix};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use obs::Tracer;
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default per-destination buffer size before an automatic flush (bytes).
/// YGM uses aggregation buffers of comparable magnitude.
pub const DEFAULT_FLUSH_THRESHOLD: usize = 64 * 1024;

/// A reusable barrier that can be *poisoned*: when any rank panics, the
/// world aborts instead of deadlocking the surviving ranks inside their
/// barrier waits — the in-process analogue of `MPI_Abort`.
pub(crate) struct PoisonBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    cvar: Condvar,
}

struct BarrierState {
    count: usize,
    generation: u64,
    poisoned: bool,
}

/// Panic payload used when a rank aborts *because a peer panicked* (the
/// poisoned-barrier path). Distinguishable from application panics so
/// [`World::run`] can re-raise the peer's original payload instead of this
/// secondary one.
pub(crate) struct WorldAborted;

impl PoisonBarrier {
    fn new(n: usize) -> Self {
        PoisonBarrier {
            n,
            state: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
                poisoned: false,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Block until all ranks arrive. Returns `true` on exactly one rank
    /// per generation (the "leader"). Panics on all ranks if the barrier
    /// is poisoned.
    pub(crate) fn wait(&self) -> bool {
        let mut st = self.state.lock();
        if st.poisoned {
            std::panic::panic_any(WorldAborted);
        }
        st.count += 1;
        if st.count == self.n {
            st.count = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cvar.notify_all();
            return true;
        }
        let gen = st.generation;
        while st.generation == gen && !st.poisoned {
            self.cvar.wait(&mut st);
        }
        if st.poisoned {
            std::panic::panic_any(WorldAborted);
        }
        false
    }

    fn poison(&self) {
        let mut st = self.state.lock();
        st.poisoned = true;
        self.cvar.notify_all();
    }
}

/// Receive-side reliable-delivery state for one directed edge
/// `(src -> dest)`. Mutated only by the destination rank; senders read the
/// watermark and set to learn which frames are acknowledged (shared-memory
/// acks — the simulation's stand-in for ack messages on the wire).
pub(crate) struct EdgeRecvState {
    /// All frame sequence numbers `< watermark` have been delivered.
    pub(crate) watermark: AtomicU64,
    /// Delivered frames at or above the watermark (out-of-order arrivals).
    pub(crate) out_of_order: Mutex<BTreeSet<u64>>,
}

impl EdgeRecvState {
    fn new() -> Self {
        EdgeRecvState {
            watermark: AtomicU64::new(0),
            out_of_order: Mutex::new(BTreeSet::new()),
        }
    }

    /// Has frame `seq` on this edge been delivered to a handler?
    pub(crate) fn is_delivered(&self, seq: u64) -> bool {
        seq < self.watermark.load(Ordering::Acquire) || self.out_of_order.lock().contains(&seq)
    }

    /// Record frame `seq` as delivered, advancing the contiguous watermark
    /// past any out-of-order frames it now absorbs.
    pub(crate) fn mark_delivered(&self, seq: u64) {
        let mut ooo = self.out_of_order.lock();
        let mut mark = self.watermark.load(Ordering::Acquire);
        if seq != mark {
            ooo.insert(seq);
            return;
        }
        mark += 1;
        while ooo.remove(&mark) {
            mark += 1;
        }
        self.watermark.store(mark, Ordering::Release);
    }
}

/// World-wide fault-injection state: the plan, the counters, and the
/// shared-memory ack table (one [`EdgeRecvState`] per directed edge,
/// indexed `dest * n_ranks + src`).
pub(crate) struct FaultShared {
    pub(crate) plan: FaultPlan,
    pub(crate) counters: FaultCounters,
    recv: Box<[EdgeRecvState]>,
}

impl FaultShared {
    fn new(plan: FaultPlan, n_ranks: usize) -> Self {
        FaultShared {
            plan,
            counters: FaultCounters::default(),
            recv: (0..n_ranks * n_ranks)
                .map(|_| EdgeRecvState::new())
                .collect(),
        }
    }

    /// Receive state for frames flowing `src -> dest`.
    pub(crate) fn edge(&self, src: usize, dest: usize, n_ranks: usize) -> &EdgeRecvState {
        &self.recv[dest * n_ranks + src]
    }
}

pub(crate) struct Shared {
    pub n_ranks: usize,
    pub barrier: PoisonBarrier,
    pub senders: Vec<Sender<Packet>>,
    pub sent: AtomicU64,
    pub processed: AtomicU64,
    pub stats: Stats,
    pub clock: VirtualClock,
    pub cost: CostModel,
    pub flush_threshold: usize,
    pub reduce_u64: AtomicU64,
    pub reduce_f64: Mutex<f64>,
    pub bcast: Mutex<Option<Bytes>>,
    /// Optional span/metric collector; `None` keeps the hot path at a
    /// single branch per instrumentation site.
    pub tracer: Option<Arc<Tracer>>,
    /// Fault-injection plan + reliable-delivery state; `None` runs the
    /// original direct transport unchanged.
    pub fault: Option<FaultShared>,
}

/// Configuration for a simulated multi-rank run.
#[derive(Clone)]
pub struct World {
    n_ranks: usize,
    flush_threshold: usize,
    cost: CostModel,
    tracer: Option<Arc<Tracer>>,
    fault: Option<FaultPlan>,
}

/// The outcome of a [`World::run`].
#[derive(Debug)]
pub struct WorldReport<T> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<T>,
    /// Virtual (simulated) elapsed time, seconds.
    pub sim_secs: f64,
    /// Virtual elapsed time in exact nanoseconds — the final clock reading.
    /// The critical-path analyzer needs this exact (not `sim_secs * 1e9`)
    /// to attribute collective time with zero rounding error.
    pub sim_ns: u64,
    /// Decomposition of the virtual time into compute / communication /
    /// barrier components.
    pub breakdown: ClockBreakdown,
    /// Per-phase (barrier-to-barrier) profile records.
    pub phases: Vec<PhaseRecord>,
    /// Real wall-clock elapsed time, seconds.
    pub wall_secs: f64,
    /// Cumulative per-tag traffic: `(tag, name, stats)` for used tags.
    pub tags: Vec<(u16, String, TagStats)>,
    /// Sum over all tags.
    pub total: TagStats,
    /// Rank×rank×tag traffic matrix (diagonal = rank-local sends); each
    /// tag's cells sum to its entry in `tags`.
    pub matrix: TrafficMatrix,
    /// Injected-fault and reliable-delivery counters; `None` when the world
    /// ran without a [`FaultPlan`].
    pub faults: Option<FaultReport>,
}

impl World {
    /// A world with `n_ranks` simulated ranks and default settings.
    pub fn new(n_ranks: usize) -> Self {
        assert!(n_ranks >= 1, "a world needs at least one rank");
        World {
            n_ranks,
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
            cost: CostModel::default(),
            tracer: None,
            fault: None,
        }
    }

    /// Run this world under seeded fault injection (see [`crate::fault`]):
    /// frames are dropped / duplicated / delayed per `plan`, and the
    /// reliable-delivery layer (sequence numbers, acks, retransmission,
    /// dedup) keeps every message exactly-once so barriers still terminate.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Override the per-destination buffer flush threshold (bytes).
    pub fn flush_threshold(mut self, bytes: usize) -> Self {
        assert!(bytes > 0);
        self.flush_threshold = bytes;
        self
    }

    /// Override the virtual cost model.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Attach a tracer; runtime spans (barriers, dispatch, collectives),
    /// flush metrics, and any application spans recorded through
    /// [`Comm`]'s `trace_*` helpers land in it. The tracer must have been
    /// created for the same rank count.
    pub fn tracer(mut self, tracer: Arc<Tracer>) -> Self {
        assert_eq!(
            tracer.n_ranks(),
            self.n_ranks,
            "tracer rank count must match the world"
        );
        self.tracer = Some(tracer);
        self
    }

    /// Number of ranks this world will launch.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Launch the SPMD program `f` on every rank and wait for completion.
    ///
    /// `f` runs once per rank with that rank's [`Comm`]. After `f` returns on
    /// a rank, an implicit final barrier drains any in-flight messages, so
    /// handlers may still fire after `f` returns. Panics in any rank
    /// propagate.
    pub fn run<T, F>(&self, f: F) -> WorldReport<T>
    where
        F: Fn(&Comm) -> T + Send + Sync,
        T: Send,
    {
        let n = self.n_ranks;
        let (senders, receivers): (Vec<Sender<Packet>>, Vec<Receiver<Packet>>) =
            (0..n).map(|_| unbounded()).unzip();
        let shared = Arc::new(Shared {
            n_ranks: n,
            barrier: PoisonBarrier::new(n),
            senders,
            sent: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            stats: Stats::new(n),
            clock: VirtualClock::new(),
            cost: self.cost,
            flush_threshold: self.flush_threshold,
            reduce_u64: AtomicU64::new(0),
            reduce_f64: Mutex::new(0.0),
            bcast: Mutex::new(None),
            tracer: self.tracer.clone(),
            fault: self.fault.map(|plan| FaultShared::new(plan, n)),
        });

        let start = Instant::now();
        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (rank, rx) in receivers.into_iter().enumerate() {
                let shared = Arc::clone(&shared);
                let f = &f;
                handles.push(scope.spawn(move || {
                    let barrier = Arc::clone(&shared);
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let comm = Comm::new(rank, shared, rx);
                        let out = f(&comm);
                        // Final drain: a rank may still owe handler
                        // executions to messages sent by other ranks at
                        // the tail of `f`.
                        comm.barrier();
                        out
                    }));
                    match result {
                        Ok(out) => out,
                        Err(payload) => {
                            // Abort the world so no rank deadlocks in a
                            // barrier waiting for us, then re-raise.
                            barrier.barrier.poison();
                            std::panic::resume_unwind(payload);
                        }
                    }
                }));
            }
            // Join *all* ranks before re-raising: the first rank in join
            // order is often one that aborted secondarily via the poisoned
            // barrier ([`WorldAborted`]); re-raise the peer's original
            // panic payload so the caller sees the real failure, not
            // "another rank panicked".
            let mut original: Option<Box<dyn std::any::Any + Send>> = None;
            let mut secondary: Option<Box<dyn std::any::Any + Send>> = None;
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(v) => results[rank] = Some(v),
                    Err(e) if e.downcast_ref::<WorldAborted>().is_some() => {
                        secondary.get_or_insert(e);
                    }
                    Err(e) => {
                        original.get_or_insert(e);
                    }
                }
            }
            if let Some(payload) = original.or(secondary) {
                std::panic::resume_unwind(payload);
            }
        });
        let wall_secs = start.elapsed().as_secs_f64();

        WorldReport {
            results: results.into_iter().map(Option::unwrap).collect(),
            sim_secs: shared.clock.now_secs(),
            sim_ns: shared.clock.now_ns(),
            breakdown: shared.clock.breakdown(),
            phases: shared.clock.phases(),
            wall_secs,
            tags: shared.stats.nonzero_tags(),
            total: shared.stats.total(),
            matrix: shared.stats.matrix(),
            faults: shared.fault.as_ref().map(|f| f.counters.report(&f.plan)),
        }
    }
}

impl<T> WorldReport<T> {
    /// Stats for one tag, if any message used it.
    pub fn tag(&self, tag: u16) -> Option<TagStats> {
        self.tags
            .iter()
            .find(|(t, _, _)| *t == tag)
            .map(|(_, _, s)| *s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    const PING: u16 = 0;
    const PONG: u16 = 1;

    #[test]
    fn single_rank_world_runs() {
        let report = World::new(1).run(|comm| comm.rank());
        assert_eq!(report.results, vec![0]);
        assert_eq!(report.total.count, 0);
    }

    #[test]
    fn ranks_see_distinct_ids() {
        let report = World::new(4).run(|comm| (comm.rank(), comm.n_ranks()));
        assert_eq!(
            report.results,
            vec![(0usize, 4usize), (1, 4), (2, 4), (3, 4)]
        );
    }

    #[test]
    fn async_send_delivers_to_handler() {
        let report = World::new(3).run(|comm| {
            let received = Rc::new(RefCell::new(Vec::<u64>::new()));
            let r2 = Rc::clone(&received);
            comm.register::<u64, _>(PING, move |_, v| r2.borrow_mut().push(v));
            // Every rank sends its id to rank 0.
            comm.async_send(0, PING, &(comm.rank() as u64));
            comm.barrier();
            let mut got = received.borrow().clone();
            got.sort_unstable();
            got
        });
        assert_eq!(report.results[0], vec![0, 1, 2]);
        assert!(report.results[1].is_empty());
        assert_eq!(report.total.count, 3);
    }

    #[test]
    fn handler_chains_complete_before_barrier_returns() {
        // Rank r sends PING to r+1; the PING handler replies PONG to 0;
        // the barrier must retire the whole cascade.
        let report = World::new(4).run(|comm| {
            let pongs = Rc::new(RefCell::new(0u32));
            let p2 = Rc::clone(&pongs);
            comm.register::<u32, _>(PING, move |c, v| {
                c.async_send(0, PONG, &(v + 1));
            });
            comm.register::<u32, _>(PONG, move |_, _| *p2.borrow_mut() += 1);
            let next = (comm.rank() + 1) % comm.n_ranks();
            comm.async_send(next, PING, &7u32);
            comm.barrier();
            let n = *pongs.borrow();
            n
        });
        assert_eq!(report.results[0], 4);
        assert_eq!(report.results[1], 0);
    }

    #[test]
    fn self_sends_are_delivered() {
        let report = World::new(2).run(|comm| {
            let hits = Rc::new(RefCell::new(0u32));
            let h = Rc::clone(&hits);
            comm.register::<u32, _>(PING, move |_, _| *h.borrow_mut() += 1);
            for _ in 0..10 {
                comm.async_send(comm.rank(), PING, &1u32);
            }
            comm.barrier();
            let n = *hits.borrow();
            n
        });
        assert_eq!(report.results, vec![10, 10]);
        // Self-sends count in totals but not remote traffic.
        assert_eq!(report.total.count, 20);
        assert_eq!(report.total.remote_count, 0);
    }

    #[test]
    fn poll_processes_without_global_sync() {
        let report = World::new(2).run(|comm| {
            let hits = Rc::new(RefCell::new(0u32));
            let h = Rc::clone(&hits);
            comm.register::<u32, _>(PING, move |_, _| *h.borrow_mut() += 1);
            comm.async_send(comm.rank(), PING, &1u32);
            // Self-send is locally buffered; poll must flush + handle it.
            comm.poll();
            let seen = *hits.borrow();
            comm.barrier();
            seen
        });
        assert_eq!(report.results, vec![1, 1]);
    }

    #[test]
    fn all_reduce_sums_and_maxes() {
        let report = World::new(4).run(|comm| {
            let sum = comm.all_reduce_sum_u64(comm.rank() as u64 + 1);
            let max = comm.all_reduce_max_u64(comm.rank() as u64);
            let fsum = comm.all_reduce_sum_f64(0.5);
            (sum, max, fsum)
        });
        for r in &report.results {
            assert_eq!(r.0, 10);
            assert_eq!(r.1, 3);
            assert!((r.2 - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn consecutive_reduces_do_not_bleed() {
        let report = World::new(3).run(|comm| {
            let a = comm.all_reduce_sum_u64(1);
            let b = comm.all_reduce_sum_u64(2);
            (a, b)
        });
        for r in &report.results {
            assert_eq!(*r, (3, 6));
        }
    }

    #[test]
    fn broadcast_distributes_roots_value() {
        let report = World::new(3).run(|comm| {
            let v: u64 = comm.broadcast(1, (comm.rank() == 1).then_some(&42u64));
            v
        });
        assert_eq!(report.results, vec![42, 42, 42]);
    }

    #[test]
    fn large_fanout_is_fully_counted() {
        let n = 4;
        let per_rank = 1000u64;
        let report = World::new(n).run(move |comm| {
            let count = Rc::new(RefCell::new(0u64));
            let c2 = Rc::clone(&count);
            comm.register::<u64, _>(PING, move |_, _| *c2.borrow_mut() += 1);
            for i in 0..per_rank {
                comm.async_send((i as usize) % comm.n_ranks(), PING, &i);
            }
            comm.barrier();
            let n = *count.borrow();
            n
        });
        let total: u64 = report.results.iter().sum();
        assert_eq!(total, per_rank * n as u64);
        assert_eq!(report.total.count, per_rank * n as u64);
    }

    #[test]
    fn virtual_clock_advances_with_charged_compute() {
        let report = World::new(2).run(|comm| {
            comm.charge_compute(1_000_000); // 1 ms per rank
            comm.barrier();
            comm.now_ns()
        });
        assert!(report.sim_secs >= 1e-3);
        assert!(report.results.iter().all(|&t| t >= 1_000_000));
    }

    #[test]
    fn flush_threshold_triggers_early_delivery() {
        // With a tiny threshold messages flush long before the barrier; the
        // destination still only handles them on its own poll/barrier.
        let report = World::new(2).flush_threshold(16).run(|comm| {
            let hits = Rc::new(RefCell::new(0u32));
            let h = Rc::clone(&hits);
            comm.register::<u64, _>(PING, move |_, _| *h.borrow_mut() += 1);
            if comm.rank() == 0 {
                for i in 0..100u64 {
                    comm.async_send(1, PING, &i);
                }
            }
            comm.barrier();
            let n = *hits.borrow();
            n
        });
        assert_eq!(report.results[1], 100);
    }

    #[test]
    fn wire_bytes_match_frame_accounting() {
        let report = World::new(2).run(|comm| {
            comm.register::<u64, _>(PING, |_, _| {});
            if comm.rank() == 0 {
                comm.async_send(1, PING, &1u64);
            }
            comm.barrier();
        });
        let t = report.tag(PING).unwrap();
        assert_eq!(t.count, 1);
        assert_eq!(t.bytes, (crate::comm::FRAME_HEADER_BYTES + 8) as u64);
    }

    #[test]
    fn processed_equals_sent_after_run() {
        // The final implicit barrier must retire everything.
        let report = World::new(3).run(|comm| {
            comm.register::<u32, _>(PING, |_, _| {});
            // Fire at the very end of f, with no explicit barrier.
            comm.async_send((comm.rank() + 1) % comm.n_ranks(), PING, &1u32);
        });
        assert_eq!(report.total.count, 3);
    }

    #[test]
    fn sim_time_shrinks_with_more_ranks_for_fixed_total_work() {
        let run = |ranks: usize| {
            let total_work = 64_000_000u64; // 64 ms of virtual compute
            World::new(ranks)
                .run(move |comm| {
                    comm.charge_compute(total_work / comm.n_ranks() as u64);
                    comm.barrier();
                })
                .sim_secs
        };
        let t1 = run(1);
        let t4 = run(4);
        assert!(
            t4 < t1 / 2.0,
            "virtual clock must show strong scaling: t1={t1} t4={t4}"
        );
    }

    #[test]
    fn counters_are_consistent_under_atomic_ordering() {
        // Regression guard for the termination-detection invariant:
        // sent == processed implies empty channels.
        let report = World::new(4).run(|comm| {
            comm.register::<u32, _>(PING, |c, v| {
                if v > 0 {
                    let next = (c.rank() + 1) % c.n_ranks();
                    c.async_send(next, PING, &(v - 1));
                }
            });
            comm.async_send((comm.rank() + 1) % comm.n_ranks(), PING, &25u32);
            comm.barrier();
            comm.now_ns()
        });
        // 4 chains x 26 messages each.
        assert_eq!(report.total.count, 4 * 26);
    }
}
