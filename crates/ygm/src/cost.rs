//! Virtual time model.
//!
//! The paper measures wall-clock hours on the Mammoth cluster (dual 64-core
//! EPYC nodes, Omni-Path interconnect, up to 32 nodes x 128 ranks). This
//! reproduction runs all ranks inside one process on one machine, so
//! wall-clock time cannot exhibit distributed strong scaling. Instead the
//! runtime maintains a deterministic *virtual clock*:
//!
//! * Each rank accrues **compute cost** — the application charges a cost per
//!   distance evaluation (proportional to vector dimension), mirroring where
//!   nearly all of NN-Descent's CPU time goes.
//! * Each rank accrues **communication cost** for remote traffic: a
//!   per-message overhead `alpha` plus `bytes / bandwidth` (the classic
//!   alpha-beta model), on both the send and the receive side.
//! * At every barrier the global clock advances by the **phase makespan**:
//!   the maximum over ranks of (compute + send cost) plus the maximum of
//!   receive-side cost, plus a `log2(P)` barrier latency.
//!
//! Strong scaling then emerges for the same reason it does on real hardware:
//! per-rank compute shrinks roughly as `1/P` while per-message overheads,
//! barrier latencies, and load imbalance (captured exactly by the `max` over
//! real per-rank counters) do not.

use crate::stats::Stats;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Alpha-beta cost model constants. All times in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Per-message overhead charged to both sender and receiver (ns). This
    /// models YGM's per-RPC handling cost, not an MPI message: YGM aggregates
    /// many RPCs per MPI send, so this is small.
    pub alpha_ns: f64,
    /// Link bandwidth in bytes per nanosecond (1.0 == 1 GB/s is 1e0? No:
    /// bytes/ns; 12.5 bytes/ns == 100 Gb/s, the Omni-Path class).
    pub bytes_per_ns: f64,
    /// Latency of one barrier/allreduce hop (ns); total barrier cost is
    /// `barrier_hop_ns * ceil(log2(P))`.
    pub barrier_hop_ns: f64,
    /// Cost of evaluating one distance element (one dimension of a vector
    /// pair), in ns. Multiplied by vector dimension per distance call.
    pub dist_elem_ns: f64,
}

impl CostModel {
    /// Constants loosely calibrated to the paper's Mammoth cluster: 100 Gb/s
    /// class interconnect, microsecond-scale collectives, and a few tenths of
    /// a nanosecond per vector element on a 2.25 GHz EPYC core.
    pub fn mammoth_like() -> Self {
        CostModel {
            alpha_ns: 120.0,
            bytes_per_ns: 12.5,
            barrier_hop_ns: 15_000.0,
            dist_elem_ns: 0.6,
        }
    }

    /// A model with zero communication cost; useful to isolate compute
    /// scaling in ablations.
    pub fn free_network() -> Self {
        CostModel {
            alpha_ns: 0.0,
            bytes_per_ns: f64::INFINITY,
            barrier_hop_ns: 0.0,
            dist_elem_ns: 0.6,
        }
    }

    /// Virtual cost of one distance evaluation over vectors of `dim`
    /// dimensions, in nanoseconds.
    #[inline]
    pub fn distance_cost_ns(&self, dim: usize) -> u64 {
        (self.dist_elem_ns * dim as f64).ceil() as u64
    }

    /// Virtual cost of holding a frame on the wire (or stalling a rank)
    /// for `epochs` synchronization epochs under fault injection. An epoch
    /// corresponds to one barrier round, so the hop latency is the natural
    /// unit; `free_network` keeps fault runs free, preserving ablations.
    #[inline]
    pub fn delay_cost_ns(&self, epochs: u32) -> u64 {
        (self.barrier_hop_ns * epochs as f64).ceil() as u64
    }

    fn link_cost_ns(&self, msgs: u64, bytes: u64) -> f64 {
        self.alpha_ns * msgs as f64 + bytes as f64 / self.bytes_per_ns
    }

    fn barrier_cost_ns(&self, n_ranks: usize) -> f64 {
        let hops = (n_ranks.max(1) as f64).log2().ceil().max(0.0);
        self.barrier_hop_ns * hops
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::mammoth_like()
    }
}

/// Decomposition of elapsed virtual time into its cost-model components —
/// the "how much is computation vs communication" profile the paper's
/// Section 7 calls for.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClockBreakdown {
    /// Makespan contribution of per-rank compute (max over ranks, summed
    /// over phases), seconds.
    pub compute_secs: f64,
    /// Contribution of the alpha-beta communication terms, seconds.
    pub comm_secs: f64,
    /// Contribution of barrier/collective latency, seconds.
    pub barrier_secs: f64,
}

impl ClockBreakdown {
    /// Total seconds across components.
    pub fn total_secs(&self) -> f64 {
        self.compute_secs + self.comm_secs + self.barrier_secs
    }

    /// Fraction of the total spent communicating (comm + barrier), in
    /// `[0, 1]`; 0 when nothing has elapsed.
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total_secs();
        if t == 0.0 {
            0.0
        } else {
            (self.comm_secs + self.barrier_secs) / t
        }
    }
}

/// One barrier-to-barrier phase, as recorded by the virtual clock — the
/// fine-grained profile behind the paper's Section 7 ask. A "phase" is
/// everything between two consecutive barriers world-wide.
///
/// Besides the makespan split, each record keeps the raw per-rank cost
/// vectors (indexed by rank) that the makespan was computed from; the
/// `obs::critical_path` analyzer reconstructs the happens-before DAG,
/// per-rank slack, and straggler attribution from exactly these numbers,
/// so the analysis is deterministic whenever the clock is.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRecord {
    /// Zero-based phase index (== barrier count so far).
    pub index: usize,
    /// Makespan attributed to compute, seconds.
    pub compute_secs: f64,
    /// Makespan attributed to communication, seconds.
    pub comm_secs: f64,
    /// Barrier latency, seconds.
    pub barrier_secs: f64,
    /// Remote messages sent world-wide during the phase.
    pub msgs: u64,
    /// Remote bytes sent world-wide during the phase.
    pub bytes: u64,
    /// Exact nanoseconds this phase added to the global clock (the value
    /// `now_ns` was advanced by). Summing these over all phases and
    /// subtracting from the final clock gives collective time exactly.
    pub total_ns: u64,
    /// Per-rank compute nanoseconds charged during the phase.
    pub rank_compute_ns: Vec<f64>,
    /// Per-rank send-side link cost of application traffic, ns.
    pub rank_send_ns: Vec<f64>,
    /// Per-rank receive-side link cost of application traffic, ns.
    pub rank_recv_ns: Vec<f64>,
    /// Per-rank send-side link cost of transport traffic (retransmits,
    /// duplicates), ns.
    pub rank_transport_send_ns: Vec<f64>,
    /// Per-rank receive-side link cost of transport traffic, ns.
    pub rank_transport_recv_ns: Vec<f64>,
    /// Per-rank injected-fault time (frame delays, stalls), ns.
    pub rank_fault_ns: Vec<f64>,
}

impl PhaseRecord {
    /// Total virtual seconds this phase contributed.
    pub fn total_secs(&self) -> f64 {
        self.compute_secs + self.comm_secs + self.barrier_secs
    }

    /// Total modelled work (compute + send + recv + transport + fault) of
    /// `rank` during this phase, ns. The rank maximizing this is the
    /// phase's critical rank — the straggler the barrier waited on.
    pub fn rank_work_ns(&self, rank: usize) -> f64 {
        self.rank_compute_ns[rank]
            + self.rank_send_ns[rank]
            + self.rank_recv_ns[rank]
            + self.rank_transport_send_ns[rank]
            + self.rank_transport_recv_ns[rank]
            + self.rank_fault_ns[rank]
    }
}

/// The global virtual clock. Advanced only at barriers, by the phase
/// makespan computed from the per-rank phase counters in [`Stats`].
pub struct VirtualClock {
    now_ns: AtomicU64,
    compute_ns: AtomicU64,
    comm_ns: AtomicU64,
    barrier_ns: AtomicU64,
    phases: Mutex<Vec<PhaseRecord>>,
}

impl VirtualClock {
    pub(crate) fn new() -> Self {
        VirtualClock {
            now_ns: AtomicU64::new(0),
            compute_ns: AtomicU64::new(0),
            comm_ns: AtomicU64::new(0),
            barrier_ns: AtomicU64::new(0),
            phases: Mutex::new(Vec::new()),
        }
    }

    /// Current virtual time in nanoseconds since world start.
    pub fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::SeqCst)
    }

    /// Current virtual time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_ns() as f64 / 1e9
    }

    /// Advance the clock by one phase. Called by the barrier leader after
    /// quiescence, before phase counters are reset.
    pub(crate) fn advance_phase(&self, stats: &Stats, cost: &CostModel, n_ranks: usize) {
        let mut max_compute = 0.0f64;
        let mut max_send = 0.0f64;
        let mut max_recv = 0.0f64;
        let mut max_fault = 0.0f64;
        let mut phase_msgs = 0u64;
        let mut phase_bytes = 0u64;
        let ranks = stats.phase.len();
        let mut rank_compute_ns = Vec::with_capacity(ranks);
        let mut rank_send_ns = Vec::with_capacity(ranks);
        let mut rank_recv_ns = Vec::with_capacity(ranks);
        let mut rank_transport_send_ns = Vec::with_capacity(ranks);
        let mut rank_transport_recv_ns = Vec::with_capacity(ranks);
        let mut rank_fault_ns = Vec::with_capacity(ranks);
        for p in stats.phase.iter() {
            let compute = p.compute_ns.load(Ordering::Relaxed) as f64;
            let msgs_out = p.msgs_out.load(Ordering::Relaxed);
            let bytes_out = p.bytes_out.load(Ordering::Relaxed);
            let tr_msgs_out = p.tr_msgs_out.load(Ordering::Relaxed);
            let tr_bytes_out = p.tr_bytes_out.load(Ordering::Relaxed);
            phase_msgs += msgs_out;
            phase_bytes += bytes_out;
            // Makespan terms are computed from the SUMMED counters (counter
            // sums are exact in u64), so splitting transport traffic into
            // its own cells never changes phase totals.
            let send = cost.link_cost_ns(msgs_out + tr_msgs_out, bytes_out + tr_bytes_out);
            let msgs_in = p.msgs_in.load(Ordering::Relaxed);
            let bytes_in = p.bytes_in.load(Ordering::Relaxed);
            let tr_msgs_in = p.tr_msgs_in.load(Ordering::Relaxed);
            let tr_bytes_in = p.tr_bytes_in.load(Ordering::Relaxed);
            let recv = cost.link_cost_ns(msgs_in + tr_msgs_in, bytes_in + tr_bytes_in);
            let fault = p.fault_ns.load(Ordering::Relaxed) as f64;
            max_compute = max_compute.max(compute + send); // send charged with compute below
            max_send = max_send.max(send);
            max_recv = max_recv.max(recv);
            max_fault = max_fault.max(fault);
            let app_send = cost.link_cost_ns(msgs_out, bytes_out);
            let app_recv = cost.link_cost_ns(msgs_in, bytes_in);
            rank_compute_ns.push(compute);
            rank_send_ns.push(app_send);
            rank_recv_ns.push(app_recv);
            rank_transport_send_ns.push(send - app_send);
            rank_transport_recv_ns.push(recv - app_recv);
            rank_fault_ns.push(fault);
        }
        // Attribution: the makespan adds max(compute + send) + max(recv) +
        // barrier. Count the send share inside the comm bucket, along with
        // any injected-fault time (frame delays, stalls) — the slowest
        // straggler's lost time extends the phase, as it would on a real
        // network.
        let compute_part = (max_compute - max_send).max(0.0);
        let comm_part = max_send + max_recv + max_fault;
        let barrier_part = cost.barrier_cost_ns(n_ranks);
        self.compute_ns
            .fetch_add(compute_part.ceil() as u64, Ordering::SeqCst);
        self.comm_ns
            .fetch_add(comm_part.ceil() as u64, Ordering::SeqCst);
        self.barrier_ns
            .fetch_add(barrier_part.ceil() as u64, Ordering::SeqCst);
        let phase = compute_part + comm_part + barrier_part;
        let total_ns = phase.ceil() as u64;
        self.now_ns.fetch_add(total_ns, Ordering::SeqCst);
        let mut log = self.phases.lock();
        let index = log.len();
        log.push(PhaseRecord {
            index,
            compute_secs: compute_part / 1e9,
            comm_secs: comm_part / 1e9,
            barrier_secs: barrier_part / 1e9,
            msgs: phase_msgs,
            bytes: phase_bytes,
            total_ns,
            rank_compute_ns,
            rank_send_ns,
            rank_recv_ns,
            rank_transport_send_ns,
            rank_transport_recv_ns,
            rank_fault_ns,
        });
    }

    /// Advance by a collective's synchronization cost only (used by
    /// allreduce helpers, which bypass the message path).
    pub(crate) fn advance_collective(&self, cost: &CostModel, n_ranks: usize) {
        let ns = cost.barrier_cost_ns(n_ranks).ceil() as u64;
        self.barrier_ns.fetch_add(ns, Ordering::SeqCst);
        self.now_ns.fetch_add(ns, Ordering::SeqCst);
    }

    /// Per-phase records accumulated so far (one per barrier).
    pub fn phases(&self) -> Vec<PhaseRecord> {
        self.phases.lock().clone()
    }

    /// Where the elapsed virtual time went (Section 7-style profile).
    pub fn breakdown(&self) -> ClockBreakdown {
        ClockBreakdown {
            compute_secs: self.compute_ns.load(Ordering::SeqCst) as f64 / 1e9,
            comm_secs: self.comm_ns.load(Ordering::SeqCst) as f64 / 1e9,
            barrier_secs: self.barrier_ns.load(Ordering::SeqCst) as f64 / 1e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_cost_scales_with_dim() {
        let c = CostModel::mammoth_like();
        assert!(c.distance_cost_ns(128) > c.distance_cost_ns(32));
        assert_eq!(c.distance_cost_ns(0), 0);
    }

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_ns(), 0);
        let stats = Stats::new(2);
        stats.charge_compute(0, 1_000);
        stats.charge_compute(1, 5_000);
        let cost = CostModel::free_network();
        clock.advance_phase(&stats, &cost, 2);
        // Makespan is the max over ranks, not the sum.
        assert_eq!(clock.now_ns(), 5_000);
    }

    #[test]
    fn phase_cost_includes_comm_terms() {
        let clock = VirtualClock::new();
        let stats = Stats::new(2);
        stats.record_send(0, 1_000_000, 0, 1); // 1 MB remote
        let cost = CostModel {
            alpha_ns: 100.0,
            bytes_per_ns: 1.0,
            barrier_hop_ns: 0.0,
            dist_elem_ns: 1.0,
        };
        clock.advance_phase(&stats, &cost, 2);
        // send side: 100 + 1e6, recv side: 100 + 1e6
        assert_eq!(clock.now_ns(), 2 * (100 + 1_000_000));
    }

    #[test]
    fn barrier_cost_grows_with_ranks() {
        let c = CostModel::mammoth_like();
        assert!(c.barrier_cost_ns(32) > c.barrier_cost_ns(4));
        assert_eq!(c.barrier_cost_ns(1), 0.0);
    }

    #[test]
    fn phase_log_records_every_barrier() {
        let clock = VirtualClock::new();
        let stats = Stats::new(2);
        let cost = CostModel::mammoth_like();
        stats.record_send(0, 500, 0, 1);
        clock.advance_phase(&stats, &cost, 2);
        stats.reset_phase();
        clock.advance_phase(&stats, &cost, 2);
        let phases = clock.phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].index, 0);
        assert_eq!(phases[0].msgs, 1);
        assert_eq!(phases[0].bytes, 500);
        assert_eq!(phases[1].msgs, 0);
        let total: f64 = phases.iter().map(PhaseRecord::total_secs).sum();
        assert!((total - clock.now_secs()).abs() < 1e-7);
    }

    #[test]
    fn phase_records_carry_exact_totals_and_rank_vectors() {
        let clock = VirtualClock::new();
        let stats = Stats::new(2);
        stats.charge_compute(0, 10_000);
        stats.record_send(0, 1_000, 0, 1);
        stats.record_transport(0, 1, 1_000); // retransmit of the same frame
        stats.charge_fault(1, 777);
        let cost = CostModel {
            alpha_ns: 100.0,
            bytes_per_ns: 1.0,
            barrier_hop_ns: 500.0,
            dist_elem_ns: 1.0,
        };
        clock.advance_phase(&stats, &cost, 2);
        stats.reset_phase();
        clock.advance_phase(&stats, &cost, 2);
        let phases = clock.phases();
        // total_ns is exactly what the clock advanced by.
        let sum: u64 = phases.iter().map(|p| p.total_ns).sum();
        assert_eq!(sum, clock.now_ns());
        let p0 = &phases[0];
        assert_eq!(p0.rank_compute_ns, vec![10_000.0, 0.0]);
        assert_eq!(p0.rank_send_ns, vec![1_100.0, 0.0]); // alpha + bytes
        assert_eq!(p0.rank_recv_ns, vec![0.0, 1_100.0]);
        assert_eq!(p0.rank_transport_send_ns, vec![1_100.0, 0.0]);
        assert_eq!(p0.rank_transport_recv_ns, vec![0.0, 1_100.0]);
        assert_eq!(p0.rank_fault_ns, vec![0.0, 777.0]);
        // Rank work makes rank 0 (compute-heavy) the critical rank here.
        assert!(p0.rank_work_ns(0) > p0.rank_work_ns(1));
        // Transport traffic charged virtual time: the phase is longer than
        // compute + app traffic alone would make it.
        assert!(p0.total_ns > 10_000 + 2 * 1_100);
    }

    #[test]
    fn breakdown_attributes_components() {
        let clock = VirtualClock::new();
        let stats = Stats::new(2);
        stats.charge_compute(0, 10_000);
        stats.record_send(0, 1_000, 0, 1);
        let cost = CostModel {
            alpha_ns: 100.0,
            bytes_per_ns: 1.0,
            barrier_hop_ns: 500.0,
            dist_elem_ns: 1.0,
        };
        clock.advance_phase(&stats, &cost, 2);
        let b = clock.breakdown();
        assert!(b.compute_secs > 0.0);
        assert!(b.comm_secs > 0.0);
        assert!(b.barrier_secs > 0.0);
        assert!((b.total_secs() - clock.now_secs()).abs() < 1e-8);
        assert!(b.comm_fraction() > 0.0 && b.comm_fraction() < 1.0);
    }

    #[test]
    fn breakdown_empty_is_zero() {
        let clock = VirtualClock::new();
        let b = clock.breakdown();
        assert_eq!(b, ClockBreakdown::default());
        assert_eq!(b.comm_fraction(), 0.0);
    }

    #[test]
    fn free_network_charges_nothing_for_messages() {
        let clock = VirtualClock::new();
        let stats = Stats::new(2);
        stats.record_send(0, 1 << 20, 0, 1);
        clock.advance_phase(&stats, &CostModel::free_network(), 2);
        assert_eq!(clock.now_ns(), 0);
    }
}
