//! Higher-level collectives built on the message path and the scratch-cell
//! reducers in [`crate::comm::Comm`]: all-gather, gather-to-root, and
//! element-wise vector reduction. YGM applications use these for the small
//! control-plane exchanges around the bulk async traffic (e.g. collecting
//! per-rank statistics, distributing global parameters).
//!
//! All functions are SPMD collectives: every rank must call them at the
//! same point with the same tag.

use crate::codec::Wire;
use crate::comm::Comm;
use std::cell::RefCell;
use std::rc::Rc;

/// Gather one `Wire` value from every rank; every rank receives the full
/// vector indexed by rank. Uses `tag` for its traffic (must not collide
/// with application tags and must be registered by this call only).
pub fn all_gather<T: Wire + Clone + 'static>(comm: &Comm, tag: u16, value: &T) -> Vec<T> {
    let slots: Rc<RefCell<Vec<Option<T>>>> = Rc::new(RefCell::new(vec![None; comm.n_ranks()]));
    let sink = Rc::clone(&slots);
    comm.register::<(u32, T), _>(tag, move |_, (src, v)| {
        sink.borrow_mut()[src as usize] = Some(v);
    });
    for dest in 0..comm.n_ranks() {
        comm.async_send(dest, tag, &(comm.rank() as u32, value.clone()));
    }
    comm.barrier();
    let out = slots
        .borrow_mut()
        .iter_mut()
        .map(|s| s.take().expect("missing all_gather contribution"))
        .collect();
    out
}

/// Gather one value per rank at `root`; other ranks receive `None`.
pub fn gather<T: Wire + Clone + 'static>(
    comm: &Comm,
    tag: u16,
    root: usize,
    value: &T,
) -> Option<Vec<T>> {
    let slots: Rc<RefCell<Vec<Option<T>>>> = Rc::new(RefCell::new(vec![None; comm.n_ranks()]));
    let sink = Rc::clone(&slots);
    comm.register::<(u32, T), _>(tag, move |_, (src, v)| {
        sink.borrow_mut()[src as usize] = Some(v);
    });
    comm.async_send(root, tag, &(comm.rank() as u32, value.clone()));
    comm.barrier();
    if comm.rank() == root {
        Some(
            slots
                .borrow_mut()
                .iter_mut()
                .map(|s| s.take().expect("missing gather contribution"))
                .collect(),
        )
    } else {
        None
    }
}

/// Element-wise sum of equal-length `u64` vectors across ranks; every rank
/// receives the reduced vector. Built from repeated scalar all-reduces —
/// fine for the short statistic vectors it is meant for.
pub fn all_reduce_sum_vec(comm: &Comm, values: &[u64]) -> Vec<u64> {
    // Length must agree across ranks; cheap collective check first.
    let max_len = comm.all_reduce_max_u64(values.len() as u64) as usize;
    assert_eq!(
        values.len(),
        max_len,
        "all ranks must pass equal-length vectors"
    );
    values.iter().map(|&v| comm.all_reduce_sum_u64(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    const TAG: u16 = 50;

    #[test]
    fn all_gather_orders_by_rank() {
        let report = World::new(4).run(|comm| all_gather(comm, TAG, &(comm.rank() as u64 * 100)));
        for r in &report.results {
            assert_eq!(r, &vec![0, 100, 200, 300]);
        }
    }

    #[test]
    fn all_gather_vectors() {
        let report = World::new(3).run(|comm| {
            let mine = vec![comm.rank() as u32; comm.rank() + 1];
            all_gather(comm, TAG, &mine)
        });
        for r in &report.results {
            assert_eq!(r[0], vec![0u32]);
            assert_eq!(r[1], vec![1, 1]);
            assert_eq!(r[2], vec![2, 2, 2]);
        }
    }

    #[test]
    fn gather_only_root_receives() {
        let report = World::new(4).run(|comm| gather(comm, TAG, 2, &(comm.rank() as u32)));
        for (rank, r) in report.results.iter().enumerate() {
            if rank == 2 {
                assert_eq!(r.as_ref().unwrap(), &vec![0, 1, 2, 3]);
            } else {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn vector_reduce_sums_elementwise() {
        let report = World::new(4).run(|comm| {
            let mine = vec![comm.rank() as u64, 1, 10];
            all_reduce_sum_vec(comm, &mine)
        });
        for r in &report.results {
            assert_eq!(r, &vec![6, 4, 40]); // 0+1+2+3, 4x1, 4x10
        }
    }

    #[test]
    fn all_gather_on_single_rank() {
        let report = World::new(1).run(|comm| all_gather(comm, TAG, &7u32));
        assert_eq!(report.results[0], vec![7]);
    }
}
