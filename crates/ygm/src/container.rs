//! Distributed containers in the style of `ygm::container` — the part of
//! YGM applications use for irregular data exchange when raw RPC is too
//! low-level.
//!
//! * [`DistBag`] — every rank inserts items addressed to arbitrary ranks;
//!   after a barrier each rank holds the items addressed to it. This is
//!   exactly the reverse-neighbor-exchange pattern of the paper's §4.2.
//! * [`DistMap`] — a hash-partitioned key-value map with asynchronous
//!   insert, visit-style mutation, and owner-computes semantics.
//!
//! Both are *per-rank handles* (not `Send`): they register a tag-scoped
//! handler on construction and must be constructed collectively — same tag
//! on every rank, before the first message arrives.

use crate::codec::Wire;
use crate::comm::Comm;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A distributed multiset: items are sent to explicit destination ranks
/// and become visible there after the next barrier/poll.
pub struct DistBag<T> {
    comm_tag: u16,
    items: Rc<RefCell<Vec<T>>>,
}

impl<T: Wire + 'static> DistBag<T> {
    /// Collectively create a bag using `tag`. Every rank must call this
    /// with the same tag before any sends.
    pub fn new(comm: &Comm, tag: u16) -> Self {
        let items = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&items);
        comm.register::<T, _>(tag, move |_, item| sink.borrow_mut().push(item));
        DistBag {
            comm_tag: tag,
            items,
        }
    }

    /// Asynchronously add `item` to the bag of rank `dest`.
    pub fn async_insert(&self, comm: &Comm, dest: usize, item: &T) {
        comm.async_send(dest, self.comm_tag, item);
    }

    /// Items delivered to this rank so far. Call after a barrier to see
    /// every item addressed here.
    pub fn local_items(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.items.borrow().clone()
    }

    /// Drain the local items, leaving the bag empty.
    pub fn take_local(&self) -> Vec<T> {
        std::mem::take(&mut *self.items.borrow_mut())
    }

    /// Number of items currently held locally.
    pub fn local_len(&self) -> usize {
        self.items.borrow().len()
    }

    /// Global item count (collective: all ranks must call).
    pub fn global_len(&self, comm: &Comm) -> u64 {
        comm.all_reduce_sum_u64(self.local_len() as u64)
    }
}

/// A hash-partitioned distributed map with owner-computes updates.
///
/// Keys are partitioned by `hash(key) % n_ranks` (the same discipline DNND
/// uses for vertices). `async_insert` overwrites; `async_merge` applies a
/// rank-local merge function on the owner.
/// Merge function resolving concurrent inserts to an existing key.
pub type MergeFn<V> = Box<dyn FnMut(&mut V, V)>;

pub struct DistMap<K, V> {
    insert_tag: u16,
    local: Rc<RefCell<HashMap<K, V>>>,
    merge: Rc<RefCell<Option<MergeFn<V>>>>,
}

fn key_owner<K: std::hash::Hash>(key: &K, n_ranks: usize) -> usize {
    use std::hash::Hasher;
    // FxHash-style multiply hash over the std SipHash would also work;
    // DefaultHasher keeps this dependency-free and stable per process.
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % n_ranks as u64) as usize
}

impl<K, V> DistMap<K, V>
where
    K: Wire + std::hash::Hash + Eq + Clone + 'static,
    V: Wire + Clone + 'static,
{
    /// Collectively create a map using `tag` for its insert traffic. The
    /// optional `merge` resolves keys that already exist (`None` =
    /// last-writer-wins).
    pub fn new(comm: &Comm, tag: u16, merge: Option<MergeFn<V>>) -> Self {
        let local: Rc<RefCell<HashMap<K, V>>> = Rc::new(RefCell::new(HashMap::new()));
        let merge: Rc<RefCell<Option<MergeFn<V>>>> = Rc::new(RefCell::new(merge));
        let sink = Rc::clone(&local);
        let merge_in = Rc::clone(&merge);
        comm.register::<(K, V), _>(tag, move |_, (k, v)| {
            let mut map = sink.borrow_mut();
            match map.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if let Some(m) = merge_in.borrow_mut().as_mut() {
                        m(e.get_mut(), v);
                    } else {
                        e.insert(v);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        });
        DistMap {
            insert_tag: tag,
            local,
            merge,
        }
    }

    /// The rank owning `key`.
    pub fn owner(&self, comm: &Comm, key: &K) -> usize {
        key_owner(key, comm.n_ranks())
    }

    /// Asynchronously insert/merge `(key, value)` at the owner.
    pub fn async_insert(&self, comm: &Comm, key: &K, value: &V) {
        let dest = self.owner(comm, key);
        comm.async_send(dest, self.insert_tag, &(key.clone(), value.clone()));
    }

    /// Read a locally owned key (keys owned by other ranks return `None`
    /// here even if they exist remotely — owner-computes discipline).
    pub fn get_local(&self, key: &K) -> Option<V> {
        self.local.borrow().get(key).cloned()
    }

    /// Apply `f` to every locally owned entry.
    pub fn for_each_local(&self, mut f: impl FnMut(&K, &V)) {
        for (k, v) in self.local.borrow().iter() {
            f(k, v);
        }
    }

    /// Number of locally owned keys.
    pub fn local_len(&self) -> usize {
        self.local.borrow().len()
    }

    /// Global key count (collective).
    pub fn global_len(&self, comm: &Comm) -> u64 {
        comm.all_reduce_sum_u64(self.local_len() as u64)
    }

    /// Drain the local entries.
    pub fn take_local(&self) -> HashMap<K, V> {
        let _ = &self.merge;
        std::mem::take(&mut *self.local.borrow_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    const BAG: u16 = 40;
    const MAP: u16 = 41;

    #[test]
    fn bag_routes_items_to_destinations() {
        let report = World::new(3).run(|comm| {
            let bag: DistBag<u64> = DistBag::new(comm, BAG);
            // Everyone sends (rank * 10 + dest) to every rank.
            for dest in 0..comm.n_ranks() {
                bag.async_insert(comm, dest, &((comm.rank() * 10 + dest) as u64));
            }
            comm.barrier();
            let mut got = bag.take_local();
            got.sort_unstable();
            got
        });
        assert_eq!(report.results[0], vec![0, 10, 20]);
        assert_eq!(report.results[1], vec![1, 11, 21]);
        assert_eq!(report.results[2], vec![2, 12, 22]);
    }

    #[test]
    fn bag_global_len_counts_everything() {
        let report = World::new(4).run(|comm| {
            let bag: DistBag<u32> = DistBag::new(comm, BAG);
            for i in 0..5u32 {
                bag.async_insert(comm, (i as usize) % comm.n_ranks(), &i);
            }
            comm.barrier();
            bag.global_len(comm)
        });
        assert!(report.results.iter().all(|&n| n == 20));
    }

    #[test]
    fn map_owner_is_consistent_across_ranks() {
        let report = World::new(4).run(|comm| {
            let map: DistMap<u32, u64> = DistMap::new(comm, MAP, None);
            (0..16u32).map(|k| map.owner(comm, &k)).collect::<Vec<_>>()
        });
        for r in &report.results[1..] {
            assert_eq!(r, &report.results[0]);
        }
    }

    #[test]
    fn map_insert_lands_at_owner_only() {
        let report = World::new(3).run(|comm| {
            let map: DistMap<u32, u64> = DistMap::new(comm, MAP, None);
            if comm.rank() == 0 {
                for k in 0..30u32 {
                    map.async_insert(comm, &k, &u64::from(k * 2));
                }
            }
            comm.barrier();
            let local = map.take_local();
            // Every local key must be owned here and carry the right value.
            for (k, v) in &local {
                assert_eq!(key_owner(k, comm.n_ranks()), comm.rank());
                assert_eq!(*v, u64::from(k * 2));
            }
            local.len()
        });
        let total: usize = report.results.iter().sum();
        assert_eq!(total, 30, "all keys must land exactly once");
    }

    #[test]
    fn map_merge_resolves_conflicts() {
        let report = World::new(4).run(|comm| {
            // Sum-merge: concurrent inserts to the same key accumulate.
            let map: DistMap<u32, u64> =
                DistMap::new(comm, MAP, Some(Box::new(|acc, v| *acc += v)));
            map.async_insert(comm, &7, &1);
            map.async_insert(comm, &7, &1);
            comm.barrier();
            map.get_local(&7).unwrap_or(0)
        });
        let total: u64 = report.results.iter().sum();
        assert_eq!(total, 8, "4 ranks x 2 increments must accumulate");
    }

    #[test]
    fn map_last_writer_wins_without_merge() {
        let report = World::new(2).run(|comm| {
            let map: DistMap<u32, u64> = DistMap::new(comm, MAP, None);
            if comm.rank() == 0 {
                map.async_insert(comm, &1, &10);
                comm.barrier();
                map.async_insert(comm, &1, &20);
                comm.barrier();
            } else {
                comm.barrier();
                comm.barrier();
            }
            map.get_local(&1)
        });
        let vals: Vec<u64> = report.results.iter().flatten().copied().collect();
        assert_eq!(vals, vec![20]);
    }

    #[test]
    fn for_each_local_visits_all() {
        let report = World::new(2).run(|comm| {
            let map: DistMap<u32, u64> = DistMap::new(comm, MAP, None);
            for k in 0..10u32 {
                map.async_insert(comm, &k, &1);
            }
            comm.barrier();
            let mut sum = 0;
            map.for_each_local(|_, v| sum += *v);
            sum
        });
        // Each rank inserted 10 keys; duplicates overwrite, so the global
        // distinct count is 10 and every rank contributed the same keys.
        let total: u64 = report.results.iter().sum();
        assert_eq!(total, 10);
    }
}
