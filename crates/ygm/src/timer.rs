//! Virtual-clock slot timing for open-loop workloads.
//!
//! An open-loop driver (e.g. the online serving layer) processes work in
//! fixed-duration *slots* of virtual time: arrivals are stamped on the
//! slot axis up front and the engine handles one slot per iteration.
//! When a rank finishes a slot's work before the slot's virtual duration
//! has elapsed, the rank is *idle* — a real frontend would block on its
//! timer until the next batch deadline. [`SlotTimer`] models that wait by
//! charging the idle remainder as compute time, so `sim_secs` of an
//! underloaded serving run reflects the offered duration of the workload
//! rather than just the work performed, and throughput/latency figures
//! derived from the virtual clock stay meaningful.
//!
//! SPMD contract: every rank must call [`SlotTimer::align`] at the same
//! point in each slot (it reads the shared virtual clock, which only
//! advances at barriers, so all ranks observe the same value and charge
//! the same idle wait — determinism is preserved).

use crate::comm::Comm;

/// Aligns a rank's virtual clock to fixed slot boundaries (see module doc).
#[derive(Debug, Clone)]
pub struct SlotTimer {
    /// Virtual duration of one slot, nanoseconds.
    period_ns: u64,
    /// Boundary (virtual ns) the next [`SlotTimer::align`] waits for.
    next_ns: u64,
}

impl SlotTimer {
    /// A timer ticking every `period_ns` of virtual time, starting at the
    /// current epoch's origin (first boundary at `period_ns`).
    pub fn new(period_ns: u64) -> Self {
        assert!(period_ns > 0, "slot period must be positive");
        SlotTimer {
            period_ns,
            next_ns: period_ns,
        }
    }

    /// The slot duration.
    pub fn period_ns(&self) -> u64 {
        self.period_ns
    }

    /// Charge the idle wait (if any) between the current virtual time and
    /// the next slot boundary, then advance the boundary. Returns the idle
    /// nanoseconds charged (0 when the rank is running behind the slot
    /// axis, i.e. the system is overloaded).
    pub fn align(&mut self, comm: &Comm) -> u64 {
        let now = comm.now_ns();
        let idle = self.next_ns.saturating_sub(now);
        if idle > 0 {
            comm.charge_compute(idle);
        }
        // Under overload the clock has run past several boundaries; resync
        // to the next boundary strictly after `now` so the timer never
        // schedules waits in the past.
        while self.next_ns <= now {
            self.next_ns += self.period_ns;
        }
        if idle > 0 {
            self.next_ns += self.period_ns;
        }
        idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn idle_ranks_charge_up_to_the_slot_boundary() {
        let report = World::new(2).run(|comm| {
            let mut timer = SlotTimer::new(1_000_000); // 1 ms slots
            let mut idle_total = 0u64;
            for _ in 0..4 {
                idle_total += timer.align(comm);
                comm.barrier();
            }
            idle_total
        });
        // Four empty slots: the virtual clock must have advanced by at
        // least four slot durations.
        assert!(report.sim_secs >= 4.0 * 1e-3, "sim {}", report.sim_secs);
        // Both ranks observed the same idle waits (SPMD determinism).
        assert_eq!(report.results[0], report.results[1]);
        assert!(report.results[0] >= 4_000_000 - 1_000_000);
    }

    #[test]
    fn overloaded_ranks_do_not_wait() {
        let report = World::new(1).run(|comm| {
            let mut timer = SlotTimer::new(1_000); // 1 µs slots
                                                   // Burn far more compute than one slot, then align: no idle.
            comm.charge_compute(50_000);
            comm.barrier();
            timer.align(comm)
        });
        assert_eq!(report.results[0], 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_is_rejected() {
        let _ = SlotTimer::new(0);
    }
}
