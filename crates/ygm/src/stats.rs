//! Communication statistics.
//!
//! Two families of counters are maintained:
//!
//! * **Cumulative per-tag counters** — message count and byte volume per
//!   message tag, for the whole run. These are the quantities reported in the
//!   paper's Figure 4 (Type 1 / Type 2 / Type 2+ / Type 3 messages during the
//!   neighbor-check phase).
//! * **Per-rank phase counters** — compute nanoseconds charged and
//!   remote traffic (messages/bytes in and out) since the last barrier.
//!   The virtual clock consumes these at every barrier to advance simulated
//!   time by the phase makespan (see [`crate::cost`]).
//!
//! "Remote" traffic means `source != destination`; rank-local messages are
//! counted in the per-tag totals (they are real work for the handler) but do
//! not contribute network cost, mirroring shared-memory delivery inside one
//! node.

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum number of distinct message tags a world supports.
pub const MAX_TAGS: usize = 64;

/// One tag's rank×rank traffic counts, row-major (`[src * n_ranks + dest]`).
///
/// The diagonal (rank-local sends) is included, so each tag's cells sum to
/// that tag's cumulative [`TagStats::count`] / [`TagStats::bytes`] — the
/// invariant the report layer asserts. Transport-level retransmits and
/// duplicates are *not* in the matrix, matching their exclusion from the
/// per-tag totals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TagMatrix {
    pub tag: u16,
    pub name: String,
    pub counts: Vec<u64>,
    pub bytes: Vec<u64>,
}

/// The full rank×rank×tag traffic matrix of a run; tags with no traffic
/// are omitted.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrafficMatrix {
    pub n_ranks: usize,
    pub tags: Vec<TagMatrix>,
}

/// A snapshot of the cumulative counters for one message tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TagStats {
    /// Total messages sent with this tag (local + remote).
    pub count: u64,
    /// Total payload + frame header bytes sent with this tag.
    pub bytes: u64,
    /// Messages sent to a different rank.
    pub remote_count: u64,
    /// Bytes sent to a different rank.
    pub remote_bytes: u64,
}

/// Per-rank counters accumulated between two barriers.
#[derive(Debug, Default)]
pub(crate) struct PhaseCounters {
    pub compute_ns: AtomicU64,
    pub msgs_out: AtomicU64,
    pub bytes_out: AtomicU64,
    pub msgs_in: AtomicU64,
    pub bytes_in: AtomicU64,
    /// Transport-level traffic (retransmits, duplicates) kept separate from
    /// the application counters so the critical-path analyzer can attribute
    /// retransmit time distinctly. The clock sums app + transport, so the
    /// split never changes phase totals.
    pub tr_msgs_out: AtomicU64,
    pub tr_bytes_out: AtomicU64,
    pub tr_msgs_in: AtomicU64,
    pub tr_bytes_in: AtomicU64,
    /// Virtual nanoseconds this rank lost to injected faults (frame delays,
    /// stalls) since the last barrier. Folded into the phase makespan's
    /// communication share so sim-time stays meaningful under fault runs.
    pub fault_ns: AtomicU64,
}

impl PhaseCounters {
    fn reset(&self) {
        self.compute_ns.store(0, Ordering::Relaxed);
        self.msgs_out.store(0, Ordering::Relaxed);
        self.bytes_out.store(0, Ordering::Relaxed);
        self.msgs_in.store(0, Ordering::Relaxed);
        self.bytes_in.store(0, Ordering::Relaxed);
        self.tr_msgs_out.store(0, Ordering::Relaxed);
        self.tr_bytes_out.store(0, Ordering::Relaxed);
        self.tr_msgs_in.store(0, Ordering::Relaxed);
        self.tr_bytes_in.store(0, Ordering::Relaxed);
        self.fault_ns.store(0, Ordering::Relaxed);
    }
}

/// Shared statistics block for a world. All methods are thread-safe; hot-path
/// updates are relaxed atomics.
pub struct Stats {
    n_ranks: usize,
    tag_count: Box<[CachePadded<AtomicU64>]>,
    tag_bytes: Box<[CachePadded<AtomicU64>]>,
    tag_remote_count: Box<[CachePadded<AtomicU64>]>,
    tag_remote_bytes: Box<[CachePadded<AtomicU64>]>,
    /// Rank×rank×tag traffic cells, `(tag * n + src) * n + dest`. Flat
    /// unpadded atomics: each (tag, src) row is written by one rank only,
    /// so false sharing is bounded and the `MAX_TAGS · n²` footprint stays
    /// small.
    matrix_count: Box<[AtomicU64]>,
    matrix_bytes: Box<[AtomicU64]>,
    tag_names: Mutex<HashMap<u16, String>>,
    /// One past the highest tag index ever used (sent, registered, or
    /// named). Lets full-table scans stop at the tags actually in play
    /// instead of walking all `MAX_TAGS` slots.
    tag_high_water: CachePadded<AtomicU64>,
    pub(crate) phase: Box<[CachePadded<PhaseCounters>]>,
}

fn atomic_array(n: usize) -> Box<[CachePadded<AtomicU64>]> {
    (0..n)
        .map(|_| CachePadded::new(AtomicU64::new(0)))
        .collect()
}

impl Stats {
    pub(crate) fn new(n_ranks: usize) -> Self {
        let cells = MAX_TAGS * n_ranks * n_ranks;
        Stats {
            n_ranks,
            tag_count: atomic_array(MAX_TAGS),
            tag_bytes: atomic_array(MAX_TAGS),
            tag_remote_count: atomic_array(MAX_TAGS),
            tag_remote_bytes: atomic_array(MAX_TAGS),
            matrix_count: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            matrix_bytes: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            tag_names: Mutex::new(HashMap::new()),
            tag_high_water: CachePadded::new(AtomicU64::new(0)),
            phase: (0..n_ranks)
                .map(|_| CachePadded::new(PhaseCounters::default()))
                .collect(),
        }
    }

    /// Record that `tag` is in play, bumping the high-water mark. Called at
    /// handler registration, tag naming, and on every send.
    #[inline]
    pub(crate) fn mark_tag_used(&self, tag: u16) {
        assert!(
            (tag as usize) < MAX_TAGS,
            "message tag {tag} out of range (MAX_TAGS = {MAX_TAGS})"
        );
        self.tag_high_water
            .fetch_max(tag as u64 + 1, Ordering::Relaxed);
    }

    /// One past the highest tag index in use.
    fn high_water(&self) -> usize {
        self.tag_high_water.load(Ordering::Relaxed) as usize
    }

    /// Record one sent message. `bytes` includes the frame header.
    #[inline]
    pub(crate) fn record_send(&self, tag: u16, bytes: usize, src: usize, dest: usize) {
        self.mark_tag_used(tag);
        let t = tag as usize;
        self.tag_count[t].fetch_add(1, Ordering::Relaxed);
        self.tag_bytes[t].fetch_add(bytes as u64, Ordering::Relaxed);
        let cell = (t * self.n_ranks + src) * self.n_ranks + dest;
        self.matrix_count[cell].fetch_add(1, Ordering::Relaxed);
        self.matrix_bytes[cell].fetch_add(bytes as u64, Ordering::Relaxed);
        if src != dest {
            self.tag_remote_count[t].fetch_add(1, Ordering::Relaxed);
            self.tag_remote_bytes[t].fetch_add(bytes as u64, Ordering::Relaxed);
            let ps = &self.phase[src];
            ps.msgs_out.fetch_add(1, Ordering::Relaxed);
            ps.bytes_out.fetch_add(bytes as u64, Ordering::Relaxed);
            let pd = &self.phase[dest];
            pd.msgs_in.fetch_add(1, Ordering::Relaxed);
            pd.bytes_in.fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }

    /// Charge `ns` nanoseconds of (virtual) compute time to `rank`.
    #[inline]
    pub(crate) fn charge_compute(&self, rank: usize, ns: u64) {
        self.phase[rank].compute_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record transport-level traffic (a retransmitted or duplicated frame)
    /// in the transport phase counters only: it consumes link capacity and so
    /// must charge virtual time, but it is not application traffic and must
    /// not distort the per-tag message statistics. The clock folds these into
    /// the same makespan as application traffic; keeping them in their own
    /// cells lets the critical-path analyzer attribute retransmit time.
    #[inline]
    pub(crate) fn record_transport(&self, src: usize, dest: usize, bytes: usize) {
        if src == dest {
            return;
        }
        let ps = &self.phase[src];
        ps.tr_msgs_out.fetch_add(1, Ordering::Relaxed);
        ps.tr_bytes_out.fetch_add(bytes as u64, Ordering::Relaxed);
        let pd = &self.phase[dest];
        pd.tr_msgs_in.fetch_add(1, Ordering::Relaxed);
        pd.tr_bytes_in.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Charge `ns` nanoseconds of injected-fault time (delay, stall) to
    /// `rank`'s current phase.
    #[inline]
    pub(crate) fn charge_fault(&self, rank: usize, ns: u64) {
        self.phase[rank].fault_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub(crate) fn reset_phase(&self) {
        for p in self.phase.iter() {
            p.reset();
        }
    }

    /// Give a human-readable name to a tag for reports.
    pub fn name_tag(&self, tag: u16, name: &str) {
        self.mark_tag_used(tag);
        self.tag_names.lock().insert(tag, name.to_owned());
    }

    /// The registered name of `tag`, or `"tag<N>"`.
    pub fn tag_name(&self, tag: u16) -> String {
        self.tag_names
            .lock()
            .get(&tag)
            .cloned()
            .unwrap_or_else(|| format!("tag{tag}"))
    }

    /// Cumulative counters for one tag.
    pub fn tag(&self, tag: u16) -> TagStats {
        let t = tag as usize;
        TagStats {
            count: self.tag_count[t].load(Ordering::Relaxed),
            bytes: self.tag_bytes[t].load(Ordering::Relaxed),
            remote_count: self.tag_remote_count[t].load(Ordering::Relaxed),
            remote_bytes: self.tag_remote_bytes[t].load(Ordering::Relaxed),
        }
    }

    /// Sum of all per-tag counters.
    pub fn total(&self) -> TagStats {
        let mut out = TagStats::default();
        for t in 0..self.high_water() as u16 {
            let s = self.tag(t);
            out.count += s.count;
            out.bytes += s.bytes;
            out.remote_count += s.remote_count;
            out.remote_bytes += s.remote_bytes;
        }
        out
    }

    /// All tags that have recorded at least one message, with names.
    pub fn nonzero_tags(&self) -> Vec<(u16, String, TagStats)> {
        (0..self.high_water() as u16)
            .filter_map(|t| {
                let s = self.tag(t);
                (s.count > 0).then(|| (t, self.tag_name(t), s))
            })
            .collect()
    }

    /// Snapshot the rank×rank traffic matrix for every tag that has sent
    /// at least one message.
    pub fn matrix(&self) -> TrafficMatrix {
        let n = self.n_ranks;
        let mut tags = Vec::new();
        for t in 0..self.high_water() {
            if self.tag_count[t].load(Ordering::Relaxed) == 0 {
                continue;
            }
            let base = t * n * n;
            let load = |cells: &[AtomicU64]| -> Vec<u64> {
                cells[base..base + n * n]
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect()
            };
            tags.push(TagMatrix {
                tag: t as u16,
                name: self.tag_name(t as u16),
                counts: load(&self.matrix_count),
                bytes: load(&self.matrix_bytes),
            });
        }
        TrafficMatrix { n_ranks: n, tags }
    }

    /// Reset the cumulative per-tag counters (phase counters are reset at
    /// every barrier automatically). Useful for scoping measurements to one
    /// algorithm phase, as the paper does for the neighbor-check step.
    pub fn reset_tags(&self) {
        let n = self.n_ranks;
        for t in 0..self.high_water() {
            self.tag_count[t].store(0, Ordering::Relaxed);
            self.tag_bytes[t].store(0, Ordering::Relaxed);
            self.tag_remote_count[t].store(0, Ordering::Relaxed);
            self.tag_remote_bytes[t].store(0, Ordering::Relaxed);
            for cell in &self.matrix_count[t * n * n..(t + 1) * n * n] {
                cell.store(0, Ordering::Relaxed);
            }
            for cell in &self.matrix_bytes[t * n * n..(t + 1) * n * n] {
                cell.store(0, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_send_accumulates_per_tag() {
        let s = Stats::new(4);
        s.record_send(3, 100, 0, 1);
        s.record_send(3, 50, 1, 1); // local: no remote accounting
        s.record_send(5, 10, 2, 3);
        let t3 = s.tag(3);
        assert_eq!(t3.count, 2);
        assert_eq!(t3.bytes, 150);
        assert_eq!(t3.remote_count, 1);
        assert_eq!(t3.remote_bytes, 100);
        let total = s.total();
        assert_eq!(total.count, 3);
        assert_eq!(total.bytes, 160);
    }

    #[test]
    fn phase_counters_track_in_and_out() {
        let s = Stats::new(2);
        s.record_send(0, 64, 0, 1);
        assert_eq!(s.phase[0].msgs_out.load(Ordering::Relaxed), 1);
        assert_eq!(s.phase[0].bytes_out.load(Ordering::Relaxed), 64);
        assert_eq!(s.phase[1].msgs_in.load(Ordering::Relaxed), 1);
        assert_eq!(s.phase[1].bytes_in.load(Ordering::Relaxed), 64);
        s.reset_phase();
        assert_eq!(s.phase[0].msgs_out.load(Ordering::Relaxed), 0);
        assert_eq!(s.phase[1].bytes_in.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn transport_traffic_lands_in_its_own_cells() {
        let s = Stats::new(2);
        s.record_send(0, 64, 0, 1);
        s.record_transport(0, 1, 100); // retransmit of the same frame
        s.record_transport(1, 1, 999); // local: ignored entirely
        assert_eq!(s.phase[0].msgs_out.load(Ordering::Relaxed), 1);
        assert_eq!(s.phase[0].bytes_out.load(Ordering::Relaxed), 64);
        assert_eq!(s.phase[0].tr_msgs_out.load(Ordering::Relaxed), 1);
        assert_eq!(s.phase[0].tr_bytes_out.load(Ordering::Relaxed), 100);
        assert_eq!(s.phase[1].tr_msgs_in.load(Ordering::Relaxed), 1);
        assert_eq!(s.phase[1].tr_bytes_in.load(Ordering::Relaxed), 100);
        s.reset_phase();
        assert_eq!(s.phase[0].tr_msgs_out.load(Ordering::Relaxed), 0);
        assert_eq!(s.phase[1].tr_bytes_in.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn tag_names_default_and_custom() {
        let s = Stats::new(1);
        assert_eq!(s.tag_name(7), "tag7");
        s.name_tag(7, "type1_check");
        assert_eq!(s.tag_name(7), "type1_check");
    }

    #[test]
    fn nonzero_tags_lists_only_used() {
        let s = Stats::new(2);
        s.record_send(1, 8, 0, 1);
        s.record_send(4, 8, 0, 1);
        let tags: Vec<u16> = s.nonzero_tags().into_iter().map(|(t, _, _)| t).collect();
        assert_eq!(tags, vec![1, 4]);
    }

    #[test]
    fn reset_tags_clears_cumulative() {
        let s = Stats::new(2);
        s.record_send(1, 8, 0, 1);
        s.reset_tags();
        assert_eq!(s.total().count, 0);
    }

    #[test]
    fn high_water_bounds_scans() {
        let s = Stats::new(2);
        assert_eq!(s.high_water(), 0);
        s.record_send(5, 8, 0, 1);
        assert_eq!(s.high_water(), 6);
        s.name_tag(9, "late"); // naming alone also raises the mark
        assert_eq!(s.high_water(), 10);
        s.record_send(2, 8, 0, 1);
        assert_eq!(s.high_water(), 10); // monotone
        assert_eq!(s.total().count, 2);
        s.reset_tags();
        assert_eq!(s.total().count, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_tag_is_a_hard_error() {
        let s = Stats::new(1);
        s.record_send(MAX_TAGS as u16, 8, 0, 0);
    }

    #[test]
    fn matrix_cells_track_edges_including_diagonal() {
        let s = Stats::new(3);
        s.record_send(2, 100, 0, 1);
        s.record_send(2, 40, 0, 1);
        s.record_send(2, 7, 1, 1); // local send lands on the diagonal
        s.record_send(4, 9, 2, 0);
        let m = s.matrix();
        assert_eq!(m.n_ranks, 3);
        assert_eq!(m.tags.len(), 2);
        let t2 = &m.tags[0];
        assert_eq!(t2.tag, 2);
        assert_eq!(t2.counts, vec![0, 2, 0, 0, 1, 0, 0, 0, 0]);
        assert_eq!(t2.bytes, vec![0, 140, 0, 0, 7, 0, 0, 0, 0]);
        assert_eq!(m.tags[1].counts[2 * 3], 1); // tag 4: (src 2, dest 0)
    }

    #[test]
    fn matrix_sums_equal_tag_totals() {
        // The invariant the report layer relies on: per-tag cell sums equal
        // the cumulative tag counters, and transport traffic stays out.
        let s = Stats::new(2);
        s.record_send(1, 100, 0, 1);
        s.record_send(1, 50, 1, 0);
        s.record_send(1, 25, 0, 0);
        s.record_transport(0, 1, 999); // retransmit: phase counters only
        let m = s.matrix();
        let t1 = &m.tags[0];
        assert_eq!(t1.counts.iter().sum::<u64>(), s.tag(1).count);
        assert_eq!(t1.bytes.iter().sum::<u64>(), s.tag(1).bytes);
        assert_eq!(t1.bytes.iter().sum::<u64>(), 175);
        // Off-diagonal cells sum to the remote counters.
        let remote_bytes: u64 = (0..2)
            .flat_map(|s_| (0..2).map(move |d| (s_, d)))
            .filter(|(s_, d)| s_ != d)
            .map(|(s_, d)| t1.bytes[s_ * 2 + d])
            .sum();
        assert_eq!(remote_bytes, s.tag(1).remote_bytes);
    }

    #[test]
    fn reset_tags_clears_matrix() {
        let s = Stats::new(2);
        s.record_send(1, 8, 0, 1);
        s.reset_tags();
        assert!(s.matrix().tags.is_empty());
        s.record_send(1, 8, 1, 0);
        assert_eq!(s.matrix().tags[0].counts, vec![0, 0, 1, 0]);
    }

    #[test]
    fn compute_charge_accumulates() {
        let s = Stats::new(2);
        s.charge_compute(1, 500);
        s.charge_compute(1, 250);
        assert_eq!(s.phase[1].compute_ns.load(Ordering::Relaxed), 750);
    }
}
