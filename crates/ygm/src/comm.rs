//! Per-rank communicator: asynchronous fire-and-forget RPC, buffered sends,
//! polling dispatch, and barrier with global termination detection.
//!
//! Semantics follow YGM:
//!
//! * [`Comm::async_send`] enqueues a message for a destination rank and
//!   returns immediately. Messages are buffered per destination and flushed
//!   when the buffer exceeds the world's flush threshold (or at a barrier).
//! * The registered handler for the message's tag runs on the destination
//!   rank at an unspecified later time — during one of its [`Comm::poll`] or
//!   [`Comm::barrier`] calls. Handlers may themselves send messages
//!   (fire-and-forget RPC chains, e.g. the paper's Type 1 -> Type 2+ -> Type 3
//!   neighbor-check cascade).
//! * [`Comm::barrier`] returns only when **all** ranks have reached it and
//!   every message in the world — including messages sent by handlers while
//!   draining — has been processed (termination detection via global
//!   sent/processed counters).
//!
//! The execution model is SPMD: every rank must execute the same sequence of
//! collective operations (`barrier`, `all_reduce_*`, `broadcast_*`).
//! Handlers must not call `poll`, `barrier`, or `register` (enforced by a
//! `RefCell` borrow panic in debug and release).

use crate::codec::{TraceCtx, Wire};
use crate::cost::CostModel;
use crate::fault::FaultCounters;
use crate::stats::Stats;
use crate::world::Shared;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel::Receiver;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Frame header: `u16` tag + `u32` payload length. Every message on the
/// wire is accounted as header + payload bytes.
pub const FRAME_HEADER_BYTES: usize = 6;

/// Non-quiescent barrier rounds tolerated under fault injection before the
/// world aborts with the offending sim seed. Converts a termination-
/// detection hang (the worst possible test outcome) into a diagnosable,
/// replayable failure.
const STORM_ROUNDS: u64 = 10_000;

/// One flushed aggregation buffer in flight. `seq` numbers frames per
/// directed edge `(src -> dest)`; under fault injection the reliable-
/// delivery layer uses it for acks and receive-side dedup. The fault-free
/// transport sends `seq = 0` and ignores it.
#[derive(Debug, Clone)]
pub(crate) struct Packet {
    pub(crate) src: usize,
    pub(crate) seq: u64,
    pub(crate) attempt: u32,
    /// Causal context minted when the frame was flushed. Every retransmit
    /// and injected duplicate carries the *same* context, so redelivery can
    /// never forge a new causal edge.
    pub(crate) ctx: TraceCtx,
    pub(crate) bytes: Bytes,
}

/// A sent-but-unacknowledged frame retained for retransmission.
struct UnackedFrame {
    bytes: Bytes,
    /// Original causal context, reused verbatim on every retransmission.
    ctx: TraceCtx,
    attempt: u32,
    /// Epoch at which the frame is retransmitted if still unacked.
    next_retry: u64,
    /// Whether the attempt cap was reached (frame now delivered fault-free).
    forced: bool,
}

/// Stable identity shared by the `ph:"s"` and `ph:"f"` halves of one
/// cross-rank flow arrow: tag, origin, destination, and the origin-edge
/// flush sequence packed into one u64. Both sides compute it independently
/// from the frame's [`TraceCtx`], so pairing needs no extra wire traffic.
fn flow_id(tag: u16, ctx: TraceCtx, dest: usize) -> u64 {
    ((tag as u64) << 48)
        | ((ctx.origin as u64 & 0xFF) << 40)
        | ((dest as u64 & 0xFF) << 32)
        | (ctx.send_seq & 0xFFFF_FFFF)
}

/// Iterate the set bits of a per-destination tag bitset as tag ids.
fn tag_bits(mut mask: u64) -> impl Iterator<Item = u16> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let t = mask.trailing_zeros() as u16;
            mask &= mask - 1;
            Some(t)
        }
    })
}

/// Per-rank reliable-delivery state. Only exists under a fault plan; all
/// fields are indexed by destination rank where applicable.
struct FaultLocal {
    /// Next frame sequence number per destination edge.
    next_seq: Vec<u64>,
    /// Unacked frames per destination, by sequence number.
    unacked: Vec<BTreeMap<u64, UnackedFrame>>,
    /// Received frames held back by delay injection: `(release_epoch,
    /// packet)`.
    inbox: Vec<(u64, Packet)>,
    /// Sends per destination edge (drives flush-jitter decisions).
    send_count: Vec<u64>,
    /// Current sync epoch. Advanced once per non-quiescent barrier round;
    /// lock-step across ranks because rounds are collectively synchronized.
    epoch: u64,
    /// Epoch whose stall has already been counted (counters + virtual
    /// time), so repeated polls in one epoch charge once.
    stall_counted: Option<u64>,
}

impl FaultLocal {
    fn new(n: usize) -> Self {
        FaultLocal {
            next_seq: vec![0; n],
            unacked: (0..n).map(|_| BTreeMap::new()).collect(),
            inbox: Vec::new(),
            send_count: vec![0; n],
            epoch: 0,
            stall_counted: None,
        }
    }
}

type Handler = Box<dyn FnMut(&Comm, Bytes)>;

/// A rank's handle to the world. Not `Send`: each rank owns exactly one,
/// created by [`crate::World::run`].
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
    rx: Receiver<Packet>,
    out: RefCell<Vec<BytesMut>>,
    handlers: RefCell<Vec<Option<Handler>>>,
    fault: Option<RefCell<FaultLocal>>,
    /// Completed-barrier count: the parent span id stamped into every
    /// [`TraceCtx`] this rank mints. SPMD makes it identical across ranks
    /// at any collective point, and deterministic run to run.
    phase_idx: Cell<u64>,
    /// Next logical flush sequence per destination edge (flow identity;
    /// independent of the reliable-delivery `seq`, which restarts
    /// numbering games under retransmission).
    flow_seq: RefCell<Vec<u64>>,
    /// Bitset of tags buffered per destination since its last flush, so
    /// one flow arrow is drawn per (frame, tag) rather than per message.
    pending_tags: RefCell<Vec<u64>>,
}

impl Comm {
    pub(crate) fn new(rank: usize, shared: Arc<Shared>, rx: Receiver<Packet>) -> Self {
        let n = shared.n_ranks;
        let fault = shared
            .fault
            .as_ref()
            .map(|_| RefCell::new(FaultLocal::new(n)));
        Comm {
            rank,
            shared,
            rx,
            out: RefCell::new((0..n).map(|_| BytesMut::new()).collect()),
            handlers: RefCell::new((0..crate::stats::MAX_TAGS).map(|_| None).collect()),
            fault,
            phase_idx: Cell::new(0),
            flow_seq: RefCell::new(vec![0; n]),
            pending_tags: RefCell::new(vec![0; n]),
        }
    }

    /// This rank's id in `0..n_ranks`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn n_ranks(&self) -> usize {
        self.shared.n_ranks
    }

    /// Register the handler invoked on this rank for messages sent with
    /// `tag`. Must be called before any message with that tag can arrive
    /// (i.e. before the first barrier that delivers one), and never from
    /// inside a handler. Replaces any previous handler for the tag.
    pub fn register<M, F>(&self, tag: u16, mut f: F)
    where
        M: Wire,
        F: FnMut(&Comm, M) + 'static,
    {
        // Registration is where an out-of-range tag first becomes an
        // error; `mark_tag_used` rejects it with a real panic (not just a
        // debug assertion) before any message can be sent.
        self.shared.stats.mark_tag_used(tag);
        let shim: Handler = Box::new(move |comm, bytes| {
            let mut b = bytes;
            let msg = M::decode(&mut b);
            debug_assert!(b.is_empty(), "handler for tag did not consume payload");
            f(comm, msg);
        });
        self.handlers.borrow_mut()[tag as usize] = Some(shim);
    }

    /// [`Self::register`] plus a human-readable tag name in one step, so
    /// every handler registration site self-documents in reports and
    /// traces.
    pub fn register_named<M, F>(&self, tag: u16, name: &str, f: F)
    where
        M: Wire,
        F: FnMut(&Comm, M) + 'static,
    {
        self.name_tag(tag, name);
        self.register(tag, f);
    }

    /// Attach a display name to `tag` in the world statistics (any rank may
    /// call; last write wins). Also names the tag's flow arrows in trace
    /// exports.
    pub fn name_tag(&self, tag: u16, name: &str) {
        self.shared.stats.name_tag(tag, name);
        if let Some(t) = self.tracer() {
            t.name_tag(tag as u64, name);
        }
    }

    // ---- Tracing ---------------------------------------------------------
    //
    // All helpers are single-branch no-ops when the world has no tracer.
    // Span timestamps pair the wall clock (measured by the tracer) with the
    // virtual simulation clock sampled here.

    /// The world's tracer, if one was attached.
    #[inline]
    pub fn tracer(&self) -> Option<&obs::Tracer> {
        self.shared.tracer.as_deref()
    }

    /// Open a span named `name` on this rank's track.
    #[inline]
    pub fn trace_begin(&self, name: &'static str) {
        if let Some(t) = self.tracer() {
            t.begin(self.rank, name, self.now_ns());
        }
    }

    /// Open a span carrying a numeric payload (iteration index, batch id).
    #[inline]
    pub fn trace_begin_arg(&self, name: &'static str, arg: u64) {
        if let Some(t) = self.tracer() {
            t.begin_arg(self.rank, name, self.now_ns(), arg);
        }
    }

    /// Close the most recent unmatched span named `name` on this rank.
    #[inline]
    pub fn trace_end(&self, name: &'static str) {
        if let Some(t) = self.tracer() {
            t.end(self.rank, name, self.now_ns());
        }
    }

    /// Record a zero-duration point event on this rank's track.
    #[inline]
    pub fn trace_instant(&self, name: &'static str, arg: u64) {
        if let Some(t) = self.tracer() {
            t.instant(self.rank, name, self.now_ns(), arg);
        }
    }

    /// RAII span: opens now, closes when the guard drops.
    #[inline]
    pub fn trace_span(&self, name: &'static str) -> TraceSpan<'_> {
        self.trace_begin(name);
        TraceSpan { comm: self, name }
    }

    /// Record the origin half (`ph:"s"`) of a causal flow arrow on this
    /// rank's track. `id` pairs it with a later [`Self::trace_flow_recv`]
    /// carrying the same id; `tag` labels the arrow. No-op when untraced
    /// or when flow recording is disabled (`--trace-flows=off`).
    #[inline]
    pub fn trace_flow_send(&self, name: &'static str, id: u64, tag: u64) {
        if let Some(t) = self.tracer() {
            if t.flows_enabled() {
                t.flow_send(self.rank, name, self.now_ns(), id, tag);
            }
        }
    }

    /// Record the terminating half (`ph:"f"`) of a causal flow arrow on
    /// this rank's track.
    #[inline]
    pub fn trace_flow_recv(&self, name: &'static str, id: u64, tag: u64) {
        if let Some(t) = self.tracer() {
            if t.flows_enabled() {
                t.flow_recv(self.rank, name, self.now_ns(), id, tag);
            }
        }
    }

    /// Open an async (nestable) span (`ph:"b"`) on this rank's track. `id`
    /// pairs it with the matching [`Self::trace_async_end`]; overlapping
    /// spans are fine. Gated with flow recording — async spans share the
    /// per-query id namespace with flow arrows and roughly double serving
    /// trace volume the same way.
    #[inline]
    pub fn trace_async_begin(&self, name: &'static str, id: u64) {
        if let Some(t) = self.tracer() {
            if t.flows_enabled() {
                t.async_begin(self.rank, name, self.now_ns(), id);
            }
        }
    }

    /// Close the async span opened with the same `(name, id)` (`ph:"e"`).
    #[inline]
    pub fn trace_async_end(&self, name: &'static str, id: u64) {
        if let Some(t) = self.tracer() {
            if t.flows_enabled() {
                t.async_end(self.rank, name, self.now_ns(), id);
            }
        }
    }

    /// Completed-barrier count on this rank — the parent span id stamped
    /// into outgoing trace contexts. Identical across ranks at any
    /// collective point (SPMD).
    #[inline]
    pub fn phase_index(&self) -> u64 {
        self.phase_idx.get()
    }

    /// Record one sample into the named histogram (no-op untraced).
    #[inline]
    pub fn trace_hist(&self, name: &str, value: u64) {
        if let Some(t) = self.tracer() {
            t.hist(name).record(value);
        }
    }

    /// Record one point of the named continuous-telemetry gauge on this
    /// rank's track, stamped with the current virtual time (no-op
    /// untraced). Event-driven probes (per-iteration heap updates, the
    /// termination counter) call this directly; runtime gauges are
    /// sampled automatically at barrier entry, paced by the tracer's
    /// virtual-time interval.
    #[inline]
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(t) = self.tracer() {
            t.series().record(self.rank, name, self.now_ns(), value);
        }
    }

    /// Paced runtime-gauge sampling: send-buffer occupancy (total and per
    /// destination) and, under a fault plan, the reliable-delivery
    /// windows. Runs at barrier entry — the one point where this rank's
    /// buffers still hold the phase's residual messages and the virtual
    /// timestamp is stable (identical run-to-run), so the sampled series
    /// are deterministic under a fixed seed.
    fn sample_gauges(&self) {
        let Some(t) = self.tracer() else { return };
        let now = self.now_ns();
        if !t.series().should_sample(self.rank, now) {
            return;
        }
        let series = t.series();
        let total: u64 = {
            let out = self.out.borrow();
            for (dest, buf) in out.iter().enumerate() {
                series.record(
                    self.rank,
                    &format!("send_buf_bytes.d{dest}"),
                    now,
                    buf.len() as f64,
                );
            }
            out.iter().map(|b| b.len() as u64).sum()
        };
        series.record(self.rank, "send_buf_bytes", now, total as f64);
        if let Some(fl) = &self.fault {
            let fl = fl.borrow();
            let unacked: usize = fl.unacked.iter().map(BTreeMap::len).sum();
            series.record(self.rank, "unacked_frames", now, unacked as f64);
            series.record(self.rank, "delay_inbox_frames", now, fl.inbox.len() as f64);
        }
    }

    /// Fire-and-forget: enqueue `msg` for `dest`'s handler registered under
    /// `tag`. Returns immediately. Self-sends are legal and are delivered
    /// through the same queue (handled at the next poll/barrier).
    pub fn async_send<M: Wire>(&self, dest: usize, tag: u16, msg: &M) {
        debug_assert!(dest < self.n_ranks(), "destination rank out of range");
        let sz = msg.wire_size();
        let mut flush_now = {
            let mut out = self.out.borrow_mut();
            let buf = &mut out[dest];
            buf.reserve(FRAME_HEADER_BYTES + sz);
            buf.put_u16_le(tag);
            buf.put_u32_le(sz as u32);
            let before = buf.len();
            msg.encode(buf);
            debug_assert_eq!(buf.len() - before, sz, "wire_size mismatch for tag {tag}");
            buf.len() >= self.shared.flush_threshold
        };
        self.pending_tags.borrow_mut()[dest] |= 1u64 << (tag as u32 & 63);
        self.shared
            .stats
            .record_send(tag, FRAME_HEADER_BYTES + sz, self.rank, dest);
        self.shared.sent.fetch_add(1, Ordering::SeqCst);
        if let (Some(fs), Some(fl)) = (&self.shared.fault, &self.fault) {
            // Flush jitter: randomly force an early flush, perturbing frame
            // boundaries and therefore handler-batch interleavings.
            let nth = {
                let mut fl = fl.borrow_mut();
                let nth = fl.send_count[dest];
                fl.send_count[dest] += 1;
                nth
            };
            if !flush_now && fs.plan.jitter_flush(self.rank, dest, nth) {
                FaultCounters::bump(&fs.counters.jittered_flushes);
                flush_now = true;
            }
        }
        if flush_now {
            self.flush(dest);
        }
    }

    /// Flush one destination buffer into its channel. This is the one
    /// place a [`TraceCtx`] is minted: retransmits and duplicates reuse
    /// the context frozen here.
    fn flush(&self, dest: usize) {
        let (frame, tags) = {
            let mut out = self.out.borrow_mut();
            if out[dest].is_empty() {
                return;
            }
            let tags = std::mem::take(&mut self.pending_tags.borrow_mut()[dest]);
            (out[dest].split().freeze(), tags)
        };
        let ctx = {
            let mut seqs = self.flow_seq.borrow_mut();
            let ctx = TraceCtx {
                origin: self.rank as u32,
                parent_span: self.phase_idx.get(),
                send_seq: seqs[dest],
            };
            seqs[dest] += 1;
            ctx
        };
        if let Some(t) = self.tracer() {
            let now = self.now_ns();
            t.instant(self.rank, "flush", now, frame.len() as u64);
            t.hist("flush_bytes").record(frame.len() as u64);
            if t.flows_enabled() {
                // One origin event per distinct tag in the frame; the
                // receiver recomputes the same ids from the carried ctx.
                for tag in tag_bits(tags) {
                    t.flow_send(self.rank, "flow", now, flow_id(tag, ctx, dest), tag as u64);
                }
            }
        }
        match &self.fault {
            None => {
                // Channel is unbounded; send only fails if the world is
                // shutting down, which cannot happen while any Comm is alive.
                self.shared.senders[dest]
                    .send(Packet {
                        src: self.rank,
                        seq: 0,
                        attempt: 0,
                        ctx,
                        bytes: frame,
                    })
                    .expect("world channel closed while rank alive");
            }
            Some(fl) => {
                // Reliable delivery: number the frame on this edge and
                // retain it until the destination's delivered-state (the
                // shared-memory ack) covers it.
                let seq = {
                    let mut fl = fl.borrow_mut();
                    let seq = fl.next_seq[dest];
                    fl.next_seq[dest] += 1;
                    // Grace of two epochs: a fault-free frame flushed at
                    // epoch e is dispatched by the receiver in round e+1
                    // and its ack is visible to the pump at e+2, so a
                    // clean run never retransmits spuriously.
                    let next_retry = fl.epoch + 2;
                    fl.unacked[dest].insert(
                        seq,
                        UnackedFrame {
                            bytes: frame.clone(),
                            ctx,
                            attempt: 0,
                            next_retry,
                            forced: false,
                        },
                    );
                    seq
                };
                self.transmit(dest, seq, frame, ctx, 0);
            }
        }
    }

    /// Put one delivery attempt of frame `(self.rank -> dest, seq)` on the
    /// wire, applying drop and duplication faults. Fault mode only. `ctx`
    /// is the frame's original mint-time context, whatever the attempt.
    fn transmit(&self, dest: usize, seq: u64, bytes: Bytes, ctx: TraceCtx, attempt: u32) {
        let fs = self.shared.fault.as_ref().expect("transmit without faults");
        if fs.plan.drop_frame(self.rank, dest, seq, attempt) {
            FaultCounters::bump(&fs.counters.dropped);
            return; // the retransmit pump will try again next epoch
        }
        let pkt = Packet {
            src: self.rank,
            seq,
            attempt,
            ctx,
            bytes,
        };
        if fs.plan.duplicate_frame(self.rank, dest, seq, attempt) {
            FaultCounters::bump(&fs.counters.duplicated);
            // The duplicate consumes real link capacity: charge transport-
            // level (phase) counters without touching application per-tag
            // stats.
            self.shared
                .stats
                .record_transport(self.rank, dest, pkt.bytes.len());
            self.shared.senders[dest]
                .send(pkt.clone())
                .expect("world channel closed while rank alive");
        }
        self.shared.senders[dest]
            .send(pkt)
            .expect("world channel closed while rank alive");
    }

    /// Handle one received packet. Fault mode: dedup against the edge's
    /// delivered-state, possibly park it in the delay inbox; otherwise
    /// dispatch. Returns messages handled.
    fn receive_packet(&self, pkt: Packet) -> usize {
        let Some(fs) = &self.shared.fault else {
            let ctx = pkt.ctx;
            return self.dispatch_block(pkt.bytes, Some(ctx));
        };
        let edge = fs.edge(pkt.src, self.rank, self.n_ranks());
        if edge.is_delivered(pkt.seq) {
            // Injected duplicate or a retransmit that raced its ack. Without
            // this check the frame's messages would be handled twice AND
            // `processed` would overrun `sent`, wedging termination
            // detection (see the regression test in tests/fault_injection.rs).
            FaultCounters::bump(&fs.counters.dedup_discards);
            return 0;
        }
        let delay = fs
            .plan
            .delay_epochs(pkt.src, self.rank, pkt.seq, pkt.attempt);
        if delay > 0 {
            FaultCounters::bump(&fs.counters.delayed);
            // The frame sits on the (virtual) wire for `delay` epochs;
            // charge the receiving rank so sim-time reflects the fault.
            self.shared
                .stats
                .charge_fault(self.rank, self.shared.cost.delay_cost_ns(delay));
            let fl = self.fault.as_ref().unwrap();
            let mut fl = fl.borrow_mut();
            let release = fl.epoch + delay as u64;
            fl.inbox.push((release, pkt));
            return 0;
        }
        self.deliver_packet(pkt)
    }

    /// Mark a packet delivered on its edge and dispatch its messages.
    /// This is the exactly-once point under faults — dedup upstream
    /// guarantees one delivery per `(edge, seq)`, so the flow-recv events
    /// emitted by the dispatch pair 1:1 with mint-time flow-send events.
    fn deliver_packet(&self, pkt: Packet) -> usize {
        let fs = self.shared.fault.as_ref().expect("deliver without faults");
        fs.edge(pkt.src, self.rank, self.n_ranks())
            .mark_delivered(pkt.seq);
        let ctx = pkt.ctx;
        self.dispatch_block(pkt.bytes, Some(ctx))
    }

    /// Drive the reliable-delivery layer one step: release matured delayed
    /// frames, drop acked frames from the retransmit window, and retransmit
    /// overdue ones with capped exponential backoff (in epochs). Returns
    /// messages handled. Fault mode only; no-op otherwise.
    fn pump_transport(&self) -> usize {
        let (Some(fs), Some(fl_cell)) = (&self.shared.fault, &self.fault) else {
            return 0;
        };
        let n = self.n_ranks();
        let epoch = fl_cell.borrow().epoch;
        let mut handled = 0;

        // Release delayed frames whose epoch has come (re-checking dedup:
        // a retransmit may have been delivered while this copy was parked).
        loop {
            let pkt = {
                let mut fl = fl_cell.borrow_mut();
                match fl.inbox.iter().position(|(release, _)| *release <= epoch) {
                    Some(i) => fl.inbox.swap_remove(i).1,
                    None => break,
                }
            };
            if fs.edge(pkt.src, self.rank, n).is_delivered(pkt.seq) {
                FaultCounters::bump(&fs.counters.dedup_discards);
            } else {
                handled += self.deliver_packet(pkt);
            }
        }

        // Ack scan + retransmission. Retransmits reuse the stored
        // mint-time TraceCtx — never a fresh one.
        let mut resend: Vec<(usize, u64, Bytes, TraceCtx, u32)> = Vec::new();
        {
            let mut fl = fl_cell.borrow_mut();
            for dest in 0..n {
                let edge = fs.edge(self.rank, dest, n);
                fl.unacked[dest].retain(|seq, _| !edge.is_delivered(*seq));
                for (seq, frame) in fl.unacked[dest].iter_mut() {
                    if frame.next_retry > epoch {
                        continue;
                    }
                    frame.attempt += 1;
                    if frame.attempt >= fs.plan.profile.max_faulty_attempts && !frame.forced {
                        frame.forced = true;
                        FaultCounters::bump(&fs.counters.forced_deliveries);
                    }
                    // Backoff 2, 4, 8, 8, ... epochs (same two-epoch floor
                    // as the initial send, so in-flight attempts are not
                    // re-sent before their ack can possibly arrive).
                    frame.next_retry = epoch + (1u64 << frame.attempt.min(3)).max(2);
                    resend.push((dest, *seq, frame.bytes.clone(), frame.ctx, frame.attempt));
                }
            }
        }
        for (dest, seq, bytes, ctx, attempt) in resend {
            FaultCounters::bump(&fs.counters.retransmits);
            self.shared
                .stats
                .record_transport(self.rank, dest, bytes.len());
            self.transmit(dest, seq, bytes, ctx, attempt);
        }
        handled
    }

    /// Whether stall injection sidelines this rank for the current epoch
    /// (it flushes its own sends but dispatches nothing). Charged once per
    /// stalled epoch.
    fn stalled_this_epoch(&self) -> bool {
        let (Some(fs), Some(fl_cell)) = (&self.shared.fault, &self.fault) else {
            return false;
        };
        let mut fl = fl_cell.borrow_mut();
        let epoch = fl.epoch;
        if !fs.plan.stall(self.rank, epoch) {
            return false;
        }
        if fl.stall_counted != Some(epoch) {
            fl.stall_counted = Some(epoch);
            FaultCounters::bump(&fs.counters.stalls);
            self.shared
                .stats
                .charge_fault(self.rank, self.shared.cost.delay_cost_ns(1));
        }
        true
    }

    /// Advance this rank's sync epoch by one. Called once per non-quiescent
    /// barrier round; rounds are collectively synchronized, so every rank's
    /// epoch agrees without shared state.
    fn bump_epoch(&self) {
        if let Some(fl) = &self.fault {
            fl.borrow_mut().epoch += 1;
        }
    }

    /// Flush all destination buffers.
    pub fn flush_all(&self) {
        for dest in 0..self.n_ranks() {
            self.flush(dest);
        }
    }

    /// Decode and dispatch every frame in `block`, returning frames handled.
    /// `ctx` is the block's carried causal context (None only for blocks
    /// that never crossed the transport); flow-recv events are emitted per
    /// distinct tag, inside the dispatch span, exactly once per delivery.
    fn dispatch_block(&self, mut block: Bytes, ctx: Option<TraceCtx>) -> usize {
        let traced = self.tracer().is_some();
        if traced {
            self.trace_begin_arg("dispatch", block.remaining() as u64);
        }
        let mut n = 0;
        let mut tags_seen: u64 = 0;
        while block.has_remaining() {
            let tag = block.get_u16_le();
            tags_seen |= 1u64 << (tag as u32 & 63);
            let len = block.get_u32_le() as usize;
            let payload = block.split_to(len);
            {
                let mut handlers = self.handlers.borrow_mut();
                let slot = handlers[tag as usize]
                    .as_mut()
                    .unwrap_or_else(|| panic!("no handler registered for tag {tag}"));
                // SAFETY-free re-entrancy note: the handler receives `&Comm`
                // and may async_send (touches `out`, not `handlers`). A
                // handler calling poll/barrier/register would re-borrow
                // `handlers` and panic, which is the documented contract.
                slot(self, payload);
            }
            self.shared.processed.fetch_add(1, Ordering::SeqCst);
            n += 1;
        }
        if traced {
            if let (Some(t), Some(ctx)) = (self.tracer(), ctx) {
                if t.flows_enabled() {
                    let now = self.now_ns();
                    for tag in tag_bits(tags_seen) {
                        t.flow_recv(
                            self.rank,
                            "flow",
                            now,
                            flow_id(tag, ctx, self.rank),
                            tag as u64,
                        );
                    }
                }
            }
            self.trace_end("dispatch");
        }
        n
    }

    /// Process every message currently queued for this rank (including
    /// messages generated by handlers during this call). Returns the number
    /// of messages handled. Never blocks.
    pub fn poll(&self) -> usize {
        if self.stalled_this_epoch() {
            // A stalled rank still flushes its own buffered sends (so peers
            // are not starved) but dispatches nothing this epoch.
            self.flush_all();
            return 0;
        }
        let mut total = 0;
        loop {
            self.flush_all();
            let mut got = self.pump_transport();
            while let Ok(pkt) = self.rx.try_recv() {
                got += self.receive_packet(pkt);
            }
            total += got;
            if got == 0 {
                return total;
            }
        }
    }

    /// Global barrier with termination detection: returns once all ranks
    /// have entered the barrier and no message is buffered, in flight, or
    /// being handled anywhere in the world. Advances the virtual clock by
    /// the completed phase's makespan.
    pub fn barrier(&self) {
        self.sample_gauges();
        self.trace_begin("barrier");
        let mut rounds: u64 = 0;
        loop {
            self.poll();
            self.shared.barrier.wait();
            // Between the two waits no rank sends or processes, so the
            // counters are stable and every rank reads the same values.
            let quiescent = self.shared.sent.load(Ordering::SeqCst)
                == self.shared.processed.load(Ordering::SeqCst);
            let leader = self.shared.barrier.wait();
            if quiescent {
                if leader {
                    self.shared.clock.advance_phase(
                        &self.shared.stats,
                        &self.shared.cost,
                        self.shared.n_ranks,
                    );
                    self.shared.stats.reset_phase();
                }
                self.shared.barrier.wait();
                // The leader advanced the clock, so this span's virtual
                // duration is exactly the completed phase's makespan.
                self.trace_end("barrier");
                self.phase_idx.set(self.phase_idx.get() + 1);
                return;
            }
            // Non-quiescent round: messages are still parked in delay
            // inboxes or retransmit windows. Advance the sync epoch (lock-
            // step on every rank — all ranks observed the same counters)
            // so delays mature and backoffs fire, then go around again.
            rounds += 1;
            self.bump_epoch();
            if let Some(fs) = &self.shared.fault {
                if rounds >= STORM_ROUNDS {
                    panic!(
                        "fault-sim storm: barrier failed to quiesce after {rounds} rounds; \
                         replay with --sim-seed {}",
                        fs.plan.sim_seed
                    );
                }
            }
        }
    }

    /// Charge `ns` nanoseconds of virtual compute time to this rank's
    /// current phase.
    #[inline]
    pub fn charge_compute(&self, ns: u64) {
        self.shared.stats.charge_compute(self.rank, ns);
    }

    /// Charge the virtual cost of one distance evaluation over `dim`-element
    /// vectors.
    #[inline]
    pub fn charge_distance(&self, dim: usize) {
        self.charge_compute(self.shared.cost.distance_cost_ns(dim));
    }

    /// The world's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.shared.cost
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.shared.clock.now_ns()
    }

    /// World-wide communication statistics.
    pub fn stats(&self) -> &Stats {
        &self.shared.stats
    }

    /// Running count of reliable-delivery retransmits world-wide; always 0
    /// without a fault plan. Stable (and identical on every rank) when read
    /// right after a barrier, so SPMD code may branch on it — the serving
    /// layer uses the per-window delta to charge retransmit recovery
    /// against query latency.
    pub fn fault_retransmits(&self) -> u64 {
        self.shared
            .fault
            .as_ref()
            .map_or(0, |f| f.counters.retransmits.load(Ordering::SeqCst))
    }

    /// Whether this world runs under a fault plan with a hostile profile.
    pub fn fault_active(&self) -> bool {
        self.shared
            .fault
            .as_ref()
            .is_some_and(|f| f.plan.profile.is_hostile())
    }

    // ---- Collectives -----------------------------------------------------
    //
    // Small fixed-size collectives use shared-memory scratch cells rather
    // than the message path (a real MPI implementation would use optimized
    // collectives too). They charge the virtual clock a log2(P) latency.
    // SPMD: all ranks must call the same collective at the same point.
    //
    // The leader's scratch reset and clock advance happen *between* the
    // last two waits, so by the time any rank returns the clock is stable:
    // virtual timestamps sampled anywhere outside a collective are
    // identical run to run (required for deterministic trace export).

    /// Sum `v` across all ranks; every rank receives the total.
    pub fn all_reduce_sum_u64(&self, v: u64) -> u64 {
        let s = &self.shared;
        self.trace_begin("all_reduce");
        s.barrier.wait(); // entry
        s.reduce_u64.fetch_add(v, Ordering::SeqCst);
        s.barrier.wait(); // all contributions in
        let r = s.reduce_u64.load(Ordering::SeqCst);
        let leader = s.barrier.wait(); // all reads done
        if leader {
            s.reduce_u64.store(0, Ordering::SeqCst);
            s.clock.advance_collective(&s.cost, s.n_ranks);
        }
        s.barrier.wait(); // retire: reset + clock advance visible everywhere
        self.trace_end("all_reduce");
        r
    }

    /// Max of `v` across all ranks.
    pub fn all_reduce_max_u64(&self, v: u64) -> u64 {
        let s = &self.shared;
        self.trace_begin("all_reduce");
        s.barrier.wait();
        s.reduce_u64.fetch_max(v, Ordering::SeqCst);
        s.barrier.wait();
        let r = s.reduce_u64.load(Ordering::SeqCst);
        let leader = s.barrier.wait();
        if leader {
            s.reduce_u64.store(0, Ordering::SeqCst);
            s.clock.advance_collective(&s.cost, s.n_ranks);
        }
        s.barrier.wait();
        self.trace_end("all_reduce");
        r
    }

    /// Sum `v` (f64) across all ranks.
    pub fn all_reduce_sum_f64(&self, v: f64) -> f64 {
        let s = &self.shared;
        self.trace_begin("all_reduce");
        s.barrier.wait();
        *s.reduce_f64.lock() += v;
        s.barrier.wait();
        let r = *s.reduce_f64.lock();
        let leader = s.barrier.wait();
        if leader {
            *s.reduce_f64.lock() = 0.0;
            s.clock.advance_collective(&s.cost, s.n_ranks);
        }
        s.barrier.wait();
        self.trace_end("all_reduce");
        r
    }

    /// Broadcast `data` from `root` to all ranks.
    pub fn broadcast_bytes(&self, root: usize, data: Option<Bytes>) -> Bytes {
        let s = &self.shared;
        self.trace_begin("broadcast");
        s.barrier.wait();
        if self.rank == root {
            *s.bcast.lock() = Some(data.expect("root must supply broadcast payload"));
        }
        s.barrier.wait();
        let r = s.bcast.lock().clone().expect("broadcast payload missing");
        let leader = s.barrier.wait();
        if leader {
            *s.bcast.lock() = None;
            s.clock.advance_collective(&s.cost, s.n_ranks);
        }
        s.barrier.wait();
        self.trace_end("broadcast");
        r
    }

    /// Broadcast a `Wire` value from `root`.
    pub fn broadcast<M: Wire>(&self, root: usize, value: Option<&M>) -> M {
        let payload = value.map(crate::codec::encode_to_bytes);
        let bytes = self.broadcast_bytes(root, payload);
        crate::codec::decode_from_bytes(bytes)
    }
}

/// RAII guard returned by [`Comm::trace_span`]; closes the span (with the
/// virtual clock sampled at drop time) when it goes out of scope.
pub struct TraceSpan<'a> {
    comm: &'a Comm,
    name: &'static str,
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        self.comm.trace_end(self.name);
    }
}
