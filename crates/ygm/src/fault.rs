//! Deterministic fault injection for the simulated runtime.
//!
//! A real YGM deployment at the paper's scale (32 nodes x 128 ranks over
//! Omni-Path) sees dropped and duplicated MPI-level frames (retried by the
//! transport), stragglers, and wildly reordered handler execution. The
//! in-process runtime normally delivers every aggregation buffer exactly
//! once, in order, instantly — so the happy path is all the engine is ever
//! tested against. This module turns the simulated transport hostile, in the
//! style of FoundationDB's deterministic simulation testing:
//!
//! * **Frame faults** — each flushed aggregation buffer (a *frame*) can be
//!   dropped, duplicated, or delayed by a bounded number of sync epochs.
//! * **Rank stalls** — a rank can skip dispatching for a poll round,
//!   creating stragglers and reordering across ranks.
//! * **Flush jitter** — sends can trigger an early flush, perturbing frame
//!   boundaries and thus handler-batch interleavings.
//!
//! Every decision is a pure function of one **sim seed** and the fault
//! coordinates — `(source, destination, frame sequence number, delivery
//! attempt)` for frame faults, `(rank, epoch)` for stalls — drawn through a
//! ChaCha generator seeded per decision. Determinism therefore does **not**
//! depend on thread scheduling: re-running with the same `--sim-seed`
//! replays the exact same injected fault for the exact same frame, which is
//! what makes a failing seed a complete bug report.
//!
//! On top of the injected faults, [`crate::Comm`] runs a reliable-delivery
//! protocol (per-destination sequence numbers, shared-memory acks,
//! epoch-based retransmission with capped exponential backoff, receive-side
//! dedup) so that every application message is still processed *exactly
//! once* and the termination-detection barrier still completes. See
//! `DESIGN.md` §"Fault model & simulation testing".

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Probabilities and bounds for one class of hostile run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Per-attempt probability that a frame is dropped in transit.
    pub drop: f64,
    /// Probability that a delivered frame arrives twice.
    pub dup: f64,
    /// Probability that a delivered frame is delayed.
    pub delay: f64,
    /// Maximum delay, in sync epochs (uniform in `1..=max_delay_epochs`).
    pub max_delay_epochs: u32,
    /// Per-(rank, epoch) probability that the rank skips one dispatch
    /// round (a transient straggler).
    pub stall: f64,
    /// Probability that an `async_send` forces an early flush, perturbing
    /// frame boundaries.
    pub flush_jitter: f64,
    /// Delivery attempts that may be dropped before the transport forces
    /// the frame through fault-free. Bounds barrier spin time; retries have
    /// already charged virtual time by then.
    pub max_faulty_attempts: u32,
}

impl FaultProfile {
    /// No faults at all — the reliable-delivery layer still runs (sequence
    /// numbers, acks, dedup), so `clean` exercises the protocol machinery
    /// itself without injected adversity.
    pub fn clean() -> Self {
        FaultProfile {
            drop: 0.0,
            dup: 0.0,
            delay: 0.0,
            max_delay_epochs: 0,
            stall: 0.0,
            flush_jitter: 0.0,
            max_faulty_attempts: 0,
        }
    }

    /// Mild adversity: occasional drops, dups, short delays.
    pub fn lossy() -> Self {
        FaultProfile {
            drop: 0.05,
            dup: 0.02,
            delay: 0.10,
            max_delay_epochs: 3,
            stall: 0.02,
            flush_jitter: 0.05,
            max_faulty_attempts: 8,
        }
    }

    /// Heavy adversity: the acceptance bar from the issue — up to 10%
    /// drop plus reorder, delay, stalls, and jittered flushes.
    pub fn stormy() -> Self {
        FaultProfile {
            drop: 0.10,
            dup: 0.05,
            delay: 0.25,
            max_delay_epochs: 6,
            stall: 0.05,
            flush_jitter: 0.15,
            max_faulty_attempts: 12,
        }
    }

    /// Profile by CLI name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "clean" => Some(Self::clean()),
            "lossy" => Some(Self::lossy()),
            "stormy" => Some(Self::stormy()),
            _ => None,
        }
    }

    /// The canonical profile names accepted by [`Self::by_name`].
    pub const NAMES: [&'static str; 3] = ["clean", "lossy", "stormy"];

    /// The canonical name of this profile, or `"custom"`.
    pub fn name(&self) -> &'static str {
        for n in Self::NAMES {
            if Self::by_name(n).unwrap() == *self {
                return n;
            }
        }
        "custom"
    }

    /// Whether this profile can actually injure traffic.
    pub fn is_hostile(&self) -> bool {
        self.drop > 0.0
            || self.dup > 0.0
            || self.delay > 0.0
            || self.stall > 0.0
            || self.flush_jitter > 0.0
    }
}

/// A fault profile bound to the sim seed that drives every decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// The fault classes and rates to inject.
    pub profile: FaultProfile,
    /// Seed of the decision PRF. The **only** source of randomness: two
    /// runs with equal plans inject identical faults on identical frames.
    pub sim_seed: u64,
}

impl FaultPlan {
    /// Bind `profile` to `sim_seed`.
    pub fn new(profile: FaultProfile, sim_seed: u64) -> Self {
        FaultPlan { profile, sim_seed }
    }

    // Domain-separation salts for the decision PRF.
    const SALT_DROP: u64 = 0x44_52_4F_50; // "DROP"
    const SALT_DUP: u64 = 0x44_55_50; // "DUP"
    const SALT_DELAY: u64 = 0x44_4C_41_59; // "DLAY"
    const SALT_STALL: u64 = 0x53_54_41_4C; // "STAL"
    const SALT_JITTER: u64 = 0x4A_49_54; // "JIT"

    /// One ChaCha generator per decision, keyed by `(sim_seed, salt,
    /// coordinates)`. Schedule-independent by construction.
    fn rng(&self, salt: u64, a: u64, b: u64, c: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(mix(self.sim_seed, salt, a, b, c))
    }

    /// Should delivery attempt `attempt` of frame `(src, dest, seq)` be
    /// dropped? Always `false` once `attempt` reaches the profile's
    /// `max_faulty_attempts`, so retransmission terminates.
    pub fn drop_frame(&self, src: usize, dest: usize, seq: u64, attempt: u32) -> bool {
        if self.profile.drop <= 0.0 || attempt >= self.profile.max_faulty_attempts {
            return false;
        }
        self.rng(Self::SALT_DROP, edge(src, dest), seq, attempt as u64)
            .gen_bool(self.profile.drop)
    }

    /// Should this delivery of frame `(src, dest, seq)` arrive twice?
    pub fn duplicate_frame(&self, src: usize, dest: usize, seq: u64, attempt: u32) -> bool {
        self.profile.dup > 0.0
            && self
                .rng(Self::SALT_DUP, edge(src, dest), seq, attempt as u64)
                .gen_bool(self.profile.dup)
    }

    /// Epochs to hold frame `(src, dest, seq)` before delivery (0 = now).
    pub fn delay_epochs(&self, src: usize, dest: usize, seq: u64, attempt: u32) -> u32 {
        if self.profile.delay <= 0.0 || self.profile.max_delay_epochs == 0 {
            return 0;
        }
        let mut r = self.rng(Self::SALT_DELAY, edge(src, dest), seq, attempt as u64);
        if r.gen_bool(self.profile.delay) {
            r.gen_range(1..=self.profile.max_delay_epochs)
        } else {
            0
        }
    }

    /// Does `rank` stall (skip one dispatch round) at `epoch`?
    pub fn stall(&self, rank: usize, epoch: u64) -> bool {
        self.profile.stall > 0.0
            && self
                .rng(Self::SALT_STALL, rank as u64, epoch, 0)
                .gen_bool(self.profile.stall)
    }

    /// Does the `nth` send on edge `(src, dest)` force an early flush?
    pub fn jitter_flush(&self, src: usize, dest: usize, nth: u64) -> bool {
        self.profile.flush_jitter > 0.0
            && self
                .rng(Self::SALT_JITTER, edge(src, dest), nth, 0)
                .gen_bool(self.profile.flush_jitter)
    }
}

#[inline]
fn edge(src: usize, dest: usize) -> u64 {
    ((src as u64) << 32) | dest as u64
}

/// SplitMix64-style avalanche over the decision coordinates.
///
/// Public so other deterministic plans (e.g. the serving layer's arrival
/// and shedding PRFs) can key independent `ChaCha8Rng` streams on their
/// own `(seed, salt, coordinates)` tuples with the same guarantee: every
/// decision is a pure function of its coordinates, independent of
/// schedule, rank count, and evaluation order.
pub fn mix(seed: u64, salt: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut h = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for v in [a, b, c] {
        h ^= v
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(h << 6)
            .wrapping_add(h >> 2);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    h
}

/// World-wide fault and reliable-delivery counters (atomics; snapshot with
/// [`FaultCounters::report`]).
#[derive(Debug, Default)]
pub struct FaultCounters {
    /// Frames dropped in transit (each later retransmitted).
    pub dropped: AtomicU64,
    /// Extra frame copies injected.
    pub duplicated: AtomicU64,
    /// Frames held past their send epoch.
    pub delayed: AtomicU64,
    /// Rank-rounds skipped by stall injection.
    pub stalls: AtomicU64,
    /// Early flushes forced by jitter.
    pub jittered_flushes: AtomicU64,
    /// Frames retransmitted by the reliable-delivery layer.
    pub retransmits: AtomicU64,
    /// Received frames discarded as already-delivered (dups and
    /// retransmit/ack races).
    pub dedup_discards: AtomicU64,
    /// Frames that exhausted `max_faulty_attempts` and were forced
    /// through fault-free.
    pub forced_deliveries: AtomicU64,
}

impl FaultCounters {
    /// Immutable snapshot for reports.
    pub fn report(&self, plan: &FaultPlan) -> FaultReport {
        FaultReport {
            sim_seed: plan.sim_seed,
            profile: plan.profile.name().to_string(),
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            jittered_flushes: self.jittered_flushes.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            dedup_discards: self.dedup_discards.load(Ordering::Relaxed),
            forced_deliveries: self.forced_deliveries.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Snapshot of a run's injected faults and reliable-delivery work, surfaced
/// through [`crate::WorldReport::faults`] and the obs `RunReport`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Seed that replays this run's fault schedule.
    pub sim_seed: u64,
    /// Profile name (`clean` / `lossy` / `stormy` / `custom`).
    pub profile: String,
    /// Frames dropped in transit.
    pub dropped: u64,
    /// Extra frame copies injected.
    pub duplicated: u64,
    /// Frames delayed past their send epoch.
    pub delayed: u64,
    /// Rank-rounds skipped by stall injection.
    pub stalls: u64,
    /// Early flushes forced by jitter.
    pub jittered_flushes: u64,
    /// Frames retransmitted by the reliable-delivery layer.
    pub retransmits: u64,
    /// Received frames discarded as already delivered.
    pub dedup_discards: u64,
    /// Frames forced through after exhausting faulty attempts.
    pub forced_deliveries: u64,
}

impl FaultReport {
    /// Total injected fault events (excludes the recovery-side counters).
    pub fn injected(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed + self.stalls + self.jittered_flushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_resolve_by_name() {
        for name in FaultProfile::NAMES {
            let p = FaultProfile::by_name(name).unwrap();
            assert_eq!(p.name(), name);
        }
        assert!(FaultProfile::by_name("chaotic-evil").is_none());
        assert!(!FaultProfile::clean().is_hostile());
        assert!(FaultProfile::lossy().is_hostile());
        assert!(FaultProfile::stormy().drop >= 0.10);
    }

    #[test]
    fn decisions_are_deterministic_in_plan() {
        let a = FaultPlan::new(FaultProfile::stormy(), 42);
        let b = FaultPlan::new(FaultProfile::stormy(), 42);
        for seq in 0..200u64 {
            assert_eq!(a.drop_frame(0, 1, seq, 0), b.drop_frame(0, 1, seq, 0));
            assert_eq!(
                a.duplicate_frame(2, 3, seq, 1),
                b.duplicate_frame(2, 3, seq, 1)
            );
            assert_eq!(a.delay_epochs(1, 0, seq, 0), b.delay_epochs(1, 0, seq, 0));
            assert_eq!(a.stall(3, seq), b.stall(3, seq));
            assert_eq!(a.jitter_flush(0, 2, seq), b.jitter_flush(0, 2, seq));
        }
    }

    #[test]
    fn seeds_decorrelate_decisions() {
        // Different sim seeds must give different fault schedules.
        let a = FaultPlan::new(FaultProfile::stormy(), 1);
        let b = FaultPlan::new(FaultProfile::stormy(), 2);
        let diff = (0..500u64)
            .filter(|&s| a.drop_frame(0, 1, s, 0) != b.drop_frame(0, 1, s, 0))
            .count();
        assert!(diff > 10, "schedules nearly identical across seeds: {diff}");
    }

    #[test]
    fn drop_rate_is_roughly_calibrated() {
        let plan = FaultPlan::new(FaultProfile::stormy(), 7);
        let n = 4000u64;
        let drops = (0..n).filter(|&s| plan.drop_frame(0, 1, s, 0)).count() as f64;
        let rate = drops / n as f64;
        assert!(
            (rate - 0.10).abs() < 0.03,
            "observed drop rate {rate} far from 0.10"
        );
    }

    #[test]
    fn attempts_past_cap_never_drop() {
        let plan = FaultPlan::new(FaultProfile::stormy(), 9);
        let cap = plan.profile.max_faulty_attempts;
        for seq in 0..500u64 {
            assert!(!plan.drop_frame(0, 1, seq, cap));
            assert!(!plan.drop_frame(0, 1, seq, cap + 3));
        }
    }

    #[test]
    fn delays_respect_bound() {
        let plan = FaultPlan::new(FaultProfile::stormy(), 11);
        let max = plan.profile.max_delay_epochs;
        let mut saw_delay = false;
        for seq in 0..500u64 {
            let d = plan.delay_epochs(1, 2, seq, 0);
            assert!(d <= max);
            saw_delay |= d > 0;
        }
        assert!(saw_delay, "stormy profile never delayed anything");
    }

    #[test]
    fn clean_profile_injects_nothing() {
        let plan = FaultPlan::new(FaultProfile::clean(), 1234);
        for seq in 0..200u64 {
            assert!(!plan.drop_frame(0, 1, seq, 0));
            assert!(!plan.duplicate_frame(0, 1, seq, 0));
            assert_eq!(plan.delay_epochs(0, 1, seq, 0), 0);
            assert!(!plan.stall(0, seq));
            assert!(!plan.jitter_flush(0, 1, seq));
        }
    }

    #[test]
    fn report_snapshot_carries_identity() {
        let plan = FaultPlan::new(FaultProfile::lossy(), 99);
        let c = FaultCounters::default();
        c.dropped.store(3, Ordering::Relaxed);
        c.retransmits.store(4, Ordering::Relaxed);
        let r = c.report(&plan);
        assert_eq!(r.sim_seed, 99);
        assert_eq!(r.profile, "lossy");
        assert_eq!(r.dropped, 3);
        assert_eq!(r.retransmits, 4);
        assert_eq!(r.injected(), 3);
    }
}
