//! Binary wire codec for messages exchanged between ranks.
//!
//! YGM serializes C++ lambdas and their captured arguments into flat byte
//! buffers. Rust closures are not serializable, so this simulated runtime
//! splits the concept: the *function* part is a handler registered under a
//! `Tag` on every rank (see [`crate::comm::Comm::register`]), and the
//! *argument* part is a value implementing [`Wire`], encoded with the
//! little-endian codec in this module.
//!
//! The codec is deliberately simple and allocation-free on the encode path:
//! values append themselves to a [`BytesMut`] and decode themselves from a
//! shrinking byte slice. Variable-length collections are prefixed with a
//! `u32` element count.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A value that can be encoded to and decoded from the rank-to-rank wire
/// format.
///
/// Implementations must round-trip: `decode(encode(x)) == x` and consume
/// exactly the bytes they produced. The runtime frames each message, so
/// implementations never need to encode their own total length.
pub trait Wire: Sized {
    /// Append the encoded representation of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decode a value from the front of `buf`, consuming exactly the bytes
    /// produced by [`Wire::encode`].
    fn decode(buf: &mut Bytes) -> Self;
    /// Exact number of bytes [`Wire::encode`] will append. Used to charge the
    /// virtual network clock and to pre-reserve buffer space.
    fn wire_size(&self) -> usize;
}

macro_rules! impl_wire_prim {
    ($t:ty, $put:ident, $get:ident, $sz:expr) => {
        impl Wire for $t {
            #[inline]
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
            #[inline]
            fn decode(buf: &mut Bytes) -> Self {
                buf.$get()
            }
            #[inline]
            fn wire_size(&self) -> usize {
                $sz
            }
        }
    };
}

impl_wire_prim!(u8, put_u8, get_u8, 1);
impl_wire_prim!(u16, put_u16_le, get_u16_le, 2);
impl_wire_prim!(u32, put_u32_le, get_u32_le, 4);
impl_wire_prim!(u64, put_u64_le, get_u64_le, 8);
impl_wire_prim!(i32, put_i32_le, get_i32_le, 4);
impl_wire_prim!(i64, put_i64_le, get_i64_le, 8);
impl_wire_prim!(f32, put_f32_le, get_f32_le, 4);
impl_wire_prim!(f64, put_f64_le, get_f64_le, 8);

impl Wire for bool {
    #[inline]
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    #[inline]
    fn decode(buf: &mut Bytes) -> Self {
        buf.get_u8() != 0
    }
    #[inline]
    fn wire_size(&self) -> usize {
        1
    }
}

impl Wire for usize {
    #[inline]
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self as u64);
    }
    #[inline]
    fn decode(buf: &mut Bytes) -> Self {
        buf.get_u64_le() as usize
    }
    #[inline]
    fn wire_size(&self) -> usize {
        8
    }
}

impl Wire for () {
    #[inline]
    fn encode(&self, _buf: &mut BytesMut) {}
    #[inline]
    fn decode(_buf: &mut Bytes) -> Self {}
    #[inline]
    fn wire_size(&self) -> usize {
        0
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Self {
        let n = buf.get_u32_le() as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(buf));
        }
        out
    }
    fn wire_size(&self) -> usize {
        4 + self.iter().map(Wire::wire_size).sum::<usize>()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
            None => buf.put_u8(0),
        }
    }
    fn decode(buf: &mut Bytes) -> Self {
        if buf.get_u8() != 0 {
            Some(T::decode(buf))
        } else {
            None
        }
    }
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::wire_size)
    }
}

macro_rules! impl_wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, buf: &mut BytesMut) {
                $(self.$idx.encode(buf);)+
            }
            fn decode(buf: &mut Bytes) -> Self {
                ($($name::decode(buf),)+)
            }
            fn wire_size(&self) -> usize {
                0 $(+ self.$idx.wire_size())+
            }
        }
    };
}

impl_wire_tuple!(A: 0);
impl_wire_tuple!(A: 0, B: 1);
impl_wire_tuple!(A: 0, B: 1, C: 2);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Compact causal trace context carried on every simulated wire frame.
///
/// Minted exactly once, when a send buffer is flushed into a frame; the
/// reliable-delivery layer stores the context alongside the frame bytes and
/// reuses it verbatim on retransmits and duplicates, so a redelivered frame
/// can never forge a new causal edge. `wire_size` is what an MPI transport
/// would pay per frame for the context; the simulation keeps the context
/// out of the byte counters so enabling tracing never perturbs the virtual
/// clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Rank that flushed the frame.
    pub origin: u32,
    /// Span id of the sender's enclosing barrier-to-barrier phase (the
    /// phase counter at flush time — deterministic under SPMD).
    pub parent_span: u64,
    /// Logical per-(origin, dest) flush sequence number, assigned at mint
    /// time and frozen across retransmits.
    pub send_seq: u64,
}

impl Wire for TraceCtx {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.origin);
        buf.put_u64_le(self.parent_span);
        buf.put_u64_le(self.send_seq);
    }
    fn decode(buf: &mut Bytes) -> Self {
        TraceCtx {
            origin: buf.get_u32_le(),
            parent_span: buf.get_u64_le(),
            send_seq: buf.get_u64_le(),
        }
    }
    fn wire_size(&self) -> usize {
        20
    }
}

/// Encode `value` into a fresh buffer. Mostly useful in tests.
pub fn encode_to_bytes<T: Wire>(value: &T) -> Bytes {
    let mut buf = BytesMut::with_capacity(value.wire_size());
    value.encode(&mut buf);
    buf.freeze()
}

/// Decode a value from `bytes`, asserting full consumption.
pub fn decode_from_bytes<T: Wire>(bytes: Bytes) -> T {
    let mut b = bytes;
    let v = T::decode(&mut b);
    debug_assert!(b.is_empty(), "codec did not consume the full buffer");
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let enc = encode_to_bytes(&v);
        assert_eq!(enc.len(), v.wire_size(), "wire_size must match encoding");
        let dec: T = decode_from_bytes(enc);
        assert_eq!(dec, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(-42i32);
        round_trip(i64::MIN);
        round_trip(3.5f32);
        round_trip(-0.25f64);
        round_trip(true);
        round_trip(false);
        round_trip(12345usize);
        round_trip(());
    }

    #[test]
    fn vec_round_trip() {
        round_trip(Vec::<u32>::new());
        round_trip(vec![1u32, 2, 3, u32::MAX]);
        round_trip(vec![1.0f32, -2.5, f32::INFINITY]);
        round_trip(vec![vec![1u8, 2], vec![], vec![3]]);
    }

    #[test]
    fn option_round_trip() {
        round_trip(Option::<u32>::None);
        round_trip(Some(9u64));
        round_trip(Some(vec![1u16, 2]));
    }

    #[test]
    fn tuple_round_trip() {
        round_trip((1u32,));
        round_trip((1u32, 2.5f32));
        round_trip((1u32, 2.5f32, true));
        round_trip((1u32, 2.5f32, true, vec![7u8]));
        round_trip((1u32, 2u32, 3u32, 4u32, 5u32));
        round_trip((1u32, 2u32, 3u32, 4u32, 5u32, 6u32));
    }

    #[test]
    fn nan_distance_encodes() {
        // NaN != NaN so compare bit patterns instead of using round_trip.
        let enc = encode_to_bytes(&f32::NAN);
        let dec: f32 = decode_from_bytes(enc);
        assert!(dec.is_nan());
    }

    #[test]
    fn wire_size_matches_for_nested() {
        let v = vec![(1u32, vec![1.0f32, 2.0]), (2u32, vec![])];
        assert_eq!(encode_to_bytes(&v).len(), v.wire_size());
    }

    #[test]
    fn trace_ctx_round_trips() {
        round_trip(TraceCtx::default());
        round_trip(TraceCtx {
            origin: 3,
            parent_span: 17,
            send_seq: u64::MAX,
        });
    }

    #[test]
    fn trace_ctx_wire_size_is_fixed() {
        // The frame-header cost an MPI transport would pay per frame.
        assert_eq!(TraceCtx::default().wire_size(), 20);
        let ctx = TraceCtx {
            origin: 1,
            parent_span: 2,
            send_seq: 3,
        };
        assert_eq!(encode_to_bytes(&ctx).len(), 20);
    }
}
