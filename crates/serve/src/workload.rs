//! Deterministic open-loop workload generation.
//!
//! Arrivals follow a Poisson process at `offered_qps`: inter-arrival gaps
//! are exponential draws stamped onto the virtual clock, each one produced
//! by an independent ChaCha stream keyed with [`ygm::fault::mix`] on
//! `(serve_seed, salt, arrival index)` — the same pure-PRF construction
//! the fault injector uses for its schedules, so the workload is a pure
//! function of the seed: no generator state threads through the run, and
//! any arrival can be recomputed in isolation.
//!
//! Query *content* is drawn from a pool set: with probability
//! `hot_fraction` an arrival picks uniformly from the first `hot_pool`
//! pool entries (the skewed hot set that makes the result cache earn its
//! keep), otherwise it walks the cold remainder round-robin.

use crate::params::ServeParams;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ygm::fault::mix;

/// Salt for the inter-arrival gap stream.
const SALT_GAP: u64 = 0x05EB_FE01;
/// Salt for the hot/cold pool pick stream.
const SALT_POOL: u64 = 0x05EB_FE02;

/// One generated query arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival index (0-based, also the query's stable id and seed key).
    pub idx: u64,
    /// Slot on the serving clock in which the query arrives.
    pub slot: u64,
    /// Index into the query pool set for the query vector.
    pub pool_id: usize,
}

/// The full arrival schedule of a run, sorted by slot (then index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalPlan {
    pub arrivals: Vec<Arrival>,
}

impl ArrivalPlan {
    /// Generate the schedule for `params` against a query pool of
    /// `pool_len` vectors. Pure function of
    /// `(params.serve_seed, params.offered_qps, params.n_arrivals,
    /// params.hot_fraction, params.hot_pool, params.slot_ns, pool_len)`.
    pub fn generate(params: &ServeParams, pool_len: usize) -> ArrivalPlan {
        assert!(pool_len >= 1, "query pool must not be empty");
        let mean_gap_ns = 1e9 / params.offered_qps;
        let hot_pool = params.hot_pool.min(pool_len);
        let mut t_ns = 0.0f64;
        let mut cold_cursor = 0usize;
        let arrivals = (0..params.n_arrivals as u64)
            .map(|i| {
                let mut gap_rng =
                    ChaCha8Rng::seed_from_u64(mix(params.serve_seed, SALT_GAP, i, 0, 0));
                // Inverse-CDF exponential draw; 1-u keeps ln's argument
                // away from zero.
                let u: f64 = gap_rng.gen_range(0.0..1.0);
                t_ns += -(1.0 - u).ln() * mean_gap_ns;
                let mut pool_rng =
                    ChaCha8Rng::seed_from_u64(mix(params.serve_seed, SALT_POOL, i, 0, 0));
                let pool_id = if pool_rng.gen_bool(params.hot_fraction) {
                    pool_rng.gen_range(0..hot_pool)
                } else {
                    let id = hot_pool + cold_cursor;
                    cold_cursor = (cold_cursor + 1) % pool_len.saturating_sub(hot_pool).max(1);
                    id.min(pool_len - 1)
                };
                Arrival {
                    idx: i,
                    slot: t_ns as u64 / params.slot_ns,
                    pool_id,
                }
            })
            .collect();
        ArrivalPlan { arrivals }
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The last arrival's slot (0 for an empty plan).
    pub fn last_slot(&self) -> u64 {
        self.arrivals.last().map_or(0, |a| a.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(qps: f64, n: usize) -> ServeParams {
        ServeParams::new(5)
            .offered_qps(qps)
            .n_arrivals(n)
            .hot_set(0.4, 4)
    }

    #[test]
    fn same_seed_same_plan() {
        let p = params(5_000.0, 300);
        let a = ArrivalPlan::generate(&p, 64);
        let b = ArrivalPlan::generate(&p, 64);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = params(5_000.0, 300);
        let a = ArrivalPlan::generate(&p, 64);
        let b = ArrivalPlan::generate(&p.clone().serve_seed(99), 64);
        assert_ne!(a, b);
    }

    #[test]
    fn slots_are_monotone_and_rate_is_plausible() {
        let p = params(2_000.0, 1_000); // 2k qps, 1 ms slots => ~2/slot
        let plan = ArrivalPlan::generate(&p, 64);
        assert!(plan
            .arrivals
            .windows(2)
            .all(|w| w[0].slot <= w[1].slot && w[0].idx < w[1].idx));
        // 1000 arrivals at 2 per slot should span roughly 500 slots; allow
        // a generous band for exponential variance.
        let span = plan.last_slot();
        assert!(
            (250..=1_000).contains(&span),
            "implausible span {span} slots"
        );
    }

    #[test]
    fn hot_fraction_skews_pool_ids() {
        let p = params(2_000.0, 2_000);
        let plan = ArrivalPlan::generate(&p, 64);
        let hot = plan.arrivals.iter().filter(|a| a.pool_id < 4).count();
        let frac = hot as f64 / plan.len() as f64;
        assert!(
            (0.3..0.5).contains(&frac),
            "hot fraction {frac} far from configured 0.4"
        );
        // Every pool id stays in range.
        assert!(plan.arrivals.iter().all(|a| a.pool_id < 64));
    }

    #[test]
    fn pool_smaller_than_hot_pool_still_in_range() {
        let p = params(1_000.0, 100).hot_set(0.9, 1_000);
        let plan = ArrivalPlan::generate(&p, 3);
        assert!(plan.arrivals.iter().all(|a| a.pool_id < 3));
    }
}
