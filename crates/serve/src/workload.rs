//! Deterministic workload generation: the composable scenario DSL.
//!
//! A scenario ([`WorkloadSpec`]) composes four orthogonal pieces, every
//! one a pure PRF of the serve seed:
//!
//! - an **arrival process** — open-loop Poisson at `offered_qps` (arrivals
//!   keep coming during saturation, measuring server-perceived latency),
//!   or closed-loop (`N` clients with exponential think time, the next
//!   query issued only when the previous completes — the shape that
//!   exposes coordinated omission);
//! - **rate modulators** — a diurnal sine and flash-crowd burst windows.
//!   Open-loop arrivals realize them by thinning a homogeneous Poisson
//!   stream at the peak rate; closed-loop clients scale their think time
//!   down by the same multiplier;
//! - a **query-pool distribution** — the legacy hot/cold mix
//!   (`hot_fraction`/`hot_pool`) or a Zipfian over the whole pool
//!   (`zipf:s=1.1` concentrates traffic on a few hot keys, which is what
//!   makes the quantized-key LRU earn its keep);
//! - **tenant classes** — named priority classes with integer-percent
//!   shares; each arrival (open loop) or client (closed loop) is assigned
//!   a class by a weighted PRF draw, and the engine enforces per-class
//!   queue quotas at admission.
//!
//! Inter-arrival gaps are exponential draws stamped onto the virtual
//! clock, each produced by an independent ChaCha stream keyed with
//! [`ygm::fault::mix`] on `(serve_seed, salt, index)` — the same pure-PRF
//! construction the fault injector uses for its schedules, so the
//! workload is a pure function of the seed: no generator state threads
//! through the run, and any arrival can be recomputed in isolation.

use crate::params::ServeParams;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ygm::fault::mix;

/// Salt for the inter-arrival gap stream (per open-loop candidate).
pub const SALT_GAP: u64 = 0x05EB_FE01;
/// Salt for the query-pool pick stream (hot/cold and Zipfian draws).
pub const SALT_POOL: u64 = 0x05EB_FE02;
// 0x05EB_FE03 is the forensics tie-break salt (serve::forensics).
/// Salt for the thinning accept/reject stream of modulated arrivals.
pub const SALT_THIN: u64 = 0x05EB_FE04;
/// Salt for tenant-class assignment (keyed by arrival index for the open
/// loop, by client id for the closed loop).
pub const SALT_TENANT: u64 = 0x05EB_FE05;
/// Salt for closed-loop client think-time draws.
pub const SALT_THINK: u64 = 0x05EB_FE06;
/// Salt for filtered-traffic draws: whether an arrival carries a
/// predicate, and the rotation offset of its synthetic bucket range.
pub const SALT_FILTER: u64 = 0x05EB_FE07;
/// Salt for the mutation schedule (insert vector picks and delete
/// target draws, keyed by slot).
pub const SALT_MUTATE: u64 = 0x05EB_FE08;
/// Salt for the compaction-phase scheduling draw of the vdb serving loop
/// (the slot-boundary delay after the tombstone watermark trips).
pub const SALT_COMPACT: u64 = 0x05EB_FE09;

/// Thinning gives up after this many candidates per accepted arrival, so
/// a degenerate spec (acceptance probability driven toward zero) errors
/// cleanly instead of spinning.
const MAX_THIN_CANDIDATES_PER_ARRIVAL: u64 = 65_536;

/// How arrivals are issued.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ArrivalProcess {
    /// Open-loop Poisson at `offered_qps`: the generator never waits for
    /// the server, so saturation shows up as queueing and shedding.
    #[default]
    Open,
    /// Closed-loop: `clients` concurrent clients, each issuing its next
    /// query one exponential think time (mean `think_ns` of virtual time)
    /// after its previous query completes; shed queries are retried with
    /// their original first-issue slot preserved, so client-perceived
    /// latency accumulates across retries.
    Closed { clients: u64, think_ns: u64 },
}

/// Where query vectors are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PoolDist {
    /// The legacy hot/cold mix driven by
    /// `ServeParams::{hot_fraction, hot_pool}`.
    #[default]
    HotCold,
    /// Zipfian over the whole pool: pool id `i` has weight `1/(i+1)^s`.
    /// `s = 0` is uniform; `s = 1.1` concentrates most traffic on a few
    /// hot keys.
    Zipf { s: f64 },
}

/// Diurnal sine modulator: the offered rate is scaled by
/// `1 + amp * sin(2π t / period)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diurnal {
    pub period_ns: u64,
    /// In `[0, 0.9]` so the rate never reaches zero.
    pub amp: f64,
}

/// Flash-crowd burst window: the offered rate is multiplied by `x` for
/// `t ∈ [at, at + dur)` of virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstWindow {
    pub at_ns: u64,
    pub dur_ns: u64,
    pub x: f64,
}

/// Bucket count of the synthetic filtered-traffic predicate space: each
/// point of a vdb collection carries a `bucket` metadata field in
/// `[0, FILTER_BUCKETS)`, and a filtered query's predicate is a rotated
/// contiguous range over it.
pub const FILTER_BUCKETS: u64 = 100;

/// Synthetic filtered traffic: `pct`% of arrivals carry a metadata
/// predicate of selectivity ≈ `sel`, realized in vdb mode as a rotated
/// `bucket in [lo .. hi]` range term (the rotation spreads distinct
/// predicates — and therefore distinct cache keys — across queries).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterTraffic {
    /// Percent of arrivals carrying a predicate, in `[1, 100]`.
    pub pct: u64,
    /// Target selectivity of each predicate, in `(0, 1]`.
    pub sel: f64,
}

impl FilterTraffic {
    /// Width of the rotated bucket range: `round(sel · FILTER_BUCKETS)`,
    /// clamped to `[1, FILTER_BUCKETS]`.
    pub fn width(&self) -> u64 {
        ((self.sel * FILTER_BUCKETS as f64).round() as u64).clamp(1, FILTER_BUCKETS)
    }
}

/// Online mutation traffic on the slot clock: one insert every
/// `ins_every` slots and one delete every `del_every` slots (0 disables
/// either kind). The vdb serving loop realizes the schedule with pure
/// PRF draws keyed by [`SALT_MUTATE`] and the slot number, so a mixed
/// insert/query/delete trace replays exactly from the serve seed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MutateTraffic {
    pub ins_every: u64,
    pub del_every: u64,
}

/// One tenant priority class. Declaration order is priority order: the
/// first class dispatches first and classes hold
/// `ceil(share_pct% · shed_watermark)` of the queue at most.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantClass {
    pub name: String,
    /// Integer percent of traffic (shares across classes sum to 100).
    pub share_pct: u64,
}

/// One composed workload scenario — see the module docs. Parsed from a
/// `--workload` spec string by [`std::str::FromStr`] (grammar in
/// `serve::params`); [`Default`] is the pre-DSL behavior (open-loop,
/// hot/cold pool, no modulators, no tenant classes), for which generation
/// is byte-identical to the legacy generator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadSpec {
    pub arrival: ArrivalProcess,
    pub pool: PoolDist,
    pub diurnal: Option<Diurnal>,
    pub bursts: Vec<BurstWindow>,
    /// Synthetic filtered traffic (vdb mode only; inert otherwise).
    pub filter: Option<FilterTraffic>,
    /// Online insert/delete schedule (vdb mode only; inert otherwise).
    pub mutate: Option<MutateTraffic>,
    pub tenants: Vec<TenantClass>,
}

impl WorkloadSpec {
    /// Check every invariant the parser enforces (for specs filled
    /// directly). Degenerate shapes — a zero-width burst window, a sine
    /// that can null the rate, an empty or non-100% tenant split — are
    /// errors here so they never reach the slot loop.
    pub fn validate(&self) -> Result<(), String> {
        if let ArrivalProcess::Closed { clients, .. } = self.arrival {
            if clients < 1 {
                return Err("closed-loop clients must be >= 1".into());
            }
            if clients > 100_000 {
                return Err(format!(
                    "closed-loop clients must be <= 100000 (got {clients})"
                ));
            }
        }
        if let PoolDist::Zipf { s } = self.pool {
            if !s.is_finite() || !(0.0..=8.0).contains(&s) {
                return Err(format!("zipf exponent s must be in [0, 8] (got {s})"));
            }
        }
        if let Some(d) = self.diurnal {
            if d.period_ns == 0 {
                return Err("sine period must be positive".into());
            }
            if !d.amp.is_finite() || !(0.0..=0.9).contains(&d.amp) {
                return Err(format!(
                    "sine amplitude must be in [0, 0.9] so the rate never \
                     reaches zero (got {})",
                    d.amp
                ));
            }
        }
        for b in &self.bursts {
            if b.dur_ns == 0 {
                return Err("burst window has zero width (dur must be positive): the \
                     spec would generate no burst arrivals"
                    .into());
            }
            if !b.x.is_finite() || !(1.0..=64.0).contains(&b.x) {
                return Err(format!(
                    "burst multiplier x must be in [1, 64] (got {})",
                    b.x
                ));
            }
        }
        if let Some(f) = self.filter {
            if !(1..=100).contains(&f.pct) {
                return Err(format!("filter pct must be in [1, 100] (got {})", f.pct));
            }
            if !f.sel.is_finite() || f.sel <= 0.0 || f.sel > 1.0 {
                return Err(format!("filter sel must be in (0, 1] (got {})", f.sel));
            }
        }
        if let Some(m) = self.mutate {
            if m.ins_every == 0 && m.del_every == 0 {
                return Err("mutate clause declares no mutations (ins and del both 0)".into());
            }
        }
        if !self.tenants.is_empty() {
            if self.tenants.len() > 8 {
                return Err(format!(
                    "at most 8 tenant classes (got {})",
                    self.tenants.len()
                ));
            }
            let mut sum = 0u64;
            for (i, t) in self.tenants.iter().enumerate() {
                if t.name.is_empty()
                    || !t
                        .name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                {
                    return Err(format!(
                        "tenant name must be non-empty [A-Za-z0-9_-] (got {:?})",
                        t.name
                    ));
                }
                if self.tenants[..i].iter().any(|o| o.name == t.name) {
                    return Err(format!("duplicate tenant class {:?}", t.name));
                }
                if t.share_pct < 1 {
                    return Err(format!("tenant {:?} share must be >= 1%", t.name));
                }
                sum += t.share_pct;
            }
            if sum != 100 {
                return Err(format!("tenant shares must sum to 100% (got {sum}%)"));
            }
        }
        Ok(())
    }

    /// Rate multiplier at virtual time `t_ns`: the diurnal sine times the
    /// largest burst window covering `t_ns` (1 outside every window).
    pub fn multiplier(&self, t_ns: u64) -> f64 {
        let mut m = 1.0;
        if let Some(d) = self.diurnal {
            let phase = 2.0 * std::f64::consts::PI * t_ns as f64 / d.period_ns as f64;
            m *= 1.0 + d.amp * phase.sin();
        }
        let burst = self
            .bursts
            .iter()
            .filter(|b| t_ns >= b.at_ns && t_ns < b.at_ns.saturating_add(b.dur_ns))
            .map(|b| b.x)
            .fold(1.0, f64::max);
        m * burst
    }

    /// Upper bound of [`Self::multiplier`] over all `t_ns` — the rate the
    /// thinning generator draws candidates at.
    pub fn peak_multiplier(&self) -> f64 {
        let amp = self.diurnal.map_or(0.0, |d| d.amp);
        let burst = self.bursts.iter().map(|b| b.x).fold(1.0, f64::max);
        (1.0 + amp) * burst
    }

    /// Whether any rate modulator is active (selects the thinning path).
    pub fn is_modulated(&self) -> bool {
        self.diurnal.is_some() || !self.bursts.is_empty()
    }

    /// Number of tenant classes the engine tracks (1 implicit class when
    /// none are declared).
    pub fn n_tenant_classes(&self) -> usize {
        self.tenants.len().max(1)
    }

    /// Tenant class of `key` (arrival index for the open loop, client id
    /// for the closed loop): a share-weighted pure PRF draw. 0 when no
    /// classes are declared.
    pub fn tenant_of(&self, serve_seed: u64, key: u64) -> usize {
        if self.tenants.is_empty() {
            return 0;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(mix(serve_seed, SALT_TENANT, key, 0, 0));
        let u = rng.gen_range(0..100u64);
        let mut cum = 0u64;
        for (i, t) in self.tenants.iter().enumerate() {
            cum += t.share_pct;
            if u < cum {
                return i;
            }
        }
        self.tenants.len() - 1
    }

    /// Filtered-traffic draw for arrival `idx`: `Some(lo)` — the low
    /// bucket of the rotated `[lo .. lo + width - 1]` range — when the
    /// arrival carries a predicate, `None` otherwise. A pure PRF of
    /// `(serve_seed, idx)`, so every rank (and every rerun) agrees on
    /// which queries are filtered and by what.
    pub fn filter_bucket_of(&self, serve_seed: u64, idx: u64) -> Option<u64> {
        let f = self.filter?;
        let mut rng = ChaCha8Rng::seed_from_u64(mix(serve_seed, SALT_FILTER, idx, 0, 0));
        if rng.gen_range(0..100u64) >= f.pct {
            return None;
        }
        Some(rng.gen_range(0..(FILTER_BUCKETS - f.width() + 1)))
    }
}

/// Normalized cumulative Zipfian distribution over `pool_len` ranks:
/// `cdf[i]` is the probability mass of pool ids `0..=i`, with id `i`
/// weighted `1/(i+1)^s`. Pure function of `(pool_len, s)`.
pub fn zipf_cdf(pool_len: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(pool_len);
    let mut acc = 0.0f64;
    for i in 0..pool_len {
        acc += 1.0 / ((i + 1) as f64).powf(s);
        cdf.push(acc);
    }
    for c in &mut cdf {
        *c /= acc;
    }
    cdf
}

/// Draws pool ids for arrivals. Everything is a pure PRF of
/// `(serve_seed, arrival idx)` except the legacy cold-set round-robin
/// cursor, which advances in arrival-index order (both the plan generator
/// and the closed-loop minting engine consume indexes in order).
pub struct PoolPicker {
    dist: PoolDist,
    pool_len: usize,
    hot_fraction: f64,
    hot_pool: usize,
    cold_cursor: usize,
    /// Precomputed CDF for [`PoolDist::Zipf`]; empty otherwise.
    zipf: Vec<f64>,
}

impl PoolPicker {
    pub fn new(params: &ServeParams, pool_len: usize) -> PoolPicker {
        assert!(pool_len >= 1, "query pool must not be empty");
        let dist = params.workload.pool;
        PoolPicker {
            dist,
            pool_len,
            hot_fraction: params.hot_fraction,
            hot_pool: params.hot_pool,
            cold_cursor: 0,
            zipf: match dist {
                PoolDist::Zipf { s } => zipf_cdf(pool_len, s),
                PoolDist::HotCold => Vec::new(),
            },
        }
    }

    /// Pool id of arrival `idx`.
    pub fn pick(&mut self, serve_seed: u64, idx: u64) -> usize {
        let mut rng = ChaCha8Rng::seed_from_u64(mix(serve_seed, SALT_POOL, idx, 0, 0));
        match self.dist {
            PoolDist::HotCold => {
                // The pre-DSL path, byte-identical: hot pick with
                // probability hot_fraction, else cold round-robin.
                let hot_pool = self.hot_pool.min(self.pool_len);
                if rng.gen_bool(self.hot_fraction) {
                    rng.gen_range(0..hot_pool)
                } else {
                    let id = hot_pool + self.cold_cursor;
                    self.cold_cursor =
                        (self.cold_cursor + 1) % self.pool_len.saturating_sub(hot_pool).max(1);
                    id.min(self.pool_len - 1)
                }
            }
            PoolDist::Zipf { .. } => {
                let u: f64 = rng.gen_range(0.0..1.0);
                self.zipf
                    .partition_point(|&c| c <= u)
                    .min(self.pool_len - 1)
            }
        }
    }
}

/// One generated query arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival index (0-based, also the query's stable id and seed key).
    pub idx: u64,
    /// Slot on the serving clock in which the query arrives.
    pub slot: u64,
    /// Index into the query pool set for the query vector.
    pub pool_id: usize,
    /// Tenant class index (0 when no classes are declared).
    pub tenant: usize,
    /// Issuing closed-loop client (== `idx` for open-loop arrivals).
    pub client: u64,
    /// Slot of the issuing client's *first* attempt at this query — equal
    /// to `slot` except for closed-loop retries of shed queries, where it
    /// anchors client-perceived latency.
    pub first_issue_slot: u64,
}

/// The full arrival schedule of a run, sorted by slot (then index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalPlan {
    pub arrivals: Vec<Arrival>,
}

impl ArrivalPlan {
    /// Generate the open-loop schedule for `params` against a query pool
    /// of `pool_len` vectors. Pure function of `(params.serve_seed,
    /// params.workload, params.offered_qps, params.n_arrivals,
    /// params.hot_fraction, params.hot_pool, params.slot_ns, pool_len)`.
    ///
    /// Errors instead of producing an empty or unboundedly-thinned plan:
    /// a degenerate spec (zero arrivals, non-positive rate, a thinning
    /// acceptance rate collapsed toward zero, a closed-loop process that
    /// has no static plan) is reported cleanly here, never as a panic in
    /// the slot loop.
    pub fn try_generate(params: &ServeParams, pool_len: usize) -> Result<ArrivalPlan, String> {
        if pool_len == 0 {
            return Err("query pool must not be empty".into());
        }
        params.workload.validate()?;
        if let ArrivalProcess::Closed { .. } = params.workload.arrival {
            return Err(
                "closed-loop arrivals are minted by the engine when queries \
                 complete; no static plan exists"
                    .into(),
            );
        }
        if params.n_arrivals == 0 {
            return Err("degenerate workload: n_arrivals is 0 (empty plan)".into());
        }
        if !params.offered_qps.is_finite() || params.offered_qps <= 0.0 {
            return Err(format!(
                "degenerate workload: offered rate must be finite and > 0 \
                 (got {} qps)",
                params.offered_qps
            ));
        }
        let spec = &params.workload;
        let n = params.n_arrivals as u64;
        let mut picker = PoolPicker::new(params, pool_len);
        let mut arrivals = Vec::with_capacity(params.n_arrivals);
        let mut push = |picker: &mut PoolPicker, i: u64, t_ns: f64| {
            let slot = t_ns as u64 / params.slot_ns;
            arrivals.push(Arrival {
                idx: i,
                slot,
                pool_id: picker.pick(params.serve_seed, i),
                tenant: spec.tenant_of(params.serve_seed, i),
                client: i,
                first_issue_slot: slot,
            });
        };
        if !spec.is_modulated() {
            // Flat-rate path — byte-identical to the pre-DSL generator.
            let mean_gap_ns = 1e9 / params.offered_qps;
            let mut t_ns = 0.0f64;
            for i in 0..n {
                let mut gap_rng =
                    ChaCha8Rng::seed_from_u64(mix(params.serve_seed, SALT_GAP, i, 0, 0));
                // Inverse-CDF exponential draw; 1-u keeps ln's argument
                // away from zero.
                let u: f64 = gap_rng.gen_range(0.0..1.0);
                t_ns += -(1.0 - u).ln() * mean_gap_ns;
                push(&mut picker, i, t_ns);
            }
        } else {
            // Modulated path: draw a homogeneous candidate stream at the
            // peak rate, then thin each candidate `c` with an independent
            // accept draw at probability multiplier(t)/peak — the
            // classic deterministic construction for inhomogeneous
            // Poisson processes, still a pure PRF per candidate index.
            let peak = spec.peak_multiplier();
            let mean_gap_ns = 1e9 / (params.offered_qps * peak);
            let budget = n.saturating_mul(MAX_THIN_CANDIDATES_PER_ARRIVAL);
            let mut t_ns = 0.0f64;
            let mut accepted = 0u64;
            let mut c = 0u64;
            while accepted < n {
                if c >= budget {
                    return Err(format!(
                        "degenerate workload spec: thinning accepted only \
                         {accepted}/{n} arrivals after {c} candidates \
                         (acceptance rate collapsed toward zero)"
                    ));
                }
                let mut gap_rng =
                    ChaCha8Rng::seed_from_u64(mix(params.serve_seed, SALT_GAP, c, 0, 0));
                let u: f64 = gap_rng.gen_range(0.0..1.0);
                t_ns += -(1.0 - u).ln() * mean_gap_ns;
                let mut thin_rng =
                    ChaCha8Rng::seed_from_u64(mix(params.serve_seed, SALT_THIN, c, 0, 0));
                let keep: f64 = thin_rng.gen_range(0.0..1.0);
                c += 1;
                if keep * peak >= spec.multiplier(t_ns as u64) {
                    continue;
                }
                push(&mut picker, accepted, t_ns);
                accepted += 1;
            }
        }
        if arrivals.is_empty() {
            return Err("degenerate workload spec produced an empty arrival plan".into());
        }
        Ok(ArrivalPlan { arrivals })
    }

    /// [`Self::try_generate`], panicking with the clean error message on a
    /// degenerate spec (callers that validated `params` first never hit
    /// this).
    pub fn generate(params: &ServeParams, pool_len: usize) -> ArrivalPlan {
        Self::try_generate(params, pool_len).unwrap_or_else(|e| panic!("invalid workload: {e}"))
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the plan is empty. [`Self::try_generate`] never returns an
    /// empty plan; this (and [`Self::last_slot`]) stay total anyway so a
    /// hand-built empty plan cannot panic downstream.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The last arrival's slot (0 for an empty plan).
    pub fn last_slot(&self) -> u64 {
        self.arrivals.last().map_or(0, |a| a.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(qps: f64, n: usize) -> ServeParams {
        ServeParams::new(5)
            .offered_qps(qps)
            .n_arrivals(n)
            .hot_set(0.4, 4)
    }

    #[test]
    fn same_seed_same_plan() {
        let p = params(5_000.0, 300);
        let a = ArrivalPlan::generate(&p, 64);
        let b = ArrivalPlan::generate(&p, 64);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = params(5_000.0, 300);
        let a = ArrivalPlan::generate(&p, 64);
        let b = ArrivalPlan::generate(&p.clone().serve_seed(99), 64);
        assert_ne!(a, b);
    }

    #[test]
    fn slots_are_monotone_and_rate_is_plausible() {
        let p = params(2_000.0, 1_000); // 2k qps, 1 ms slots => ~2/slot
        let plan = ArrivalPlan::generate(&p, 64);
        assert!(plan
            .arrivals
            .windows(2)
            .all(|w| w[0].slot <= w[1].slot && w[0].idx < w[1].idx));
        // 1000 arrivals at 2 per slot should span roughly 500 slots; allow
        // a generous band for exponential variance.
        let span = plan.last_slot();
        assert!(
            (250..=1_000).contains(&span),
            "implausible span {span} slots"
        );
    }

    #[test]
    fn hot_fraction_skews_pool_ids() {
        let p = params(2_000.0, 2_000);
        let plan = ArrivalPlan::generate(&p, 64);
        let hot = plan.arrivals.iter().filter(|a| a.pool_id < 4).count();
        let frac = hot as f64 / plan.len() as f64;
        assert!(
            (0.3..0.5).contains(&frac),
            "hot fraction {frac} far from configured 0.4"
        );
        // Every pool id stays in range.
        assert!(plan.arrivals.iter().all(|a| a.pool_id < 64));
    }

    #[test]
    fn pool_smaller_than_hot_pool_still_in_range() {
        let p = params(1_000.0, 100).hot_set(0.9, 1_000);
        let plan = ArrivalPlan::generate(&p, 3);
        assert!(plan.arrivals.iter().all(|a| a.pool_id < 3));
    }

    #[test]
    fn empty_plan_edge_cases_are_total() {
        // A degenerate (hand-built) empty plan must not panic anywhere.
        let empty = ArrivalPlan { arrivals: vec![] };
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.last_slot(), 0);
    }

    #[test]
    fn degenerate_specs_error_cleanly() {
        // Zero arrivals (rate exists but the plan would be empty).
        let mut p = params(1_000.0, 10);
        p.n_arrivals = 0;
        let err = ArrivalPlan::try_generate(&p, 8).unwrap_err();
        assert!(err.contains("empty plan"), "{err}");
        // Rate 0 (directly-filled params bypassing the builder assert).
        let mut p = params(1_000.0, 10);
        p.offered_qps = 0.0;
        let err = ArrivalPlan::try_generate(&p, 8).unwrap_err();
        assert!(err.contains("rate"), "{err}");
        // Zero-width burst window.
        let mut p = params(1_000.0, 10);
        p.workload.bursts.push(BurstWindow {
            at_ns: 0,
            dur_ns: 0,
            x: 8.0,
        });
        let err = ArrivalPlan::try_generate(&p, 8).unwrap_err();
        assert!(err.contains("zero width"), "{err}");
        // Closed-loop specs have no static plan.
        let mut p = params(1_000.0, 10);
        p.workload.arrival = ArrivalProcess::Closed {
            clients: 4,
            think_ns: 0,
        };
        let err = ArrivalPlan::try_generate(&p, 8).unwrap_err();
        assert!(err.contains("closed-loop"), "{err}");
        // Empty pool.
        let err = ArrivalPlan::try_generate(&params(1_000.0, 10), 0).unwrap_err();
        assert!(err.contains("pool"), "{err}");
    }

    #[test]
    fn default_spec_matches_legacy_generator_shape() {
        // The default WorkloadSpec must leave the legacy fields in charge.
        let spec = WorkloadSpec::default();
        assert_eq!(spec.arrival, ArrivalProcess::Open);
        assert_eq!(spec.pool, PoolDist::HotCold);
        assert!(!spec.is_modulated());
        assert_eq!(spec.n_tenant_classes(), 1);
        assert_eq!(spec.tenant_of(7, 123), 0);
        spec.validate().unwrap();
    }

    #[test]
    fn burst_window_concentrates_arrivals() {
        let mut p = params(2_000.0, 2_000); // ~2 per 1ms slot baseline
        p.workload.bursts.push(BurstWindow {
            at_ns: 100_000_000, // 100 ms in
            dur_ns: 50_000_000, // 50 ms wide
            x: 8.0,
        });
        let plan = ArrivalPlan::generate(&p, 64);
        // Arrival density inside the window must far exceed outside.
        let in_window = plan
            .arrivals
            .iter()
            .filter(|a| (100..150).contains(&a.slot))
            .count() as f64
            / 50.0;
        let before = plan.arrivals.iter().filter(|a| a.slot < 100).count().max(1) as f64 / 100.0;
        assert!(
            in_window > 3.0 * before,
            "burst density {in_window:.2}/slot vs baseline {before:.2}/slot"
        );
        assert!(plan.arrivals.windows(2).all(|w| w[0].slot <= w[1].slot));
    }

    #[test]
    fn diurnal_sine_modulates_rate() {
        let mut p = params(2_000.0, 4_000);
        p.workload.diurnal = Some(Diurnal {
            period_ns: 1_000_000_000, // 1 s
            amp: 0.9,
        });
        let plan = ArrivalPlan::generate(&p, 64);
        // First quarter-period (rising sine) must be denser than the
        // third quarter (falling below baseline).
        let count = |lo: u64, hi: u64| {
            plan.arrivals
                .iter()
                .filter(|a| (lo..hi).contains(&a.slot))
                .count()
        };
        let crest = count(125, 375); // around t = period/4
        let trough = count(625, 875); // around t = 3*period/4
        assert!(
            crest > 2 * trough.max(1),
            "sine crest {crest} not denser than trough {trough}"
        );
    }

    #[test]
    fn zipf_pool_concentrates_on_hot_keys() {
        let mut p = params(2_000.0, 2_000);
        p.workload.pool = PoolDist::Zipf { s: 1.1 };
        let plan = ArrivalPlan::generate(&p, 64);
        let head = plan.arrivals.iter().filter(|a| a.pool_id < 4).count() as f64;
        assert!(
            head / plan.len() as f64 > 0.4,
            "zipf s=1.1 put only {head} of {} arrivals on the 4 hottest keys",
            plan.len()
        );
        assert!(plan.arrivals.iter().all(|a| a.pool_id < 64));
    }

    #[test]
    fn tenant_assignment_follows_shares() {
        let mut p = params(2_000.0, 2_000);
        p.workload.tenants = vec![
            TenantClass {
                name: "gold".into(),
                share_pct: 75,
            },
            TenantClass {
                name: "free".into(),
                share_pct: 25,
            },
        ];
        let plan = ArrivalPlan::generate(&p, 64);
        let gold = plan.arrivals.iter().filter(|a| a.tenant == 0).count() as f64;
        let frac = gold / plan.len() as f64;
        assert!(
            (0.70..0.80).contains(&frac),
            "gold fraction {frac} far from configured 0.75"
        );
    }

    #[test]
    fn filter_draws_follow_pct_and_stay_in_range() {
        let mut spec = WorkloadSpec::default();
        assert_eq!(spec.filter_bucket_of(7, 0), None, "no clause, no filters");
        spec.filter = Some(FilterTraffic { pct: 30, sel: 0.2 });
        spec.validate().unwrap();
        let width = spec.filter.unwrap().width();
        assert_eq!(width, 20);
        let n = 4_000u64;
        let mut filtered = 0u64;
        for idx in 0..n {
            if let Some(lo) = spec.filter_bucket_of(42, idx) {
                filtered += 1;
                assert!(lo + width <= FILTER_BUCKETS, "range overflows: lo {lo}");
                // Pure PRF: the draw replays exactly.
                assert_eq!(spec.filter_bucket_of(42, idx), Some(lo));
            }
        }
        let frac = filtered as f64 / n as f64;
        assert!(
            (0.25..0.35).contains(&frac),
            "filtered fraction {frac} far from configured 0.30"
        );
        // A different seed draws a different filtered set.
        let other: Vec<_> = (0..64).map(|i| spec.filter_bucket_of(43, i)).collect();
        let this: Vec<_> = (0..64).map(|i| spec.filter_bucket_of(42, i)).collect();
        assert_ne!(this, other);
    }

    #[test]
    fn filter_and_mutate_validation() {
        let mut spec = WorkloadSpec {
            filter: Some(FilterTraffic { pct: 0, sel: 0.5 }),
            ..WorkloadSpec::default()
        };
        assert!(spec.validate().unwrap_err().contains("[1, 100]"));
        spec.filter = Some(FilterTraffic { pct: 50, sel: 0.0 });
        assert!(spec.validate().unwrap_err().contains("(0, 1]"));
        spec.filter = Some(FilterTraffic { pct: 100, sel: 1.0 });
        spec.validate().unwrap();
        // Full-selectivity predicates cover every bucket from offset 0.
        assert_eq!(spec.filter_bucket_of(1, 0), Some(0));
        spec.filter = None;
        spec.mutate = Some(MutateTraffic {
            ins_every: 0,
            del_every: 0,
        });
        assert!(spec.validate().unwrap_err().contains("no mutations"));
        spec.mutate = Some(MutateTraffic {
            ins_every: 40,
            del_every: 0,
        });
        spec.validate().unwrap();
    }

    #[test]
    fn zipf_cdf_is_normalized_and_monotone() {
        let cdf = zipf_cdf(100, 1.1);
        assert_eq!(cdf.len(), 100);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]));
        assert!((cdf[99] - 1.0).abs() < 1e-12);
        // s = 0 is uniform.
        let uni = zipf_cdf(4, 0.0);
        assert!((uni[0] - 0.25).abs() < 1e-12);
    }
}
