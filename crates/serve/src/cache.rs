//! Deterministic hot-query result cache.
//!
//! Keys are *quantized* query vectors: each coordinate is bucketed by
//! `quant_step`, so numerically-close repeats of a hot query share an
//! entry. Eviction is exact LRU driven by a monotonic touch counter — no
//! hash-iteration order, no clocks — so the hit/miss/eviction sequence is
//! a pure function of the probe sequence and replays bit-identically.
//! Storage is a flat vector with linear probes: serving caches are small
//! (tens to hundreds of entries) and a scan keeps the structure trivially
//! deterministic.

use dataset::set::PointId;

/// Conversion of a query vector into a quantized cache key. The `Point`
/// trait is storage-agnostic (no coordinate access), so cacheable element
/// types opt in here.
pub trait QuantizeKey {
    /// The key: one bucket index per coordinate.
    fn quantize(&self, step: f32) -> Vec<i64>;
}

impl QuantizeKey for Vec<f32> {
    fn quantize(&self, step: f32) -> Vec<i64> {
        self.iter().map(|&x| (x / step).round() as i64).collect()
    }
}

impl QuantizeKey for Vec<u8> {
    /// Byte vectors are already discrete; `step` scales the bucket width
    /// (>= 1 merges adjacent codes).
    fn quantize(&self, step: f32) -> Vec<i64> {
        self.iter()
            .map(|&x| (x as f32 / step.max(1.0)).round() as i64)
            .collect()
    }
}

struct Entry {
    key: Vec<i64>,
    ids: Vec<PointId>,
    last_touch: u64,
}

/// Fixed-capacity LRU result cache over quantized keys.
pub struct ResultCache {
    entries: Vec<Entry>,
    capacity: usize,
    touch: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` results (0 disables).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            touch: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up `key`; a hit refreshes its LRU position and returns the
    /// cached result ids.
    pub fn get(&mut self, key: &[i64]) -> Option<Vec<PointId>> {
        self.touch += 1;
        match self.entries.iter_mut().find(|e| e.key == key) {
            Some(e) => {
                e.last_touch = self.touch;
                self.hits += 1;
                Some(e.ids.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key -> ids`, evicting the least-recently-used
    /// entry when at capacity.
    pub fn insert(&mut self, key: Vec<i64>, ids: Vec<PointId>) {
        if self.capacity == 0 {
            return;
        }
        self.touch += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.ids = ids;
            e.last_touch = self.touch;
            return;
        }
        if self.entries.len() >= self.capacity {
            // Touch counters are unique, so the minimum is unambiguous.
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_touch)
                .map(|(i, _)| i)
                .expect("capacity > 0 implies at least one entry");
            self.entries.swap_remove(victim);
            self.evictions += 1;
        }
        self.entries.push(Entry {
            key,
            ids,
            last_touch: self.touch,
        });
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_merges_close_queries() {
        let a = vec![0.10004f32, -1.0];
        let b = vec![0.09996f32, -1.0];
        let c = vec![0.2f32, -1.0];
        assert_eq!(a.quantize(1e-3), b.quantize(1e-3));
        assert_ne!(a.quantize(1e-3), c.quantize(1e-3));
        // u8 vectors quantize exactly at step 1.
        let u: Vec<u8> = vec![3, 200];
        assert_eq!(u.quantize(1.0), vec![3, 200]);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.insert(vec![1], vec![10]);
        c.insert(vec![2], vec![20]);
        assert_eq!(c.get(&[1]), Some(vec![10])); // refresh 1
        c.insert(vec![3], vec![30]); // evicts 2
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.get(&[2]), None);
        assert_eq!(c.get(&[1]), Some(vec![10]));
        assert_eq!(c.get(&[3]), Some(vec![30]));
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let mut c = ResultCache::new(2);
        c.insert(vec![1], vec![10]);
        c.insert(vec![2], vec![20]);
        c.insert(vec![1], vec![11]); // refresh, no eviction
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&[1]), Some(vec![11]));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert(vec![1], vec![10]);
        assert!(c.is_empty());
        assert_eq!(c.get(&[1]), None);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn probe_sequence_is_deterministic() {
        // Identical probe/insert sequences leave identical caches.
        let run = || {
            let mut c = ResultCache::new(3);
            for i in 0..50i64 {
                let key = vec![i % 7];
                if c.get(&key).is_none() {
                    c.insert(key, vec![i as u32]);
                }
            }
            (c.hits(), c.misses(), c.evictions(), c.len())
        };
        assert_eq!(run(), run());
    }
}
